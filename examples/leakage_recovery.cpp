// Leakage recovery scenario: a design meets timing with margin, and the
// manufacturing team wants to know how much leakage the dose map can buy
// back at each level of permitted cycle-time relaxation.
//
// This sweeps the QP's timing bound tau from the nominal MCT (no slowdown
// allowed) to +6% and prints the leakage/timing trade-off curve -- the kind
// of knob a product engineer would turn per bin.
//
// Build & run:  cmake --build build && ./build/examples/leakage_recovery
#include <cstdio>

#include "dmopt/dmopt.h"
#include "flow/context.h"

using namespace doseopt;

int main() {
  flow::DesignContext ctx(gen::jpeg65_spec().scaled(0.04));
  const double mct0 = ctx.nominal_mct_ns();
  const double leak0 = ctx.nominal_leakage_uw();
  std::printf("design: %s  cells=%zu  nominal MCT %.4f ns  leakage %.1f uW\n",
              ctx.spec().name.c_str(), ctx.netlist().cell_count(), mct0,
              leak0);

  dmopt::DmoptOptions options;
  options.grid_um = 10.0;
  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &ctx.coefficients(false), &ctx.timer(), &ctx.nominal_timing(),
      options);

  std::printf("\n%-12s %-12s %-14s %-10s\n", "tau (ns)", "MCT (ns)",
              "leakage (uW)", "saved (%)");
  for (double relax = 0.0; relax <= 0.0601; relax += 0.02) {
    const double tau = mct0 * (1.0 + relax);
    const dmopt::DmoptResult r = optimizer.minimize_leakage(tau);
    std::printf("%-12.4f %-12.4f %-14.1f %-10.2f\n", tau, r.golden_mct_ns,
                r.golden_leakage_uw,
                100.0 * (leak0 - r.golden_leakage_uw) / leak0);
  }
  std::printf(
      "\nEvery row is golden-signoff verified; the dose maps all satisfy "
      "the +/-5%% range and delta=2 smoothness equipment limits.\n");
  return 0;
}
