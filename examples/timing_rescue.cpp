// Timing rescue scenario: a placed design misses its frequency target and
// the mask set is frozen -- no resynthesis, no re-placement allowed.  The
// co-optimization of the paper applies two post-layout knobs:
//
//   stage 1 (DMopt/QCP): compute a design-aware dose map that speeds up
//           critical regions without any leakage increase;
//   stage 2 (dosePl): swap critical cells into the high-dose regions the
//           map created, with ECO legalization and golden re-timing.
//
// Build & run:  cmake --build build && ./build/examples/timing_rescue
#include <cstdio>

#include "flow/optimize.h"

using namespace doseopt;

int main() {
  flow::DesignContext ctx(gen::aes65_spec().scaled(0.12));
  std::printf("design: %s  cells=%zu\n", ctx.spec().name.c_str(),
              ctx.netlist().cell_count());
  std::printf("stage 0 (signoff):  MCT %.4f ns  leakage %.1f uW\n",
              ctx.nominal_mct_ns(), ctx.nominal_leakage_uw());

  flow::FlowOptions options;
  options.mode = flow::DmoptMode::kMinimizeCycleTime;
  options.dmopt.grid_um = 5.0;
  options.run_dose_placement = true;
  options.dosepl.rounds = 10;

  const flow::FlowResult r = run_flow(ctx, options);

  std::printf("stage 1 (DMopt/QCP): MCT %.4f ns  leakage %.1f uW  "
              "(%d bisection probes, %.1f s)\n",
              r.dmopt.golden_mct_ns, r.dmopt.golden_leakage_uw,
              r.dmopt.bisection_probes, r.dmopt.runtime_s);
  std::printf("stage 2 (dosePl):    MCT %.4f ns  leakage %.1f uW  "
              "(%d swaps accepted in %d rounds, %.1f s)\n",
              r.dosepl.final_mct_ns, r.dosepl.final_leakage_uw,
              r.dosepl.swaps_accepted, r.dosepl.rounds_run,
              r.dosepl.runtime_s);

  const double gain =
      100.0 * (r.nominal_mct_ns - r.final_mct_ns) / r.nominal_mct_ns;
  std::printf("\ntotal cycle-time improvement: %.2f%% at %+.2f%% leakage -- "
              "with zero mask or netlist changes.\n",
              gain,
              100.0 * (r.final_leakage_uw - r.nominal_leakage_uw) /
                  r.nominal_leakage_uw);
  return 0;
}
