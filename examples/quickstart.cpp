// Quickstart: the smallest end-to-end use of the doseopt library.
//
//   1. Build an analyzed design (here: a scaled-down AES-like testcase --
//      substitute your own netlist + placement in real use).
//   2. Run the design-aware dose map optimization (QP: minimize leakage
//      without degrading the cycle time).
//   3. Inspect the result: golden MCT/leakage, the optimized dose map, and
//      whether it honors the scanner's range/smoothness limits.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "dmopt/dmopt.h"
#include "flow/context.h"

using namespace doseopt;

int main() {
  // A ~2000-cell 65 nm design, generated, placed, extracted, and timed.
  flow::DesignContext ctx(gen::aes65_spec().scaled(0.12));
  std::printf("design: %s  cells=%zu  nets=%zu\n",
              ctx.spec().name.c_str(), ctx.netlist().cell_count(),
              ctx.netlist().net_count());
  std::printf("nominal: MCT %.4f ns, leakage %.1f uW\n",
              ctx.nominal_mct_ns(), ctx.nominal_leakage_uw());

  // Dose map optimization: poly layer only, 10x10 um grids, the paper's
  // equipment limits (range +/-5%, neighbor smoothness delta = 2%).
  dmopt::DmoptOptions options;
  options.grid_um = 10.0;
  options.smoothness_delta = 2.0;
  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &ctx.coefficients(/*width=*/false), &ctx.timer(),
      &ctx.nominal_timing(), options);

  const dmopt::DmoptResult result = optimizer.minimize_leakage();

  std::printf("\nafter DMopt (QP: min leakage s.t. timing):\n");
  std::printf("  MCT     %.4f ns  (%+.2f%%)\n", result.golden_mct_ns,
              100.0 * (result.golden_mct_ns - ctx.nominal_mct_ns()) /
                  ctx.nominal_mct_ns());
  std::printf("  leakage %.1f uW  (%.2f%% reduction)\n",
              result.golden_leakage_uw,
              100.0 * (ctx.nominal_leakage_uw() - result.golden_leakage_uw) /
                  ctx.nominal_leakage_uw());
  std::printf("  dose map: %zux%zu grids, max |dose| %.2f%%, "
              "max neighbor delta %.2f%%, equipment-feasible: %s\n",
              result.poly_map.rows(), result.poly_map.cols(),
              result.poly_map.max_abs_dose_pct(),
              result.poly_map.max_neighbor_delta_pct(),
              result.poly_map.satisfies(-5, 5, 2, 1e-4) ? "yes" : "NO");
  std::printf("  solver: %s, %d ADMM iterations, %.2f s\n",
              qp::to_string(result.solver_status),
              result.total_qp_iterations, result.runtime_s);
  return 0;
}
