// Scanner recipe synthesis: from an optimized free-form dose map to the
// DoseMapper actuator settings the step-and-scan tool actually accepts
// (Section II-A of the paper): a slit-direction polynomial (Unicom-XL,
// order <= 6) plus a scan-direction Legendre series (Dosicom, eq. (1),
// up to 8 coefficients).  The residual tells the litho engineer how much
// of the design-aware map the equipment can deliver.
//
// Also demonstrates exporting a characterized variant library in Liberty
// format for inspection in standard tools.
//
// Build & run:  cmake --build build && ./build/examples/scanner_recipe
#include <cstdio>
#include <fstream>

#include "dmopt/dmopt.h"
#include "dose/actuator.h"
#include "flow/context.h"
#include "liberty/liberty_io.h"

using namespace doseopt;

int main() {
  flow::DesignContext ctx(gen::aes65_spec().scaled(0.12));
  std::printf("design: %s  cells=%zu\n", ctx.spec().name.c_str(),
              ctx.netlist().cell_count());

  // Optimize a dose map (QCP for timing, no leakage increase).
  dmopt::DmoptOptions options;
  options.grid_um = 10.0;
  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &ctx.coefficients(false), &ctx.timer(), &ctx.nominal_timing(),
      options);
  const dmopt::DmoptResult result = optimizer.minimize_cycle_time();
  std::printf("optimized map: %zux%zu grids, MCT %.4f -> %.4f ns\n",
              result.poly_map.rows(), result.poly_map.cols(),
              ctx.nominal_mct_ns(), result.golden_mct_ns);

  // Project onto the actuator subspace.
  const dose::ActuatorFit fit = dose::fit_actuators(result.poly_map);
  std::printf("\nUnicom-XL slit polynomial (x in [-1,1]):\n  ");
  for (std::size_t i = 0; i < fit.recipe.slit.coefficients().size(); ++i)
    std::printf("%s%.4f x^%zu", i ? "  " : "",
                fit.recipe.slit.coefficients()[i], i);
  std::printf("\nDosicom scan Legendre coefficients L1..L%zu (eq. (1)):\n  ",
              fit.recipe.scan.coefficients().size());
  for (const double l : fit.recipe.scan.coefficients())
    std::printf("%.4f  ", l);
  std::printf("\nresidual: rms %.3f%%, max %.3f%% dose\n",
              fit.rms_residual_pct, fit.max_residual_pct);
  std::printf(
      "(a large residual means the design-aware map needs finer-grained "
      "CD control, e.g. mask-side CDC, than the scanner alone provides)\n");

  // Export one characterized variant library as Liberty text.
  const liberty::Library& lib = ctx.repo().variant_for_dose(2.0, 0.0);
  const char* path = "variant_dose+2.lib";
  std::ofstream os(path);
  liberty::write_liberty(lib, os);
  std::printf("\nwrote %s (dL=%.1f nm variant, %zu cells)\n", path,
              lib.delta_l_nm(), lib.cell_count());
  return 0;
}
