#include "dmopt/multigrid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "faultinject/fault.h"

namespace doseopt::dmopt {

namespace {

faultinject::FaultPoint g_fault_mg_diverge("qp.mg_diverge");

/// Neighbor pairs in the dose::DoseMap generator order (diagonal,
/// horizontal, vertical per grid) for an arbitrary rows x cols grid.
std::vector<std::pair<std::size_t, std::size_t>> grid_pairs(
    std::size_t rows, std::size_t cols) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(3 * rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const std::size_t f = i * cols + j;
      if (i + 1 < rows && j + 1 < cols)
        pairs.emplace_back(f, (i + 1) * cols + j + 1);
      if (j + 1 < cols) pairs.emplace_back(f, f + 1);
      if (i + 1 < rows) pairs.emplace_back(f, (i + 1) * cols + j);
    }
  }
  return pairs;
}

bool all_finite(const la::Vec& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

MultigridHierarchy::MultigridHierarchy(
    std::size_t fine_rows, std::size_t fine_cols, bool width,
    double dose_lower_pct, double dose_upper_pct, double smoothness_delta,
    const la::Vec& fine_p_diag, const la::Vec& fine_q,
    const std::vector<std::size_t>& fine_cell_grid, std::size_t factor) {
  DOSEOPT_CHECK(factor >= 2, "MultigridHierarchy: factor must be >= 2");
  const std::size_t coarse_rows = (fine_rows + factor - 1) / factor;
  const std::size_t coarse_cols = (fine_cols + factor - 1) / factor;
  n_fine_ = fine_rows * fine_cols;
  n_coarse_ = coarse_rows * coarse_cols;
  width_ = width;
  const std::size_t layers = width ? 2 : 1;
  DOSEOPT_CHECK(fine_p_diag.size() == layers * n_fine_ &&
                    fine_q.size() == layers * n_fine_,
                "MultigridHierarchy: objective size mismatch");

  grid_map_.resize(n_fine_);
  block_count_.assign(n_coarse_, 0.0);
  for (std::size_t i = 0; i < fine_rows; ++i)
    for (std::size_t j = 0; j < fine_cols; ++j) {
      const std::size_t gc = (i / factor) * coarse_cols + (j / factor);
      grid_map_[i * fine_cols + j] = gc;
      block_count_[gc] += 1.0;
    }

  cell_grid_c_.resize(fine_cell_grid.size());
  for (std::size_t c = 0; c < fine_cell_grid.size(); ++c)
    cell_grid_c_[c] = grid_map_[fine_cell_grid[c]];

  // Coarse objective: the piecewise-constant prolongation makes the coarse
  // separable objective the exact Galerkin restriction -- sum the fine
  // diagonal and linear coefficients over each block.
  la::Vec p_c(layers * n_coarse_, 0.0), q_c(layers * n_coarse_, 0.0);
  for (std::size_t layer = 0; layer < layers; ++layer)
    for (std::size_t g = 0; g < n_fine_; ++g) {
      p_c[layer * n_coarse_ + grid_map_[g]] += fine_p_diag[layer * n_fine_ + g];
      q_c[layer * n_coarse_ + grid_map_[g]] += fine_q[layer * n_fine_ + g];
    }

  // Restriction map for the smoothness duals: a fine neighbor pair either
  // collapses inside one block (no coarse counterpart) or lands on a
  // coarse neighbor pair (block indices differ by at most one per
  // dimension, so the coarse pair always exists in the generator's
  // pattern).
  const auto fine_pairs = grid_pairs(fine_rows, fine_cols);
  const auto coarse_pairs = grid_pairs(coarse_rows, coarse_cols);
  pairs_fine_ = fine_pairs.size();
  pairs_coarse_ = coarse_pairs.size();
  std::unordered_map<std::uint64_t, std::size_t> coarse_index;
  coarse_index.reserve(coarse_pairs.size());
  auto key = [this](std::size_t a, std::size_t b) {
    return static_cast<std::uint64_t>(std::min(a, b)) * n_coarse_ +
           std::max(a, b);
  };
  for (std::size_t k = 0; k < coarse_pairs.size(); ++k)
    coarse_index.emplace(key(coarse_pairs[k].first, coarse_pairs[k].second),
                         k);
  pair_map_.assign(pairs_fine_, -1);
  pair_sign_.assign(pairs_fine_, 0.0);
  pair_mult_.assign(pairs_coarse_, 0.0);
  for (std::size_t k = 0; k < pairs_fine_; ++k) {
    const std::size_t ca = grid_map_[fine_pairs[k].first];
    const std::size_t cb = grid_map_[fine_pairs[k].second];
    if (ca == cb) continue;
    const auto it = coarse_index.find(key(ca, cb));
    DOSEOPT_CHECK(it != coarse_index.end(),
                  "MultigridHierarchy: fine pair with no coarse neighbor");
    pair_map_[k] = static_cast<std::ptrdiff_t>(it->second);
    pair_sign_[k] = coarse_pairs[it->second].first == ca ? 1.0 : -1.0;
    pair_mult_[it->second] += 1.0;
  }

  problem_ = std::make_unique<IncrementalProblem>(
      n_coarse_, width, coarse_pairs, dose_lower_pct, dose_upper_pct,
      smoothness_delta, std::move(p_c), std::move(q_c));
}

bool MultigridHierarchy::seed(const std::vector<PathConstraint>& paths,
                              const std::vector<double>& a_coeff,
                              const std::vector<double>& b_coeff, double ds,
                              double tau,
                              const qp::QpSettings& fine_settings,
                              la::Vec* x_fine, la::Vec* y_fine,
                              int* admm_iterations) {
  *admm_iterations = 0;
  problem_->set_tau(tau);
  problem_->append_paths(paths, paths_assembled_, cell_grid_c_, a_coeff,
                         b_coeff, ds);
  paths_assembled_ = paths.size();

  // A seed does not need answer-grade accuracy: loosen the tolerances an
  // order of magnitude and bound the stall window, keeping the warm/polish
  // machinery of the fine settings (the coarse state warm-starts across
  // probes exactly like the fine one).
  qp::QpSettings cs = fine_settings;
  cs.eps_abs *= 10.0;
  cs.eps_rel *= 10.0;
  cs.early_polish = true;
  cs.stall_window = 150;
  // Bound the coarse-side spend: a coarse solve that has not converged by
  // here is almost always a coarse-infeasible boundary probe, and the
  // reject path costs only what was already burned.
  cs.max_iterations = std::min(cs.max_iterations, 500);
  const qp::QpSolution sol =
      qp::QpSolver(cs).solve_incremental(problem_->problem(), state_);
  *admm_iterations = sol.iterations;

  la::Vec x_c = sol.x;
  la::Vec y_c = sol.y;
  if (g_fault_mg_diverge.should_fire())
    for (double& v : x_c) v = std::numeric_limits<double>::quiet_NaN();
  // The coarse feasible set restricts the fine one, so a boundary tau can
  // be coarse-infeasible (or stall short of tolerance) while perfectly
  // solvable on the fine grid: reject the seed and let the fine solve run
  // from its own iterate.
  if (sol.status != qp::QpStatus::kSolved || !all_finite(x_c) ||
      !all_finite(y_c))
    return false;

  const std::size_t layers = width_ ? 2 : 1;
  const std::size_t m_fine =
      layers * (n_fine_ + pairs_fine_) + paths.size();
  if (x_c.size() != layers * n_coarse_ ||
      y_c.size() != layers * (n_coarse_ + pairs_coarse_) + paths.size())
    return false;

  // Prolongation: piecewise-constant primal; duals split block-wise (range
  // rows over the block population, smoothness rows over the fine pairs
  // sharing the coarse pair, oriented by the stored sign), path rows 1:1.
  x_fine->assign(layers * n_fine_, 0.0);
  for (std::size_t layer = 0; layer < layers; ++layer)
    for (std::size_t g = 0; g < n_fine_; ++g)
      (*x_fine)[layer * n_fine_ + g] =
          x_c[layer * n_coarse_ + grid_map_[g]];

  y_fine->assign(m_fine, 0.0);
  for (std::size_t layer = 0; layer < layers; ++layer)
    for (std::size_t g = 0; g < n_fine_; ++g) {
      const std::size_t gc = grid_map_[g];
      (*y_fine)[layer * n_fine_ + g] =
          y_c[layer * n_coarse_ + gc] / block_count_[gc];
    }
  const std::size_t smooth_f = layers * n_fine_;
  const std::size_t smooth_c = layers * n_coarse_;
  for (std::size_t layer = 0; layer < layers; ++layer)
    for (std::size_t k = 0; k < pairs_fine_; ++k) {
      if (pair_map_[k] < 0) continue;
      const auto kc = static_cast<std::size_t>(pair_map_[k]);
      (*y_fine)[smooth_f + layer * pairs_fine_ + k] =
          pair_sign_[k] * y_c[smooth_c + layer * pairs_coarse_ + kc] /
          pair_mult_[kc];
    }
  const std::size_t path_f = layers * (n_fine_ + pairs_fine_);
  const std::size_t path_c = layers * (n_coarse_ + pairs_coarse_);
  for (std::size_t p = 0; p < paths.size(); ++p)
    (*y_fine)[path_f + p] = y_c[path_c + p];
  return true;
}

}  // namespace doseopt::dmopt
