// Multigrid warm start for the dose-map QP (the coarse-grid companion of
// the incremental cutting-plane problem).
//
// The dose field is smooth by construction (eq. (4) bounds every neighbor
// difference), so its low-frequency content carries almost all of the
// solution.  A 2x-coarsened grid -- fine grid (i, j) binned into coarse
// grid (i/2, j/2) -- restricts the whole program exactly: range rows map
// block-wise, smoothness rows collapse onto the surviving coarse neighbor
// pairs, and every accumulated path cut re-bins through the coarse
// cell->grid map with the same canonical row assembly the fine problem
// uses.  Solving that coarse QP (at ~1/4 the variables and a fraction of
// the nonzeros) and prolonging its primal and dual onto the fine layout
// gives the fine ADMM iteration a seed near the new optimum -- worth
// hundreds of iterations on a cold-ish solve or a large tau retarget,
// where the cached iterate from the previous bound is far from useful.
//
// The seed is advisory only: when the coarse solve fails (the coarse
// feasible set is a strict subset of the fine one, so near-boundary tau
// probes can be coarse-infeasible while fine-feasible) the fine solve
// proceeds from whatever iterate it already had -- bit-identical to
// running with multigrid disabled.  The qp.mg_diverge fault point poisons
// the coarse solution to exercise exactly that reject path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dmopt/incremental_problem.h"
#include "qp/qp_solver.h"

namespace doseopt::dmopt {

/// Coarse-grid companion of one fine cutting-plane problem.  Owns the
/// coarse IncrementalProblem and its QP warm state, so successive seeds
/// across bisection probes reuse every coarse row and the coarse scaling
/// exactly like the fine loop reuses its own.
class MultigridHierarchy {
 public:
  /// Builds the coarse geometry, the restriction maps, and the coarse
  /// static rows.  `fine_p_diag`/`fine_q` are the fine leakage objective
  /// (re-binned into coarse blocks); `fine_cell_grid` the fine cell->grid
  /// binning.  `factor` is the per-dimension coarsening (coarse dims are
  /// ceil(M/factor) x ceil(N/factor)).
  MultigridHierarchy(std::size_t fine_rows, std::size_t fine_cols, bool width,
                     double dose_lower_pct, double dose_upper_pct,
                     double smoothness_delta, const la::Vec& fine_p_diag,
                     const la::Vec& fine_q,
                     const std::vector<std::size_t>& fine_cell_grid,
                     std::size_t factor = 2);

  /// False when coarsening bought nothing (1x1 fine grid): seeding would
  /// just re-solve the fine problem.
  bool useful() const { return n_coarse_ < n_fine_; }

  std::size_t coarse_grid_count() const { return n_coarse_; }

  /// Sync the coarse problem to `paths`/`tau`, solve it warm-started from
  /// the persistent coarse state (loosened tolerances -- it is a seed, not
  /// an answer), and prolong the coarse primal/dual onto the fine layout
  /// into `x_fine`/`y_fine` (resized; y covers static rows plus one row
  /// per path).  Returns false -- leaving `x_fine`/`y_fine` untouched --
  /// when the coarse solution is unusable (infeasible, unconverged, or
  /// poisoned by qp.mg_diverge); `admm_iterations` reports the coarse
  /// iteration count either way.
  bool seed(const std::vector<PathConstraint>& paths,
            const std::vector<double>& a_coeff,
            const std::vector<double>& b_coeff, double ds, double tau,
            const qp::QpSettings& fine_settings, la::Vec* x_fine,
            la::Vec* y_fine, int* admm_iterations);

 private:
  std::size_t n_fine_ = 0, n_coarse_ = 0;
  std::size_t pairs_fine_ = 0, pairs_coarse_ = 0;
  bool width_ = false;

  std::vector<std::size_t> grid_map_;     ///< fine grid -> coarse grid
  std::vector<double> block_count_;       ///< fine grids per coarse grid
  std::vector<std::size_t> cell_grid_c_;  ///< cell -> coarse grid
  /// Per fine neighbor pair: index of the coarse pair it collapses onto
  /// (-1 for intra-block pairs, which have no coarse counterpart), the
  /// orientation sign relative to the stored coarse pair, and -- per
  /// coarse pair -- how many fine pairs share it (the dual is split
  /// evenly across them on prolongation).
  std::vector<std::ptrdiff_t> pair_map_;
  std::vector<double> pair_sign_;
  std::vector<double> pair_mult_;

  std::unique_ptr<IncrementalProblem> problem_;
  qp::QpWarmState state_;
  std::size_t paths_assembled_ = 0;
};

}  // namespace doseopt::dmopt
