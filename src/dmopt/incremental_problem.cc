#include "dmopt/incremental_problem.h"

#include <algorithm>

#include "common/error.h"

namespace doseopt::dmopt {

IncrementalProblem::IncrementalProblem(
    std::size_t n_grids, bool width,
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    double dose_lower_pct, double dose_upper_pct, double smoothness_delta,
    la::Vec p_diag, la::Vec q)
    : n_grids_(n_grids), width_(width) {
  const std::size_t layers = width ? 2 : 1;
  const std::size_t n = layers * n_grids;
  DOSEOPT_CHECK(p_diag.size() == n && q.size() == n,
                "IncrementalProblem: objective size mismatch");
  problem_.p_diag = std::move(p_diag);
  problem_.q = std::move(q);

  static_rows_ = layers * n_grids + layers * pairs.size();
  la::TripletMatrix triplets(static_rows_, n);
  problem_.lower.resize(static_rows_);
  problem_.upper.resize(static_rows_);
  std::size_t row = 0;

  // Correction range (eq. (3)/(8)).
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::size_t base = layer * n_grids;
    for (std::size_t g = 0; g < n_grids; ++g) {
      triplets.add(row, base + g, 1.0);
      problem_.lower[row] = dose_lower_pct;
      problem_.upper[row] = dose_upper_pct;
      ++row;
    }
  }
  // Smoothness (eq. (4)/(9)).
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::size_t base = layer * n_grids;
    for (const auto& [ga, gb] : pairs) {
      triplets.add(row, base + ga, 1.0);
      triplets.add(row, base + gb, -1.0);
      problem_.lower[row] = -smoothness_delta;
      problem_.upper[row] = smoothness_delta;
      ++row;
    }
  }
  DOSEOPT_CHECK(row == static_rows_,
                "IncrementalProblem: static row count mismatch");
  problem_.a = la::CsrMatrix(triplets);
}

void IncrementalProblem::append_paths(
    const std::vector<PathConstraint>& paths, std::size_t first,
    const std::vector<std::size_t>& cell_grid,
    const std::vector<double>& a_coeff, const std::vector<double>& b_coeff,
    double ds) {
  if (first >= paths.size()) return;

  std::vector<la::CsrMatrix::Row> batch;
  batch.reserve(paths.size() - first);
  la::CsrMatrix::Row entries;
  for (std::size_t pi = first; pi < paths.size(); ++pi) {
    const PathConstraint& pc = paths[pi];
    entries.clear();
    for (const netlist::CellId c : pc.cells) {
      const auto g = static_cast<std::uint32_t>(cell_grid[c]);
      entries.emplace_back(g, a_coeff[c] * ds);
      if (width_ && b_coeff[c] != 0.0)
        entries.emplace_back(static_cast<std::uint32_t>(n_grids_ + g),
                             b_coeff[c] * ds);
    }
    // Canonical row: stable sort keeps same-grid terms in path order, so
    // the duplicate merge sums them in a mode-independent order.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    la::CsrMatrix::Row merged;
    for (const auto& [v, coef] : entries) {
      if (!merged.empty() && merged.back().first == v) {
        merged.back().second += coef;
      } else {
        merged.emplace_back(v, coef);
      }
    }
    batch.push_back(std::move(merged));

    problem_.lower.push_back(-qp::kInfinity);
    problem_.upper.push_back(tau_ - pc.base_ns);
    path_base_.push_back(pc.base_ns);
  }
  problem_.a.append_rows(batch);
}

void IncrementalProblem::set_tau(double tau) {
  tau_ = tau;
  for (std::size_t p = 0; p < path_base_.size(); ++p)
    problem_.upper[static_rows_ + p] = tau - path_base_[p];
}

}  // namespace doseopt::dmopt
