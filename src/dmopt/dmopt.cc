#include "dmopt/dmopt.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "faultinject/fault.h"
#include "power/leakage.h"
#include "ssta/ssta.h"
#include "variation/yield.h"

namespace doseopt::dmopt {

using netlist::CellId;
using netlist::kNoCell;
using netlist::NetId;

namespace {
constexpr double kDs = liberty::kDoseSensitivityNmPerPct;
// A path counts as violated if its model delay exceeds tau by this much.
constexpr double kPathTolNs = 2e-4;
}  // namespace

DoseMapOptimizer::DoseMapOptimizer(
    const netlist::Netlist* nl, const place::Placement* placement,
    const extract::Parasitics* parasitics, liberty::LibraryRepository* repo,
    const liberty::CoefficientSet* coeffs, const sta::Timer* timer,
    const sta::TimingResult* nominal_timing, DmoptOptions options)
    : nl_(nl), placement_(placement), parasitics_(parasitics), repo_(repo),
      coeffs_(coeffs), timer_(timer), nominal_timing_(nominal_timing),
      options_(options),
      poly_template_(placement->die().width_um, placement->die().height_um,
                     options.grid_um) {
  DOSEOPT_CHECK(nl_ && placement_ && parasitics_ && repo_ && coeffs_ &&
                    timer_ && nominal_timing_,
                "DoseMapOptimizer: null dependency");
  DOSEOPT_CHECK(nominal_timing_->cells.size() == nl_->cell_count(),
                "DoseMapOptimizer: timing result mismatch");
  DOSEOPT_CHECK(!options_.modulate_width || coeffs_->width_fitted(),
                "DoseMapOptimizer: width modulation requires width-fitted "
                "coefficients");
  DOSEOPT_CHECK(options_.dose_lower_pct <= options_.dose_upper_pct,
                "DoseMapOptimizer: crossed dose bounds");

  cell_grid_ = dose::bin_cells(poly_template_, *placement_);

  const liberty::Library& nominal = repo_->nominal();
  // Per-cell fitted delay coefficients at the analyzed slew/load point
  // ("nearest entry, or entries with interpolation" -- we interpolate).
  cell_a_coeff_.resize(nl_->cell_count());
  cell_b_coeff_.assign(nl_->cell_count(), 0.0);
  for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
    const sta::CellTiming& ct = nominal_timing_->cells[c];
    const std::size_t master = nl_->cell(static_cast<CellId>(c)).master_index;
    cell_a_coeff_[c] = coeffs_->a_length(master, ct.input_slew_ns, ct.load_ff);
    if (options_.modulate_width)
      cell_b_coeff_[c] =
          coeffs_->b_width(master, ct.input_slew_ns, ct.load_ff);
  }

  // Timing edges (eq. (5)): the dose-independent delay contribution of each
  // (fanin -> cell) pair.
  for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci) {
    const auto c = static_cast<CellId>(ci);
    const netlist::Cell& cell = nl_->cell(c);
    const double gate_delay = nominal_timing_->cells[ci].gate_delay_ns;
    const double pin_cap = nominal.cell(cell.master_index).input_cap_ff;

    if (cell.sequential) {
      // Launch edge: a_c >= clk->Q(c).
      edges_.push_back({c, kNoCell, gate_delay});
      // Capture endpoints: a_driver + wire + setup <= T.
      const double setup = nl_->master_of(c).setup_ns;
      std::vector<NetId> seen;
      for (NetId n : cell.input_nets) {
        if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
        seen.push_back(n);
        const CellId drv = nl_->net(n).driver;
        if (drv == kNoCell) continue;
        endpoint_edges_.push_back(
            {kNoCell, drv, parasitics_->wire_delay_ns(n, pin_cap) + setup});
      }
      continue;
    }

    std::vector<NetId> seen;
    for (NetId n : cell.input_nets) {
      if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
      seen.push_back(n);
      const CellId drv = nl_->net(n).driver;
      edges_.push_back(
          {c, drv, gate_delay + parasitics_->wire_delay_ns(n, pin_cap)});
    }
  }
  for (NetId n : nl_->primary_outputs()) {
    const CellId drv = nl_->net(n).driver;
    if (drv == kNoCell) continue;
    endpoint_edges_.push_back(
        {kNoCell, drv,
         parasitics_->wire_delay_ns(n, timer_->options().output_load_ff)});
  }
  endpoint_base_by_cell_.assign(nl_->cell_count(), 0.0);
  for (const CellTimingEdgeData& e : endpoint_edges_)
    endpoint_base_by_cell_[e.from] =
        std::max(endpoint_base_by_cell_[e.from], e.base_delay_ns);

  // Nominal golden leakage, the reference for delta-leakage budgets.
  {
    sta::VariantAssignment nominal_va(nl_->cell_count());
    nominal_leakage_uw_ = power::total_leakage_uw(*nl_, *repo_, nominal_va);
  }

  // Incoming-edge adjacency and topological order, reused by every model
  // timing pass.
  topo_order_ = nl_->topological_order();
  incoming_.assign(nl_->cell_count(), {});
  for (std::size_t e = 0; e < edges_.size(); ++e)
    incoming_[edges_[e].to].push_back(e);
}

double DoseMapOptimizer::cell_delay_delta(std::size_t cell,
                                          const la::Vec& poly,
                                          const la::Vec& active) const {
  const std::size_t g = cell_grid_[cell];
  double delta = cell_a_coeff_[cell] * kDs * poly[g];
  if (options_.modulate_width) delta += cell_b_coeff_[cell] * kDs * active[g];
  return delta;
}

void DoseMapOptimizer::model_arrivals(const la::Vec& poly,
                                      const la::Vec& active,
                                      la::Vec& arrival) const {
  arrival.assign(nl_->cell_count(), 0.0);
  for (CellId c : topo_order_) {
    double a = 0.0;
    const double delta = cell_delay_delta(c, poly, active);
    for (std::size_t ei : incoming_[c]) {
      const CellTimingEdgeData& e = edges_[ei];
      const double from_a = e.from == kNoCell ? 0.0 : arrival[e.from];
      a = std::max(a, from_a + e.base_delay_ns + delta);
    }
    arrival[c] = a;
  }
}

double DoseMapOptimizer::model_mct(const la::Vec& poly,
                                   const la::Vec& active) const {
  la::Vec arrival;
  model_arrivals(poly, active, arrival);
  double mct = 0.0;
  for (const CellTimingEdgeData& e : endpoint_edges_)
    mct = std::max(mct, arrival[e.from] + e.base_delay_ns);
  return mct;
}

double DoseMapOptimizer::model_mct_uniform(double dose_poly_pct,
                                           double dose_active_pct) const {
  la::Vec poly(poly_template_.grid_count(), dose_poly_pct);
  la::Vec active(poly_template_.grid_count(), dose_active_pct);
  return model_mct(poly, active);
}

std::vector<PathConstraint> DoseMapOptimizer::extract_violated_paths(
    const la::Vec& poly, const la::Vec& active, double tau,
    std::size_t max_paths) const {
  la::Vec arrival;
  model_arrivals(poly, active, arrival);

  // Best-first backward enumeration over the model graph; identical scheme
  // to sta::Timer::top_paths but with fitted linear delays.
  struct Partial {
    double bound;
    CellId cell;
    std::int32_t parent;
    bool complete;
  };
  std::vector<Partial> arena;
  using QEntry = std::pair<double, std::size_t>;
  std::priority_queue<QEntry> queue;
  auto push = [&](double bound, CellId cell, std::int32_t parent,
                  bool complete) {
    arena.push_back({bound, cell, parent, complete});
    queue.emplace(bound, arena.size() - 1);
  };
  for (const CellTimingEdgeData& e : endpoint_edges_) {
    const double bound = arrival[e.from] + e.base_delay_ns;
    if (bound > tau + kPathTolNs) push(bound, e.from, -1, false);
  }

  std::vector<PathConstraint> out;
  while (out.size() < max_paths && !queue.empty()) {
    const auto [bound, idx] = queue.top();
    queue.pop();
    if (bound <= tau + kPathTolNs) break;
    const Partial part = arena[idx];
    const netlist::Cell& cell = nl_->cell(part.cell);

    if (part.complete || cell.sequential) {
      // Complete path: unwind the chain.  The arena root is the endpoint
      // driver, so the unwound order is launch side first.
      PathConstraint pc;
      for (std::int32_t i = static_cast<std::int32_t>(idx); i >= 0;
           i = arena[static_cast<std::size_t>(i)].parent)
        pc.cells.push_back(arena[static_cast<std::size_t>(i)].cell);
      out.push_back(std::move(pc));
      continue;
    }

    const double suffix = bound - arrival[part.cell];
    const double delta = cell_delay_delta(part.cell, poly, active);
    double best_launch = -1e30;
    for (std::size_t ei : incoming_[part.cell]) {
      const CellTimingEdgeData& e = edges_[ei];
      const double stage = e.base_delay_ns + delta + suffix;
      if (e.from == kNoCell) {
        best_launch = std::max(best_launch, stage);
      } else {
        const double nb = arrival[e.from] + stage;
        if (nb > tau + kPathTolNs)
          push(nb, e.from, static_cast<std::int32_t>(idx), false);
      }
    }
    if (best_launch > tau + kPathTolNs)
      push(best_launch, part.cell, part.parent, true);
  }
  return out;
}

namespace {

/// Dose-space variable layout: poly grid doses first, then (optionally)
/// active grid doses.
struct VarLayout {
  std::size_t n_grids = 0;
  bool width = false;
  std::size_t poly(std::size_t g) const { return g; }
  std::size_t active(std::size_t g) const { return n_grids + g; }
  std::size_t count() const { return width ? 2 * n_grids : n_grids; }
};

}  // namespace

std::unique_ptr<IncrementalProblem> DoseMapOptimizer::make_problem() const {
  VarLayout vars{poly_template_.grid_count(), options_.modulate_width};
  const std::size_t n = vars.count();

  la::Vec p_diag(n, 0.0), q(n, 0.0);
  for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
    const liberty::LeakageCoeffs& lc = coeffs_->leakage_coeffs(
        nl_->cell(static_cast<CellId>(c)).master_index);
    const std::size_t g = cell_grid_[c];
    p_diag[vars.poly(g)] += 2.0 * lc.alpha_nw_per_nm2 * kDs * kDs;
    q[vars.poly(g)] += lc.beta_nw_per_nm * kDs;
    if (options_.modulate_width)
      q[vars.active(g)] += lc.gamma_nw_per_nm * kDs;
  }

  // Path rows appended later are the projection of the arrival-time system
  // (eq. (5)/(6)) onto the dose variables: sum over path cells of
  // (A_c Ds dP(g) + B_c Ds dA(g)) <= tau - base(path).
  return std::make_unique<IncrementalProblem>(
      vars.n_grids, options_.modulate_width, poly_template_.neighbor_pairs(),
      options_.dose_lower_pct, options_.dose_upper_pct,
      options_.smoothness_delta, std::move(p_diag), std::move(q));
}

double DoseMapOptimizer::path_base_delay(const PathConstraint& pc) const {
  // Base delay of a path: launch edge + internal edges + endpoint edge.
  // pc.cells runs launch side first; the edge between consecutive cells k
  // and k+1 goes *into* cells[k+1] from cells[k].  Parallel edges between
  // the same pair take the worst (max) base, which matches the model
  // arrival computation.
  DOSEOPT_CHECK(!pc.cells.empty(), "path_base_delay: empty path");
  double base = 0.0;
  const CellId launch = pc.cells.front();
  double launch_base = -1e30;
  for (std::size_t ei : incoming_[launch]) {
    if (edges_[ei].from == kNoCell)
      launch_base = std::max(launch_base, edges_[ei].base_delay_ns);
  }
  if (launch_base > -1e30) base += launch_base;
  for (std::size_t k = 0; k + 1 < pc.cells.size(); ++k) {
    const CellId from = pc.cells[k];
    const CellId to = pc.cells[k + 1];
    double best = -1e30;
    for (std::size_t ei : incoming_[to]) {
      if (edges_[ei].from == from)
        best = std::max(best, edges_[ei].base_delay_ns);
    }
    DOSEOPT_CHECK(best > -1e30, "path_base_delay: broken chain");
    base += best;
  }
  base += endpoint_base_by_cell_[pc.cells.back()];
  return base;
}

void DoseMapOptimizer::maybe_multigrid_seed(
    double tau, WorkingSet& ws, const qp::QpSettings& fine_settings,
    CutTelemetry& telemetry) {
  const double prev_tau = ws.last_tau;
  ws.last_tau = tau;
  if (!options_.multigrid || !options_.incremental ||
      !fine_settings.warm_start)
    return;
  // Nothing to coarsen before any cut exists: the cut-free QP is already a
  // few hundred trivially-conditioned static rows.
  if (!ws.problem || ws.paths_assembled == 0) return;
  // The seed pays off exactly where the cached fine iterate does not: a
  // fresh/reset QP state, or a tau retarget large enough (>= 5% of the
  // bound) that the previous optimum's active cuts are the wrong ones.
  // Small retargets are the late bisection probes hugging the feasibility
  // frontier -- there the coarse problem (a strict restriction of the fine
  // feasible set) is usually infeasible and the attempt is a guaranteed
  // reject, while the carried fine iterate is already the best seed.
  const bool fresh = ws.qp_state.rows_cached == 0;
  const bool retarget =
      !std::isnan(prev_tau) &&
      std::abs(tau - prev_tau) >= std::max(5e-3, 0.05 * std::abs(tau));
  if (!fresh && !retarget) return;

  if (!ws.mg) {
    ws.mg = std::make_unique<MultigridHierarchy>(
        poly_template_.rows(), poly_template_.cols(),
        options_.modulate_width, options_.dose_lower_pct,
        options_.dose_upper_pct, options_.smoothness_delta,
        ws.problem->problem().p_diag, ws.problem->problem().q, cell_grid_);
  }
  if (!ws.mg->useful()) return;

  const auto t0 = std::chrono::steady_clock::now();
  int coarse_iters = 0;
  const bool seeded =
      ws.mg->seed(ws.paths, cell_a_coeff_, cell_b_coeff_, kDs, tau,
                  fine_settings, &ws.qp_state.x, &ws.qp_state.y,
                  &coarse_iters);
  telemetry.mg_admm_iterations += coarse_iters;
  telemetry.mg_solve_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (seeded)
    ++telemetry.mg_seeds;
  else
    ++telemetry.mg_rejects;
}

DoseMapOptimizer::WorkingSet DoseMapOptimizer::clone_working_set(
    const WorkingSet& ws, double parent_tau) const {
  WorkingSet c;
  c.paths = ws.paths;
  c.seen = ws.seen;
  if (ws.problem) c.problem = std::make_unique<IncrementalProblem>(*ws.problem);
  c.paths_assembled = ws.paths_assembled;
  c.qp_state = ws.qp_state;
  // No multigrid companion: speculative probes are only launched at
  // retarget distances below the multigrid trigger, so the hierarchy can
  // never be consulted on the clone (and the true set keeps the warm one).
  c.last_tau = parent_tau;
  return c;
}

DoseMapOptimizer::SolveOutcome DoseMapOptimizer::solve_leakage_qp(
    double tau, WorkingSet& working_set, CutTelemetry& telemetry) {
  using Clock = std::chrono::steady_clock;
  auto elapsed_ns = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  VarLayout vars{poly_template_.grid_count(), options_.modulate_width};
  SolveOutcome outcome;
  outcome.poly.assign(vars.n_grids, 0.0);
  outcome.active.assign(vars.n_grids, 0.0);

  qp::QpSettings settings = options_.qp_settings;
  settings.warm_start = settings.warm_start && options_.incremental;
  if (settings.warm_start) {
    // The incremental package: exit through the active-set polish as soon
    // as a stable/plateau set passes KKT, and stop burning iterations on
    // near-infeasible probes once the residuals flatline.  The cold A/B
    // reference keeps the historical polish-at-termination semantics.
    settings.early_polish = true;
    if (settings.stall_window == 0) settings.stall_window = 250;
    settings.check_interval = 20;
  }
  qp::QpSolver solver(settings);

  auto path_hash = [](const PathConstraint& pc) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const CellId c : pc.cells) {
      h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };

  constexpr int kMaxRounds = 40;
  constexpr std::size_t kBatch = 300;
  for (int round = 0; round < kMaxRounds; ++round) {
    CutRound tele;
    tele.tau_ns = tau;
    tele.round = round;

    const auto ta0 = Clock::now();
    if (options_.incremental) {
      // Static rows persist; only fresh cuts are appended, and a tau
      // retarget touches only the path-row uppers.
      if (!working_set.problem) working_set.problem = make_problem();
      working_set.problem->set_tau(tau);
      working_set.problem->append_paths(working_set.paths,
                                        working_set.paths_assembled,
                                        cell_grid_, cell_a_coeff_,
                                        cell_b_coeff_, kDs);
    } else {
      // Historical A/B reference: full rebuild every round.  Same canonical
      // assembly routine, so the matrix is bit-identical to the incremental
      // path's.
      working_set.problem = make_problem();
      working_set.problem->set_tau(tau);
      working_set.problem->append_paths(working_set.paths, 0, cell_grid_,
                                        cell_a_coeff_, cell_b_coeff_, kDs);
    }
    working_set.paths_assembled = working_set.paths.size();
    const auto ta1 = Clock::now();
    tele.assembly_ns = elapsed_ns(ta0, ta1);
    tele.working_set = working_set.paths.size();

    // Multigrid warm start (round 0 only: later rounds extend the same tau
    // with a few hundred cuts, where the previous fine iterate is already
    // the best seed available).  Timed separately as telemetry mg_solve_ns.
    if (round == 0)
      maybe_multigrid_seed(tau, working_set, settings, telemetry);
    const auto ts0 = Clock::now();

    const qp::QpSolution sol = solver.solve_incremental(
        working_set.problem->problem(), working_set.qp_state);
    if (sol.cold_fallback) ++telemetry.qp_cold_fallbacks;
    if (sol.mixed_precision) ++telemetry.qp_mixed_solves;
    if (sol.mixed_fallback) ++telemetry.qp_mixed_fallbacks;
    telemetry.mixed_cg_iterations += sol.mixed_cg_iterations;
    const auto ta2 = Clock::now();
    tele.solve_ns = elapsed_ns(ts0, ta2);
    tele.admm_iterations = sol.iterations;
    outcome.status = sol.status;
    outcome.qp_iterations += sol.iterations;
    if (sol.status == qp::QpStatus::kPrimalInfeasible) {
      telemetry.add(tele);
      break;
    }

    for (std::size_t g = 0; g < vars.n_grids; ++g) {
      outcome.poly[g] = std::clamp(sol.x[vars.poly(g)],
                                   options_.dose_lower_pct,
                                   options_.dose_upper_pct);
      outcome.active[g] =
          options_.modulate_width
              ? std::clamp(sol.x[vars.active(g)], options_.dose_lower_pct,
                           options_.dose_upper_pct)
              : 0.0;
    }

    std::vector<PathConstraint> fresh =
        extract_violated_paths(outcome.poly, outcome.active, tau, kBatch);
    tele.extract_ns = elapsed_ns(ta2, Clock::now());
    if (fresh.empty()) {
      telemetry.add(tele);
      outcome.feasible = true;
      break;
    }
    std::size_t added = 0;
    for (PathConstraint& pc : fresh) {
      const std::uint64_t h = path_hash(pc);
      if (!working_set.seen.insert(h).second) continue;
      pc.base_ns = path_base_delay(pc);
      working_set.paths.push_back(std::move(pc));
      ++added;
    }
    tele.fresh_cuts = added;
    telemetry.add(tele);
    if (added == 0) {
      // No new cuts: remaining violations are at solver-tolerance level.
      outcome.feasible =
          model_mct(outcome.poly, outcome.active) <= tau + 10 * kPathTolNs;
      break;
    }
  }

  outcome.objective_nw = 0.0;
  for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
    const liberty::LeakageCoeffs& lc = coeffs_->leakage_coeffs(
        nl_->cell(static_cast<CellId>(c)).master_index);
    const std::size_t g = cell_grid_[c];
    outcome.objective_nw += lc.delta_leak_nw(
        kDs * outcome.poly[g],
        options_.modulate_width ? kDs * outcome.active[g] : 0.0);
  }
  return outcome;
}

sta::VariantAssignment DoseMapOptimizer::snap_variants(
    const SolveOutcome& outcome) const {
  sta::VariantAssignment variants(nl_->cell_count());
  for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
    const std::size_t g = cell_grid_[c];
    variants.set(
        static_cast<CellId>(c), liberty::dose_to_variant_index(outcome.poly[g]),
        liberty::dose_to_variant_index(
            options_.modulate_width ? outcome.active[g] : 0.0));
  }
  return variants;
}

void DoseMapOptimizer::golden_eval(const SolveOutcome& outcome,
                                   double* mct_ns, double* leakage_uw) const {
  // Successive golden-correction probes snap to nearly identical variant
  // assignments (only cells in grids whose snapped dose moved differ), so
  // re-timing incrementally off the persistent state touches a small cone.
  // Parasitics never change under dose-only optimization.
  const sta::VariantAssignment variants = snap_variants(outcome);
  *mct_ns = timer_->update(golden_state_, variants).mct_ns;
  *leakage_uw = power::total_leakage_uw(*nl_, *repo_, variants);
}

namespace {

faultinject::FaultPoint g_fault_qcp_infeasible("dmopt.qcp_infeasible");

/// Repair solver-tolerance-level violations of the smoothness bound by
/// pulling violated neighbor pairs toward each other (projection sweeps).
/// The adjustments are at the solver's residual scale (<< one dose step),
/// so optimality is unaffected while the recipe becomes exactly
/// equipment-feasible.
void repair_smoothness(la::Vec& dose,
                       const std::vector<std::pair<std::size_t, std::size_t>>&
                           pairs,
                       double lo, double hi, double delta) {
  for (int sweep = 0; sweep < 200; ++sweep) {
    double worst = 0.0;
    for (const auto& [a, b] : pairs) {
      const double diff = dose[a] - dose[b];
      const double excess = std::abs(diff) - delta;
      if (excess > 0.0) {
        const double shift = 0.5 * excess * (diff > 0 ? 1.0 : -1.0);
        dose[a] = std::clamp(dose[a] - shift, lo, hi);
        dose[b] = std::clamp(dose[b] + shift, lo, hi);
        worst = std::max(worst, excess);
      }
    }
    if (worst <= 1e-9) break;
  }
}

}  // namespace

DmoptResult DoseMapOptimizer::finalize(const SolveOutcome& outcome,
                                       int probes) const {
  DmoptResult result;
  result.solver_status = outcome.status;
  result.total_qp_iterations = outcome.qp_iterations;
  result.bisection_probes = probes;

  const auto pairs = poly_template_.neighbor_pairs();
  la::Vec poly = outcome.poly;
  la::Vec active = outcome.active;
  repair_smoothness(poly, pairs, options_.dose_lower_pct,
                    options_.dose_upper_pct, options_.smoothness_delta);
  result.poly_map = poly_template_;
  result.poly_map.set_doses(poly);
  if (options_.modulate_width) {
    repair_smoothness(active, pairs, options_.dose_lower_pct,
                      options_.dose_upper_pct, options_.smoothness_delta);
    result.active_map = poly_template_;
    result.active_map->set_doses(active);
  }

  result.model_delta_leakage_uw = outcome.objective_nw * 1e-3;
  result.model_mct_ns = model_mct(poly, active);

  // Snap to characterized variants and run golden signoff.
  SolveOutcome repaired = outcome;
  repaired.poly = poly;
  repaired.active = active;
  result.variants = snap_variants(repaired);
  const sta::TimingResult& golden = timer_->update(golden_state_,
                                                   result.variants);
  result.golden_mct_ns = golden.mct_ns;
  result.golden_leakage_uw =
      power::total_leakage_uw(*nl_, *repo_, result.variants);
  return result;
}

DmoptResult DoseMapOptimizer::minimize_leakage(double timing_bound_ns) {
  if (options_.yield_target > 0.0)
    return minimize_leakage_yield(timing_bound_ns);
  const auto t0 = std::chrono::steady_clock::now();
  const double tau_target = timing_bound_ns > 0.0
                                ? timing_bound_ns
                                : nominal_timing_->mct_ns;
  WorkingSet working_set;
  telemetry_ = CutTelemetry();

  // Golden-corrected outer loop: the fitted linear delay model ignores slew
  // propagation and load coupling (as the paper's does), so the model bound
  // is tightened by the observed golden-signoff gap until the golden MCT
  // meets the target.
  double tau_model = std::min(tau_target, model_mct_uniform(0.0, 0.0));
  const double tau_floor =
      model_mct_uniform(options_.dose_upper_pct,
                        options_.modulate_width ? options_.dose_lower_pct
                                                : 0.0);
  SolveOutcome outcome;
  int probes = 0;
  const double tol_ns = std::max(5e-4, 0.001 * tau_target);
  for (int it = 0; it < 8; ++it) {
    outcome = solve_leakage_qp(tau_model, working_set);
    ++probes;
    double golden_mct = 0.0, golden_leak = 0.0;
    golden_eval(outcome, &golden_mct, &golden_leak);
    const double gap = golden_mct - tau_target;
    if (gap > tol_ns && tau_model > tau_floor) {
      tau_model = std::max(tau_floor, tau_model - gap);
    } else if (gap < -2.0 * tol_ns && tau_model < tau_target) {
      // Overshot: recover leakage headroom by relaxing the model bound.
      tau_model = std::min(tau_target, tau_model - 0.6 * gap);
    } else {
      break;
    }
  }

  DmoptResult result = finalize(outcome, probes);
  result.telemetry = telemetry_;
  result.runtime_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return result;
}

DmoptResult DoseMapOptimizer::minimize_leakage_yield(double timing_bound_ns) {
  const auto t0 = std::chrono::steady_clock::now();
  const double tau_target = timing_bound_ns > 0.0
                                ? timing_bound_ns
                                : nominal_timing_->mct_ns;
  const double p = options_.yield_target;
  DOSEOPT_CHECK(p > 0.0 && p < 1.0,
                "minimize_leakage_yield: yield_target must be in (0, 1)");
  WorkingSet working_set;
  telemetry_ = CutTelemetry();

  // The analytic yield engine and the golden MC verifier share one
  // variation model (same systematic sources, same per-cell sigma), which
  // is the whole point: SSTA steers the loop, MC has the final word.
  ssta::SstaTimer ssta_timer(timer_, placement_, coeffs_,
                             options_.yield_variation);

  // Cutting-plane loop as in the mean-targeted path, but the golden-
  // correction gap is the ANALYTIC p-quantile of the MCT distribution vs
  // tau_target, so the dose recipe tightens until the distribution -- not
  // just its mean -- fits under the bound.
  double tau_model = std::min(tau_target, model_mct_uniform(0.0, 0.0));
  const double tau_floor =
      model_mct_uniform(options_.dose_upper_pct,
                        options_.modulate_width ? options_.dose_lower_pct
                                                : 0.0);
  SolveOutcome outcome;
  int probes = 0;
  const double tol_ns = std::max(5e-4, 0.001 * tau_target);
  for (int it = 0; it < 8; ++it) {
    outcome = solve_leakage_qp(tau_model, working_set);
    ++probes;
    const ssta::SstaResult sr = ssta_timer.analyze(snap_variants(outcome));
    double gap;
    if (sr.healthy) {
      gap = sr.tau_at_yield(p) - tau_target;
    } else {
      // Poisoned forms (fault injection): steer on the golden mean this
      // round; the MC verification below still enforces the target.
      double golden_mct = 0.0, golden_leak = 0.0;
      golden_eval(outcome, &golden_mct, &golden_leak);
      gap = golden_mct - tau_target;
    }
    if (gap > tol_ns && tau_model > tau_floor) {
      tau_model = std::max(tau_floor, tau_model - gap);
    } else if (gap < -2.0 * tol_ns && tau_model < tau_target) {
      tau_model = std::min(tau_target, tau_model - 0.6 * gap);
    } else {
      break;
    }
  }

  // Golden MC verification with tightening rollbacks: when the sampled
  // yield misses the target, retighten the model bound by the empirical
  // p-quantile overshoot and re-solve (bounded; every re-solve reuses the
  // warm working set).
  variation::YieldAnalyzer verifier(nl_, placement_, repo_, timer_,
                                    options_.yield_variation);
  DmoptResult result;
  int rollbacks = 0;
  for (;;) {
    result = finalize(outcome, probes);
    ssta::SstaResult sr = ssta_timer.analyze(result.variants);
    if (!sr.healthy) sr = ssta_timer.analyze(result.variants);  // once-faults
    const variation::YieldResult mc = verifier.analyze(result.variants);
    result.yield_target = p;
    result.yield_tau_ns = tau_target;
    result.mc_yield = mc.yield_at(tau_target);
    result.ssta_yield =
        sr.healthy ? sr.yield_at(tau_target) : result.mc_yield;
    result.yield_rollbacks = rollbacks;
    if (result.mc_yield >= p || rollbacks >= 3 || tau_model <= tau_floor)
      break;

    std::vector<double> mcts;
    mcts.reserve(mc.dies.size());
    for (const variation::DieSample& d : mc.dies) mcts.push_back(d.mct_ns);
    std::sort(mcts.begin(), mcts.end());
    const std::size_t n = mcts.size();
    const std::size_t k = std::min(
        n, std::max<std::size_t>(
               1, static_cast<std::size_t>(
                      std::ceil(p * static_cast<double>(n)))));
    double gap = mcts[k - 1] - tau_target;  // empirical p-quantile overshoot
    if (!(gap > tol_ns)) gap = tol_ns;      // sampling noise: still tighten
    tau_model = std::max(tau_floor, tau_model - gap);
    outcome = solve_leakage_qp(tau_model, working_set);
    ++probes;
    ++rollbacks;
  }
  if (result.mc_yield < p) {
    result.degraded = true;
    result.fallback = "yield_target_missed";
  }

  result.telemetry = telemetry_;
  result.runtime_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return result;
}

DmoptResult DoseMapOptimizer::minimize_cycle_time(double leakage_budget_uw) {
  const auto t0 = std::chrono::steady_clock::now();

  double tau_hi = model_mct_uniform(0.0, 0.0);
  double tau_lo = model_mct_uniform(options_.dose_upper_pct,
                                    options_.modulate_width
                                        ? options_.dose_lower_pct
                                        : 0.0);
  DOSEOPT_CHECK(tau_lo <= tau_hi, "minimize_cycle_time: inverted bounds");

  // Feasibility of a probe is judged on *golden* leakage after variant
  // snapping, so the reported result always honors the budget.
  const double leak_budget_uw = nominal_leakage_uw_ + leakage_budget_uw;
  WorkingSet working_set;  // shared across probes
  telemetry_ = CutTelemetry();

  // The relaxed end of the bisection must itself be feasible *and* honor
  // the leakage budget, or no tau can: the QCP is infeasible as posed.
  // Instead of aborting, degrade to the QP formulation ("no timing
  // degradation, minimum leakage") and report the budget slack -- the
  // graceful ladder for a budget the design cannot meet.
  SolveOutcome best = solve_leakage_qp(tau_hi, working_set);
  bool tau_hi_ok = best.feasible && !g_fault_qcp_infeasible.should_fire();
  if (tau_hi_ok) {
    double golden_mct = 0.0, golden_leak = 0.0;
    golden_eval(best, &golden_mct, &golden_leak);
    tau_hi_ok = golden_leak <= leak_budget_uw + options_.leakage_tolerance_uw;
  }
  if (!tau_hi_ok) {
    DmoptResult result = minimize_leakage(0.0);
    result.degraded = true;
    result.fallback = "qcp_to_qp";
    result.leakage_slack_uw = result.golden_leakage_uw - leak_budget_uw;
    result.runtime_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    return result;
  }
  int probes = 1;
  int total_iters = best.qp_iterations;
  double feasible_tau = tau_hi;

  // Feasibility decision for one committed probe.  Golden signoff runs
  // here, on the calling thread, in commit order -- never on a lane -- so
  // the incremental golden-STA state walks the same trajectory whether
  // probes were solved speculatively or not.
  auto decide = [&](const SolveOutcome& probe) {
    bool ok = probe.feasible;
    if (ok) {
      double golden_mct = 0.0, golden_leak = 0.0;
      golden_eval(probe, &golden_mct, &golden_leak);
      ok = golden_leak <= leak_budget_uw + options_.leakage_tolerance_uw;
    }
    return ok;
  };
  auto commit = [&](double tau, const SolveOutcome& probe) {
    ++probes;
    total_iters += probe.qp_iterations;
    const bool ok = decide(probe);
    if (ok) {
      feasible_tau = tau;
      best = probe;
    } else {
      tau_lo = tau;
    }
    return ok;
  };

  const bool speculative =
      options_.speculation_depth >= 2 && options_.pool != nullptr &&
      options_.incremental && options_.qp_settings.warm_start;
  // Eagerness gate: speculate only while probes commit no fresh cuts (the
  // late-bisection regime, where a child solved from a pre-parent snapshot
  // is exactly the solve the sequential loop would run).  The predictor is
  // the previous committed probe; a miss only costs the wasted lanes.
  bool spec_predict = false;

  // A speculative child is eligible when the sequential loop would reach
  // it (interval still open) and its retarget distance from the parent
  // stays below the multigrid trigger, so the clone (which carries no
  // coarse hierarchy) cannot diverge from the true working set.
  auto child_eligible = [&](double lo, double hi, double parent_tau) {
    if (hi - lo < 1e-4) return false;
    const double tau = 0.5 * (lo + hi);
    return std::abs(tau - parent_tau) <
           std::max(5e-3, 0.05 * std::abs(tau));
  };

  for (int it = 0; it < options_.bisection_iterations; ++it) {
    if (feasible_tau - tau_lo < 1e-4) break;
    const double tau = 0.5 * (tau_lo + feasible_tau);

    if (!speculative || !spec_predict || it + 1 >= options_.bisection_iterations) {
      const std::size_t before = working_set.paths.size();
      SolveOutcome probe = solve_leakage_qp(tau, working_set);
      commit(tau, probe);
      spec_predict = working_set.paths.size() == before;
      continue;
    }

    // Speculation round: the root probe solves in place on the true
    // working set while the two possible successors solve on snapshots,
    // all on deterministic pool lanes (slot-isolated: node i writes only
    // its own working set, outcome, and telemetry sink).
    struct SpecNode {
      double tau = 0.0;
      WorkingSet* ws = nullptr;
      std::unique_ptr<WorkingSet> owned;
      std::size_t paths_before = 0;
      SolveOutcome out;
      CutTelemetry tele;
    };
    std::vector<SpecNode> nodes(3);
    nodes[0].tau = tau;
    nodes[0].ws = &working_set;
    int launched = 0;
    if (child_eligible(tau_lo, tau, tau)) {  // root feasible -> descend
      nodes[1].tau = 0.5 * (tau_lo + tau);
      nodes[1].owned =
          std::make_unique<WorkingSet>(clone_working_set(working_set, tau));
      nodes[1].ws = nodes[1].owned.get();
      ++launched;
    }
    if (child_eligible(tau, feasible_tau, tau)) {  // root infeasible
      nodes[2].tau = 0.5 * (tau + feasible_tau);
      nodes[2].owned =
          std::make_unique<WorkingSet>(clone_working_set(working_set, tau));
      nodes[2].ws = nodes[2].owned.get();
      ++launched;
    }
    telemetry_.speculative_launched += launched;

    options_.pool->parallel_for_lane(
        nodes.size(), [&](int /*lane*/, std::size_t i) {
          SpecNode& nd = nodes[i];
          if (nd.ws == nullptr) return;
          nd.paths_before = nd.ws->paths.size();
          nd.out = solve_leakage_qp(nd.tau, *nd.ws, nd.tele);
        });

    // Commit in sequential order: root first.
    telemetry_.merge(nodes[0].tele);
    const bool root_ok = commit(tau, nodes[0].out);
    const bool root_clean =
        working_set.paths.size() == nodes[0].paths_before;
    spec_predict = root_clean;

    SpecNode& taken = root_ok ? nodes[1] : nodes[2];
    SpecNode& other = root_ok ? nodes[2] : nodes[1];
    if (other.ws != nullptr && other.owned != nullptr) {
      ++telemetry_.speculative_wasted;
      telemetry_.speculative_wasted_ns += other.tele.solve_ns;
    }
    if (taken.ws == nullptr || taken.owned == nullptr) continue;
    if (!root_clean) {
      // Poisoned: the root committed cuts the snapshot never saw, so the
      // sequential loop would have solved a different problem.  Discard.
      ++telemetry_.speculative_wasted;
      telemetry_.speculative_wasted_ns += taken.tele.solve_ns;
      continue;
    }
    // Consume: the child solved exactly the probe the sequential loop
    // runs next.  Adopt its working set (carrying over the true set's
    // multigrid companion), commit its outcome, and account it as the
    // next bisection iteration.
    ++telemetry_.speculative_consumed;
    telemetry_.merge(taken.tele);
    taken.owned->mg = std::move(working_set.mg);
    working_set = std::move(*taken.owned);
    commit(taken.tau, taken.out);
    spec_predict = working_set.paths.size() == taken.paths_before;
    ++it;
  }

  DmoptResult result = finalize(best, probes);
  result.telemetry = telemetry_;
  result.total_qp_iterations = total_iters;
  result.runtime_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return result;
}

}  // namespace doseopt::dmopt
