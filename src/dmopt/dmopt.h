// Design-aware dose map optimization (DMopt) -- the paper's core
// contribution (Section III).
//
// Given a placed, timed design, partition the exposure field into an M x N
// grid and choose a per-grid dose delta on the poly layer (and optionally
// the active layer) to either
//
//   * QP:  minimize the change in total leakage power subject to a cycle-
//     time bound (linear timing constraints, quadratic objective), or
//   * QCP: minimize the cycle time subject to a leakage budget (solved as a
//     bisection over the cycle-time bound, each probe being one QP).
//
// Both respect the equipment constraints: per-grid dose correction range
// (eq. (3)/(8)) and neighbor smoothness (eq. (4)/(9)).
//
// Solver strategy: the paper writes the timing constraints with explicit
// per-node arrival-time variables (eq. (5)/(10)) and hands the program to
// CPLEX.  We solve the *projection of that system onto the dose variables*:
// the arrival constraints are equivalent to one linear constraint per
// launch-to-capture path, and violated path constraints are generated
// lazily (Kelley cutting planes) from fast model-timing passes.  The two
// formulations have identical optima; the dose-space form keeps the ADMM
// inner solver well conditioned independent of logic depth.
//
// After solving, per-grid doses are snapped to the characterized library
// variants (the paper's "rounding step"), the netlist's variant assignment
// is updated, and golden STA / leakage analysis evaluate the result.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "common/thread_pool.h"
#include "dmopt/incremental_problem.h"
#include "dmopt/multigrid.h"
#include "dose/dose_map.h"
#include "liberty/coeff_fit.h"
#include "qp/qp_solver.h"
#include "sta/timer.h"
#include "variation/yield.h"

namespace doseopt::dmopt {

/// Optimization controls.
struct DmoptOptions {
  double grid_um = 5.0;            ///< G: max grid side (um)
  double smoothness_delta = 2.0;   ///< delta: max neighbor dose difference (%)
  double dose_lower_pct = -5.0;    ///< L (eq. (3))
  double dose_upper_pct = 5.0;     ///< U (eq. (3))
  bool modulate_width = false;     ///< also optimize the active layer
  int bisection_iterations = 8;    ///< QCP: bisection steps on tau
  double leakage_tolerance_uw = 1e-3;  ///< QCP: budget slack when probing
  qp::QpSettings qp_settings;      ///< inner solver configuration
  /// Incremental cutting-plane solve path: static constraint rows built
  /// once, cut rows appended, QP scaling/dual warm-started across rounds
  /// and bisection probes.  false forces the historical per-round rebuild
  /// + cold solve (A/B reference); golden results are bit-identical either
  /// way (doses agree to solver tolerance and are snapped to characterized
  /// variants before signoff).
  bool incremental = true;
  /// Multigrid warm start: on cold-ish incremental solves and large tau
  /// retargets, solve a 2x-coarsened restriction of the QP first and
  /// prolong its primal/dual as the fine seed (src/dmopt/multigrid.h).
  /// Advisory only -- a rejected coarse solve leaves the fine iterate
  /// untouched, identical to running with this off.  Requires the
  /// incremental warm-started path; ignored on the cold A/B reference.
  bool multigrid = true;
  /// Speculative tau bisection (QCP only).  With depth >= 2 and a pool,
  /// each bisection step solves the next probe *and* both possible
  /// successors concurrently on deterministic lanes: the root probe runs
  /// in place on the true working set, the ok/not-ok children on snapshot
  /// copies.  Commit happens in fixed order on the calling thread (golden
  /// signoff stays sequential); a child is consumed only when its parent
  /// committed no fresh cuts -- then its snapshot is exactly the state the
  /// sequential loop would have solved from -- and is discarded (wasted)
  /// otherwise, so the feasibility frontier is bit-identical to the
  /// sequential loop at any lane count.  0 disables (default: speculation
  /// only pays off when spare cores exist, which the caller knows best).
  int speculation_depth = 0;
  /// Lanes for speculative probes (null disables speculation).  A 1-lane
  /// pool executes the tree serially in index order -- the determinism
  /// reference.
  ThreadPool* pool = nullptr;
  /// Yield-percentile constraint mode (0 = off).  When set in (0, 1),
  /// minimize_leakage constrains the SSTA tau_at_yield(yield_target) --
  /// not the nominal golden MCT -- at the timing bound: the cutting-plane
  /// loop retargets the model tau by the analytic yield gap, and the
  /// accepted recipe is verified against golden Monte-Carlo re-timing with
  /// up to three tightening rollbacks when the sampled yield misses the
  /// target (then flagged degraded, fallback = "yield_target_missed").
  double yield_target = 0.0;
  /// Variation model shared by the SSTA forms and the MC verifier.
  variation::VariationModel yield_variation;
};

/// Per-round counters of the cutting-plane loop (the structured
/// replacement for the old DOSEOPT_TRACE stderr dump).
struct CutRound {
  double tau_ns = 0.0;       ///< timing bound of this solve
  int round = 0;             ///< round index within the solve
  std::size_t working_set = 0;  ///< path rows in the QP this round
  std::size_t fresh_cuts = 0;   ///< newly added violated paths
  int admm_iterations = 0;
  std::uint64_t assembly_ns = 0;  ///< problem build/append + tau retarget
  std::uint64_t solve_ns = 0;     ///< ADMM solve
  std::uint64_t extract_ns = 0;   ///< violated-path extraction
};

/// Cutting-plane telemetry aggregated over every round and bisection
/// probe of one optimization run; surfaced through flow results and the
/// server metrics endpoint.
struct CutTelemetry {
  std::vector<CutRound> rounds;
  int total_rounds = 0;
  int total_admm_iterations = 0;
  std::size_t total_cuts = 0;
  std::uint64_t assembly_ns = 0;
  std::uint64_t solve_ns = 0;
  std::uint64_t extract_ns = 0;
  /// Warm incremental solves that failed acceptance (divergence / KKT
  /// rejection) and recovered through the cold re-solve ladder.
  int qp_cold_fallbacks = 0;
  /// Multigrid warm starts: coarse solves whose prolonged solution seeded
  /// the fine QP (mg_seeds) vs coarse solves rejected as unusable
  /// (mg_rejects: coarse-infeasible boundary probes or injected
  /// divergence), with the coarse-side iteration/time cost.
  int mg_seeds = 0;
  int mg_rejects = 0;
  int mg_admm_iterations = 0;
  std::uint64_t mg_solve_ns = 0;
  /// Mixed-precision ladder: solves whose x-updates ran the float32 fast
  /// path, solves that stalled/failed float64 KKT acceptance and re-ran
  /// pure double, and the float32 inner-CG iterations spent.
  int qp_mixed_solves = 0;
  int qp_mixed_fallbacks = 0;
  int mixed_cg_iterations = 0;
  /// Speculative bisection: child probes launched ahead of the parent's
  /// decision, those whose branch was taken and whose parent committed no
  /// fresh cuts (consumed), and the rest (wasted, with their solve time --
  /// overlapped on spare lanes, so not part of the critical path).
  int speculative_launched = 0;
  int speculative_consumed = 0;
  int speculative_wasted = 0;
  std::uint64_t speculative_wasted_ns = 0;

  void add(const CutRound& r) {
    rounds.push_back(r);
    ++total_rounds;
    total_admm_iterations += r.admm_iterations;
    total_cuts += r.fresh_cuts;
    assembly_ns += r.assembly_ns;
    solve_ns += r.solve_ns;
    extract_ns += r.extract_ns;
  }

  /// Fold another telemetry block in (speculative probes accumulate into
  /// per-node sinks that are merged at commit, in commit order).
  void merge(const CutTelemetry& t) {
    for (const CutRound& r : t.rounds) add(r);
    qp_cold_fallbacks += t.qp_cold_fallbacks;
    mg_seeds += t.mg_seeds;
    mg_rejects += t.mg_rejects;
    mg_admm_iterations += t.mg_admm_iterations;
    mg_solve_ns += t.mg_solve_ns;
    qp_mixed_solves += t.qp_mixed_solves;
    qp_mixed_fallbacks += t.qp_mixed_fallbacks;
    mixed_cg_iterations += t.mixed_cg_iterations;
    speculative_launched += t.speculative_launched;
    speculative_consumed += t.speculative_consumed;
    speculative_wasted += t.speculative_wasted;
    speculative_wasted_ns += t.speculative_wasted_ns;
  }
};

/// Result of one optimization run.
struct DmoptResult {
  dose::DoseMap poly_map;                    ///< optimized poly dose map
  std::optional<dose::DoseMap> active_map;   ///< present when width modulated

  // Fitted-model view (what the optimizer saw).
  double model_mct_ns = 0.0;
  double model_delta_leakage_uw = 0.0;

  // Golden signoff view after snapping doses to characterized variants.
  sta::VariantAssignment variants{0};
  double golden_mct_ns = 0.0;
  double golden_leakage_uw = 0.0;

  qp::QpStatus solver_status = qp::QpStatus::kMaxIterations;
  int total_qp_iterations = 0;
  int bisection_probes = 0;
  double runtime_s = 0.0;
  CutTelemetry telemetry;  ///< per-round cutting-plane counters

  /// Degraded-mode bookkeeping.  `degraded` marks a result produced by a
  /// fallback ladder rather than the requested formulation; `fallback`
  /// names the ladder ("qcp_to_qp"), and for that ladder
  /// `leakage_slack_uw` reports how far the fallback's golden leakage sits
  /// above the leakage budget the infeasible QCP asked for (<= 0 when the
  /// budget happens to be met anyway).
  bool degraded = false;
  std::string fallback;
  double leakage_slack_uw = 0.0;

  // Yield-percentile mode bookkeeping (meaningful when yield_target > 0).
  double yield_target = 0.0;   ///< requested percentile p
  double yield_tau_ns = 0.0;   ///< tau the yields below are evaluated at
  double ssta_yield = 0.0;     ///< analytic P(MCT <= tau) of the recipe
  double mc_yield = 0.0;       ///< golden Monte-Carlo yield of the recipe
  int yield_rollbacks = 0;     ///< MC-triggered tightening re-solves
};

/// One timing-graph edge with its dose-independent delay contribution
/// (nominal gate delay of `to` plus wire delay from `from` to `to`).
struct CellTimingEdgeData {
  netlist::CellId to;    ///< consuming cell (owns the gate delay)
  netlist::CellId from;  ///< driving cell, kNoCell for a PI / clock launch
  double base_delay_ns;
};

/// The optimizer: bound to one analyzed design.
class DoseMapOptimizer {
 public:
  /// `nominal_timing` must be an analyze() result at the all-nominal variant
  /// assignment; per-instance slews/loads from it select the fitted delay
  /// coefficients (Section IV-B).
  DoseMapOptimizer(const netlist::Netlist* nl,
                   const place::Placement* placement,
                   const extract::Parasitics* parasitics,
                   liberty::LibraryRepository* repo,
                   const liberty::CoefficientSet* coeffs,
                   const sta::Timer* timer,
                   const sta::TimingResult* nominal_timing,
                   DmoptOptions options);

  /// QP: minimize delta leakage subject to model MCT <= `timing_bound_ns`.
  /// Pass 0 to bound at the nominal MCT -- "no timing degradation".
  DmoptResult minimize_leakage(double timing_bound_ns = 0.0);

  /// QCP: minimize cycle time subject to delta leakage <=
  /// `leakage_budget_uw` (0 = no leakage increase, the paper's headline
  /// setting).
  DmoptResult minimize_cycle_time(double leakage_budget_uw = 0.0);

  /// Model MCT (longest path under fitted linear delays) for a uniform dose
  /// on the poly/active layers; used for bisection bounds and diagnostics.
  double model_mct_uniform(double dose_poly_pct, double dose_active_pct) const;

  const DmoptOptions& options() const { return options_; }
  std::size_t grid_count() const { return poly_template_.grid_count(); }

 private:
  /// Working set shared across cutting-plane rounds and bisection probes.
  /// Also carries the incremental assembly + QP warm state so the matrix,
  /// scaling, and dual survive tau retargets (the bisection reuses every
  /// row it has already paid for).
  struct WorkingSet {
    std::vector<PathConstraint> paths;
    std::unordered_set<std::uint64_t> seen;
    std::unique_ptr<IncrementalProblem> problem;
    std::size_t paths_assembled = 0;  ///< rows already appended to problem
    qp::QpWarmState qp_state;
    /// Coarse-grid companion (built lazily on the first eligible solve)
    /// and the last timing bound solved, for the retarget trigger.
    std::unique_ptr<MultigridHierarchy> mg;
    double last_tau = std::numeric_limits<double>::quiet_NaN();
  };

  /// One leakage-QP solve at a fixed timing bound.
  struct SolveOutcome {
    la::Vec poly;    ///< per-grid poly doses (%)
    la::Vec active;  ///< per-grid active doses (%); zero when not modulated
    double objective_nw = 0.0;  ///< model delta leakage
    bool feasible = false;      ///< all path constraints satisfied
    qp::QpStatus status = qp::QpStatus::kMaxIterations;
    int qp_iterations = 0;
  };

  double cell_delay_delta(std::size_t cell, const la::Vec& poly,
                          const la::Vec& active) const;
  void model_arrivals(const la::Vec& poly, const la::Vec& active,
                      la::Vec& arrival) const;
  double model_mct(const la::Vec& poly, const la::Vec& active) const;
  std::vector<PathConstraint> extract_violated_paths(const la::Vec& poly,
                                                     const la::Vec& active,
                                                     double tau,
                                                     std::size_t max_paths)
      const;
  double path_base_delay(const PathConstraint& pc) const;
  /// Fresh IncrementalProblem for the current configuration (static rows
  /// materialized, no path rows yet).
  std::unique_ptr<IncrementalProblem> make_problem() const;
  /// Multigrid warm start (round 0 of an eligible solve): when the QP
  /// state is fresh or tau moved far from the last solved bound, solve the
  /// coarse restriction and write the prolonged primal/dual into
  /// `working_set.qp_state` as the fine seed.  No-op unless
  /// options_.multigrid and the incremental warm path are active.
  void maybe_multigrid_seed(double tau, WorkingSet& working_set,
                            const qp::QpSettings& fine_settings,
                            CutTelemetry& telemetry);
  /// One cutting-plane solve, counters into `telemetry` (the member
  /// telemetry_ for sequential probes, a per-node sink for speculative
  /// ones -- solve_leakage_qp touches no other member state, which is what
  /// lets speculative probes run concurrently on snapshot working sets).
  SolveOutcome solve_leakage_qp(double tau, WorkingSet& working_set,
                                CutTelemetry& telemetry);
  SolveOutcome solve_leakage_qp(double tau, WorkingSet& working_set) {
    return solve_leakage_qp(tau, working_set, telemetry_);
  }
  /// Deep copy of a working set for a speculative child probe, as if its
  /// parent (at `parent_tau`) had just solved without committing cuts.
  WorkingSet clone_working_set(const WorkingSet& ws, double parent_tau) const;
  sta::VariantAssignment snap_variants(const SolveOutcome& outcome) const;
  void golden_eval(const SolveOutcome& outcome, double* mct_ns,
                   double* leakage_uw) const;
  DmoptResult finalize(const SolveOutcome& outcome, int probes) const;
  /// minimize_leakage with options_.yield_target > 0: SSTA-retargeted
  /// cutting-plane loop + golden MC verification/rollback.
  DmoptResult minimize_leakage_yield(double timing_bound_ns);

  const netlist::Netlist* nl_;
  const place::Placement* placement_;
  const extract::Parasitics* parasitics_;
  liberty::LibraryRepository* repo_;
  const liberty::CoefficientSet* coeffs_;
  const sta::Timer* timer_;
  const sta::TimingResult* nominal_timing_;
  DmoptOptions options_;
  /// Persistent incremental-STA state for golden_eval()/finalize() probes
  /// (mutable: caching only -- results are bit-identical to full analyze).
  mutable sta::TimingState golden_state_;

  double nominal_leakage_uw_ = 0.0;     ///< golden leakage at zero dose
  dose::DoseMap poly_template_;         ///< grid geometry (doses unset)
  std::vector<std::size_t> cell_grid_;  ///< flat grid index per cell
  std::vector<double> cell_a_coeff_;    ///< A_p (ns/nm) per cell
  std::vector<double> cell_b_coeff_;    ///< B_p (ns/nm) per cell
  std::vector<CellTimingEdgeData> edges_;
  std::vector<CellTimingEdgeData> endpoint_edges_;
  /// Worst endpoint-edge base delay per driving cell (0 when a cell drives
  /// no endpoint), indexed once at construction so path_base_delay avoids
  /// the O(paths x endpoint_edges) scan.
  std::vector<double> endpoint_base_by_cell_;
  std::vector<netlist::CellId> topo_order_;
  std::vector<std::vector<std::size_t>> incoming_;  ///< edge ids per cell
  CutTelemetry telemetry_;  ///< accumulated by solve_leakage_qp
};

}  // namespace doseopt::dmopt
