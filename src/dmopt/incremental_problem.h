// Append-only assembly of the cutting-plane QP (the inner problem of
// Section III).
//
// The constraint matrix of every cutting-plane round shares the same static
// prefix -- one dose-range row per grid per layer (eq. (3)/(8)) and one
// smoothness row per neighbor pair per layer (eq. (4)/(9)) -- followed by
// the accumulated path-constraint rows.  Rebuilding that matrix from
// triplets every round is the dominant assembly cost of the loop, and the
// 8-probe QCP bisection repeats it for every probe.
//
// IncrementalProblem materializes the static rows into CSR exactly once per
// (grid, layers) configuration, appends only the fresh path rows of each
// round (one batched CSR append, one transpose rebuild), and retargets the
// timing bound tau by rewriting only the path-row upper bounds -- the
// matrix structure is untouched, so the QP solver's cached scaling and
// warm-started dual stay valid across rounds *and* bisection probes.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "qp/qp_solver.h"

namespace doseopt::dmopt {

/// A lazily generated path constraint: the cells along one launch-to-
/// capture path and the path's dose-independent delay.
struct PathConstraint {
  std::vector<netlist::CellId> cells;  ///< launch side first
  double base_ns = 0.0;
};

class IncrementalProblem {
 public:
  /// Builds the static rows.  `pairs` are the grid neighbor pairs;
  /// `p_diag`/`q` the (fixed) leakage objective over the dose variables.
  /// Layout: poly grid doses first, then (when `width`) active grid doses.
  IncrementalProblem(
      std::size_t n_grids, bool width,
      const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
      double dose_lower_pct, double dose_upper_pct, double smoothness_delta,
      la::Vec p_diag, la::Vec q);

  /// Append the path rows for `paths[first..)`.  A path's row coefficient
  /// for grid g sums a_coeff[c]*ds over its cells in g (and b_coeff[c]*ds
  /// on the active layer when width-modulated); rows are canonicalized
  /// (sorted by variable, duplicates merged in path order) so incremental
  /// and from-scratch assembly produce bit-identical matrices.
  void append_paths(const std::vector<PathConstraint>& paths,
                    std::size_t first,
                    const std::vector<std::size_t>& cell_grid,
                    const std::vector<double>& a_coeff,
                    const std::vector<double>& b_coeff, double ds);

  /// Retarget the timing bound: rewrites only the path-row uppers
  /// (upper = tau - base_ns); lower stays -inf.
  void set_tau(double tau);

  const qp::QpProblem& problem() const { return problem_; }
  std::size_t static_rows() const { return static_rows_; }
  std::size_t path_count() const { return path_base_.size(); }

 private:
  qp::QpProblem problem_;
  std::size_t n_grids_;
  bool width_;
  std::size_t static_rows_ = 0;
  la::Vec path_base_;  ///< base_ns per path row, in row order
  double tau_ = 0.0;
};

}  // namespace doseopt::dmopt
