#include "qp/kkt_check.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::qp {

bool KktReport::passes(double tol) const {
  return stationarity <= tol && primal_violation <= tol &&
         complementarity <= tol && dual_sign_violation <= tol;
}

KktReport check_kkt(const QpProblem& problem, const la::Vec& x,
                    const la::Vec& y) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  DOSEOPT_CHECK(x.size() == n && y.size() == m, "check_kkt: size mismatch");

  KktReport report;

  la::Vec aty(n);
  problem.a.multiply_transpose(y, aty);
  for (std::size_t i = 0; i < n; ++i) {
    const double g = problem.p_diag[i] * x[i] + problem.q[i] + aty[i];
    report.stationarity = std::max(report.stationarity, std::abs(g));
  }

  la::Vec ax(m);
  problem.a.multiply(x, ax);
  for (std::size_t i = 0; i < m; ++i) {
    const double below = problem.lower[i] - ax[i];
    const double above = ax[i] - problem.upper[i];
    report.primal_violation =
        std::max({report.primal_violation, below, above, 0.0});

    // Multiplier sign: y_i > 0 only if the upper bound is active,
    // y_i < 0 only if the lower bound is active.
    if (y[i] > 0.0) {
      const double gap =
          problem.upper[i] >= kInfinity ? kInfinity : problem.upper[i] - ax[i];
      report.complementarity =
          std::max(report.complementarity, y[i] * std::max(gap, 0.0));
      if (gap >= kInfinity)
        report.dual_sign_violation =
            std::max(report.dual_sign_violation, y[i]);
    } else if (y[i] < 0.0) {
      const double gap =
          problem.lower[i] <= -kInfinity ? kInfinity
                                         : ax[i] - problem.lower[i];
      report.complementarity =
          std::max(report.complementarity, -y[i] * std::max(gap, 0.0));
      if (gap >= kInfinity)
        report.dual_sign_violation =
            std::max(report.dual_sign_violation, -y[i]);
    }
  }
  return report;
}

}  // namespace doseopt::qp
