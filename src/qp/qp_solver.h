// Convex quadratic program solver (the CPLEX substitute).
//
// Solves
//     minimize    (1/2) x' diag(p) x + q' x
//     subject to  l <= A x <= u
// with p >= 0 elementwise, by the operator-splitting (ADMM) method used by
// OSQP [Stellato et al.].  The linear system solved each iteration,
//     (diag(p) + sigma I + rho A'A) x = rhs,
// is handled matrix-free with Jacobi-preconditioned conjugate gradients, so
// no sparse factorization is required and problems with hundreds of
// thousands of constraints (arrival-time rows for ~100k-cell designs) stay
// tractable.
//
// The dose-map formulations of the paper fit this shape exactly: the delta-
// leakage objective is separable (diagonal quadratic), and dose-range,
// smoothness, and arrival-time constraints are sparse linear rows.  The QCP
// variants (linear objective, one convex quadratic constraint) are reduced
// to a monotone sequence of these QPs by bisection in src/dmopt.
#pragma once

#include <string>

#include "la/cg.h"
#include "la/dense.h"
#include "la/sparse.h"

namespace doseopt::qp {

/// Problem data: minimize 1/2 x'diag(p)x + q'x  s.t.  l <= Ax <= u.
struct QpProblem {
  la::Vec p_diag;      ///< n, non-negative
  la::Vec q;           ///< n
  la::CsrMatrix a;     ///< m x n
  la::Vec lower;       ///< m (-inf allowed as -kInfinity)
  la::Vec upper;       ///< m (+kInfinity allowed)

  std::size_t num_variables() const { return q.size(); }
  std::size_t num_constraints() const { return lower.size(); }

  /// Throws doseopt::Error if dimensions/bounds are inconsistent.
  void validate() const;

  /// Objective value at x.
  double objective(const la::Vec& x) const;
};

/// Bound value treated as infinite.
inline constexpr double kInfinity = 1e30;

/// Solver configuration.
struct QpSettings {
  int max_iterations = 4000;
  double eps_abs = 1e-5;
  double eps_rel = 1e-5;
  double rho = 0.1;          ///< initial ADMM penalty
  double sigma = 1e-6;       ///< proximal regularization
  double alpha = 1.6;        ///< over-relaxation in (0, 2)
  bool adaptive_rho = true;
  int rho_update_interval = 50;
  int cg_max_iterations = 200;
  double cg_tolerance = 1e-8;
  int check_interval = 10;   ///< termination-check cadence
  /// Stall exit: stop early (status kMaxIterations) when neither residual
  /// has improved by 1% for this many iterations -- the signature of a
  /// near-infeasible problem where the primal iterate has already reached
  /// its limit point and further iterations buy nothing.  0 (default)
  /// disables, keeping the historical run-to-max_iterations behavior.
  int stall_window = 0;
  /// Attempt the active-set polish *during* the iteration -- whenever the
  /// clamp-detected set is stable across consecutive checks or the
  /// residuals plateau -- and return the polished point as soon as one
  /// passes the same KKT acceptance the final polish uses, instead of
  /// waiting for the ADMM iterate itself to meet tolerance.  Near-
  /// degenerate problems
  /// (tau probes at the feasibility boundary) oscillate for hundreds of
  /// iterations while holding the optimal active set almost immediately;
  /// the early exit cuts those solves by 3-6x.  Off by default: the
  /// incremental cutting-plane path enables it, the historical cold path
  /// keeps polish-at-termination-only semantics.
  bool early_polish = false;
  /// Incremental solves (solve_incremental): reuse the cached Ruiz scaling,
  /// scaled matrix, dual iterate, and tuned rho across calls.  When false,
  /// every solve runs the historical cold path (full equilibration, zero
  /// dual) -- the A/B switch for the incremental cutting-plane path.
  bool warm_start = true;
  /// After ADMM terminates, re-solve the equality-constrained QP on the
  /// detected active set to near machine precision (OSQP-style polish).
  /// The polished solution is a deterministic function of (problem, active
  /// set) alone -- independent of the ADMM trajectory -- so warm- and
  /// cold-started solves that agree on the active set return bit-identical
  /// solutions.  Falls back to the ADMM iterate if the polished point fails
  /// the KKT tolerances (wrong active-set guess).
  bool polish = true;
  /// Mixed-precision fast path for the ADMM x-update: while the inexact
  /// inner-CG tolerance is certifiable in float32 (>= 1e-4, above the
  /// ~1e-7 relative residual noise of a float sweep), the rhs assembly,
  /// the CG iteration, and the A x~ product run through float32 shadows of
  /// the scaled matrix (reductions still accumulate in float64, so the
  /// kernels keep the fixed-chunk determinism contract).  Outer z/y
  /// updates, termination residuals, and the active-set polish stay full
  /// double.  Degradation ladder: a float CG that misses tolerance is
  /// refined by a double CG from the float iterate; repeated misses latch
  /// float off for the remainder of the solve (as does the tolerance
  /// ladder tightening past the floor), and a solution that fails the
  /// independent float64 KKT acceptance of qp/kkt_check re-solves
  /// pure-double from the same seeds -- bit-identical to running with
  /// mixed_precision = false.
  bool mixed_precision = false;
};

/// Solve outcome.
enum class QpStatus {
  kSolved,
  kMaxIterations,     ///< returned best iterate without meeting tolerances
  kPrimalInfeasible,  ///< infeasibility certificate detected
};

const char* to_string(QpStatus s);

/// Solution and solve diagnostics.
struct QpSolution {
  QpStatus status = QpStatus::kMaxIterations;
  la::Vec x;  ///< primal solution
  la::Vec y;  ///< dual solution (multipliers for l <= Ax <= u)
  la::Vec z;  ///< constraint values Ax at the solution
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  int iterations = 0;
  bool polished = false;  ///< active-set polish succeeded and was applied
  /// The warm incremental solve failed acceptance (non-finite iterate or
  /// rejected KKT residuals) and this solution came from the degraded-mode
  /// cold re-solve -- the historical warm_start=false path, bit-identical
  /// to running with warm starts disabled from the outset.
  bool cold_fallback = false;
  /// The float32 fast path carried at least one inner CG of this solve.
  bool mixed_precision = false;
  /// Internal stall marker from the ADMM loop: the mixed run burned its
  /// refinement budget (or the injected qp.mixed_precision_stall fired) and
  /// bailed out with an unusable iterate.  The public entry points never
  /// return a solution with this set -- they re-run pure double instead.
  bool mixed_stall = false;
  /// The mixed run stalled or failed the independent float64 KKT acceptance
  /// and this solution came from the pure-double re-run (bit-identical to a
  /// mixed_precision=false solve).
  bool mixed_fallback = false;
  int mixed_cg_iterations = 0;  ///< float32 inner-CG iterations spent
};

/// Reusable solver scratch: every vector the ADMM loop and its inner CG
/// touch per iteration, plus the float32 shadows of the mixed-precision
/// path.  Owned by QpWarmState so a sequence of incremental solves (and
/// every tau probe within a bisection) allocates these once instead of per
/// call; resize() is a no-op once capacity has peaked.
struct QpScratch {
  la::Vec p_s, q_s, l_s, u_s;              ///< scaled problem data
  la::Vec z, rhs, x_tilde, z_tilde;        ///< ADMM iterates
  la::Vec ax, aty, work_m, precond;        ///< residual/termination work
  la::Vec cg_scratch;                      ///< gram-product row scratch
  la::Vec seed_x, seed_y;                  ///< scaled entry iterates
  la::CgWorkspace cg_ws;                   ///< inner-CG vectors
  // Mixed-precision shadows (populated only when settings.mixed_precision).
  la::CsrMatrixF a_f;                      ///< float shadow of a_scaled
  std::size_t a_f_rows = 0, a_f_nnz = 0;   ///< which a_scaled a_f mirrors
  la::VecF ps_sigma_f, precond_f;          ///< float diag(P~ + sigma), precond
  la::VecF rhs_f, x_f, work_m_f, z_tilde_f, cg_scratch_f;
  la::CgWorkspaceF cg_ws_f;
};

/// Persistent state carried across a sequence of related solves over a
/// *growing* constraint set: the same variables, rows only ever appended,
/// bounds free to change between solves (the cutting-plane contract).
/// Caches the Ruiz scaling, the scaled constraint matrix and its Gram
/// diagonal (refreshed with warm-started refinement sweeps when rows are
/// appended), and the last primal and dual iterates (appended rows start
/// with a zero multiplier).
struct QpWarmState {
  la::Vec x;  ///< last primal solution (unscaled)
  la::Vec y;  ///< last dual solution (unscaled), one entry per cached row

  // Cached equilibration + scaled matrix (solve_incremental internals).
  la::Vec col_scale;        ///< e (n)
  la::Vec row_scale;        ///< d, grows with appended rows
  double cost_scale = 1.0;  ///< c
  /// Last solve's adaptively tuned penalty, for diagnostics only: re-entering
  /// the next solve with it measurably slows convergence (it is tuned for
  /// the previous active set), so every solve restarts from settings.rho.
  double rho = 0.0;
  la::CsrMatrix a_scaled;   ///< D A E for the cached rows
  la::Vec gram_diag;        ///< diag(A~' A~), extended on append
  std::size_t rows_cached = 0;
  std::size_t nnz_cached = 0;

  /// Solver scratch reused across every solve through this state (pure
  /// allocation cache -- carries no numerical state between solves).
  QpScratch scratch;

  /// Drop everything (next solve_incremental re-equilibrates from scratch).
  void reset() { *this = QpWarmState(); }
};

/// ADMM QP solver. Stateless between solves except via explicit warm starts.
class QpSolver {
 public:
  explicit QpSolver(QpSettings settings = {}) : settings_(settings) {}

  /// Solve from a cold start.
  QpSolution solve(const QpProblem& problem) const;

  /// Solve warm-started from a previous solution's (x, y).
  QpSolution solve(const QpProblem& problem, const la::Vec& x0,
                   const la::Vec& y0) const;

  /// Incremental solve: `problem` must extend the problem last seen by
  /// `state` by appending rows only (same variables and objective;
  /// bounds may change freely -- a tau retarget touches only `upper`).
  /// Persistent rows keep their dual multipliers, appended rows start at
  /// zero, and the cached Ruiz scaling is extended incrementally: appended
  /// rows are seeded with an exact one-sided row equilibration against the
  /// cached column scales, then a few full sweeps warm-started from the
  /// cached scaling refine the whole system (instead of the 10 cold-start
  /// sweeps).  With settings.warm_start == false (or a fresh/incompatible
  /// state) this degenerates to the historical cold path, carrying only
  /// the primal iterate.
  ///
  /// Degraded mode: when the warm-started solve produces a non-finite
  /// iterate (ADMM divergence) or fails KKT acceptance, the cached state
  /// is discarded and the solve falls back to the historical cold path
  /// automatically; the returned solution carries cold_fallback = true and
  /// is bit-identical to a warm_start=false run.
  QpSolution solve_incremental(const QpProblem& problem,
                               QpWarmState& state) const;

  const QpSettings& settings() const { return settings_; }

 private:
  QpSettings settings_;
};

}  // namespace doseopt::qp
