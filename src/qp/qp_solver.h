// Convex quadratic program solver (the CPLEX substitute).
//
// Solves
//     minimize    (1/2) x' diag(p) x + q' x
//     subject to  l <= A x <= u
// with p >= 0 elementwise, by the operator-splitting (ADMM) method used by
// OSQP [Stellato et al.].  The linear system solved each iteration,
//     (diag(p) + sigma I + rho A'A) x = rhs,
// is handled matrix-free with Jacobi-preconditioned conjugate gradients, so
// no sparse factorization is required and problems with hundreds of
// thousands of constraints (arrival-time rows for ~100k-cell designs) stay
// tractable.
//
// The dose-map formulations of the paper fit this shape exactly: the delta-
// leakage objective is separable (diagonal quadratic), and dose-range,
// smoothness, and arrival-time constraints are sparse linear rows.  The QCP
// variants (linear objective, one convex quadratic constraint) are reduced
// to a monotone sequence of these QPs by bisection in src/dmopt.
#pragma once

#include <string>

#include "la/dense.h"
#include "la/sparse.h"

namespace doseopt::qp {

/// Problem data: minimize 1/2 x'diag(p)x + q'x  s.t.  l <= Ax <= u.
struct QpProblem {
  la::Vec p_diag;      ///< n, non-negative
  la::Vec q;           ///< n
  la::CsrMatrix a;     ///< m x n
  la::Vec lower;       ///< m (-inf allowed as -kInfinity)
  la::Vec upper;       ///< m (+kInfinity allowed)

  std::size_t num_variables() const { return q.size(); }
  std::size_t num_constraints() const { return lower.size(); }

  /// Throws doseopt::Error if dimensions/bounds are inconsistent.
  void validate() const;

  /// Objective value at x.
  double objective(const la::Vec& x) const;
};

/// Bound value treated as infinite.
inline constexpr double kInfinity = 1e30;

/// Solver configuration.
struct QpSettings {
  int max_iterations = 4000;
  double eps_abs = 1e-5;
  double eps_rel = 1e-5;
  double rho = 0.1;          ///< initial ADMM penalty
  double sigma = 1e-6;       ///< proximal regularization
  double alpha = 1.6;        ///< over-relaxation in (0, 2)
  bool adaptive_rho = true;
  int rho_update_interval = 50;
  int cg_max_iterations = 200;
  double cg_tolerance = 1e-8;
  int check_interval = 10;   ///< termination-check cadence
};

/// Solve outcome.
enum class QpStatus {
  kSolved,
  kMaxIterations,     ///< returned best iterate without meeting tolerances
  kPrimalInfeasible,  ///< infeasibility certificate detected
};

const char* to_string(QpStatus s);

/// Solution and solve diagnostics.
struct QpSolution {
  QpStatus status = QpStatus::kMaxIterations;
  la::Vec x;  ///< primal solution
  la::Vec y;  ///< dual solution (multipliers for l <= Ax <= u)
  la::Vec z;  ///< constraint values Ax at the solution
  double objective = 0.0;
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  int iterations = 0;
};

/// ADMM QP solver. Stateless between solves except via explicit warm starts.
class QpSolver {
 public:
  explicit QpSolver(QpSettings settings = {}) : settings_(settings) {}

  /// Solve from a cold start.
  QpSolution solve(const QpProblem& problem) const;

  /// Solve warm-started from a previous solution's (x, y).
  QpSolution solve(const QpProblem& problem, const la::Vec& x0,
                   const la::Vec& y0) const;

  const QpSettings& settings() const { return settings_; }

 private:
  QpSettings settings_;
};

}  // namespace doseopt::qp
