#include "qp/qp_solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"
#include "faultinject/fault.h"
#include "la/cg.h"
#include "qp/kkt_check.h"

namespace doseopt::qp {

namespace {

faultinject::FaultPoint g_fault_admm_diverge("qp.admm_diverge");
faultinject::FaultPoint g_fault_kkt_reject("qp.kkt_reject");
faultinject::FaultPoint g_fault_mixed_stall("qp.mixed_precision_stall");

/// Acceptance gate for the warm incremental path: every component of the
/// returned iterate and its diagnostics must be finite.
bool solution_finite(const QpSolution& sol) {
  const auto vec_finite = [](const la::Vec& v) {
    for (const double a : v)
      if (!std::isfinite(a)) return false;
    return true;
  };
  return vec_finite(sol.x) && vec_finite(sol.y) && vec_finite(sol.z) &&
         std::isfinite(sol.objective) && std::isfinite(sol.primal_residual) &&
         std::isfinite(sol.dual_residual);
}

}  // namespace

void QpProblem::validate() const {
  const std::size_t n = q.size();
  const std::size_t m = lower.size();
  DOSEOPT_CHECK(p_diag.size() == n, "QpProblem: p_diag size mismatch");
  DOSEOPT_CHECK(a.cols() == n, "QpProblem: A column count mismatch");
  DOSEOPT_CHECK(a.rows() == m, "QpProblem: A row count mismatch");
  DOSEOPT_CHECK(upper.size() == m, "QpProblem: bound size mismatch");
  for (double p : p_diag)
    DOSEOPT_CHECK(p >= 0.0, "QpProblem: negative quadratic diagonal");
  for (std::size_t i = 0; i < m; ++i)
    DOSEOPT_CHECK(lower[i] <= upper[i], "QpProblem: crossed bounds");
}

double QpProblem::objective(const la::Vec& x) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    obj += 0.5 * p_diag[i] * x[i] * x[i] + q[i] * x[i];
  return obj;
}

const char* to_string(QpStatus s) {
  switch (s) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max_iterations";
    case QpStatus::kPrimalInfeasible:
      return "primal_infeasible";
  }
  return "unknown";
}

QpSolution QpSolver::solve(const QpProblem& problem) const {
  la::Vec x0(problem.num_variables(), 0.0);
  la::Vec y0(problem.num_constraints(), 0.0);
  return solve(problem, x0, y0);
}

namespace {

/// Ruiz equilibration of [P, A'; A, 0] plus cost normalization, as in OSQP.
/// Produces column scales e (n), row scales d (m), and cost scale c such
/// that the scaled problem P~ = c E P E, q~ = c E q, A~ = D A E is well
/// conditioned for ADMM.
struct Scaling {
  la::Vec e;  // n
  la::Vec d;  // m
  double c = 1.0;
};

Scaling ruiz_equilibrate(const QpProblem& problem, int iterations,
                         const Scaling* initial = nullptr) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Scaling s;
  if (initial != nullptr) {
    s = *initial;
  } else {
    s.e.assign(n, 1.0);
    s.d.assign(m, 1.0);
  }

  const auto& row_ptr = problem.a.row_ptr();
  const auto& col_idx = problem.a.col_idx();
  const auto& val = problem.a.values();

  la::Vec col_norm(n), row_norm(m);
  for (int it = 0; it < iterations; ++it) {
    std::fill(col_norm.begin(), col_norm.end(), 0.0);
    std::fill(row_norm.begin(), row_norm.end(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const double v = std::abs(val[k] * s.d[r] * s.e[col_idx[k]]);
        row_norm[r] = std::max(row_norm[r], v);
        col_norm[col_idx[k]] = std::max(col_norm[col_idx[k]], v);
      }
    }
    // Columns also see the (diagonal) quadratic block.
    for (std::size_t j = 0; j < n; ++j) {
      const double pv = std::abs(problem.p_diag[j]) * s.e[j] * s.e[j] * s.c;
      col_norm[j] = std::max(col_norm[j], pv);
    }
    for (std::size_t r = 0; r < m; ++r)
      if (row_norm[r] > 1e-12) s.d[r] /= std::sqrt(row_norm[r]);
    for (std::size_t j = 0; j < n; ++j)
      if (col_norm[j] > 1e-12) s.e[j] /= std::sqrt(col_norm[j]);

    // Cost scaling: normalize the scaled gradient magnitude.
    double g = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      g = std::max(g, std::abs(problem.p_diag[j]) * s.e[j] * s.e[j]);
      g = std::max(g, std::abs(problem.q[j]) * s.e[j]);
    }
    if (g > 1e-12) s.c = 1.0 / g;
  }
  return s;
}

/// One-sided extension of a cached equilibration: row scales for the
/// appended rows [row_begin, m) with the column scales held fixed,
/// d_r = 1 / sqrt(max_k |v * e_col|) -- exact row equilibration of the new
/// block against the cached e.
la::Vec extend_row_scales(const QpProblem& problem, std::size_t row_begin,
                          const la::Vec& e) {
  const std::size_t m = problem.num_constraints();
  const auto& row_ptr = problem.a.row_ptr();
  const auto& col_idx = problem.a.col_idx();
  const auto& val = problem.a.values();
  la::Vec d_tail(m - row_begin, 1.0);
  for (std::size_t r = row_begin; r < m; ++r) {
    double norm = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      norm = std::max(norm, std::abs(val[k] * e[col_idx[k]]));
    if (norm > 1e-12) d_tail[r - row_begin] = 1.0 / std::sqrt(norm);
  }
  return d_tail;
}

/// Active-set polish (OSQP Section 5.2 adapted to diagonal P): given the
/// rows the final ADMM iterate holds at a bound, solve
///     minimize    1/2 x'(P + delta I)x + q'x
///     subject to  A_act x = b_act
/// to near machine precision via the dual Schur complement
///     (A_act D^{-1} A_act' + delta_d I) lambda = A_act D^{-1}(-q) - b_act,
///     x = D^{-1}(-q - A_act' lambda),       D = P + delta I,
/// which is exact because P is diagonal.  CG starts from lambda = 0, so the
/// result depends only on (problem, active set) -- not on the ADMM
/// trajectory that produced the guess.  Warm- and cold-started solves that
/// agree on the active set therefore return bit-identical solutions.
/// Accepted only if the polished point passes the solver's own KKT
/// tolerances (a wrong active-set guess fails them and the ADMM iterate is
/// kept).
bool polish_solution(const QpSettings& s, const QpProblem& problem,
                     const std::vector<unsigned char>& at_lower,
                     const std::vector<unsigned char>& at_upper,
                     QpSolution& sol) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  const auto& row_ptr = problem.a.row_ptr();
  const auto& col_idx = problem.a.col_idx();
  const auto& val = problem.a.values();

  std::vector<std::uint32_t> act;
  la::Vec b_act;
  for (std::size_t i = 0; i < m; ++i) {
    if (at_lower[i]) {
      act.push_back(static_cast<std::uint32_t>(i));
      b_act.push_back(problem.lower[i]);
    } else if (at_upper[i]) {
      act.push_back(static_cast<std::uint32_t>(i));
      b_act.push_back(problem.upper[i]);
    }
  }
  const std::size_t ma = act.size();

  double p_max = 0.0;
  for (double p : problem.p_diag) p_max = std::max(p_max, p);
  const double delta = 1e-9 * std::max(p_max, 1.0);
  la::Vec dinv(n);
  for (std::size_t j = 0; j < n; ++j)
    dinv[j] = 1.0 / (problem.p_diag[j] + delta);

  la::Vec work_n(n);
  auto at_mul = [&](const la::Vec& lam, la::Vec& out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t a = 0; a < ma; ++a) {
      const std::size_t r = act[a];
      const double l = lam[a];
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        out[col_idx[k]] += val[k] * l;
    }
  };
  auto a_mul_act = [&](const la::Vec& v, la::Vec& out) {
    for (std::size_t a = 0; a < ma; ++a) {
      const std::size_t r = act[a];
      double sum = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        sum += val[k] * v[col_idx[k]];
      out[a] = sum;
    }
  };

  la::Vec lam(ma, 0.0);
  if (ma > 0) {
    la::Vec rhs(ma), precond(ma);
    for (std::size_t j = 0; j < n; ++j) work_n[j] = -problem.q[j] * dinv[j];
    a_mul_act(work_n, rhs);
    double s_diag_max = 0.0;
    for (std::size_t a = 0; a < ma; ++a) {
      rhs[a] -= b_act[a];
      const std::size_t r = act[a];
      double d = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        d += val[k] * val[k] * dinv[col_idx[k]];
      precond[a] = d;
      s_diag_max = std::max(s_diag_max, d);
    }
    const double delta_d = 1e-12 * std::max(s_diag_max, 1.0);
    for (std::size_t a = 0; a < ma; ++a) precond[a] += delta_d;

    auto schur_op = [&](const la::Vec& v, la::Vec& out) {
      at_mul(v, work_n);
      for (std::size_t j = 0; j < n; ++j) work_n[j] *= dinv[j];
      a_mul_act(work_n, out);
      for (std::size_t a = 0; a < ma; ++a) out[a] += delta_d * v[a];
    };
    la::CgOptions cg;
    cg.max_iterations = 1000;
    cg.tolerance = 1e-13;
    la::conjugate_gradient(schur_op, rhs, precond, lam, cg);
  }

  la::Vec x(n);
  at_mul(lam, work_n);
  for (std::size_t j = 0; j < n; ++j)
    x[j] = (-problem.q[j] - work_n[j]) * dinv[j];

  // KKT acceptance on the *unperturbed* problem, same tolerances as ADMM.
  la::Vec ax(m);
  problem.a.multiply(x, ax);
  double prim_res = 0.0, ax_norm = 0.0, b_norm = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double z = std::clamp(ax[i], problem.lower[i], problem.upper[i]);
    prim_res = std::max(prim_res, std::abs(ax[i] - z));
    ax_norm = std::max(ax_norm, std::abs(ax[i]));
    b_norm = std::max(b_norm, std::abs(z));
  }
  la::Vec y(m, 0.0);
  for (std::size_t a = 0; a < ma; ++a) y[act[a]] = lam[a];
  la::Vec aty(n);
  problem.a.multiply_transpose(y, aty);
  double dual_res = 0.0, px_norm = 0.0, aty_norm = 0.0, q_norm = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double px = problem.p_diag[j] * x[j];
    dual_res = std::max(dual_res, std::abs(px + problem.q[j] + aty[j]));
    px_norm = std::max(px_norm, std::abs(px));
    aty_norm = std::max(aty_norm, std::abs(aty[j]));
    q_norm = std::max(q_norm, std::abs(problem.q[j]));
  }
  const double eps_prim = s.eps_abs + s.eps_rel * std::max(ax_norm, b_norm);
  const double eps_dual =
      s.eps_abs + s.eps_rel * std::max({px_norm, aty_norm, q_norm});
  if (prim_res > eps_prim || dual_res > eps_dual) return false;

  sol.x = std::move(x);
  sol.y = std::move(y);
  sol.z.resize(m);
  for (std::size_t i = 0; i < m; ++i)
    sol.z[i] = std::clamp(ax[i], problem.lower[i], problem.upper[i]);
  sol.objective = problem.objective(sol.x);
  sol.primal_residual = prim_res;
  sol.dual_residual = dual_res;
  sol.status = QpStatus::kSolved;
  sol.polished = true;
  return true;
}

/// The ADMM iteration loop on pre-scaled data.  `x` and `y` enter in
/// *scaled* coordinates; the returned solution is unscaled.  `rho_io`
/// carries the penalty in and out (adaptive updates persist across
/// incremental solves).  `scratch` supplies every per-iteration vector;
/// with s.mixed_precision the loose-tolerance inner CGs run through its
/// float32 shadows, and a stalled float path returns immediately with
/// sol.mixed_stall set (iterate unusable -- the caller re-runs pure
/// double).
QpSolution run_admm(const QpSettings& s, const QpProblem& problem,
                    const Scaling& sc, const la::CsrMatrix& a_s,
                    const la::Vec& gram_diag, la::Vec& x, la::Vec& y,
                    double* rho_io, QpScratch& w) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  QpSolution sol;

  w.p_s.resize(n);
  w.q_s.resize(n);
  w.l_s.resize(m);
  w.u_s.resize(m);
  la::Vec& p_s = w.p_s;
  la::Vec& q_s = w.q_s;
  la::Vec& l_s = w.l_s;
  la::Vec& u_s = w.u_s;
  for (std::size_t j = 0; j < n; ++j) {
    p_s[j] = sc.c * sc.e[j] * sc.e[j] * problem.p_diag[j];
    q_s[j] = sc.c * sc.e[j] * problem.q[j];
  }
  for (std::size_t i = 0; i < m; ++i) {
    l_s[i] = problem.lower[i] <= -kInfinity ? -kInfinity
                                            : problem.lower[i] * sc.d[i];
    u_s[i] = problem.upper[i] >= kInfinity ? kInfinity
                                           : problem.upper[i] * sc.d[i];
  }

  double rho = *rho_io;

  la::Vec& z = w.z;
  a_s.multiply(x, z);
  for (std::size_t i = 0; i < m; ++i) z[i] = std::clamp(z[i], l_s[i], u_s[i]);

  w.rhs.resize(n);
  w.x_tilde.resize(n);
  w.precond.resize(n);
  la::Vec& rhs = w.rhs;
  la::Vec& x_tilde = w.x_tilde;
  la::Vec& z_tilde = w.z_tilde;
  la::Vec& ax = w.ax;
  la::Vec& aty = w.aty;
  la::Vec& cg_scratch = w.cg_scratch;
  la::Vec& precond = w.precond;
  la::Vec& work_m = w.work_m;
  cg_scratch.resize(m);
  work_m.resize(m);

  // Mixed-precision setup: refresh the float shadow of the scaled matrix
  // if it mirrors a different (rows, nnz) generation, and build the float
  // copies of the diagonal operators.  kMixedTolFloor gates the fast path
  // to tolerances float32 residuals can actually certify.
  const bool mixed = s.mixed_precision;
  // Float32 residuals carry ~1e-7 relative noise per sweep, so only CG
  // tolerances of 1e-4 and up can be *certified* in float -- exactly the
  // loose early phase of the inexact-ADMM schedule, which is where cold-ish
  // and retargeted solves burn most of their inner iterations.  Tighter
  // tolerances go straight to the double kernels.
  constexpr double kMixedTolFloor = 1e-4;
  constexpr int kMixedStallLimit = 8;
  int mixed_misses = 0;
  bool float_latched_off = false;
  if (mixed) {
    if (g_fault_mixed_stall.should_fire()) {
      sol.mixed_stall = true;
      *rho_io = rho;
      return sol;
    }
    if (w.a_f_rows != a_s.rows() || w.a_f_nnz != a_s.nnz()) {
      w.a_f.assign_from(a_s);
      w.a_f_rows = a_s.rows();
      w.a_f_nnz = a_s.nnz();
    }
    w.ps_sigma_f.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      w.ps_sigma_f[j] = static_cast<float>(p_s[j] + s.sigma);
    w.precond_f.resize(n);
    w.rhs_f.resize(n);
    w.x_f.resize(n);
    w.work_m_f.resize(m);
    w.z_tilde_f.resize(m);
    w.cg_scratch_f.resize(m);
  }

  auto build_precond = [&]() {
    for (std::size_t j = 0; j < n; ++j)
      precond[j] = p_s[j] + s.sigma + rho * gram_diag[j];
    if (mixed)
      for (std::size_t j = 0; j < n; ++j)
        w.precond_f[j] = static_cast<float>(precond[j]);
  };
  build_precond();

  auto kkt_op = [&](const la::Vec& v, la::Vec& out) {
    for (std::size_t j = 0; j < n; ++j) out[j] = (p_s[j] + s.sigma) * v[j];
    a_s.add_gram_product(rho, v, out, cg_scratch);
  };
  auto kkt_op_f = [&](const la::VecF& v, la::VecF& out) {
    out.resize(n);
    const float rho_f = static_cast<float>(rho);
    for (std::size_t j = 0; j < n; ++j) out[j] = w.ps_sigma_f[j] * v[j];
    w.a_f.add_gram_product(rho_f, v, out, w.cg_scratch_f);
  };

  bool polished_early = false;
  // Stall bookkeeping: best residuals seen so far and the last iteration
  // at which either improved by at least 1%.
  double best_prim = kInfinity, best_dual = kInfinity;
  int last_progress_iter = 0;
  // Active-set signature tracking for the early polish triggers.
  std::uint64_t set_hash = 0, tried_hash = 0;
  int stable_checks = 0;
  std::vector<unsigned char> at_lower(m, 0), at_upper(m, 0);
  la::CgOptions cg_opts;
  cg_opts.max_iterations = s.cg_max_iterations;
  // Inexact ADMM: the inner CG tolerance starts loose and tightens with the
  // outer residuals, which cuts the dominant per-iteration cost by an order
  // of magnitude on large dose-map problems without affecting the fixed
  // point (standard inexact-ADMM argument).
  double cg_tol = 1e-4;

  for (int iter = 1; iter <= s.max_iterations; ++iter) {
    // x update: (P + sigma I + rho A'A) x~ = sigma x - q + A'(rho z - y).
    cg_opts.tolerance = std::max(s.cg_tolerance, cg_tol);
    bool float_step = false;
    bool refine_guess = false;
    if (mixed && !float_latched_off && cg_opts.tolerance >= kMixedTolFloor) {
      // Float32 fast path: rhs assembly, CG, and A x~ through the shadows.
      for (std::size_t i = 0; i < m; ++i)
        w.work_m_f[i] = static_cast<float>(rho * z[i] - y[i]);
      w.a_f.multiply_transpose(w.work_m_f, w.rhs_f);
      for (std::size_t j = 0; j < n; ++j)
        w.rhs_f[j] += static_cast<float>(s.sigma * x[j] - q_s[j]);
      for (std::size_t j = 0; j < n; ++j)
        w.x_f[j] = static_cast<float>(x[j]);
      const la::CgResult fr = la::conjugate_gradient_f(
          kkt_op_f, w.rhs_f, w.precond_f, w.x_f, cg_opts, &w.cg_ws_f);
      sol.mixed_cg_iterations += fr.iterations;
      for (std::size_t j = 0; j < n; ++j) x_tilde[j] = w.x_f[j];
      if (fr.converged) {
        sol.mixed_precision = true;
        w.a_f.multiply(w.x_f, w.z_tilde_f);
        z_tilde.resize(m);
        for (std::size_t i = 0; i < m; ++i) z_tilde[i] = w.z_tilde_f[i];
        float_step = true;
      } else {
        // Refinement: the float residual bottomed out above tolerance; fall
        // through to a double CG warm-started from the float iterate (the
        // in-place recovery -- nothing solved so far is discarded).  Too
        // many of these and the fast path is a net loss: latch it off for
        // the remainder of this solve and run pure double from here on.
        refine_guess = true;
        if (++mixed_misses > kMixedStallLimit) float_latched_off = true;
      }
    }
    if (!float_step) {
      for (std::size_t i = 0; i < m; ++i) work_m[i] = rho * z[i] - y[i];
      a_s.multiply_transpose(work_m, rhs);
      for (std::size_t j = 0; j < n; ++j) rhs[j] += s.sigma * x[j] - q_s[j];
      if (!refine_guess) x_tilde = x;
      la::conjugate_gradient(kkt_op, rhs, precond, x_tilde, cg_opts,
                             &w.cg_ws);
      a_s.multiply(x_tilde, z_tilde);
    }

    // z and y updates with over-relaxation.
    for (std::size_t i = 0; i < m; ++i) {
      const double zr = s.alpha * z_tilde[i] + (1.0 - s.alpha) * z[i];
      const double z_new = std::clamp(zr + y[i] / rho, l_s[i], u_s[i]);
      y[i] += rho * (zr - z_new);
      z[i] = z_new;
    }
    for (std::size_t j = 0; j < n; ++j)
      x[j] = s.alpha * x_tilde[j] + (1.0 - s.alpha) * x[j];

    sol.iterations = iter;
    if (iter % s.check_interval != 0 && iter != s.max_iterations) continue;

    // --- termination on *unscaled* residuals ---
    a_s.multiply(x, ax);
    double prim_res = 0.0, ax_norm = 0.0, z_norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double inv_d = 1.0 / sc.d[i];
      prim_res = std::max(prim_res, std::abs(ax[i] - z[i]) * inv_d);
      ax_norm = std::max(ax_norm, std::abs(ax[i]) * inv_d);
      z_norm = std::max(z_norm, std::abs(z[i]) * inv_d);
    }
    a_s.multiply_transpose(y, aty);
    double dual_res = 0.0, px_norm = 0.0, aty_norm = 0.0, q_norm = 0.0;
    const double inv_c = 1.0 / sc.c;
    for (std::size_t j = 0; j < n; ++j) {
      const double scale = sc.e[j] * inv_c;
      const double px = p_s[j] * x[j];
      dual_res =
          std::max(dual_res, std::abs(px + q_s[j] + aty[j]) * scale);
      px_norm = std::max(px_norm, std::abs(px) * scale);
      aty_norm = std::max(aty_norm, std::abs(aty[j]) * scale);
      q_norm = std::max(q_norm, std::abs(q_s[j]) * scale);
    }

    const double eps_prim = s.eps_abs + s.eps_rel * std::max(ax_norm, z_norm);
    const double eps_dual =
        s.eps_abs + s.eps_rel * std::max({px_norm, aty_norm, q_norm});

    sol.primal_residual = prim_res;
    sol.dual_residual = dual_res;

    if (prim_res < 0.99 * best_prim) {
      best_prim = prim_res;
      last_progress_iter = iter;
    }
    if (dual_res < 0.99 * best_dual) {
      best_dual = dual_res;
      last_progress_iter = iter;
    }

    // Tighten the inner CG with outer progress (scaled-space residuals).
    {
      double sp = 0.0, sd = 0.0;
      for (std::size_t i = 0; i < m; ++i)
        sp = std::max(sp, std::abs(ax[i] - z[i]));
      for (std::size_t j = 0; j < n; ++j)
        sd = std::max(sd, std::abs(p_s[j] * x[j] + q_s[j] + aty[j]));
      cg_tol = std::clamp(0.1 * std::min(sp, sd), 1e-10, 1e-4);
    }

    // Clamp-detected active set of the current iterate (an active row holds
    // its scaled bound exactly after the z update), and its signature for
    // the early-polish triggers below.
    if (s.polish && s.early_polish) {
      std::uint64_t h = 1469598103934665603ull;
      for (std::size_t i = 0; i < m; ++i) {
        unsigned char tag = 0;
        if (l_s[i] > -kInfinity && z[i] == l_s[i]) tag = 1;
        else if (u_s[i] < kInfinity && z[i] == u_s[i]) tag = 2;
        at_lower[i] = tag == 1;
        at_upper[i] = tag == 2;
        h = (h ^ tag) * 1099511628211ull;
      }
      if (h == set_hash) {
        ++stable_checks;
      } else {
        set_hash = h;
        stable_checks = 1;
      }
    }

    if (prim_res <= eps_prim && dual_res <= eps_dual) {
      sol.status = QpStatus::kSolved;
      break;
    }

    // Primal infeasibility certificate on the scaled problem.
    const double y_norm = la::norm_inf(y);
    if (y_norm > 1e-10 && iter > 100) {
      if (la::norm_inf(aty) <= 1e-8 * y_norm) {
        double support = 0.0;
        bool bounded = true;
        for (std::size_t i = 0; i < m; ++i) {
          if (y[i] > 0.0) {
            if (u_s[i] >= kInfinity) { bounded = false; break; }
            support += u_s[i] * y[i];
          } else if (y[i] < 0.0) {
            if (l_s[i] <= -kInfinity) { bounded = false; break; }
            support += l_s[i] * y[i];
          }
        }
        if (bounded && support < -1e-8 * y_norm) {
          sol.status = QpStatus::kPrimalInfeasible;
          break;
        }
      }
    }

    // Early polish: exit through the active-set polish as soon as the
    // clamp-detected set is a plausible guess for the optimal one, rather
    // than waiting for the ADMM iterate itself to meet tolerance.  Two
    // triggers share the attempt budget:
    //  - the detected set has been stable for two consecutive checks and
    //    was not tried before (a warm-started solve sits on the optimal
    //    set within tens of iterations);
    //  - the residuals have gone 100 iterations without a 1% improvement
    //    (near-degenerate probes oscillate for hundreds of iterations
    //    while the set chatters around the optimal one -- retry whatever
    //    set the iterate currently holds every 100 stalled iterations);
    //  - every 100 iterations regardless of plateau, when the set moved
    //    since the last attempt (near-degenerate probes improve residuals
    //    just over 1% per window, so the plateau trigger never fires even
    //    though the chattering set visits the optimal one early).
    // An accepted polish is the same deterministic function of (problem,
    // active set) the final polish would produce, so exiting with it early
    // changes nothing but the runtime.
    const int plateau = iter - last_progress_iter;
    if (s.polish && s.early_polish) {
      const bool stable_new = stable_checks >= 2 && set_hash != tried_hash;
      const bool stalled =
          plateau >= 100 && plateau % 100 == 0 && set_hash != tried_hash;
      const bool periodic = iter % 100 == 0 && set_hash != tried_hash;
      if (stable_new || stalled || periodic) {
        tried_hash = set_hash;
        if (polish_solution(s, problem, at_lower, at_upper, sol)) {
          polished_early = true;
          break;
        }
      }
    }

    // Stall exit: on a near-infeasible problem the primal iterate converges
    // to its limit point within a few hundred iterations while the
    // residuals plateau at a positive value and the dual drifts along the
    // infeasibility ray -- the remaining iterations up to max_iterations
    // buy nothing (and the plateau polish above keeps failing, since no
    // feasible KKT point exists).  Once neither residual has improved by 1%
    // over a full window, return the current iterate as kMaxIterations:
    // the same status and essentially the same iterate the full-length run
    // would produce.
    if (s.stall_window > 0 && plateau >= s.stall_window) break;

    // Adaptive rho: balance scaled primal/dual residuals.
    if (s.adaptive_rho && iter % s.rho_update_interval == 0) {
      double sp = 0.0, sd = 0.0, saxn = 0.0, szn = 0.0, spxn = 0.0,
             satn = 0.0, sqn = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        sp = std::max(sp, std::abs(ax[i] - z[i]));
        saxn = std::max(saxn, std::abs(ax[i]));
        szn = std::max(szn, std::abs(z[i]));
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double px = p_s[j] * x[j];
        sd = std::max(sd, std::abs(px + q_s[j] + aty[j]));
        spxn = std::max(spxn, std::abs(px));
        satn = std::max(satn, std::abs(aty[j]));
        sqn = std::max(sqn, std::abs(q_s[j]));
      }
      const double scaled_prim = sp / std::max({saxn, szn, 1e-12});
      const double scaled_dual = sd / std::max({spxn, satn, sqn, 1e-12});
      const double ratio =
          std::sqrt(scaled_prim / std::max(scaled_dual, 1e-16));
      if (ratio > 5.0 || ratio < 0.2) {
        rho = std::clamp(rho * ratio, 1e-6, 1e6);
        build_precond();
      }
    }
  }

  *rho_io = rho;
  if (polished_early) return sol;

  // --- unscale the solution ---
  sol.x.resize(n);
  for (std::size_t j = 0; j < n; ++j) sol.x[j] = sc.e[j] * x[j];
  sol.y.resize(m);
  for (std::size_t i = 0; i < m; ++i) sol.y[i] = sc.d[i] * y[i] / sc.c;
  sol.z.resize(m);
  for (std::size_t i = 0; i < m; ++i) sol.z[i] = z[i] / sc.d[i];
  sol.objective = problem.objective(sol.x);

  if (s.polish && sol.status != QpStatus::kPrimalInfeasible) {
    // Active set from the final iterate: the z update clamps, so an active
    // row holds its scaled bound exactly.
    for (std::size_t i = 0; i < m; ++i) {
      at_lower[i] = l_s[i] > -kInfinity && z[i] == l_s[i];
      at_upper[i] = !at_lower[i] && u_s[i] < kInfinity && z[i] == u_s[i];
    }
    polish_solution(s, problem, at_lower, at_upper, sol);
  }
  return sol;
}

/// Independent float64 acceptance for mixed-precision solutions: recompute
/// the stationarity and primal-feasibility residuals of the returned
/// (x, y) from scratch in double (qp/kkt_check) and hold them to a
/// scale-aware tolerance -- these are exactly the two properties the ADMM
/// termination certifies, re-derived without any float32 intermediate, so
/// float noise in the trajectory cannot smuggle a corrupted solution past
/// them.  Complementarity/dual-sign are deliberately NOT gated here: an
/// unpolished ADMM exit holds nonzero duals on near-duplicate inactive
/// rows (pure-double exits included), while polished solutions already
/// passed the full double-precision KKT acceptance inside the polish.
/// Solutions the double path produced, infeasibility certificates, and
/// max-iteration exits (whose residuals sit above eps by construction,
/// mixed or not) pass through.
bool mixed_kkt_accept(const QpSettings& s, const QpProblem& problem,
                      const QpSolution& sol) {
  if (!sol.mixed_precision || sol.status != QpStatus::kSolved) return true;
  const std::size_t n = problem.num_variables();
  if (sol.x.size() != n || sol.y.size() != problem.num_constraints())
    return false;
  const KktReport kkt = check_kkt(problem, sol.x, sol.y);
  la::Vec aty(n);
  problem.a.multiply_transpose(sol.y, aty);
  double scale = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    scale = std::max(scale, std::abs(problem.p_diag[j] * sol.x[j]));
    scale = std::max(scale, std::abs(problem.q[j]));
    scale = std::max(scale, std::abs(aty[j]));
  }
  const double tol = 10.0 * (s.eps_abs + s.eps_rel * scale);
  return kkt.stationarity <= tol && kkt.primal_violation <= tol;
}

}  // namespace

QpSolution QpSolver::solve(const QpProblem& problem, const la::Vec& x0,
                           const la::Vec& y0) const {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  DOSEOPT_CHECK(x0.size() == n && y0.size() == m,
                "QpSolver: warm-start size mismatch");

  const Scaling sc = ruiz_equilibrate(problem, /*iterations=*/10);
  const la::CsrMatrix a_s = problem.a.scaled(sc.d, sc.e);
  const la::Vec gram_diag = a_s.gram_diagonal();

  QpScratch scratch;
  QpSettings active = settings_;
  la::Vec x(n), y(m);
  for (;;) {
    for (std::size_t j = 0; j < n; ++j) x[j] = x0[j] / sc.e[j];
    for (std::size_t i = 0; i < m; ++i) y[i] = sc.c * y0[i] / sc.d[i];
    double rho = active.rho;
    QpSolution sol = run_admm(active, problem, sc, a_s, gram_diag, x, y,
                              &rho, scratch);
    if (active.mixed_precision &&
        (sol.mixed_stall || !mixed_kkt_accept(active, problem, sol))) {
      // Mixed-precision degradation: re-run the whole solve pure double,
      // bit-identical to mixed_precision = false from the outset.
      active.mixed_precision = false;
      continue;
    }
    sol.mixed_fallback = active.mixed_precision != settings_.mixed_precision;
    return sol;
  }
}

QpSolution QpSolver::solve_incremental(const QpProblem& problem,
                                       QpWarmState& state) const {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();

  // Entry iterate, captured before any cache surgery: the degraded-mode
  // cold fallback must start from exactly what a warm_start=false run
  // would have seen.
  const la::Vec x_entry = state.x;

  if (!settings_.warm_start) {
    // Historical cold path: full equilibration, zero dual; only the primal
    // iterate carries over (the pre-incremental behavior of the cutting-
    // plane loop).  Mixed precision is a warm-path-only optimization, so
    // it is stripped here -- this branch stays bit-identical to the
    // pre-mixed-precision solver.
    QpSettings cold_s = settings_;
    cold_s.mixed_precision = false;
    la::Vec x0 = state.x.size() == n ? state.x : la::Vec(n, 0.0);
    la::Vec y0(m, 0.0);
    QpSolution sol = QpSolver(cold_s).solve(problem, x0, y0);
    state.x = sol.x;
    state.y = sol.y;
    return sol;
  }

  // A cached state is only reusable if it describes a row-prefix of this
  // problem (same variables, rows appended at the end, prefix structure
  // untouched).
  const bool compatible =
      state.col_scale.size() == n && state.rows_cached <= m &&
      state.nnz_cached <= problem.a.nnz() &&
      problem.a.row_ptr()[state.rows_cached] == state.nnz_cached;
  if (!compatible) {
    // Drop the structural caches but keep externally seeded iterates (the
    // multigrid prolongation writes x/y into a fresh state before the
    // first fine-grid solve) and the scratch allocations (pure capacity
    // cache, no numerical state).
    la::Vec keep_x = std::move(state.x);
    la::Vec keep_y = std::move(state.y);
    QpScratch keep_scratch = std::move(state.scratch);
    state.reset();
    state.x = std::move(keep_x);
    state.y = std::move(keep_y);
    state.scratch = std::move(keep_scratch);
  }

  const bool fresh = state.col_scale.empty();
  const bool appended = !fresh && m > state.rows_cached;
  if (fresh) {
    const Scaling sc = ruiz_equilibrate(problem, /*iterations=*/10);
    state.col_scale = sc.e;
    state.row_scale = sc.d;
    state.cost_scale = sc.c;
    state.a_scaled = problem.a.scaled(sc.d, sc.e);
    state.gram_diag = state.a_scaled.gram_diagonal();
    state.rows_cached = m;
    state.nnz_cached = problem.a.nnz();
  } else if (appended) {
    // Incremental equilibration: seed the appended rows with an exact
    // one-sided row scaling against the cached column scales, then refine
    // the whole system with a few full Ruiz sweeps warm-started from the
    // cached scaling -- the sweeps converge in a fraction of the cold
    // count because the prefix is already equilibrated.  (Extending the
    // rows alone is not enough: a block of appended cut rows shifts the
    // column norms and the resulting mis-scaling costs far more ADMM
    // iterations than the sweeps save.)
    const la::Vec d_tail =
        extend_row_scales(problem, state.rows_cached, state.col_scale);
    state.row_scale.insert(state.row_scale.end(), d_tail.begin(),
                           d_tail.end());
    Scaling init;
    init.e = std::move(state.col_scale);
    init.d = std::move(state.row_scale);
    init.c = state.cost_scale;
    const Scaling sc = ruiz_equilibrate(problem, /*iterations=*/3, &init);
    state.col_scale = sc.e;
    state.row_scale = sc.d;
    state.cost_scale = sc.c;
    state.a_scaled = problem.a.scaled(sc.d, sc.e);
    state.gram_diag = state.a_scaled.gram_diagonal();
    state.rows_cached = m;
    state.nnz_cached = problem.a.nnz();
  }

  Scaling sc;
  sc.e = state.col_scale;
  sc.d = state.row_scale;
  sc.c = state.cost_scale;

  // Dual warm start: persistent rows keep their multipliers, appended rows
  // start at zero.  The ADMM penalty is deliberately NOT carried: rho is
  // tuned by the adaptive scheme for the previous solve's active set, and
  // re-entering the next solve with it measurably locks the iteration into
  // slow residual oscillation (17-70% more iterations on the AES-65 probe
  // sequence than restarting from the default).
  la::Vec& x = state.scratch.seed_x;
  la::Vec& y = state.scratch.seed_y;
  auto seed_iterates = [&]() {
    x.assign(n, 0.0);
    y.assign(m, 0.0);
    if (state.x.size() == n)
      for (std::size_t j = 0; j < n; ++j) x[j] = state.x[j] / sc.e[j];
    const std::size_t carried = std::min(state.y.size(), m);
    for (std::size_t i = 0; i < carried; ++i)
      y[i] = sc.c * state.y[i] / sc.d[i];
  };

  QpSettings active = settings_;
  seed_iterates();
  double rho = active.rho;
  QpSolution sol = run_admm(active, problem, sc, state.a_scaled,
                            state.gram_diag, x, y, &rho, state.scratch);
  if (active.mixed_precision &&
      (sol.mixed_stall || !mixed_kkt_accept(active, problem, sol))) {
    // Mixed-precision degradation (first rung of the ladder): the float
    // path stalled or its solution failed the independent float64 KKT
    // acceptance.  Re-run this warm solve pure double from the same seeds
    // -- bit-identical to a mixed_precision=false solve.
    active.mixed_precision = false;
    seed_iterates();
    rho = active.rho;
    sol = run_admm(active, problem, sc, state.a_scaled, state.gram_diag, x,
                   y, &rho, state.scratch);
    sol.mixed_fallback = true;
  }

  // Injected divergence: poison the iterate exactly as a blown-up ADMM
  // sequence would surface it, so the real recovery path runs.
  if (g_fault_admm_diverge.should_fire())
    for (double& v : sol.x) v = std::numeric_limits<double>::quiet_NaN();

  const bool accepted = solution_finite(sol) &&
                        !g_fault_kkt_reject.should_fire();
  if (!accepted) {
    // Degraded mode: the warm start led the iteration somewhere unusable
    // (or acceptance was rejected).  Drop every cached artifact -- the
    // scaling or duals may be the poison -- and re-solve on the historical
    // cold path from the entry iterate.  This reproduces the
    // warm_start=false semantics bit-for-bit: full equilibration, zero
    // dual, primal carried from the pre-solve state, pure double.
    QpScratch keep_scratch = std::move(state.scratch);
    state.reset();
    state.scratch = std::move(keep_scratch);
    QpSettings cold_s = settings_;
    cold_s.mixed_precision = false;
    la::Vec x0 = x_entry.size() == n ? x_entry : la::Vec(n, 0.0);
    la::Vec y0(m, 0.0);
    QpSolution cold = QpSolver(cold_s).solve(problem, x0, y0);
    cold.cold_fallback = true;
    state.x = cold.x;
    state.y = cold.y;
    return cold;
  }

  state.x = sol.x;
  state.y = sol.y;
  state.rho = rho;
  return sol;
}

}  // namespace doseopt::qp
