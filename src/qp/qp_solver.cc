#include "qp/qp_solver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/cg.h"

namespace doseopt::qp {

void QpProblem::validate() const {
  const std::size_t n = q.size();
  const std::size_t m = lower.size();
  DOSEOPT_CHECK(p_diag.size() == n, "QpProblem: p_diag size mismatch");
  DOSEOPT_CHECK(a.cols() == n, "QpProblem: A column count mismatch");
  DOSEOPT_CHECK(a.rows() == m, "QpProblem: A row count mismatch");
  DOSEOPT_CHECK(upper.size() == m, "QpProblem: bound size mismatch");
  for (double p : p_diag)
    DOSEOPT_CHECK(p >= 0.0, "QpProblem: negative quadratic diagonal");
  for (std::size_t i = 0; i < m; ++i)
    DOSEOPT_CHECK(lower[i] <= upper[i], "QpProblem: crossed bounds");
}

double QpProblem::objective(const la::Vec& x) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    obj += 0.5 * p_diag[i] * x[i] * x[i] + q[i] * x[i];
  return obj;
}

const char* to_string(QpStatus s) {
  switch (s) {
    case QpStatus::kSolved:
      return "solved";
    case QpStatus::kMaxIterations:
      return "max_iterations";
    case QpStatus::kPrimalInfeasible:
      return "primal_infeasible";
  }
  return "unknown";
}

QpSolution QpSolver::solve(const QpProblem& problem) const {
  la::Vec x0(problem.num_variables(), 0.0);
  la::Vec y0(problem.num_constraints(), 0.0);
  return solve(problem, x0, y0);
}

namespace {

/// Ruiz equilibration of [P, A'; A, 0] plus cost normalization, as in OSQP.
/// Produces column scales e (n), row scales d (m), and cost scale c such
/// that the scaled problem P~ = c E P E, q~ = c E q, A~ = D A E is well
/// conditioned for ADMM.
struct Scaling {
  la::Vec e;  // n
  la::Vec d;  // m
  double c = 1.0;
};

Scaling ruiz_equilibrate(const QpProblem& problem, int iterations) {
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  Scaling s;
  s.e.assign(n, 1.0);
  s.d.assign(m, 1.0);

  const auto& row_ptr = problem.a.row_ptr();
  const auto& col_idx = problem.a.col_idx();
  const auto& val = problem.a.values();

  la::Vec col_norm(n), row_norm(m);
  for (int it = 0; it < iterations; ++it) {
    std::fill(col_norm.begin(), col_norm.end(), 0.0);
    std::fill(row_norm.begin(), row_norm.end(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const double v = std::abs(val[k] * s.d[r] * s.e[col_idx[k]]);
        row_norm[r] = std::max(row_norm[r], v);
        col_norm[col_idx[k]] = std::max(col_norm[col_idx[k]], v);
      }
    }
    // Columns also see the (diagonal) quadratic block.
    for (std::size_t j = 0; j < n; ++j) {
      const double pv = std::abs(problem.p_diag[j]) * s.e[j] * s.e[j] * s.c;
      col_norm[j] = std::max(col_norm[j], pv);
    }
    for (std::size_t r = 0; r < m; ++r)
      if (row_norm[r] > 1e-12) s.d[r] /= std::sqrt(row_norm[r]);
    for (std::size_t j = 0; j < n; ++j)
      if (col_norm[j] > 1e-12) s.e[j] /= std::sqrt(col_norm[j]);

    // Cost scaling: normalize the scaled gradient magnitude.
    double g = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      g = std::max(g, std::abs(problem.p_diag[j]) * s.e[j] * s.e[j]);
      g = std::max(g, std::abs(problem.q[j]) * s.e[j]);
    }
    if (g > 1e-12) s.c = 1.0 / g;
  }
  return s;
}

}  // namespace

QpSolution QpSolver::solve(const QpProblem& problem, const la::Vec& x0,
                           const la::Vec& y0) const {
  problem.validate();
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.num_constraints();
  DOSEOPT_CHECK(x0.size() == n && y0.size() == m,
                "QpSolver: warm-start size mismatch");

  const QpSettings& s = settings_;

  // --- build the scaled problem ---
  const Scaling sc = ruiz_equilibrate(problem, /*iterations=*/10);
  la::Vec p_s(n), q_s(n), l_s(m), u_s(m);
  for (std::size_t j = 0; j < n; ++j) {
    p_s[j] = sc.c * sc.e[j] * sc.e[j] * problem.p_diag[j];
    q_s[j] = sc.c * sc.e[j] * problem.q[j];
  }
  for (std::size_t i = 0; i < m; ++i) {
    l_s[i] = problem.lower[i] <= -kInfinity ? -kInfinity
                                            : problem.lower[i] * sc.d[i];
    u_s[i] = problem.upper[i] >= kInfinity ? kInfinity
                                           : problem.upper[i] * sc.d[i];
  }
  const la::CsrMatrix a_s = problem.a.scaled(sc.d, sc.e);

  double rho = s.rho;

  // Warm start in scaled coordinates.
  la::Vec x(n), y(m);
  for (std::size_t j = 0; j < n; ++j) x[j] = x0[j] / sc.e[j];
  for (std::size_t i = 0; i < m; ++i) y[i] = sc.c * y0[i] / sc.d[i];

  la::Vec z(m);
  a_s.multiply(x, z);
  for (std::size_t i = 0; i < m; ++i) z[i] = std::clamp(z[i], l_s[i], u_s[i]);

  la::Vec rhs(n), x_tilde(n), z_tilde(m), ax(m), aty(n);
  la::Vec cg_scratch(m);
  la::Vec gram_diag = a_s.gram_diagonal();
  la::Vec precond(n);
  la::Vec work_m(m), work_n(n);

  auto build_precond = [&]() {
    for (std::size_t j = 0; j < n; ++j)
      precond[j] = p_s[j] + s.sigma + rho * gram_diag[j];
  };
  build_precond();

  auto kkt_op = [&](const la::Vec& v, la::Vec& out) {
    for (std::size_t j = 0; j < n; ++j) out[j] = (p_s[j] + s.sigma) * v[j];
    a_s.add_gram_product(rho, v, out, cg_scratch);
  };

  QpSolution sol;
  la::CgOptions cg_opts;
  cg_opts.max_iterations = s.cg_max_iterations;
  // Inexact ADMM: the inner CG tolerance starts loose and tightens with the
  // outer residuals, which cuts the dominant per-iteration cost by an order
  // of magnitude on large dose-map problems without affecting the fixed
  // point (standard inexact-ADMM argument).
  double cg_tol = 1e-4;

  for (int iter = 1; iter <= s.max_iterations; ++iter) {
    // x update: (P + sigma I + rho A'A) x~ = sigma x - q + A'(rho z - y).
    for (std::size_t i = 0; i < m; ++i) work_m[i] = rho * z[i] - y[i];
    a_s.multiply_transpose(work_m, rhs);
    for (std::size_t j = 0; j < n; ++j) rhs[j] += s.sigma * x[j] - q_s[j];
    x_tilde = x;
    cg_opts.tolerance = std::max(s.cg_tolerance, cg_tol);
    la::conjugate_gradient(kkt_op, rhs, precond, x_tilde, cg_opts);

    // z and y updates with over-relaxation.
    a_s.multiply(x_tilde, z_tilde);
    for (std::size_t i = 0; i < m; ++i) {
      const double zr = s.alpha * z_tilde[i] + (1.0 - s.alpha) * z[i];
      const double z_new = std::clamp(zr + y[i] / rho, l_s[i], u_s[i]);
      y[i] += rho * (zr - z_new);
      z[i] = z_new;
    }
    for (std::size_t j = 0; j < n; ++j)
      x[j] = s.alpha * x_tilde[j] + (1.0 - s.alpha) * x[j];

    sol.iterations = iter;
    if (iter % s.check_interval != 0 && iter != s.max_iterations) continue;

    // --- termination on *unscaled* residuals ---
    a_s.multiply(x, ax);
    double prim_res = 0.0, ax_norm = 0.0, z_norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double inv_d = 1.0 / sc.d[i];
      prim_res = std::max(prim_res, std::abs(ax[i] - z[i]) * inv_d);
      ax_norm = std::max(ax_norm, std::abs(ax[i]) * inv_d);
      z_norm = std::max(z_norm, std::abs(z[i]) * inv_d);
    }
    a_s.multiply_transpose(y, aty);
    double dual_res = 0.0, px_norm = 0.0, aty_norm = 0.0, q_norm = 0.0;
    const double inv_c = 1.0 / sc.c;
    for (std::size_t j = 0; j < n; ++j) {
      const double scale = sc.e[j] * inv_c;
      const double px = p_s[j] * x[j];
      dual_res =
          std::max(dual_res, std::abs(px + q_s[j] + aty[j]) * scale);
      px_norm = std::max(px_norm, std::abs(px) * scale);
      aty_norm = std::max(aty_norm, std::abs(aty[j]) * scale);
      q_norm = std::max(q_norm, std::abs(q_s[j]) * scale);
    }

    const double eps_prim = s.eps_abs + s.eps_rel * std::max(ax_norm, z_norm);
    const double eps_dual =
        s.eps_abs + s.eps_rel * std::max({px_norm, aty_norm, q_norm});

    sol.primal_residual = prim_res;
    sol.dual_residual = dual_res;

    // Tighten the inner CG with outer progress (scaled-space residuals).
    {
      double sp = 0.0, sd = 0.0;
      for (std::size_t i = 0; i < m; ++i)
        sp = std::max(sp, std::abs(ax[i] - z[i]));
      for (std::size_t j = 0; j < n; ++j)
        sd = std::max(sd, std::abs(p_s[j] * x[j] + q_s[j] + aty[j]));
      cg_tol = std::clamp(0.1 * std::min(sp, sd), 1e-10, 1e-4);
    }

    if (prim_res <= eps_prim && dual_res <= eps_dual) {
      sol.status = QpStatus::kSolved;
      break;
    }

    // Primal infeasibility certificate on the scaled problem.
    const double y_norm = la::norm_inf(y);
    if (y_norm > 1e-10 && iter > 100) {
      if (la::norm_inf(aty) <= 1e-8 * y_norm) {
        double support = 0.0;
        bool bounded = true;
        for (std::size_t i = 0; i < m; ++i) {
          if (y[i] > 0.0) {
            if (u_s[i] >= kInfinity) { bounded = false; break; }
            support += u_s[i] * y[i];
          } else if (y[i] < 0.0) {
            if (l_s[i] <= -kInfinity) { bounded = false; break; }
            support += l_s[i] * y[i];
          }
        }
        if (bounded && support < -1e-8 * y_norm) {
          sol.status = QpStatus::kPrimalInfeasible;
          break;
        }
      }
    }

    // Adaptive rho: balance scaled primal/dual residuals.
    if (s.adaptive_rho && iter % s.rho_update_interval == 0) {
      double sp = 0.0, sd = 0.0, saxn = 0.0, szn = 0.0, spxn = 0.0,
             satn = 0.0, sqn = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        sp = std::max(sp, std::abs(ax[i] - z[i]));
        saxn = std::max(saxn, std::abs(ax[i]));
        szn = std::max(szn, std::abs(z[i]));
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double px = p_s[j] * x[j];
        sd = std::max(sd, std::abs(px + q_s[j] + aty[j]));
        spxn = std::max(spxn, std::abs(px));
        satn = std::max(satn, std::abs(aty[j]));
        sqn = std::max(sqn, std::abs(q_s[j]));
      }
      const double scaled_prim = sp / std::max({saxn, szn, 1e-12});
      const double scaled_dual = sd / std::max({spxn, satn, sqn, 1e-12});
      const double ratio =
          std::sqrt(scaled_prim / std::max(scaled_dual, 1e-16));
      if (ratio > 5.0 || ratio < 0.2) {
        rho = std::clamp(rho * ratio, 1e-6, 1e6);
        build_precond();
      }
    }
  }

  // --- unscale the solution ---
  sol.x.resize(n);
  for (std::size_t j = 0; j < n; ++j) sol.x[j] = sc.e[j] * x[j];
  sol.y.resize(m);
  for (std::size_t i = 0; i < m; ++i) sol.y[i] = sc.d[i] * y[i] / sc.c;
  sol.z.resize(m);
  for (std::size_t i = 0; i < m; ++i) sol.z[i] = z[i] / sc.d[i];
  sol.objective = problem.objective(sol.x);
  return sol;
}

}  // namespace doseopt::qp
