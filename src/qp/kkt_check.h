// Independent KKT optimality verification for QP solutions.
//
// Used by tests and by debug assertions in the flow: given a QpProblem and a
// candidate (x, y), measure stationarity, primal feasibility, and
// complementary slackness violations without trusting the solver's own
// residual bookkeeping.
#pragma once

#include "qp/qp_solver.h"

namespace doseopt::qp {

/// Worst-case KKT violations of a candidate primal/dual pair.
struct KktReport {
  double stationarity = 0.0;      ///< ||Px + q + A'y||_inf
  double primal_violation = 0.0;  ///< max bound violation of Ax
  double complementarity = 0.0;   ///< max |y_i| * dist(Ax_i, active bound)
  double dual_sign_violation = 0.0;  ///< y sign inconsistent with active side

  /// True if all violations are within `tol`.
  bool passes(double tol) const;
};

/// Compute the report for (x, y) on `problem`.
KktReport check_kkt(const QpProblem& problem, const la::Vec& x,
                    const la::Vec& y);

}  // namespace doseopt::qp
