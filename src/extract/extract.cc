#include "extract/extract.h"

#include "common/error.h"
#include "common/units.h"

namespace doseopt::extract {

namespace {

NetParasitics extract_net(netlist::NetId n, const place::Placement& placement,
                          const tech::TechNode& node) {
  NetParasitics p;
  p.length_um = placement.net_hpwl_um(n);
  p.wire_cap_ff = node.wire_cap_ff_per_um * p.length_um;
  p.wire_res_kohm = node.wire_res_kohm_per_um * p.length_um;
  return p;
}

}  // namespace

double Parasitics::wire_delay_ns(netlist::NetId n, double sink_cap_ff) const {
  DOSEOPT_CHECK(n < nets_.size(), "wire_delay_ns: bad net");
  return elmore_wire_delay_ns(nets_[n], sink_cap_ff);
}

double Parasitics::wire_slew_ns(netlist::NetId n, double sink_cap_ff) const {
  DOSEOPT_CHECK(n < nets_.size(), "wire_slew_ns: bad net");
  return elmore_wire_slew_ns(nets_[n], sink_cap_ff);
}

void Parasitics::update_net(netlist::NetId n,
                            const place::Placement& placement,
                            const tech::TechNode& node) {
  DOSEOPT_CHECK(n < nets_.size(), "update_net: bad net");
  nets_[n] = extract_net(n, placement, node);
}

Parasitics extract(const place::Placement& placement,
                   const tech::TechNode& node) {
  Parasitics out;
  const std::size_t n_nets = placement.netlist().net_count();
  out.nets_.reserve(n_nets);
  for (std::size_t n = 0; n < n_nets; ++n)
    out.nets_.push_back(
        extract_net(static_cast<netlist::NetId>(n), placement, node));
  return out;
}

}  // namespace doseopt::extract
