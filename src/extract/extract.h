// Parasitic extraction from placement geometry.
//
// Wire length is estimated as the net's half-perimeter wirelength; per-um
// resistance and capacitance come from the technology node.  The result is
// purely geometric (pin capacitances are variant-dependent and are added by
// the timer), so a dose-map change never alters parasitics -- matching the
// paper's observation that dose tuning on poly/active does not affect wire
// layout -- while a dosePl cell swap does (ECO re-extraction).
#pragma once

#include <vector>

#include "common/units.h"
#include "place/placement.h"

namespace doseopt::extract {

/// Lumped RC of one net.
struct NetParasitics {
  double length_um = 0.0;
  double wire_cap_ff = 0.0;
  double wire_res_kohm = 0.0;
};

/// Elmore wire delay (ns) to a sink with pin capacitance `sink_cap_ff`:
/// R_wire * (C_wire / 2 + C_pin).  Inline so the batched timing kernels can
/// evaluate it per lane without a cross-TU call; Parasitics::wire_delay_ns
/// routes through this same expression, keeping both paths bitwise-equal.
inline double elmore_wire_delay_ns(const NetParasitics& p,
                                   double sink_cap_ff) {
  return p.wire_res_kohm * (0.5 * p.wire_cap_ff + sink_cap_ff) *
         units::kPsToNs;
}

/// 10-90% transition degradation ~ 2.2x the Elmore constant; wires here are
/// short relative to drivers, so this is a small correction.
inline double elmore_wire_slew_ns(const NetParasitics& p, double sink_cap_ff) {
  return 2.2 * elmore_wire_delay_ns(p, sink_cap_ff);
}

/// Extracted parasitics for every net of a placed design.
class Parasitics {
 public:
  Parasitics() = default;

  const NetParasitics& net(netlist::NetId n) const { return nets_[n]; }
  std::size_t net_count() const { return nets_.size(); }

  /// Elmore wire delay (ns) from the net's driver to a sink with pin
  /// capacitance `sink_cap_ff`: R_wire * (C_wire / 2 + C_pin).
  double wire_delay_ns(netlist::NetId n, double sink_cap_ff) const;

  /// Additional slew degradation along the wire (ns), same Elmore kernel.
  double wire_slew_ns(netlist::NetId n, double sink_cap_ff) const;

  friend Parasitics extract(const place::Placement& placement,
                            const tech::TechNode& node);

  /// Re-extract a single net after an incremental placement change.
  void update_net(netlist::NetId n, const place::Placement& placement,
                  const tech::TechNode& node);

 private:
  std::vector<NetParasitics> nets_;
};

/// Extract every net of `placement`.
Parasitics extract(const place::Placement& placement,
                   const tech::TechNode& node);

}  // namespace doseopt::extract
