// Parasitic extraction from placement geometry.
//
// Wire length is estimated as the net's half-perimeter wirelength; per-um
// resistance and capacitance come from the technology node.  The result is
// purely geometric (pin capacitances are variant-dependent and are added by
// the timer), so a dose-map change never alters parasitics -- matching the
// paper's observation that dose tuning on poly/active does not affect wire
// layout -- while a dosePl cell swap does (ECO re-extraction).
#pragma once

#include <vector>

#include "place/placement.h"

namespace doseopt::extract {

/// Lumped RC of one net.
struct NetParasitics {
  double length_um = 0.0;
  double wire_cap_ff = 0.0;
  double wire_res_kohm = 0.0;
};

/// Extracted parasitics for every net of a placed design.
class Parasitics {
 public:
  Parasitics() = default;

  const NetParasitics& net(netlist::NetId n) const { return nets_[n]; }
  std::size_t net_count() const { return nets_.size(); }

  /// Elmore wire delay (ns) from the net's driver to a sink with pin
  /// capacitance `sink_cap_ff`: R_wire * (C_wire / 2 + C_pin).
  double wire_delay_ns(netlist::NetId n, double sink_cap_ff) const;

  /// Additional slew degradation along the wire (ns), same Elmore kernel.
  double wire_slew_ns(netlist::NetId n, double sink_cap_ff) const;

  friend Parasitics extract(const place::Placement& placement,
                            const tech::TechNode& node);

  /// Re-extract a single net after an incremental placement change.
  void update_net(netlist::NetId n, const place::Placement& placement,
                  const tech::TechNode& node);

 private:
  std::vector<NetParasitics> nets_;
};

/// Extract every net of `placement`.
Parasitics extract(const place::Placement& placement,
                   const tech::TechNode& node);

}  // namespace doseopt::extract
