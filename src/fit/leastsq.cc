#include "fit/leastsq.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "la/cholesky.h"

namespace doseopt::fit {

FitResult fit_linear(const std::vector<Sample>& samples) {
  DOSEOPT_CHECK(!samples.empty(), "fit_linear: no samples");
  const std::size_t n = samples.front().features.size();
  DOSEOPT_CHECK(n > 0, "fit_linear: empty feature vector");
  DOSEOPT_CHECK(samples.size() >= n, "fit_linear: underdetermined fit");

  la::DenseMatrix a(samples.size(), n);
  la::Vec b(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    DOSEOPT_CHECK(samples[i].features.size() == n,
                  "fit_linear: inconsistent feature dimension");
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = samples[i].features[j];
    b[i] = samples[i].target;
  }

  FitResult result;
  result.coefficients = la::least_squares(a, b, /*ridge=*/1e-12);

  double mean = 0.0;
  for (double y : b) mean += y;
  mean /= static_cast<double>(b.size());
  double sst = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      pred += result.coefficients[j] * samples[i].features[j];
    const double r = pred - samples[i].target;
    result.sum_squared_residuals += r * r;
    result.max_abs_residual = std::max(result.max_abs_residual, std::abs(r));
    sst += (samples[i].target - mean) * (samples[i].target - mean);
  }
  result.r_squared =
      sst > 0.0 ? 1.0 - result.sum_squared_residuals / sst : 0.0;
  return result;
}

FitResult fit_polynomial(const std::vector<double>& xs,
                         const std::vector<double>& ys, int degree) {
  DOSEOPT_CHECK(xs.size() == ys.size(), "fit_polynomial: size mismatch");
  DOSEOPT_CHECK(degree >= 0, "fit_polynomial: negative degree");
  std::vector<Sample> samples(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    samples[i].features.resize(static_cast<std::size_t>(degree) + 1);
    double p = 1.0;
    for (int d = 0; d <= degree; ++d) {
      samples[i].features[static_cast<std::size_t>(d)] = p;
      p *= xs[i];
    }
    samples[i].target = ys[i];
  }
  return fit_linear(samples);
}

double eval_polynomial(const std::vector<double>& coeffs, double x) {
  double y = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) y = y * x + coeffs[i];
  return y;
}

FitResult fit_exponential(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  DOSEOPT_CHECK(xs.size() == ys.size(), "fit_exponential: size mismatch");
  std::vector<double> log_ys(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    DOSEOPT_CHECK(ys[i] > 0.0, "fit_exponential: non-positive target");
    log_ys[i] = std::log(ys[i]);
  }
  FitResult lin = fit_polynomial(xs, log_ys, 1);
  FitResult out;
  out.coefficients = {std::exp(lin.coefficients[0]), lin.coefficients[1]};
  // Recompute residuals in the original (non-log) space.
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double sst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred =
        out.coefficients[0] * std::exp(out.coefficients[1] * xs[i]);
    const double r = pred - ys[i];
    out.sum_squared_residuals += r * r;
    out.max_abs_residual = std::max(out.max_abs_residual, std::abs(r));
    sst += (ys[i] - mean) * (ys[i] - mean);
  }
  out.r_squared = sst > 0.0 ? 1.0 - out.sum_squared_residuals / sst : 0.0;
  return out;
}

void ResidualStats::accumulate(const FitResult& r) {
  max_ssr = std::max(max_ssr, r.sum_squared_residuals);
  mean_ssr = (mean_ssr * static_cast<double>(fit_count) +
              r.sum_squared_residuals) /
             static_cast<double>(fit_count + 1);
  max_abs_residual = std::max(max_abs_residual, r.max_abs_residual);
  ++fit_count;
}

}  // namespace doseopt::fit
