// Curve-fitting utilities (Section III / Section V of the paper).
//
// The dose-map formulations consume per-gate fitted coefficients:
//   delay:    dt      =  A * dL + B * dW                      (linear)
//   leakage:  dLeak   =  alpha * dL^2 + beta * dL + gamma * dW (quadratic/linear)
// These are ordinary linear least-squares problems in the coefficients; this
// module provides the generic fitter plus the residual statistics the paper
// reports (maximum sum of squared residuals over all fitted curves).
#pragma once

#include <functional>
#include <vector>

#include "la/dense.h"

namespace doseopt::fit {

/// One observation: feature vector phi(x) and target value y.
struct Sample {
  std::vector<double> features;
  double target = 0.0;
};

/// Result of a least-squares fit.
struct FitResult {
  std::vector<double> coefficients;
  double sum_squared_residuals = 0.0;  ///< SSR over the fitting samples
  double max_abs_residual = 0.0;
  double r_squared = 0.0;  ///< 1 - SSR/SST (0 when SST == 0)
};

/// Fit coefficients c minimizing sum_i (c . phi_i - y_i)^2.
/// All samples must share the same feature dimension; requires at least as
/// many samples as features.
FitResult fit_linear(const std::vector<Sample>& samples);

/// Fit y ~= c0 + c1 x (+ c2 x^2 ... up to `degree`). Returns coefficients in
/// ascending-power order.
FitResult fit_polynomial(const std::vector<double>& xs,
                         const std::vector<double>& ys, int degree);

/// Evaluate an ascending-power polynomial at x.
double eval_polynomial(const std::vector<double>& coeffs, double x);

/// Fit y ~= a * exp(b x) by linear regression on log(y). Requires y > 0.
/// Returns {a, b}.
FitResult fit_exponential(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Aggregate residual statistics over many fits (the paper quotes the
/// maximum SSR over all fitted delay curves in Section V).
struct ResidualStats {
  double max_ssr = 0.0;
  double mean_ssr = 0.0;
  double max_abs_residual = 0.0;
  std::size_t fit_count = 0;

  void accumulate(const FitResult& r);
};

}  // namespace doseopt::fit
