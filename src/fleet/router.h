// Front-end router of the doseopt serving fleet.
//
// Speaks the same framed protocol as a single doseopt_server (clients need
// no changes), but instead of solving, each job is routed by its session
// key over a consistent hash ring to one of the supervisor's worker
// processes and proxied there: session affinity keeps a design's expensive
// context on one worker, while different sessions spread across the fleet.
//
// Forwarding discipline:
//  - per-worker bounded link pools; when every link is busy past the
//    acquire bound, the router itself sheds the job with kJobRejected
//    (router-level backpressure on top of worker-level backpressure);
//  - a worker's kJobRejected / kJobError / kJobResult frames pass through
//    to the client UNTOUCHED, so worker backpressure (retry_after_ms,
//    breaker_open) propagates end to end;
//  - a transport failure (worker died mid-job, link torn, injected
//    fleet.route_drop) replays the job: the link is discarded, the ring is
//    re-consulted against the current alive mask, and the job is
//    re-forwarded with deterministic backoff until the supervisor's
//    respawned worker answers.  Replays are safe because workers memoize
//    results by content hash in the shared store -- a job whose reply was
//    lost returns its bit-identical document without re-solving;
//  - hedged requests (opt-in): when the session owner has not answered
//    after an adaptive delay derived from its forward-latency histogram
//    (hedge_factor x p99, clamped to [hedge_min_ms, hedge_max_ms]), the
//    job is duplicated to another alive worker.  The first kJobResult wins
//    and is relayed immediately; the late loser's document is normalized
//    and bit-compared against the winner's before being discarded
//    (hedge_mismatches counts disagreements -- always zero, because job
//    results are content-addressed and deterministic).  Non-result replies
//    defer to the primary leg's outcome so backpressure semantics are
//    unchanged.  Every forward -- first attempt, replay, or hedge leg --
//    carries the *remaining* deadline budget, not the original deadline.
//
// kMetricsRequest answers with one aggregated JSON document: router
// counters plus each worker's liveness, respawn count, and live metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/ring.h"
#include "fleet/supervisor.h"
#include "serve/client.h"
#include "serve/histogram.h"
#include "serve/json.h"

namespace doseopt::fleet {

struct RouterOptions {
  std::string uds_path;  ///< "" = no Unix-domain listener
  int tcp_port = -1;     ///< -1 = no TCP listener; 0 = kernel-assigned
  int links_per_worker = 4;            ///< concurrent jobs per worker link pool
  double link_acquire_timeout_ms = 2000.0;  ///< busy past this -> shed
  double retry_after_ms = 100.0;       ///< hint on router-level sheds
  int forward_max_attempts = 40;       ///< transport replays per job
  double forward_backoff_ms = 50.0;    ///< base of the replay backoff
  int ring_replicas = 64;
  // Hedged requests (off by default: a second in-flight copy of every slow
  // job doubles worst-case fleet load, so the caller opts in).
  bool hedge_enabled = false;
  double hedge_min_ms = 20.0;    ///< floor of the adaptive hedge delay
  double hedge_max_ms = 1000.0;  ///< ceiling (also used below min samples)
  double hedge_factor = 2.0;     ///< delay = factor x per-worker p99
  int hedge_min_samples = 16;    ///< histogram depth before adapting
  /// Duration of an injected fleet.worker_stall firing (the fault point
  /// sleeps this long in the forward path, modeling a wedged worker).
  double stall_inject_ms = 1500.0;
  bool verbose = false;
};

class Router {
 public:
  /// The supervisor must outlive the router and be started first.
  Router(RouterOptions options, Supervisor& supervisor);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  void stop();  ///< close listeners, join connection threads.  Idempotent.

  bool running() const { return running_.load(std::memory_order_acquire); }
  int tcp_port() const { return tcp_port_; }

  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_release);
  }
  void wait_for_shutdown() const;

  /// Aggregated fleet telemetry (also served via kMetricsRequest).
  serve::Json metrics();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    std::thread reader;
  };

  /// Bounded pool of framed links to one worker.  Links are plain
  /// serve::Clients created lazily; a link that saw a transport error is
  /// discarded (never returned), and a worker generation change drops the
  /// whole idle set, so links never outlive the process they point at.
  struct LinkPool {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<serve::Client> idle;
    int outstanding = 0;  ///< links handed out or alive in `idle`
    std::uint64_t generation = 0;  ///< supervisor generation the pool tracks
  };

  void accept_loop(int listen_fd);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void handle_job(const std::shared_ptr<Connection>& conn,
                  const std::string& payload);
  /// Forward one job to `worker` with the remaining deadline budget
  /// (elapsed since `t0` already subtracted); throws on transport failure.
  serve::Client::Reply forward_leg(int worker, const serve::JobSpec& spec,
                                   std::chrono::steady_clock::time_point t0);
  /// forward_leg wrapped in the hedging protocol (a plain synchronous leg
  /// when hedging is disabled).
  serve::Client::Reply forward_hedged(int worker, const serve::JobSpec& spec,
                                      std::chrono::steady_clock::time_point t0);
  /// The adaptive hedge delay for `worker` (factor x p99, clamped).
  double hedge_delay_ms(int worker) const;
  void reply(const std::shared_ptr<Connection>& conn, std::uint32_t type,
             const serve::Json& payload);

  /// Take a link to `worker` (connecting if below capacity); returns a
  /// disengaged optional when the pool stays saturated past the bound.
  /// Throws on connect failure (treated as a transport error upstream).
  std::optional<serve::Client> acquire_link(int worker);
  void release_link(int worker, serve::Client link);
  void discard_link(int worker);

  RouterOptions options_;
  Supervisor& supervisor_;
  HashRing ring_;
  std::vector<std::unique_ptr<LinkPool>> pools_;

  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_forwarded_{0};  ///< forward attempts
  std::atomic<std::uint64_t> jobs_completed_{0};  ///< kJobResult relayed
  std::atomic<std::uint64_t> jobs_replayed_{0};   ///< transport retries
  std::atomic<std::uint64_t> jobs_shed_{0};       ///< router-level rejects
  std::atomic<std::uint64_t> rejects_relayed_{0};  ///< worker backpressure
  std::atomic<std::uint64_t> errors_relayed_{0};   ///< worker kJobError
  std::atomic<std::uint64_t> route_drops_{0};      ///< injected drops
  std::atomic<std::uint64_t> jobs_expired_{0};     ///< died during replay
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> hedges_launched_{0};  ///< second legs started
  std::atomic<std::uint64_t> hedges_won_{0};       ///< hedge leg answered 1st
  std::atomic<std::uint64_t> hedges_skipped_{0};   ///< no alternate worker
  std::atomic<std::uint64_t> hedge_mismatches_{0}; ///< loser != winner bytes
  std::atomic<std::uint64_t> stalls_injected_{0};  ///< fleet.worker_stall
  /// Hedge legs still running after their job's reply went out; stop()
  /// waits for zero before tearing down the link pools they borrow from.
  std::atomic<int> inflight_legs_{0};
  serve::LatencyHistogram hist_route_;  ///< client frame in -> reply out
  /// Per-worker submit round-trip latency; feeds the adaptive hedge delay.
  /// Injected stalls are excluded so the delay tracks *healthy* latency.
  std::vector<std::unique_ptr<serve::LatencyHistogram>> hist_forward_;
};

/// No-op symbol anchor: referencing it from a test binary forces the
/// linker to keep the fleet translation units of the static libraries, so
/// the fleet.* fault points register even when the test never routes a
/// job.
void ensure_fleet_fault_points_linked();

}  // namespace doseopt::fleet
