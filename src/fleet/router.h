// Front-end router of the doseopt serving fleet.
//
// Speaks the same framed protocol as a single doseopt_server (clients need
// no changes), but instead of solving, each job is routed by its session
// key over a consistent hash ring to one of the supervisor's worker
// processes and proxied there: session affinity keeps a design's expensive
// context on one worker, while different sessions spread across the fleet.
//
// Forwarding discipline:
//  - per-worker bounded link pools; when every link is busy past the
//    acquire bound, the router itself sheds the job with kJobRejected
//    (router-level backpressure on top of worker-level backpressure);
//  - a worker's kJobRejected / kJobError / kJobResult frames pass through
//    to the client UNTOUCHED, so worker backpressure (retry_after_ms,
//    breaker_open) propagates end to end;
//  - a transport failure (worker died mid-job, link torn, injected
//    fleet.route_drop) replays the job: the link is discarded, the ring is
//    re-consulted against the current alive mask, and the job is
//    re-forwarded with deterministic backoff until the supervisor's
//    respawned worker answers.  Replays are safe because workers memoize
//    results by content hash in the shared store -- a job whose reply was
//    lost returns its bit-identical document without re-solving.
//
// kMetricsRequest answers with one aggregated JSON document: router
// counters plus each worker's liveness, respawn count, and live metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/ring.h"
#include "fleet/supervisor.h"
#include "serve/client.h"
#include "serve/histogram.h"
#include "serve/json.h"

namespace doseopt::fleet {

struct RouterOptions {
  std::string uds_path;  ///< "" = no Unix-domain listener
  int tcp_port = -1;     ///< -1 = no TCP listener; 0 = kernel-assigned
  int links_per_worker = 4;            ///< concurrent jobs per worker link pool
  double link_acquire_timeout_ms = 2000.0;  ///< busy past this -> shed
  double retry_after_ms = 100.0;       ///< hint on router-level sheds
  int forward_max_attempts = 40;       ///< transport replays per job
  double forward_backoff_ms = 50.0;    ///< base of the replay backoff
  int ring_replicas = 64;
  bool verbose = false;
};

class Router {
 public:
  /// The supervisor must outlive the router and be started first.
  Router(RouterOptions options, Supervisor& supervisor);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  void stop();  ///< close listeners, join connection threads.  Idempotent.

  bool running() const { return running_.load(std::memory_order_acquire); }
  int tcp_port() const { return tcp_port_; }

  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_release);
  }
  void wait_for_shutdown() const;

  /// Aggregated fleet telemetry (also served via kMetricsRequest).
  serve::Json metrics();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    std::thread reader;
  };

  /// Bounded pool of framed links to one worker.  Links are plain
  /// serve::Clients created lazily; a link that saw a transport error is
  /// discarded (never returned), and a worker generation change drops the
  /// whole idle set, so links never outlive the process they point at.
  struct LinkPool {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<serve::Client> idle;
    int outstanding = 0;  ///< links handed out or alive in `idle`
    std::uint64_t generation = 0;  ///< supervisor generation the pool tracks
  };

  void accept_loop(int listen_fd);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void handle_job(const std::shared_ptr<Connection>& conn,
                  const std::string& payload);
  /// Forward one job to `worker`; throws on transport failure.
  serve::Client::Reply forward_once(int worker, const serve::JobSpec& spec);
  void reply(const std::shared_ptr<Connection>& conn, std::uint32_t type,
             const serve::Json& payload);

  /// Take a link to `worker` (connecting if below capacity); returns a
  /// disengaged optional when the pool stays saturated past the bound.
  /// Throws on connect failure (treated as a transport error upstream).
  std::optional<serve::Client> acquire_link(int worker);
  void release_link(int worker, serve::Client link);
  void discard_link(int worker);

  RouterOptions options_;
  Supervisor& supervisor_;
  HashRing ring_;
  std::vector<std::unique_ptr<LinkPool>> pools_;

  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_forwarded_{0};  ///< forward attempts
  std::atomic<std::uint64_t> jobs_completed_{0};  ///< kJobResult relayed
  std::atomic<std::uint64_t> jobs_replayed_{0};   ///< transport retries
  std::atomic<std::uint64_t> jobs_shed_{0};       ///< router-level rejects
  std::atomic<std::uint64_t> rejects_relayed_{0};  ///< worker backpressure
  std::atomic<std::uint64_t> errors_relayed_{0};   ///< worker kJobError
  std::atomic<std::uint64_t> route_drops_{0};      ///< injected drops
  std::atomic<std::uint64_t> jobs_expired_{0};     ///< died during replay
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  serve::LatencyHistogram hist_route_;  ///< client frame in -> reply out
};

/// No-op symbol anchor: referencing it from a test binary forces the
/// linker to keep the fleet translation units of the static libraries, so
/// the fleet.* fault points register even when the test never routes a
/// job.
void ensure_fleet_fault_points_linked();

}  // namespace doseopt::fleet
