// Worker-process supervisor for the doseopt serving fleet.
//
// Spawns N `doseopt_server` worker processes (fork + exec of the real
// binary -- in-process forks are unsafe from a multithreaded parent), each
// listening on its own Unix-domain socket under `runtime_dir` and all
// sharing ONE snapshot directory and ONE result-store directory.  Sharing
// is safe because both stores publish with atomic tmp+rename writes of
// deterministic content: concurrent writers can only race to install
// identical bytes.
//
// A monitor thread reaps dead workers (waitpid WNOHANG) and respawns them
// on the same socket path; the respawned process restores its sessions
// from the shared snapshots (workers run with eager snapshotting, so a
// session persisted right after its cold build survives a later SIGKILL).
// kill_worker() injects a hard death on purpose -- the fleet tests and the
// load generator use it to prove that mid-job kills still end in
// bit-identical client results.
//
// Worker stdout/stderr are inherited.  When `worker_faults` is set it is
// exported to the workers as DOSEOPT_FAULTS (replacing any inherited
// value), which is how the fault sweep arms fleet.worker_crash inside the
// worker without arming it in the parent.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>
#include <vector>

namespace doseopt::fleet {

struct SupervisorOptions {
  std::string server_bin;        ///< "" = discover_server_bin()
  std::string runtime_dir;       ///< worker sockets live here (required)
  std::string snapshot_dir;      ///< shared across workers ("" = off)
  std::string result_store_dir;  ///< shared across workers ("" = off)
  int workers = 2;
  int lanes = 2;                 ///< per worker
  std::size_t queue_capacity = 16;  ///< per worker
  bool eager_snapshots = true;   ///< persist sessions right after cold build
  bool crash_faults = false;     ///< pass --crash-faults to workers
  std::string worker_faults;     ///< DOSEOPT_FAULTS for workers ("" = inherit)
  double ready_timeout_ms = 60000.0;  ///< per worker, spawn -> first pong
  bool verbose = false;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn every worker, wait until each answers a ping, start the monitor.
  /// Throws doseopt::Error when a worker fails to come up.
  void start();

  /// Stop the monitor, then terminate workers: SIGTERM (graceful drain),
  /// bounded wait, SIGKILL stragglers.  Idempotent.
  void stop();

  int workers() const { return static_cast<int>(workers_.size()); }
  const std::string& worker_socket(int i) const;
  bool alive(int i) const;
  /// Monotonic per-worker generation: 0 for the original process, +1 per
  /// respawn.  Routers use a generation change to drop stale links.
  std::uint64_t generation(int i) const;
  std::uint64_t respawns(int i) const;
  std::uint64_t total_respawns() const;
  std::vector<bool> alive_mask() const;

  /// SIGKILL worker `i` (a deliberate hard death; the monitor respawns it).
  void kill_worker(int i);

  /// Locate the doseopt_server binary: $DOSEOPT_SERVER_BIN, else next to
  /// this executable, else ../tools/ relative to it.  Throws when no
  /// executable candidate exists.
  static std::string discover_server_bin();

 private:
  struct Worker {
    std::string socket;
    pid_t pid = -1;
    std::atomic<bool> alive{false};
    std::atomic<std::uint64_t> generation{0};
    std::atomic<std::uint64_t> respawns{0};
  };

  void spawn(Worker& worker);
  /// Ping-poll until the worker accepts; throws on timeout.
  void wait_ready(Worker& worker);
  void monitor_loop();

  SupervisorOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread monitor_;
  std::atomic<bool> running_{false};
  /// Serializes spawn/kill/reap transitions on worker pids.
  mutable std::mutex pids_mu_;
};

}  // namespace doseopt::fleet
