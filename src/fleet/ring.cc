#include "fleet/ring.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "serde/stream.h"

namespace doseopt::fleet {

namespace {

std::uint64_t point_hash(int node, int replica) {
  char label[48];
  const int len = std::snprintf(label, sizeof(label), "node-%d/%d", node,
                                replica);
  return serde::fnv1a64(label, static_cast<std::size_t>(len));
}

/// Keys are session hashes (already FNV-1a), but their low bits correlate;
/// re-hash through the same FNV so a key lands uniformly on the ring.
std::uint64_t key_hash(std::uint64_t key) {
  return serde::fnv1a64(&key, sizeof(key));
}

}  // namespace

HashRing::HashRing(int nodes, int replicas) : nodes_(nodes) {
  DOSEOPT_CHECK(nodes >= 1, "fleet: hash ring needs at least one node");
  DOSEOPT_CHECK(replicas >= 1, "fleet: hash ring needs at least one replica");
  points_.reserve(static_cast<std::size_t>(nodes) *
                  static_cast<std::size_t>(replicas));
  for (int node = 0; node < nodes; ++node)
    for (int replica = 0; replica < replicas; ++replica)
      points_.push_back(Point{point_hash(node, replica), node});
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break by node so equal hashes (astronomically rare but
              // possible) still order deterministically.
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

std::size_t HashRing::first_point(std::uint64_t key) const {
  const std::uint64_t h = key_hash(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  return it == points_.end() ? 0 : static_cast<std::size_t>(
                                       it - points_.begin());
}

int HashRing::owner(std::uint64_t key) const {
  return points_[first_point(key)].node;
}

int HashRing::owner(std::uint64_t key,
                    const std::vector<bool>& alive) const {
  DOSEOPT_CHECK(alive.size() == static_cast<std::size_t>(nodes_),
                "fleet: alive mask size mismatch");
  const std::size_t start = first_point(key);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[(start + i) % points_.size()];
    if (alive[static_cast<std::size_t>(p.node)]) return p.node;
  }
  return -1;
}

}  // namespace doseopt::fleet
