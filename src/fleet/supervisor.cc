#include "fleet/supervisor.h"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "serde/result_store.h"
#include "serve/client.h"

extern char** environ;

namespace doseopt::fleet {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool executable(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const std::string exe(buf);
  const std::size_t slash = exe.find_last_of('/');
  return slash == std::string::npos ? "" : exe.substr(0, slash);
}

}  // namespace

std::string Supervisor::discover_server_bin() {
  if (const char* env = std::getenv("DOSEOPT_SERVER_BIN");
      env != nullptr && env[0] != '\0') {
    if (executable(env)) return env;
    throw Error(std::string("fleet: $DOSEOPT_SERVER_BIN is not executable: ") +
                env);
  }
  const std::string dir = self_dir();
  if (!dir.empty()) {
    // Same directory (tools/ binaries), then sibling tools/ (test binaries
    // live in build/tests, the server in build/tools).
    for (const std::string& candidate :
         {dir + "/doseopt_server", dir + "/../tools/doseopt_server"})
      if (executable(candidate)) return candidate;
  }
  throw Error("fleet: cannot locate doseopt_server (set $DOSEOPT_SERVER_BIN)");
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  DOSEOPT_CHECK(options_.workers >= 1, "fleet: need at least one worker");
  DOSEOPT_CHECK(!options_.runtime_dir.empty(),
                "fleet: supervisor needs a runtime_dir");
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  DOSEOPT_CHECK(!running_.load(std::memory_order_acquire),
                "fleet: supervisor already started");
  if (options_.server_bin.empty())
    options_.server_bin = discover_server_bin();
  std::filesystem::create_directories(options_.runtime_dir);
  // A previous fleet that died between write and rename leaks temp files
  // into the shared snapshot/result dirs; reclaim provably-dead writers'
  // leftovers before any worker starts publishing.
  if (!options_.snapshot_dir.empty())
    serde::reclaim_stale_tmp_files(options_.snapshot_dir);
  if (!options_.result_store_dir.empty())
    serde::reclaim_stale_tmp_files(options_.result_store_dir);

  workers_.clear();
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->socket =
        options_.runtime_dir + "/worker" + std::to_string(i) + ".sock";
    workers_.push_back(std::move(worker));
  }

  running_.store(true, std::memory_order_release);
  try {
    for (const auto& worker : workers_) {
      {
        std::lock_guard<std::mutex> lock(pids_mu_);
        spawn(*worker);
      }
      wait_ready(*worker);
    }
  } catch (...) {
    running_.store(false, std::memory_order_release);
    stop();
    throw;
  }
  monitor_ = std::thread([this] { monitor_loop(); });
  if (options_.verbose)
    std::fprintf(stderr, "[fleet] %d workers up (%s)\n", options_.workers,
                 options_.server_bin.c_str());
}

void Supervisor::stop() {
  running_.store(false, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();

  // Graceful first: SIGTERM triggers the server's drain (queued jobs
  // finish, sessions snapshot).  Stragglers get SIGKILL after the bound.
  std::lock_guard<std::mutex> lock(pids_mu_);
  for (const auto& worker : workers_)
    if (worker->pid > 0) ::kill(worker->pid, SIGTERM);
  const auto deadline_start = std::chrono::steady_clock::now();
  for (const auto& worker : workers_) {
    while (worker->pid > 0) {
      const pid_t reaped = ::waitpid(worker->pid, nullptr, WNOHANG);
      if (reaped == worker->pid || (reaped < 0 && errno == ECHILD)) {
        worker->pid = -1;
        worker->alive.store(false, std::memory_order_release);
        break;
      }
      if (ms_since(deadline_start) > 5000.0) {
        ::kill(worker->pid, SIGKILL);
        ::waitpid(worker->pid, nullptr, 0);
        worker->pid = -1;
        worker->alive.store(false, std::memory_order_release);
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

const std::string& Supervisor::worker_socket(int i) const {
  return workers_.at(static_cast<std::size_t>(i))->socket;
}

bool Supervisor::alive(int i) const {
  return workers_.at(static_cast<std::size_t>(i))
      ->alive.load(std::memory_order_acquire);
}

std::uint64_t Supervisor::generation(int i) const {
  return workers_.at(static_cast<std::size_t>(i))
      ->generation.load(std::memory_order_acquire);
}

std::uint64_t Supervisor::respawns(int i) const {
  return workers_.at(static_cast<std::size_t>(i))
      ->respawns.load(std::memory_order_acquire);
}

std::uint64_t Supervisor::total_respawns() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_)
    total += worker->respawns.load(std::memory_order_acquire);
  return total;
}

std::vector<bool> Supervisor::alive_mask() const {
  std::vector<bool> mask;
  mask.reserve(workers_.size());
  for (const auto& worker : workers_)
    mask.push_back(worker->alive.load(std::memory_order_acquire));
  return mask;
}

void Supervisor::kill_worker(int i) {
  std::lock_guard<std::mutex> lock(pids_mu_);
  Worker& worker = *workers_.at(static_cast<std::size_t>(i));
  if (worker.pid <= 0) return;
  if (options_.verbose)
    std::fprintf(stderr, "[fleet] killing worker %d (pid %d)\n", i,
                 static_cast<int>(worker.pid));
  worker.alive.store(false, std::memory_order_release);
  ::kill(worker.pid, SIGKILL);
  // The monitor reaps and respawns.
}

void Supervisor::spawn(Worker& worker) {
  // Everything the child needs is materialized before fork(): this parent
  // is multithreaded, so between fork and exec only async-signal-safe
  // calls (execv, _exit) are allowed.
  std::vector<std::string> args = {
      options_.server_bin,
      "--socket", worker.socket,
      "--lanes", std::to_string(options_.lanes),
      "--queue", std::to_string(options_.queue_capacity),
  };
  if (!options_.snapshot_dir.empty()) {
    args.push_back("--snapshot-dir");
    args.push_back(options_.snapshot_dir);
  }
  if (!options_.result_store_dir.empty()) {
    args.push_back("--result-cache");
    args.push_back(options_.result_store_dir);
  }
  if (options_.eager_snapshots) args.push_back("--eager-snapshots");
  if (options_.crash_faults) args.push_back("--crash-faults");
  if (options_.verbose) args.push_back("--verbose");
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  // Environment: inherit, except DOSEOPT_FAULTS.  Generation 0 gets
  // `worker_faults` (or the inherited value); a respawned worker gets the
  // variable REMOVED -- re-arming the fault that killed its predecessor
  // (hit counters are per-process) would crash-loop the fleet forever.
  // The replacement process models post-crash recovery, not the crash.
  const bool first_generation =
      worker.generation.load(std::memory_order_relaxed) == 0;
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "DOSEOPT_FAULTS=", 15) == 0) continue;
    env_storage.emplace_back(*e);
  }
  if (first_generation) {
    if (!options_.worker_faults.empty())
      env_storage.push_back("DOSEOPT_FAULTS=" + options_.worker_faults);
    else if (const char* inherited = std::getenv("DOSEOPT_FAULTS");
             inherited != nullptr && inherited[0] != '\0')
      env_storage.push_back(std::string("DOSEOPT_FAULTS=") + inherited);
  }
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (auto& e : env_storage) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw Error(std::string("fleet: fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    // Die with the supervisor: an embedded fleet whose driver is SIGKILLed
    // (the campaign crash drills do exactly that) must not leak workers.
    // prctl is async-signal-safe; a failure just loses the tether.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::execve(argv[0], argv.data(), envp.data());
    _exit(127);  // exec failed; async-signal-safe exit only
  }
  worker.pid = pid;
}

void Supervisor::wait_ready(Worker& worker) {
  const auto t0 = std::chrono::steady_clock::now();
  serve::ClientOptions copts;
  copts.connect_timeout_ms = 250;
  copts.io_timeout_ms = 2000;
  while (true) {
    try {
      serve::Client probe =
          serve::Client::connect_unix_path(worker.socket, copts);
      probe.ping();
      worker.alive.store(true, std::memory_order_release);
      return;
    } catch (const std::exception&) {
      if (ms_since(t0) > options_.ready_timeout_ms)
        throw Error("fleet: worker on " + worker.socket +
                    " not ready after " +
                    std::to_string(options_.ready_timeout_ms) + "ms");
      ::usleep(20 * 1000);
    }
  }
}

void Supervisor::monitor_loop() {
  while (running_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& worker = *workers_[i];
      bool dead = false;
      {
        std::lock_guard<std::mutex> lock(pids_mu_);
        if (worker.pid <= 0) continue;
        int status = 0;
        const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
        if (reaped == worker.pid) {
          dead = true;
          worker.pid = -1;
          worker.alive.store(false, std::memory_order_release);
          if (options_.verbose)
            std::fprintf(stderr, "[fleet] worker %zu died (status 0x%x)\n", i,
                         static_cast<unsigned>(status));
        }
      }
      if (!dead || !running_.load(std::memory_order_acquire)) continue;
      worker.generation.fetch_add(1, std::memory_order_acq_rel);
      worker.respawns.fetch_add(1, std::memory_order_acq_rel);
      try {
        {
          std::lock_guard<std::mutex> lock(pids_mu_);
          spawn(worker);
        }
        wait_ready(worker);
        if (options_.verbose)
          std::fprintf(stderr, "[fleet] worker %zu respawned (pid %d)\n", i,
                       static_cast<int>(worker.pid));
      } catch (const std::exception& e) {
        // Leave the worker marked dead; the ring routes around it and the
        // next monitor pass retries the respawn if the process died again.
        std::fprintf(stderr, "[fleet] respawn of worker %zu failed: %s\n", i,
                     e.what());
      }
    }
    ::usleep(50 * 1000);
  }
}

}  // namespace doseopt::fleet
