// Consistent hash ring for session -> worker routing.
//
// Each worker contributes `replicas` virtual points to a ring keyed by
// FNV-1a hashes; a session key is owned by the first point clockwise from
// the key's own hash.  Virtual points smooth the load split (a single
// point per node would give wildly uneven arcs), and consistency bounds
// churn: removing a node re-routes only the sessions it owned, everyone
// else keeps their worker -- which is what keeps session caches warm
// across fleet resizes.
//
// The ring is immutable after construction; liveness is handled at lookup
// time by the alive-mask overload, which walks clockwise past points of
// dead nodes.  That keeps routing a pure function of (key, node count,
// alive set) -- every router instance with the same view picks the same
// worker, no coordination needed.
#pragma once

#include <cstdint>
#include <vector>

namespace doseopt::fleet {

class HashRing {
 public:
  /// Ring over nodes [0, nodes); throws doseopt::Error when nodes < 1.
  explicit HashRing(int nodes, int replicas = 64);

  int nodes() const { return nodes_; }

  /// Owner of `key`: the node of the first virtual point clockwise.
  int owner(std::uint64_t key) const;

  /// Owner of `key` skipping nodes whose alive flag is false.  Returns -1
  /// when no node is alive.  `alive` must have one entry per node.
  int owner(std::uint64_t key, const std::vector<bool>& alive) const;

 private:
  struct Point {
    std::uint64_t hash;
    int node;
  };

  /// Index of the first point at or clockwise of `key`'s hash.
  std::size_t first_point(std::uint64_t key) const;

  int nodes_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace doseopt::fleet
