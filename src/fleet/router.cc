#include "fleet/router.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string_view>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "faultinject/fault.h"
#include "serde/journal.h"
#include "serde/result_store.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace doseopt::fleet {

using serve::Frame;
using serve::Json;
using serve::MsgType;

namespace {

/// Fires in the router's forward path, after a worker was chosen but
/// before the frame goes out -- models a link torn mid-route.  The router
/// treats a firing exactly like a real transport failure: discard the
/// link, back off, replay.
faultinject::FaultPoint g_fault_route_drop("fleet.route_drop");

/// Fires in the forward path after a link is acquired: sleeps
/// stall_inject_ms while holding the link, modeling a worker that is alive
/// but wedged -- the scenario hedged requests exist to cut the tail of.
faultinject::FaultPoint g_fault_worker_stall("fleet.worker_stall");

/// Thrown by forward_leg when the target pool stays saturated past the
/// acquire bound; not a std::exception on purpose, so the replay catch
/// cannot swallow it (a shed answers the client immediately).
struct RouterShed {};

/// Thrown by forward_leg when the job's deadline budget is exhausted at
/// submit time; like RouterShed, deliberately not a std::exception so it
/// cannot be mistaken for a transport failure and replayed.
struct RouterExpired {};

double ms_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

void ensure_fleet_fault_points_linked() {
  // Touch one symbol per translation unit that hosts a fleet.* fault
  // point; a static-library member with no referenced symbol is dropped by
  // the linker, and its points would never register.
  (void)g_fault_route_drop.name();    // this TU: fleet.route_drop + worker_stall
  (void)serde::result_path(".", 0);               // serde: fleet.cache_corrupt
  (void)serde::journal_segment_path(".", 0);      // serde: campaign.journal_torn
}

Router::Router(RouterOptions options, Supervisor& supervisor)
    : options_(std::move(options)),
      supervisor_(supervisor),
      ring_(supervisor.workers(), options_.ring_replicas) {
  DOSEOPT_CHECK(options_.links_per_worker >= 1,
                "fleet: links_per_worker must be >= 1");
  pools_.reserve(static_cast<std::size_t>(supervisor_.workers()));
  hist_forward_.reserve(static_cast<std::size_t>(supervisor_.workers()));
  for (int i = 0; i < supervisor_.workers(); ++i) {
    pools_.push_back(std::make_unique<LinkPool>());
    hist_forward_.push_back(std::make_unique<serve::LatencyHistogram>());
  }
}

Router::~Router() { stop(); }

void Router::start() {
  DOSEOPT_CHECK(!running(), "fleet: router already started");
  DOSEOPT_CHECK(!options_.uds_path.empty() || options_.tcp_port >= 0,
                "fleet: router needs uds_path and/or tcp_port");
  stopping_.store(false, std::memory_order_release);
  shutdown_requested_.store(false, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();

  if (!options_.uds_path.empty())
    uds_fd_ = serve::listen_unix(options_.uds_path);
  if (options_.tcp_port >= 0)
    tcp_fd_ = serve::listen_tcp(options_.tcp_port, &tcp_port_);

  if (uds_fd_ >= 0)
    accept_threads_.emplace_back([this, fd = uds_fd_] { accept_loop(fd); });
  if (tcp_fd_ >= 0)
    accept_threads_.emplace_back([this, fd = tcp_fd_] { accept_loop(fd); });
  running_.store(true, std::memory_order_release);
  if (options_.verbose)
    std::fprintf(stderr, "[fleet] router up (%d workers, %d links each)\n",
                 supervisor_.workers(), options_.links_per_worker);
}

void Router::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  if (uds_fd_ >= 0) serve::close_socket(std::exchange(uds_fd_, -1));
  if (tcp_fd_ >= 0) serve::close_socket(std::exchange(tcp_fd_, -1));
  for (auto& t : accept_threads_) t.join();
  accept_threads_.clear();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns)
    if (conn->open.load(std::memory_order_acquire))
      ::shutdown(conn->fd, SHUT_RDWR);
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();

  // Detached hedge legs may still hold links (their job already answered);
  // wait them out before invalidating the pools they release into.
  while (inflight_legs_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  for (auto& pool : pools_) {
    std::lock_guard<std::mutex> lock(pool->mu);
    pool->idle.clear();
    pool->outstanding = 0;
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  if (options_.verbose) std::fprintf(stderr, "[fleet] router stopped\n");
}

void Router::wait_for_shutdown() const {
  while (!shutdown_requested_.load(std::memory_order_acquire) &&
         running_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void Router::accept_loop(int listen_fd) {
  int consecutive_errors = 0;
  while (true) {
    int fd = -1;
    try {
      fd = serve::accept_connection(listen_fd);
    } catch (const std::exception& e) {
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      if (options_.verbose)
        std::fprintf(stderr, "[fleet] accept error: %s\n", e.what());
      if (++consecutive_errors >= 16) return;
      continue;
    }
    consecutive_errors = 0;
    if (fd < 0) return;
    if (stopping_.load(std::memory_order_acquire)) {
      serve::close_socket(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Router::reader_loop(const std::shared_ptr<Connection>& conn) {
  try {
    Frame frame;
    while (serve::read_frame(conn->fd, &frame)) {
      switch (frame.type) {
        case MsgType::kPing:
          reply(conn, static_cast<std::uint32_t>(MsgType::kPong),
                Json::object());
          break;
        case MsgType::kJobRequest:
          handle_job(conn, frame.payload);
          break;
        case MsgType::kMetricsRequest:
          reply(conn, static_cast<std::uint32_t>(MsgType::kMetricsReply),
                metrics());
          break;
        case MsgType::kShutdown:
          if (options_.verbose)
            std::fprintf(stderr, "[fleet] shutdown requested by client\n");
          request_shutdown();
          break;
        default: {
          Json err = Json::object();
          err.set("error", Json::string("unexpected frame type"));
          reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose)
      std::fprintf(stderr, "[fleet] connection error: %s\n", e.what());
    Json err = Json::object();
    err.set("error", Json::string(e.what()));
    err.set("protocol_error", Json::boolean(true));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
  }
  conn->open.store(false, std::memory_order_release);
  serve::close_socket(conn->fd);
}

std::optional<serve::Client> Router::acquire_link(int worker) {
  LinkPool& pool = *pools_[static_cast<std::size_t>(worker)];
  std::unique_lock<std::mutex> lock(pool.mu);
  // A respawned worker invalidates every idle link (they point at the dead
  // process); reset the pool to the new generation.
  const std::uint64_t generation = supervisor_.generation(worker);
  if (pool.generation != generation) {
    pool.outstanding -= static_cast<int>(pool.idle.size());
    pool.idle.clear();
    pool.generation = generation;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<long>(
          options_.link_acquire_timeout_ms * 1000.0));
  while (pool.idle.empty() && pool.outstanding >= options_.links_per_worker) {
    if (pool.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        pool.idle.empty() && pool.outstanding >= options_.links_per_worker)
      return std::nullopt;  // saturated: caller sheds
  }
  if (!pool.idle.empty()) {
    serve::Client link = std::move(pool.idle.back());
    pool.idle.pop_back();
    return link;
  }
  ++pool.outstanding;
  lock.unlock();
  try {
    // No io timeout: a job may legitimately run long; a dead worker closes
    // the socket, which surfaces as EOF immediately.
    serve::ClientOptions copts;
    copts.connect_timeout_ms = 1000;
    return serve::Client::connect_unix_path(
        supervisor_.worker_socket(worker), copts);
  } catch (...) {
    lock.lock();
    --pool.outstanding;
    pool.cv.notify_one();
    throw;
  }
}

void Router::release_link(int worker, serve::Client link) {
  LinkPool& pool = *pools_[static_cast<std::size_t>(worker)];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.generation == supervisor_.generation(worker) && link.connected())
    pool.idle.push_back(std::move(link));
  else
    --pool.outstanding;  // stale or broken: drop instead of recycling
  pool.cv.notify_one();
}

void Router::discard_link(int worker) {
  LinkPool& pool = *pools_[static_cast<std::size_t>(worker)];
  std::lock_guard<std::mutex> lock(pool.mu);
  --pool.outstanding;
  pool.cv.notify_one();
}

serve::Client::Reply Router::forward_leg(
    int worker, const serve::JobSpec& spec,
    std::chrono::steady_clock::time_point t0) {
  auto link = acquire_link(worker);
  if (!link.has_value()) throw RouterShed{};
  try {
    if (g_fault_worker_stall.should_fire()) {
      // A wedged-but-alive worker: hold the link and go quiet.  Sleeping
      // *before* the timed submit keeps the stall out of hist_forward_, so
      // the adaptive hedge delay keeps tracking healthy latency.
      stalls_injected_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<long>(options_.stall_inject_ms * 1000.0)));
    }
    faultinject::maybe_throw(g_fault_route_drop, "route");
    // Each leg -- first attempt, replay, or hedge -- gets the budget that
    // is actually left, so a replayed job cannot spend 2x its deadline.
    serve::JobSpec fwd = spec;
    if (spec.deadline_ms > 0.0) {
      const double remaining =
          spec.deadline_ms - ms_since(t0, std::chrono::steady_clock::now());
      if (remaining <= 0.0) throw RouterExpired{};
      fwd.deadline_ms = remaining;
    }
    const auto t_submit = std::chrono::steady_clock::now();
    serve::Client::Reply r = link->submit(fwd);
    hist_forward_[static_cast<std::size_t>(worker)]->record(
        ms_since(t_submit, std::chrono::steady_clock::now()));
    release_link(worker, std::move(*link));
    return r;
  } catch (...) {
    discard_link(worker);
    throw;
  }
}

double Router::hedge_delay_ms(int worker) const {
  const serve::LatencyHistogram& hist =
      *hist_forward_[static_cast<std::size_t>(worker)];
  if (hist.count() < static_cast<std::uint64_t>(options_.hedge_min_samples))
    return options_.hedge_max_ms;
  return std::clamp(options_.hedge_factor * hist.quantile_ms(0.99),
                    options_.hedge_min_ms, options_.hedge_max_ms);
}

serve::Client::Reply Router::forward_hedged(
    int worker, const serve::JobSpec& spec,
    std::chrono::steady_clock::time_point t0) {
  if (!options_.hedge_enabled) return forward_leg(worker, spec, t0);

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    int legs_done = 0;
    bool have_result = false;    ///< some leg produced a kJobResult
    int result_leg = -1;
    std::string winner_norm;     ///< normalized dump of the winning result
    serve::Client::Reply reply[2];
    bool have_reply[2] = {false, false};
    std::exception_ptr err[2];
  };
  auto st = std::make_shared<State>();

  // Legs run detached: the winner's reply must go out while the loser is
  // still in flight.  inflight_legs_ keeps stop() from tearing down the
  // link pools under a straggler; the shared_ptr keeps the state alive.
  auto launch_leg = [this, st, spec, t0](int leg, int target) {
    inflight_legs_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, st, spec, t0, leg, target] {
      serve::Client::Reply r;
      std::exception_ptr err;
      try {
        r = forward_leg(target, spec, t0);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(st->mu);
        if (err != nullptr) {
          st->err[leg] = err;
        } else {
          st->reply[leg] = std::move(r);
          st->have_reply[leg] = true;
          if (st->reply[leg].type == MsgType::kJobResult) {
            const std::string norm =
                serve::normalized_result(st->reply[leg].payload.get("result"))
                    .dump();
            if (!st->have_result) {
              st->have_result = true;
              st->result_leg = leg;
              st->winner_norm = norm;
              if (leg == 1)
                hedges_won_.fetch_add(1, std::memory_order_relaxed);
            } else if (norm != st->winner_norm) {
              // Deterministic, content-addressed jobs make this impossible
              // short of a real bug; the chaos soak asserts it stays zero.
              hedge_mismatches_.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        ++st->legs_done;
      }
      st->cv.notify_all();
      inflight_legs_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  };

  launch_leg(0, worker);
  int legs = 1;
  const double delay_ms = hedge_delay_ms(worker);
  std::unique_lock<std::mutex> lock(st->mu);
  const auto primary_settled = [&] {
    return st->have_result || st->have_reply[0] || st->err[0] != nullptr;
  };
  if (!st->cv.wait_for(lock,
                       std::chrono::microseconds(
                           static_cast<long>(delay_ms * 1000.0)),
                       primary_settled)) {
    // Primary is stalling.  Duplicate to the ring's alternate owner (the
    // primary masked out of the alive set); safe because results are
    // content-addressed and deterministic -- both workers publish
    // bit-identical documents to the shared store.
    std::vector<bool> mask = supervisor_.alive_mask();
    mask[static_cast<std::size_t>(worker)] = false;
    const int alternate = ring_.owner(spec.session_key(), mask);
    if (alternate >= 0 && alternate != worker) {
      hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      launch_leg(1, alternate);
      lock.lock();
      legs = 2;
      if (options_.verbose)
        std::fprintf(stderr, "[fleet] hedging '%s' %d -> %d after %.0f ms\n",
                     spec.id.c_str(), worker, alternate, delay_ms);
    } else {
      hedges_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // First result wins immediately.  With no result, defer to the primary
  // leg's verdict (kJobRejected/kJobError relay untouched; transport
  // errors replay) exactly as the unhedged path would -- unless only the
  // hedge leg is still running and the primary already failed, in which
  // case a late hedge result can still save the job.
  st->cv.wait(lock, [&] {
    return st->have_result ||
           (st->have_reply[0] || st->err[0] != nullptr) ||
           st->legs_done == legs;
  });
  if (st->have_result) return st->reply[st->result_leg];
  if (st->have_reply[0]) return st->reply[0];
  if (st->err[0] != nullptr) std::rethrow_exception(st->err[0]);
  // Both legs done, no result, primary never reported: hedge leg only.
  if (st->have_reply[1]) return st->reply[1];
  std::rethrow_exception(st->err[1]);
}

void Router::handle_job(const std::shared_ptr<Connection>& conn,
                        const std::string& payload) {
  const auto t0 = std::chrono::steady_clock::now();
  serve::JobSpec spec;
  try {
    spec = serve::JobSpec::from_json(Json::parse(payload));
  } catch (const std::exception& e) {
    Json err = Json::object();
    err.set("error", Json::string(e.what()));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
    return;
  }
  jobs_accepted_.fetch_add(1, std::memory_order_relaxed);

  const auto shed = [&](double retry_after_ms) {
    jobs_shed_.fetch_add(1, std::memory_order_relaxed);
    Json r = Json::object();
    if (!spec.id.empty()) r.set("id", Json::string(spec.id));
    r.set("retry_after_ms", Json::number(retry_after_ms));
    r.set("router_shed", Json::boolean(true));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobRejected), r);
  };
  if (stopping_.load(std::memory_order_acquire)) {
    shed(options_.retry_after_ms);
    return;
  }

  const std::uint64_t session_key = spec.session_key();
  std::string last_error = "no worker alive";
  const int max_attempts = std::max(1, options_.forward_max_attempts);
  const auto expire = [&] {
    jobs_expired_.fetch_add(1, std::memory_order_relaxed);
    Json err = Json::object();
    if (!spec.id.empty()) err.set("id", Json::string(spec.id));
    err.set("error", Json::string("deadline exceeded during routing"));
    err.set("expired", Json::boolean(true));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
  };
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!conn->open.load(std::memory_order_acquire)) return;
    if (spec.deadline_ms > 0.0 &&
        ms_since(t0, std::chrono::steady_clock::now()) > spec.deadline_ms) {
      expire();
      return;
    }
    const int worker = ring_.owner(session_key, supervisor_.alive_mask());
    if (worker >= 0) {
      try {
        jobs_forwarded_.fetch_add(1, std::memory_order_relaxed);
        const serve::Client::Reply r = forward_hedged(worker, spec, t0);
        // Worker verdicts relay untouched: backpressure (retry_after_ms,
        // breaker_open) and errors must reach the client as-is.
        switch (r.type) {
          case MsgType::kJobResult:
            jobs_completed_.fetch_add(1, std::memory_order_relaxed);
            break;
          case MsgType::kJobRejected:
            rejects_relayed_.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors_relayed_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // Record before replying: a client that reads its reply and
        // immediately polls metrics must already see this route counted.
        hist_route_.record(ms_since(t0, std::chrono::steady_clock::now()));
        reply(conn, static_cast<std::uint32_t>(r.type), r.payload);
        return;
      } catch (const RouterShed&) {
        shed(options_.retry_after_ms);
        return;
      } catch (const RouterExpired&) {
        expire();
        return;
      } catch (const std::exception& e) {
        // Transport failure: the worker died mid-job, the link tore, or
        // fleet.route_drop fired.  Count it and fall through to the
        // backoff + replay below; the memoized result store makes the
        // replay bit-identical even when the worker had already solved.
        last_error = e.what();
        jobs_replayed_.fetch_add(1, std::memory_order_relaxed);
        if (std::string_view(e.what()).find("[fault:fleet.route_drop]") !=
            std::string_view::npos)
          route_drops_.fetch_add(1, std::memory_order_relaxed);
        if (options_.verbose)
          std::fprintf(stderr, "[fleet] replay '%s' (attempt %d): %s\n",
                       spec.id.c_str(), attempt, e.what());
      }
    }
    // Deterministic backoff, a pure function of (job, attempt): replayed
    // runs schedule identically.  Also rides out the respawn window when
    // no worker currently owns the key.
    Rng jitter(spec.job_key() ^ static_cast<std::uint64_t>(attempt));
    const double wait_ms =
        options_.forward_backoff_ms * (0.5 + 0.5 * jitter.uniform());
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(wait_ms * 1000.0)));
  }
  Json err = Json::object();
  if (!spec.id.empty()) err.set("id", Json::string(spec.id));
  err.set("error", Json::string("fleet: forward attempts exhausted: " +
                                last_error));
  reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
}

void Router::reply(const std::shared_ptr<Connection>& conn,
                   std::uint32_t type, const Json& payload) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    serve::write_frame(conn->fd, static_cast<MsgType>(type), payload.dump());
  } catch (const std::exception& e) {
    conn->open.store(false, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    if (options_.verbose)
      std::fprintf(stderr, "[fleet] dropped reply: %s\n", e.what());
  }
}

Json Router::metrics() {
  Json m = Json::object();
  const auto n = [](const std::atomic<std::uint64_t>& a) {
    return Json::number(
        static_cast<double>(a.load(std::memory_order_relaxed)));
  };
  Json router = Json::object();
  router.set("workers", Json::number(supervisor_.workers()));
  router.set("links_per_worker", Json::number(options_.links_per_worker));
  router.set("accepted", n(jobs_accepted_));
  router.set("forwarded", n(jobs_forwarded_));
  router.set("completed", n(jobs_completed_));
  router.set("replayed", n(jobs_replayed_));
  router.set("shed", n(jobs_shed_));
  router.set("rejects_relayed", n(rejects_relayed_));
  router.set("errors_relayed", n(errors_relayed_));
  router.set("route_drops", n(route_drops_));
  router.set("expired", n(jobs_expired_));
  router.set("protocol_errors", n(protocol_errors_));
  router.set("accept_errors", n(accept_errors_));
  router.set("hedge_enabled", Json::boolean(options_.hedge_enabled));
  router.set("hedges_launched", n(hedges_launched_));
  router.set("hedges_won", n(hedges_won_));
  router.set("hedges_skipped", n(hedges_skipped_));
  router.set("hedge_mismatches", n(hedge_mismatches_));
  router.set("stalls_injected", n(stalls_injected_));
  router.set("respawns",
             Json::number(static_cast<double>(supervisor_.total_respawns())));
  router.set("route_latency", hist_route_.to_json());
  router.set("uptime_ms",
             Json::number(ms_since(start_time_,
                                   std::chrono::steady_clock::now())));
  m.set("router", std::move(router));

  // Per-worker telemetry, fetched over short-lived bounded connections so
  // a wedged worker cannot hang the metrics path.
  Json workers = Json::array();
  for (int i = 0; i < supervisor_.workers(); ++i) {
    Json w = Json::object();
    w.set("index", Json::number(i));
    w.set("socket", Json::string(supervisor_.worker_socket(i)));
    w.set("alive", Json::boolean(supervisor_.alive(i)));
    w.set("respawns",
          Json::number(static_cast<double>(supervisor_.respawns(i))));
    w.set("forward_latency",
          hist_forward_[static_cast<std::size_t>(i)]->to_json());
    if (supervisor_.alive(i)) {
      try {
        serve::ClientOptions copts;
        copts.connect_timeout_ms = 500;
        copts.io_timeout_ms = 2000;
        serve::Client probe = serve::Client::connect_unix_path(
            supervisor_.worker_socket(i), copts);
        w.set("metrics", probe.metrics());
      } catch (const std::exception& e) {
        w.set("metrics_error", Json::string(e.what()));
      }
    }
    workers.push_back(std::move(w));
  }
  m.set("workers", std::move(workers));
  return m;
}

}  // namespace doseopt::fleet
