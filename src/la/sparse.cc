#include "la/sparse.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace doseopt::la {

namespace {
// Below these sizes the fan-out overhead dominates; the products run
// serially (which is also what every thread count degenerates to, so the
// threshold cannot affect results).
constexpr std::size_t kParallelDim = 512;
constexpr std::size_t kParallelNnz = 16384;

inline bool use_pool(std::size_t dim, std::size_t nnz) {
  return dim >= kParallelDim && nnz >= kParallelNnz &&
         ThreadPool::global().lane_count() > 1;
}
}  // namespace

void TripletMatrix::add(std::size_t r, std::size_t c, double v) {
  DOSEOPT_CHECK(r < rows_ && c < cols_, "TripletMatrix::add: out of bounds");
  row_.push_back(r);
  col_.push_back(c);
  values_.push_back(v);
}

CsrMatrix::CsrMatrix(const TripletMatrix& t) : rows_(t.rows()), cols_(t.cols()) {
  DOSEOPT_CHECK(cols_ <= UINT32_MAX, "CsrMatrix: too many columns");
  const auto& tr = t.row_indices();
  const auto& tc = t.col_indices();
  const auto& tv = t.values();
  const std::size_t n = tv.size();

  // Counting sort by row.
  std::vector<std::size_t> count(rows_ + 1, 0);
  for (std::size_t k = 0; k < n; ++k) count[tr[k] + 1]++;
  std::partial_sum(count.begin(), count.end(), count.begin());
  row_ptr_ = count;

  std::vector<std::uint32_t> cols(n);
  std::vector<double> vals(n);
  {
    std::vector<std::size_t> next = row_ptr_;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t pos = next[tr[k]]++;
      cols[pos] = static_cast<std::uint32_t>(tc[k]);
      vals[pos] = tv[k];
    }
  }

  // Within each row: sort by column and merge duplicates.
  col_idx_.reserve(n);
  val_.reserve(n);
  std::vector<std::size_t> perm;
  std::vector<std::size_t> new_ptr(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t lo = row_ptr_[r], hi = row_ptr_[r + 1];
    perm.resize(hi - lo);
    std::iota(perm.begin(), perm.end(), lo);
    std::sort(perm.begin(), perm.end(), [&cols](std::size_t a, std::size_t b) {
      return cols[a] < cols[b];
    });
    for (std::size_t k : perm) {
      if (!col_idx_.empty() && val_.size() > new_ptr[r] &&
          col_idx_.back() == cols[k]) {
        val_.back() += vals[k];
      } else {
        col_idx_.push_back(cols[k]);
        val_.push_back(vals[k]);
      }
    }
    new_ptr[r + 1] = val_.size();
  }
  row_ptr_ = std::move(new_ptr);

  build_transpose();
}

void CsrMatrix::build_transpose() {
  const std::size_t n = val_.size();
  tr_ptr_.assign(cols_ + 1, 0);
  for (std::size_t k = 0; k < n; ++k) tr_ptr_[col_idx_[k] + 1]++;
  std::partial_sum(tr_ptr_.begin(), tr_ptr_.end(), tr_ptr_.begin());
  tr_row_.resize(n);
  tr_val_.resize(n);
  std::vector<std::size_t> next(tr_ptr_.begin(), tr_ptr_.end() - 1);
  // Row-major traversal => within each column, entries land in ascending
  // row order.
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t pos = next[col_idx_[k]]++;
      tr_row_[pos] = static_cast<std::uint32_t>(r);
      tr_val_[pos] = val_[k];
    }
  }
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  DOSEOPT_CHECK(x.size() == cols_, "multiply: x size mismatch");
  y.assign(rows_, 0.0);
  auto row_kernel = [&](std::size_t r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += val_[k] * x[col_idx_[k]];
    y[r] = s;
  };
  if (use_pool(rows_, val_.size())) {
    ThreadPool::global().parallel_for(rows_, row_kernel);
  } else {
    for (std::size_t r = 0; r < rows_; ++r) row_kernel(r);
  }
}

void CsrMatrix::multiply_transpose(const Vec& x, Vec& y) const {
  DOSEOPT_CHECK(x.size() == rows_, "multiply_transpose: x size mismatch");
  y.assign(cols_, 0.0);
  auto col_kernel = [&](std::size_t c) {
    double s = 0.0;
    for (std::size_t k = tr_ptr_[c]; k < tr_ptr_[c + 1]; ++k)
      s += tr_val_[k] * x[tr_row_[k]];
    y[c] = s;
  };
  if (use_pool(cols_, val_.size())) {
    ThreadPool::global().parallel_for(cols_, col_kernel);
  } else {
    for (std::size_t c = 0; c < cols_; ++c) col_kernel(c);
  }
}

void CsrMatrix::add_gram_product(double alpha, const Vec& x, Vec& y,
                                 Vec& scratch) const {
  DOSEOPT_CHECK(y.size() == cols_, "add_gram_product: y size mismatch");
  multiply(x, scratch);
  auto col_kernel = [&](std::size_t c) {
    double s = y[c];
    for (std::size_t k = tr_ptr_[c]; k < tr_ptr_[c + 1]; ++k)
      s += tr_val_[k] * (alpha * scratch[tr_row_[k]]);
    y[c] = s;
  };
  if (use_pool(cols_, val_.size())) {
    ThreadPool::global().parallel_for(cols_, col_kernel);
  } else {
    for (std::size_t c = 0; c < cols_; ++c) col_kernel(c);
  }
}

Vec CsrMatrix::gram_diagonal() const {
  Vec d(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (std::size_t k = tr_ptr_[c]; k < tr_ptr_[c + 1]; ++k)
      s += tr_val_[k] * tr_val_[k];
    d[c] = s;
  }
  return d;
}

void CsrMatrix::append_rows(const std::vector<Row>& rows) {
  if (row_ptr_.empty()) row_ptr_.push_back(0);  // default-constructed
  for (const Row& row : rows) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      DOSEOPT_CHECK(row[k].first < cols_, "append_rows: column out of range");
      DOSEOPT_CHECK(k == 0 || row[k - 1].first < row[k].first,
                    "append_rows: row entries must be sorted and merged");
      col_idx_.push_back(row[k].first);
      val_.push_back(row[k].second);
    }
    ++rows_;
    row_ptr_.push_back(val_.size());
  }
  build_transpose();
}

void CsrMatrix::append_scaled_rows(const CsrMatrix& src, std::size_t row_begin,
                                   const Vec& row_scale_tail,
                                   const Vec& col_scale) {
  DOSEOPT_CHECK(src.cols_ == cols_, "append_scaled_rows: column mismatch");
  DOSEOPT_CHECK(row_begin <= src.rows_ &&
                    src.rows_ - row_begin == row_scale_tail.size(),
                "append_scaled_rows: row range mismatch");
  DOSEOPT_CHECK(col_scale.size() == cols_,
                "append_scaled_rows: column scale mismatch");
  if (row_ptr_.empty()) row_ptr_.push_back(0);  // default-constructed
  for (std::size_t r = row_begin; r < src.rows_; ++r) {
    const double d = row_scale_tail[r - row_begin];
    for (std::size_t k = src.row_ptr_[r]; k < src.row_ptr_[r + 1]; ++k) {
      col_idx_.push_back(src.col_idx_[k]);
      val_.push_back(src.val_[k] * d * col_scale[src.col_idx_[k]]);
    }
    ++rows_;
    row_ptr_.push_back(val_.size());
  }
  build_transpose();
}

CsrMatrix CsrMatrix::scaled(const Vec& row_scale, const Vec& col_scale) const {
  DOSEOPT_CHECK(row_scale.size() == rows_ && col_scale.size() == cols_,
                "scaled: scale size mismatch");
  CsrMatrix out;
  out.rows_ = rows_;
  out.cols_ = cols_;
  out.row_ptr_ = row_ptr_;
  out.col_idx_ = col_idx_;
  out.val_.resize(val_.size());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out.val_[k] = val_[k] * row_scale[r] * col_scale[col_idx_[k]];
  out.build_transpose();
  return out;
}

void CsrMatrixF::assign_from(const CsrMatrix& src) {
  DOSEOPT_CHECK(src.nnz() <= UINT32_MAX && src.rows() <= UINT32_MAX,
                "CsrMatrixF: matrix too large for 32-bit indices");
  rows_ = src.rows_;
  cols_ = src.cols_;
  row_ptr_.resize(src.row_ptr_.size());
  for (std::size_t i = 0; i < src.row_ptr_.size(); ++i)
    row_ptr_[i] = static_cast<std::uint32_t>(src.row_ptr_[i]);
  col_idx_ = src.col_idx_;
  val_.resize(src.val_.size());
  for (std::size_t k = 0; k < src.val_.size(); ++k)
    val_[k] = static_cast<float>(src.val_[k]);
  tr_ptr_.resize(src.tr_ptr_.size());
  for (std::size_t i = 0; i < src.tr_ptr_.size(); ++i)
    tr_ptr_[i] = static_cast<std::uint32_t>(src.tr_ptr_[i]);
  tr_row_ = src.tr_row_;
  tr_val_.resize(src.tr_val_.size());
  for (std::size_t k = 0; k < src.tr_val_.size(); ++k)
    tr_val_[k] = static_cast<float>(src.tr_val_[k]);
}

void CsrMatrixF::multiply(const VecF& x, VecF& y) const {
  DOSEOPT_CHECK(x.size() == cols_, "multiply: x size mismatch");
  y.resize(rows_);
  const float* xv = x.data();
  const std::uint32_t* ci = col_idx_.data();
  const float* vv = val_.data();
  auto row_kernel = [&](std::size_t r) {
    float s = 0.0f;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += vv[k] * xv[ci[k]];
    y[r] = s;
  };
  if (use_pool(rows_, val_.size())) {
    ThreadPool::global().parallel_for(rows_, row_kernel);
  } else {
    for (std::size_t r = 0; r < rows_; ++r) row_kernel(r);
  }
}

void CsrMatrixF::multiply_transpose(const VecF& x, VecF& y) const {
  DOSEOPT_CHECK(x.size() == rows_, "multiply_transpose: x size mismatch");
  y.resize(cols_);
  const float* xv = x.data();
  const std::uint32_t* ri = tr_row_.data();
  const float* vv = tr_val_.data();
  auto col_kernel = [&](std::size_t c) {
    float s = 0.0f;
    for (std::uint32_t k = tr_ptr_[c]; k < tr_ptr_[c + 1]; ++k)
      s += vv[k] * xv[ri[k]];
    y[c] = s;
  };
  if (use_pool(cols_, val_.size())) {
    ThreadPool::global().parallel_for(cols_, col_kernel);
  } else {
    for (std::size_t c = 0; c < cols_; ++c) col_kernel(c);
  }
}

void CsrMatrixF::add_gram_product(float alpha, const VecF& x, VecF& y,
                                  VecF& scratch) const {
  DOSEOPT_CHECK(y.size() == cols_, "add_gram_product: y size mismatch");
  multiply(x, scratch);
  const float* sv = scratch.data();
  const std::uint32_t* ri = tr_row_.data();
  const float* vv = tr_val_.data();
  auto col_kernel = [&](std::size_t c) {
    float s = y[c];
    for (std::uint32_t k = tr_ptr_[c]; k < tr_ptr_[c + 1]; ++k)
      s += vv[k] * (alpha * sv[ri[k]]);
    y[c] = s;
  };
  if (use_pool(cols_, val_.size())) {
    ThreadPool::global().parallel_for(cols_, col_kernel);
  } else {
    for (std::size_t c = 0; c < cols_; ++c) col_kernel(c);
  }
}

Vec CsrMatrix::row_dense(std::size_t r) const {
  DOSEOPT_CHECK(r < rows_, "row_dense: out of range");
  Vec out(cols_, 0.0);
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    out[col_idx_[k]] = val_[k];
  return out;
}

}  // namespace doseopt::la
