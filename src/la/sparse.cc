#include "la/sparse.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace doseopt::la {

void TripletMatrix::add(std::size_t r, std::size_t c, double v) {
  DOSEOPT_CHECK(r < rows_ && c < cols_, "TripletMatrix::add: out of bounds");
  row_.push_back(r);
  col_.push_back(c);
  values_.push_back(v);
}

CsrMatrix::CsrMatrix(const TripletMatrix& t) : rows_(t.rows()), cols_(t.cols()) {
  DOSEOPT_CHECK(cols_ <= UINT32_MAX, "CsrMatrix: too many columns");
  const auto& tr = t.row_indices();
  const auto& tc = t.col_indices();
  const auto& tv = t.values();
  const std::size_t n = tv.size();

  // Counting sort by row.
  std::vector<std::size_t> count(rows_ + 1, 0);
  for (std::size_t k = 0; k < n; ++k) count[tr[k] + 1]++;
  std::partial_sum(count.begin(), count.end(), count.begin());
  row_ptr_ = count;

  std::vector<std::uint32_t> cols(n);
  std::vector<double> vals(n);
  {
    std::vector<std::size_t> next = row_ptr_;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t pos = next[tr[k]]++;
      cols[pos] = static_cast<std::uint32_t>(tc[k]);
      vals[pos] = tv[k];
    }
  }

  // Within each row: sort by column and merge duplicates.
  col_idx_.reserve(n);
  val_.reserve(n);
  std::vector<std::size_t> perm;
  std::vector<std::size_t> new_ptr(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t lo = row_ptr_[r], hi = row_ptr_[r + 1];
    perm.resize(hi - lo);
    std::iota(perm.begin(), perm.end(), lo);
    std::sort(perm.begin(), perm.end(), [&cols](std::size_t a, std::size_t b) {
      return cols[a] < cols[b];
    });
    for (std::size_t k : perm) {
      if (!col_idx_.empty() && val_.size() > new_ptr[r] &&
          col_idx_.back() == cols[k]) {
        val_.back() += vals[k];
      } else {
        col_idx_.push_back(cols[k]);
        val_.push_back(vals[k]);
      }
    }
    new_ptr[r + 1] = val_.size();
  }
  row_ptr_ = std::move(new_ptr);
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  DOSEOPT_CHECK(x.size() == cols_, "multiply: x size mismatch");
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += val_[k] * x[col_idx_[k]];
    y[r] = s;
  }
}

void CsrMatrix::multiply_transpose(const Vec& x, Vec& y) const {
  DOSEOPT_CHECK(x.size() == rows_, "multiply_transpose: x size mismatch");
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_idx_[k]] += val_[k] * xr;
  }
}

void CsrMatrix::add_gram_product(double alpha, const Vec& x, Vec& y,
                                 Vec& scratch) const {
  DOSEOPT_CHECK(y.size() == cols_, "add_gram_product: y size mismatch");
  multiply(x, scratch);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double s = alpha * scratch[r];
    if (s == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_idx_[k]] += val_[k] * s;
  }
}

Vec CsrMatrix::gram_diagonal() const {
  Vec d(cols_, 0.0);
  for (std::size_t k = 0; k < val_.size(); ++k)
    d[col_idx_[k]] += val_[k] * val_[k];
  return d;
}

Vec CsrMatrix::row_dense(std::size_t r) const {
  DOSEOPT_CHECK(r < rows_, "row_dense: out of range");
  Vec out(cols_, 0.0);
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    out[col_idx_[k]] = val_[k];
  return out;
}

}  // namespace doseopt::la
