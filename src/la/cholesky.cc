#include "la/cholesky.h"

#include <cmath>

#include "common/error.h"

namespace doseopt::la {

Vec cholesky_solve(const DenseMatrix& a, const Vec& b) {
  const std::size_t n = a.rows();
  DOSEOPT_CHECK(a.cols() == n, "cholesky_solve: matrix not square");
  DOSEOPT_CHECK(b.size() == n, "cholesky_solve: rhs size mismatch");

  // Factor A = L L^T (lower triangular L).
  DenseMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        DOSEOPT_CHECK(s > 0.0, "cholesky_solve: matrix not positive definite");
        l.at(i, i) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }

  // Forward solve L y = b.
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Backward solve L^T x = y.
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l.at(k, ii) * x[k];
    x[ii] = s / l.at(ii, ii);
  }
  return x;
}

Vec least_squares(const DenseMatrix& a, const Vec& b, double ridge) {
  const std::size_t m = a.rows(), n = a.cols();
  DOSEOPT_CHECK(b.size() == m, "least_squares: rhs size mismatch");
  DOSEOPT_CHECK(m >= n, "least_squares: underdetermined system");

  DenseMatrix ata(n, n);
  Vec atb(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const double ari = a.at(r, i);
      if (ari == 0.0) continue;
      atb[i] += ari * b[r];
      for (std::size_t j = 0; j < n; ++j) ata.at(i, j) += ari * a.at(r, j);
    }
  }
  for (std::size_t i = 0; i < n; ++i) ata.at(i, i) += ridge;
  return cholesky_solve(ata, atb);
}

}  // namespace doseopt::la
