// Dense vector helpers.
//
// Vectors are std::vector<double>; these free functions provide the handful
// of BLAS-1 style operations the solvers need, with explicit size checks.
//
// The fused_* kernels collapse the conjugate-gradient inner-loop vector
// passes (axpy + dot, preconditioner apply + dot) into single sweeps and
// reduce over *fixed-size chunks*: each chunk's partial sum is accumulated
// serially and the partials are combined in chunk order, so the result is
// bit-identical at any thread count (including the serial fallback).  They
// fan out over the deterministic ThreadPool when the vectors are large
// enough to pay for the dispatch.
#pragma once

#include <vector>

namespace doseopt {
class ThreadPool;
}

namespace doseopt::la {

using Vec = std::vector<double>;

/// Dot product. Requires equal sizes.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& a);

/// Infinity norm.
double norm_inf(const Vec& a);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(double alpha, Vec& x);

/// Element-wise clamp of x into [lo, hi] (vectors of equal size).
void clamp(const Vec& lo, const Vec& hi, Vec& x);

/// max_i |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

// ---------------------------------------------------------------------------
// Fused CG kernels (deterministic fixed-chunk reductions; see file comment).
// `pool` selects the thread pool (nullptr = the process-global pool).
// ---------------------------------------------------------------------------

/// Deterministic dot product <a, b>.
double fused_dot(const Vec& a, const Vec& b, ThreadPool* pool = nullptr);

/// r = b - ax; returns <r, r>.  Single pass.
double fused_residual(const Vec& b, const Vec& ax, Vec& r,
                      ThreadPool* pool = nullptr);

/// The CG step update fused into one sweep: x += alpha * p,
/// r -= alpha * ap; returns the new <r, r>.
double fused_cg_update(double alpha, const Vec& p, const Vec& ap, Vec& x,
                       Vec& r, ThreadPool* pool = nullptr);

/// Jacobi preconditioner apply fused with the <r, z> product:
/// z_i = r_i / d_i (d_i <= 0 passes r_i through); returns <r, z>.
double fused_precond_dot(const Vec& r, const Vec& diag, Vec& z,
                         ThreadPool* pool = nullptr);

/// p = z + beta * p (the CG direction update).
void fused_xpby(const Vec& z, double beta, Vec& p, ThreadPool* pool = nullptr);

}  // namespace doseopt::la
