// Dense vector helpers.
//
// Vectors are std::vector<double>; these free functions provide the handful
// of BLAS-1 style operations the solvers need, with explicit size checks.
#pragma once

#include <vector>

namespace doseopt::la {

using Vec = std::vector<double>;

/// Dot product. Requires equal sizes.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& a);

/// Infinity norm.
double norm_inf(const Vec& a);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(double alpha, Vec& x);

/// Element-wise clamp of x into [lo, hi] (vectors of equal size).
void clamp(const Vec& lo, const Vec& hi, Vec& x);

/// max_i |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

}  // namespace doseopt::la
