// Dense vector helpers.
//
// Vectors are std::vector<double>; these free functions provide the handful
// of BLAS-1 style operations the solvers need, with explicit size checks.
//
// The fused_* kernels collapse the conjugate-gradient inner-loop vector
// passes (axpy + dot, preconditioner apply + dot) into single sweeps and
// reduce over *fixed-size chunks*: each chunk's partial sum is accumulated
// serially and the partials are combined in chunk order, so the result is
// bit-identical at any thread count (including the serial fallback).  They
// fan out over the deterministic ThreadPool when the vectors are large
// enough to pay for the dispatch.
#pragma once

#include <algorithm>
#include <vector>

namespace doseopt {
class ThreadPool;
}

namespace doseopt::la {

using Vec = std::vector<double>;
using VecF = std::vector<float>;

/// Dot product. Requires equal sizes.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& a);

/// Infinity norm.
double norm_inf(const Vec& a);

/// y += alpha * x. Requires equal sizes.
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(double alpha, Vec& x);

/// Element-wise clamp of x into [lo, hi] (vectors of equal size).
void clamp(const Vec& lo, const Vec& hi, Vec& x);

/// max_i |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

// ---------------------------------------------------------------------------
// Fused CG kernels (deterministic fixed-chunk reductions; see file comment).
// `pool` selects the thread pool (nullptr = the process-global pool).
// ---------------------------------------------------------------------------

/// Deterministic dot product <a, b>.
double fused_dot(const Vec& a, const Vec& b, ThreadPool* pool = nullptr);

/// r = b - ax; returns <r, r>.  Single pass.
double fused_residual(const Vec& b, const Vec& ax, Vec& r,
                      ThreadPool* pool = nullptr);

/// The CG step update fused into one sweep: x += alpha * p,
/// r -= alpha * ap; returns the new <r, r>.
double fused_cg_update(double alpha, const Vec& p, const Vec& ap, Vec& x,
                       Vec& r, ThreadPool* pool = nullptr);

/// Jacobi preconditioner apply fused with the <r, z> product:
/// z_i = r_i / d_i (d_i <= 0 passes r_i through); returns <r, z>.
double fused_precond_dot(const Vec& r, const Vec& diag, Vec& z,
                         ThreadPool* pool = nullptr);

/// p = z + beta * p (the CG direction update).
void fused_xpby(const Vec& z, double beta, Vec& p, ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Float32 variants of the fused CG kernels, for the mixed-precision inner
// CG fast path.  Same fixed-chunk reduction contract (kChunk-sized chunks,
// partials combined in chunk order => bit-identical at any thread count);
// per-element products are computed in float32 and the per-chunk partials
// accumulate in float64, so the scalar step sizes (alpha, beta) the caller
// derives from them keep full double precision.
// ---------------------------------------------------------------------------

/// Deterministic dot product <a, b> over float vectors.
double fused_dot_f(const VecF& a, const VecF& b, ThreadPool* pool = nullptr);

/// r = b - ax in float; returns <r, r>.  Single pass.
double fused_residual_f(const VecF& b, const VecF& ax, VecF& r,
                        ThreadPool* pool = nullptr);

/// The float CG step update: x += alpha * p, r -= alpha * ap; returns the
/// new <r, r>.  `alpha` is rounded to float once, before the sweep.
double fused_cg_update_f(double alpha, const VecF& p, const VecF& ap, VecF& x,
                         VecF& r, ThreadPool* pool = nullptr);

/// Float Jacobi apply fused with <r, z>: z_i = r_i / d_i (d_i <= 0 passes
/// r_i through); returns <r, z>.
double fused_precond_dot_f(const VecF& r, const VecF& diag, VecF& z,
                           ThreadPool* pool = nullptr);

/// p = z + beta * p in float (`beta` rounded to float once).
void fused_xpby_f(const VecF& z, double beta, VecF& p,
                  ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Lane-panel kernels (batched structure-of-arrays STA).
//
// A "panel" is k contiguous doubles, one per batch lane; the batched timing
// engine stores every per-net/per-cell quantity as an array of such panels
// so one graph traversal times k Monte-Carlo dies at once.  Each kernel is
// a dependence-free lane loop, defined inline so call sites with a
// compile-time k fully unroll and vectorize, whose
// per-lane arithmetic matches the scalar timer's expressions exactly --
// max/min use std::max/std::min operand order -- so lane results stay
// bitwise-equal to a scalar pass.
// ---------------------------------------------------------------------------

/// p[i] = v.
inline void lane_fill(int k, double v, double* p) {
  for (int i = 0; i < k; ++i) p[i] = v;
}

/// out[i] = a[i] + b[i].
inline void lane_add(int k, const double* a, const double* b, double* out) {
  for (int i = 0; i < k; ++i) out[i] = a[i] + b[i];
}

/// y[i] = alpha * x[i] + beta * y[i] (batched axpby).
inline void lane_axpby(int k, double alpha, const double* x, double beta,
                       double* y) {
  for (int i = 0; i < k; ++i) y[i] = alpha * x[i] + beta * y[i];
}

/// acc[i] = max(acc[i], x[i]).
inline void lane_max_into(int k, const double* x, double* acc) {
  for (int i = 0; i < k; ++i) acc[i] = std::max(acc[i], x[i]);
}

/// acc[i] = min(acc[i], x[i]).
inline void lane_min_into(int k, const double* x, double* acc) {
  for (int i = 0; i < k; ++i) acc[i] = std::min(acc[i], x[i]);
}

/// acc[i] = max(acc[i], a[i] + b[i]) -- the fused arrival-plus-wire
/// reduction of the forward timing kernel.
inline void lane_add_max_into(int k, const double* a, const double* b,
                              double* acc) {
  for (int i = 0; i < k; ++i) acc[i] = std::max(acc[i], a[i] + b[i]);
}

/// acc[i] = min(acc[i], a[i] + b[i]).
inline void lane_add_min_into(int k, const double* a, const double* b,
                              double* acc) {
  for (int i = 0; i < k; ++i) acc[i] = std::min(acc[i], a[i] + b[i]);
}

/// acc[i] += p[i]; the batched checksum reduction the lane-health validator
/// runs over every panel (a NaN anywhere in a lane poisons that lane's
/// accumulator, unlike max/min reductions which drop NaN operands).
inline void lane_accumulate(int k, const double* p, double* acc) {
  for (int i = 0; i < k; ++i) acc[i] += p[i];
}

}  // namespace doseopt::la
