// Sparse matrix support: triplet assembly and compressed-sparse-row storage
// with the matrix-vector products the ADMM QP solver needs (A*x, A^T*y, and
// the Gram diagonal of A^T*A for preconditioning).
//
// Construction also builds the transpose (CSC-style) index so the A^T
// products run as per-column *gathers* instead of per-row scatters: every
// output element is owned by exactly one loop index, which lets all of the
// products fan out over the process thread pool with bit-identical results
// at any thread count (the per-element accumulation order is fixed by the
// index, not by thread timing).
#pragma once

#include <cstdint>
#include <vector>

#include "la/dense.h"

namespace doseopt::la {

/// Triplet (coordinate-format) accumulator for building sparse matrices.
/// Duplicate entries are summed on conversion to CSR.
class TripletMatrix {
 public:
  TripletMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  /// Accumulate value v at (r, c). Bounds-checked.
  void add(std::size_t r, std::size_t c, double v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_indices() const { return row_; }
  const std::vector<std::size_t>& col_indices() const { return col_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> row_, col_;
  std::vector<double> values_;
};

/// CSR sparse matrix.  Existing entries are immutable; rows can be
/// *appended* in batches, which is what the incremental cutting-plane
/// assembly relies on (static rows built once, cut rows appended per
/// round).
class CsrMatrix {
 public:
  /// One fully-formed row for append_rows: (column, value) entries sorted
  /// by column with duplicates already merged.
  using Row = std::vector<std::pair<std::uint32_t, double>>;

  CsrMatrix() = default;

  /// Build from triplets; duplicates are summed, explicit zeros kept.
  explicit CsrMatrix(const TripletMatrix& t);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  /// y = A x.
  void multiply(const Vec& x, Vec& y) const;

  /// y = A^T x.
  void multiply_transpose(const Vec& x, Vec& y) const;

  /// y += alpha * A^T (A x); scratch must have size rows().
  void add_gram_product(double alpha, const Vec& x, Vec& y,
                        Vec& scratch) const;

  /// diag(A^T A): column-wise sum of squared entries.
  Vec gram_diagonal() const;

  /// The matrix with row r scaled by row_scale[r] and column c by
  /// col_scale[c] (entry v -> v * row_scale[r] * col_scale[c]) -- the Ruiz
  /// equilibration step of the QP solver, built directly on the CSR
  /// structure instead of a triplet round-trip.
  CsrMatrix scaled(const Vec& row_scale, const Vec& col_scale) const;

  /// Append a batch of rows (one transpose rebuild per call, so batch all
  /// of a round's rows into a single append).
  void append_rows(const std::vector<Row>& rows);

  /// Append rows [row_begin, src.rows()) of `src`, entry v ->
  /// v * row_scale_tail[r - row_begin] * col_scale[c] -- extends a Ruiz-
  /// scaled copy with freshly scaled appended rows without rescaling the
  /// existing block.  Column counts must match.
  void append_scaled_rows(const CsrMatrix& src, std::size_t row_begin,
                          const Vec& row_scale_tail, const Vec& col_scale);

  /// Dense row extraction for tests/debugging.
  Vec row_dense(std::size_t r) const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return val_; }

 private:
  void build_transpose();

  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> val_;

  // Transpose index (per-column entries, rows ascending -- the same order
  // the serial row-major scatter visited them, so gather results match the
  // historical serial values).
  std::vector<std::size_t> tr_ptr_;
  std::vector<std::uint32_t> tr_row_;
  std::vector<double> tr_val_;

  friend class CsrMatrixF;
};

/// Float32 shadow of a CsrMatrix for the mixed-precision CG fast path:
/// same structure (including the transpose gather index), values narrowed
/// to float.  `assign_from` refreshes the shadow in place, reusing storage
/// when only rows were appended, so keeping a shadow in a warm-state cache
/// costs one value copy per refresh instead of a rebuild.
///
/// Products keep the same fixed per-element accumulation order as the
/// double kernels (each output owned by one loop index), so results are
/// bit-identical at any thread count.
class CsrMatrixF {
 public:
  CsrMatrixF() = default;

  /// Rebuild the shadow from `src` (structure copy + value narrowing).
  void assign_from(const CsrMatrix& src);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  /// y = A x.
  void multiply(const VecF& x, VecF& y) const;

  /// y = A^T x.
  void multiply_transpose(const VecF& x, VecF& y) const;

  /// y += alpha * A^T (A x); scratch must have size rows().
  void add_gram_product(float alpha, const VecF& x, VecF& y,
                        VecF& scratch) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> val_;
  std::vector<std::uint32_t> tr_ptr_;
  std::vector<std::uint32_t> tr_row_;
  std::vector<float> tr_val_;
};

}  // namespace doseopt::la
