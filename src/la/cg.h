// Preconditioned conjugate gradient for symmetric positive-definite operators
// given implicitly as matrix-vector products.  Used by the ADMM QP solver for
// its (P + sigma*I + rho*A^T A) x = b inner solves.
//
// The inner-loop vector work runs through the fused_* kernels of la/dense.h:
// single-pass axpy+dot and preconditioner-apply+dot sweeps with fixed-chunk
// reductions, so the solve is bit-identical at any thread count.
#pragma once

#include <functional>

#include "la/dense.h"

namespace doseopt::la {

/// Result of a CG solve.
struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax||_2
  bool converged = false;
};

/// Options for a CG solve.
struct CgOptions {
  int max_iterations = 500;
  double tolerance = 1e-9;  ///< relative: stop when ||r|| <= tol * ||b||
  ThreadPool* pool = nullptr;  ///< fused-kernel pool (nullptr = global)
};

/// Solve op(x) = b where op is SPD.  `x` holds the initial guess on entry and
/// the solution on exit.  `precond_diag` is the diagonal of a Jacobi
/// preconditioner (pass all-ones for unpreconditioned CG).
CgResult conjugate_gradient(
    const std::function<void(const Vec&, Vec&)>& op, const Vec& b,
    const Vec& precond_diag, Vec& x, const CgOptions& options = {});

}  // namespace doseopt::la
