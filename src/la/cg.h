// Preconditioned conjugate gradient for symmetric positive-definite operators
// given implicitly as matrix-vector products.  Used by the ADMM QP solver for
// its (P + sigma*I + rho*A^T A) x = b inner solves.
//
// The inner-loop vector work runs through the fused_* kernels of la/dense.h:
// single-pass axpy+dot and preconditioner-apply+dot sweeps with fixed-chunk
// reductions, so the solve is bit-identical at any thread count.
#pragma once

#include <functional>

#include "la/dense.h"

namespace doseopt::la {

/// Result of a CG solve.
struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax||_2
  bool converged = false;
};

/// Reusable scratch for conjugate_gradient: the four inner-loop vectors,
/// resized (never shrunk) per solve.  Callers that solve repeatedly -- the
/// ADMM x-update runs one CG per iteration -- keep one of these alive to
/// eliminate the per-solve allocations.
struct CgWorkspace {
  Vec r, z, p, ap;
};

/// Float scratch for conjugate_gradient_f.
struct CgWorkspaceF {
  VecF r, z, p, ap;
};

/// Options for a CG solve.
struct CgOptions {
  int max_iterations = 500;
  double tolerance = 1e-9;  ///< relative: stop when ||r|| <= tol * ||b||
  ThreadPool* pool = nullptr;  ///< fused-kernel pool (nullptr = global)
};

/// Solve op(x) = b where op is SPD.  `x` holds the initial guess on entry and
/// the solution on exit.  `precond_diag` is the diagonal of a Jacobi
/// preconditioner (pass all-ones for unpreconditioned CG).  `workspace`
/// (optional) supplies the inner-loop vectors; pass nullptr to allocate
/// per call.
CgResult conjugate_gradient(
    const std::function<void(const Vec&, Vec&)>& op, const Vec& b,
    const Vec& precond_diag, Vec& x, const CgOptions& options = {},
    CgWorkspace* workspace = nullptr);

/// Float32 CG for the mixed-precision fast path.  Identical loop structure
/// to the double solve; vector sweeps run in float32 while every reduction
/// accumulates (and every scalar -- alpha, beta, residual norms -- is kept)
/// in float64, so the convergence test matches the double solve's contract:
/// stop when ||r|| <= tolerance * ||b||, both norms in double.
CgResult conjugate_gradient_f(
    const std::function<void(const VecF&, VecF&)>& op, const VecF& b,
    const VecF& precond_diag, VecF& x, const CgOptions& options = {},
    CgWorkspaceF* workspace = nullptr);

}  // namespace doseopt::la
