#include "la/dense.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace doseopt::la {

double dot(const Vec& a, const Vec& b) {
  DOSEOPT_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  DOSEOPT_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, Vec& x) {
  for (double& v : x) v *= alpha;
}

void clamp(const Vec& lo, const Vec& hi, Vec& x) {
  DOSEOPT_CHECK(lo.size() == x.size() && hi.size() == x.size(),
                "clamp: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lo[i], hi[i]);
}

double max_abs_diff(const Vec& a, const Vec& b) {
  DOSEOPT_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

namespace {

// The chunk size is part of the numerical contract: partial sums are
// accumulated per chunk and combined in chunk order, so it must not depend
// on the thread count.
constexpr std::size_t kChunk = 2048;
// Below this size the parallel_for dispatch costs more than the sweep.
constexpr std::size_t kParallelMin = 4 * kChunk;

/// Runs kernel(chunk_index, begin, end) for every fixed-size chunk of
/// [0, n), each chunk writing only its own partial slot, then returns the
/// serial in-order sum of the partials.
template <typename Kernel>
double chunked_reduce(std::size_t n, ThreadPool* pool, const Kernel& kernel) {
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  if (chunks <= 1) return n == 0 ? 0.0 : kernel(0, n);

  Vec partial(chunks, 0.0);
  auto chunk_task = [&](std::size_t c) {
    const std::size_t lo = c * kChunk;
    partial[c] = kernel(lo, std::min(lo + kChunk, n));
  };
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  if (n >= kParallelMin && tp.lane_count() > 1) {
    tp.parallel_for(chunks, chunk_task);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) chunk_task(c);
  }
  double s = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) s += partial[c];
  return s;
}

/// Element-wise sweep with the same chunking/dispatch policy (no reduction,
/// so chunking only bounds the task granularity).
template <typename Kernel>
void chunked_sweep(std::size_t n, ThreadPool* pool, const Kernel& kernel) {
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  if (chunks <= 1) {
    if (n > 0) kernel(0, n);
    return;
  }
  auto chunk_task = [&](std::size_t c) {
    const std::size_t lo = c * kChunk;
    kernel(lo, std::min(lo + kChunk, n));
  };
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  if (n >= kParallelMin && tp.lane_count() > 1) {
    tp.parallel_for(chunks, chunk_task);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) chunk_task(c);
  }
}

}  // namespace

double fused_dot(const Vec& a, const Vec& b, ThreadPool* pool) {
  DOSEOPT_CHECK(a.size() == b.size(), "fused_dot: size mismatch");
  return chunked_reduce(a.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i)
                            s += a[i] * b[i];
                          return s;
                        });
}

double fused_residual(const Vec& b, const Vec& ax, Vec& r, ThreadPool* pool) {
  DOSEOPT_CHECK(b.size() == ax.size() && b.size() == r.size(),
                "fused_residual: size mismatch");
  return chunked_reduce(b.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            const double v = b[i] - ax[i];
                            r[i] = v;
                            s += v * v;
                          }
                          return s;
                        });
}

double fused_cg_update(double alpha, const Vec& p, const Vec& ap, Vec& x,
                       Vec& r, ThreadPool* pool) {
  DOSEOPT_CHECK(p.size() == x.size() && ap.size() == r.size() &&
                    p.size() == r.size(),
                "fused_cg_update: size mismatch");
  return chunked_reduce(p.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            x[i] += alpha * p[i];
                            const double v = r[i] - alpha * ap[i];
                            r[i] = v;
                            s += v * v;
                          }
                          return s;
                        });
}

double fused_precond_dot(const Vec& r, const Vec& diag, Vec& z,
                         ThreadPool* pool) {
  DOSEOPT_CHECK(r.size() == diag.size() && r.size() == z.size(),
                "fused_precond_dot: size mismatch");
  return chunked_reduce(r.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            const double d = diag[i];
                            const double v = d > 0.0 ? r[i] / d : r[i];
                            z[i] = v;
                            s += r[i] * v;
                          }
                          return s;
                        });
}

void fused_xpby(const Vec& z, double beta, Vec& p, ThreadPool* pool) {
  DOSEOPT_CHECK(z.size() == p.size(), "fused_xpby: size mismatch");
  chunked_sweep(z.size(), pool, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) p[i] = z[i] + beta * p[i];
  });
}

double fused_dot_f(const VecF& a, const VecF& b, ThreadPool* pool) {
  DOSEOPT_CHECK(a.size() == b.size(), "fused_dot_f: size mismatch");
  return chunked_reduce(a.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i)
                            s += static_cast<double>(a[i] * b[i]);
                          return s;
                        });
}

double fused_residual_f(const VecF& b, const VecF& ax, VecF& r,
                        ThreadPool* pool) {
  DOSEOPT_CHECK(b.size() == ax.size() && b.size() == r.size(),
                "fused_residual_f: size mismatch");
  return chunked_reduce(b.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            const float v = b[i] - ax[i];
                            r[i] = v;
                            s += static_cast<double>(v * v);
                          }
                          return s;
                        });
}

double fused_cg_update_f(double alpha, const VecF& p, const VecF& ap, VecF& x,
                         VecF& r, ThreadPool* pool) {
  DOSEOPT_CHECK(p.size() == x.size() && ap.size() == r.size() &&
                    p.size() == r.size(),
                "fused_cg_update_f: size mismatch");
  const float a = static_cast<float>(alpha);
  return chunked_reduce(p.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            x[i] += a * p[i];
                            const float v = r[i] - a * ap[i];
                            r[i] = v;
                            s += static_cast<double>(v * v);
                          }
                          return s;
                        });
}

double fused_precond_dot_f(const VecF& r, const VecF& diag, VecF& z,
                           ThreadPool* pool) {
  DOSEOPT_CHECK(r.size() == diag.size() && r.size() == z.size(),
                "fused_precond_dot_f: size mismatch");
  return chunked_reduce(r.size(), pool,
                        [&](std::size_t lo, std::size_t hi) {
                          double s = 0.0;
                          for (std::size_t i = lo; i < hi; ++i) {
                            const float d = diag[i];
                            const float v = d > 0.0f ? r[i] / d : r[i];
                            z[i] = v;
                            s += static_cast<double>(r[i] * v);
                          }
                          return s;
                        });
}

void fused_xpby_f(const VecF& z, double beta, VecF& p, ThreadPool* pool) {
  DOSEOPT_CHECK(z.size() == p.size(), "fused_xpby_f: size mismatch");
  const float b = static_cast<float>(beta);
  chunked_sweep(z.size(), pool, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) p[i] = z[i] + b * p[i];
  });
}

}  // namespace doseopt::la
