#include "la/dense.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::la {

double dot(const Vec& a, const Vec& b) {
  DOSEOPT_CHECK(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  DOSEOPT_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, Vec& x) {
  for (double& v : x) v *= alpha;
}

void clamp(const Vec& lo, const Vec& hi, Vec& x) {
  DOSEOPT_CHECK(lo.size() == x.size() && hi.size() == x.size(),
                "clamp: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lo[i], hi[i]);
}

double max_abs_diff(const Vec& a, const Vec& b) {
  DOSEOPT_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace doseopt::la
