#include "la/cg.h"

#include <cmath>

#include "common/error.h"

namespace doseopt::la {

CgResult conjugate_gradient(const std::function<void(const Vec&, Vec&)>& op,
                            const Vec& b, const Vec& precond_diag, Vec& x,
                            const CgOptions& options) {
  const std::size_t n = b.size();
  DOSEOPT_CHECK(x.size() == n, "cg: x size mismatch");
  DOSEOPT_CHECK(precond_diag.size() == n, "cg: preconditioner size mismatch");

  CgResult result;
  Vec r(n), z(n), p(n), ap(n);

  op(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double b_norm = norm2(b);
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  auto apply_precond = [&](const Vec& in, Vec& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = precond_diag[i];
      out[i] = (d > 0.0) ? in[i] / d : in[i];
    }
  };

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  double r_norm = norm2(r);
  if (r_norm <= stop) {
    result.converged = true;
    result.residual_norm = r_norm;
    return result;
  }

  for (int it = 0; it < options.max_iterations; ++it) {
    op(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // loss of positive-definiteness / stagnation
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    r_norm = norm2(r);
    if (r_norm <= stop) {
      result.converged = true;
      break;
    }
    apply_precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = r_norm;
  return result;
}

}  // namespace doseopt::la
