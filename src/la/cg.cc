#include "la/cg.h"

#include <cmath>

#include "common/error.h"

namespace doseopt::la {

CgResult conjugate_gradient(const std::function<void(const Vec&, Vec&)>& op,
                            const Vec& b, const Vec& precond_diag, Vec& x,
                            const CgOptions& options, CgWorkspace* workspace) {
  const std::size_t n = b.size();
  DOSEOPT_CHECK(x.size() == n, "cg: x size mismatch");
  DOSEOPT_CHECK(precond_diag.size() == n, "cg: preconditioner size mismatch");

  CgResult result;
  ThreadPool* pool = options.pool;
  CgWorkspace local;
  CgWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.r.resize(n);
  ws.z.resize(n);
  ws.p.resize(n);
  ws.ap.resize(n);
  Vec& r = ws.r;
  Vec& z = ws.z;
  Vec& p = ws.p;
  Vec& ap = ws.ap;

  op(x, ap);
  double r_norm2 = fused_residual(b, ap, r, pool);

  const double b_norm = norm2(b);
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  const double stop2 = stop * stop;

  if (r_norm2 <= stop2) {
    result.converged = true;
    result.residual_norm = std::sqrt(r_norm2);
    return result;
  }

  double rz = fused_precond_dot(r, precond_diag, z, pool);
  p = z;

  for (int it = 0; it < options.max_iterations; ++it) {
    op(p, ap);
    const double pap = fused_dot(p, ap, pool);
    if (pap <= 0.0) break;  // loss of positive-definiteness / stagnation
    const double alpha = rz / pap;
    r_norm2 = fused_cg_update(alpha, p, ap, x, r, pool);
    result.iterations = it + 1;
    if (r_norm2 <= stop2) {
      result.converged = true;
      break;
    }
    const double rz_new = fused_precond_dot(r, precond_diag, z, pool);
    const double beta = rz_new / rz;
    rz = rz_new;
    fused_xpby(z, beta, p, pool);
  }
  result.residual_norm = std::sqrt(r_norm2);
  return result;
}

CgResult conjugate_gradient_f(
    const std::function<void(const VecF&, VecF&)>& op, const VecF& b,
    const VecF& precond_diag, VecF& x, const CgOptions& options,
    CgWorkspaceF* workspace) {
  const std::size_t n = b.size();
  DOSEOPT_CHECK(x.size() == n, "cg_f: x size mismatch");
  DOSEOPT_CHECK(precond_diag.size() == n,
                "cg_f: preconditioner size mismatch");

  CgResult result;
  ThreadPool* pool = options.pool;
  CgWorkspaceF local;
  CgWorkspaceF& ws = workspace != nullptr ? *workspace : local;
  ws.r.resize(n);
  ws.z.resize(n);
  ws.p.resize(n);
  ws.ap.resize(n);
  VecF& r = ws.r;
  VecF& z = ws.z;
  VecF& p = ws.p;
  VecF& ap = ws.ap;

  op(x, ap);
  double r_norm2 = fused_residual_f(b, ap, r, pool);

  const double b_norm = std::sqrt(fused_dot_f(b, b, pool));
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  const double stop2 = stop * stop;

  if (r_norm2 <= stop2) {
    result.converged = true;
    result.residual_norm = std::sqrt(r_norm2);
    return result;
  }

  double rz = fused_precond_dot_f(r, precond_diag, z, pool);
  p = z;

  for (int it = 0; it < options.max_iterations; ++it) {
    op(p, ap);
    const double pap = fused_dot_f(p, ap, pool);
    if (pap <= 0.0) break;  // loss of positive-definiteness / stagnation
    const double alpha = rz / pap;
    r_norm2 = fused_cg_update_f(alpha, p, ap, x, r, pool);
    result.iterations = it + 1;
    if (r_norm2 <= stop2) {
      result.converged = true;
      break;
    }
    const double rz_new = fused_precond_dot_f(r, precond_diag, z, pool);
    const double beta = rz_new / rz;
    rz = rz_new;
    fused_xpby_f(z, beta, p, pool);
  }
  result.residual_norm = std::sqrt(r_norm2);
  return result;
}

}  // namespace doseopt::la
