// Small dense symmetric positive-definite solver (Cholesky LL^T).
// Used by the least-squares fitter (normal equations are tiny: the fits in
// this project have at most 3 unknowns) and as a reference solver in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense.h"

namespace doseopt::la {

/// Dense row-major square matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b for SPD A by Cholesky factorization.
/// Throws doseopt::Error if A is not (numerically) positive definite.
Vec cholesky_solve(const DenseMatrix& a, const Vec& b);

/// Dense least squares: minimize ||A x - b||_2 via normal equations with a
/// small ridge (lambda) for conditioning. A is m x n with m >= n.
Vec least_squares(const DenseMatrix& a, const Vec& b, double ridge = 0.0);

}  // namespace doseopt::la
