// Scanner actuator model (Section II-A of the paper).
//
// The DoseMapper hardware realizes a dose profile as the sum of a slit-
// direction correction (Unicom-XL: a polynomial of order <= 6 across the
// slit / X direction) and a scan-direction correction (Dosicom: a Legendre
// series with up to 8 coefficients along the scan / Y direction, eq. (1)).
// This module provides the Legendre basis, profile evaluation, and a
// least-squares projection of an arbitrary optimized dose map onto the
// actuator-representable subspace, reporting the residual -- i.e., how much
// of a design-aware map the equipment can actually deliver.
#pragma once

#include <vector>

#include "dose/dose_map.h"

namespace doseopt::dose {

/// Legendre polynomial P_n(y) for |y| <= 1 (n up to 12 supported).
double legendre(int n, double y);

/// Scan-direction dose recipe, eq. (1): Dset(y) = sum_{n=1..N} L_n P_n(y).
class ScanProfile {
 public:
  /// Up to 8 coefficients (L_1 .. L_8); fewer allowed.
  explicit ScanProfile(std::vector<double> legendre_coeffs);

  /// Evaluate at scan position y in [-1, 1].
  double dose_pct(double y) const;

  const std::vector<double>& coefficients() const { return coeffs_; }

  static constexpr int kMaxCoefficients = 8;

 private:
  std::vector<double> coeffs_;
};

/// Slit-direction dose recipe: ordinary polynomial of order <= 6 in the
/// normalized slit coordinate x in [-1, 1] (Unicom-XL custom profile).
class SlitProfile {
 public:
  /// Ascending-power coefficients c_0..c_k, k <= 6.
  explicit SlitProfile(std::vector<double> poly_coeffs);

  double dose_pct(double x) const;

  const std::vector<double>& coefficients() const { return coeffs_; }

  static constexpr int kMaxOrder = 6;

 private:
  std::vector<double> coeffs_;
};

/// A separable actuator setting: dose(x, y) = slit(x) + scan(y).
struct ActuatorRecipe {
  SlitProfile slit;
  ScanProfile scan;

  /// Evaluate over a map's grid centers (row-major), normalizing the field
  /// to [-1, 1] in both axes.
  std::vector<double> render(const DoseMap& map) const;
};

/// Result of projecting a free-form dose map onto the actuator subspace.
struct ActuatorFit {
  ActuatorRecipe recipe;
  double rms_residual_pct = 0.0;  ///< RMS of (map - rendered recipe)
  double max_residual_pct = 0.0;
};

/// Least-squares fit of `map` by slit(x) + scan(y) with the given orders.
ActuatorFit fit_actuators(const DoseMap& map, int slit_order = 6,
                          int scan_coeffs = 8);

}  // namespace doseopt::dose
