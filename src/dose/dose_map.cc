#include "dose/dose_map.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::dose {

DoseMap::DoseMap(double width_um, double height_um, double g_um) {
  DOSEOPT_CHECK(width_um > 0 && height_um > 0 && g_um > 0,
                "DoseMap: bad geometry");
  rows_ = static_cast<std::size_t>(std::ceil(height_um / g_um));
  cols_ = static_cast<std::size_t>(std::ceil(width_um / g_um));
  rows_ = std::max<std::size_t>(1, rows_);
  cols_ = std::max<std::size_t>(1, cols_);
  grid_h_um_ = height_um / static_cast<double>(rows_);
  grid_w_um_ = width_um / static_cast<double>(cols_);
  width_um_ = width_um;
  height_um_ = height_um;
  dose_.assign(rows_ * cols_, 0.0);
}

double DoseMap::dose_pct(std::size_t i, std::size_t j) const {
  return dose_[flat_index(i, j)];
}

void DoseMap::set_dose_pct(std::size_t i, std::size_t j, double dose) {
  dose_[flat_index(i, j)] = dose;
}

std::size_t DoseMap::flat_index(std::size_t i, std::size_t j) const {
  DOSEOPT_CHECK(i < rows_ && j < cols_, "DoseMap: grid index out of range");
  return i * cols_ + j;
}

std::size_t DoseMap::grid_at(double x_um, double y_um) const {
  const double x = std::clamp(x_um, 0.0, width_um_ - 1e-9);
  const double y = std::clamp(y_um, 0.0, height_um_ - 1e-9);
  const auto i = static_cast<std::size_t>(y / grid_h_um_);
  const auto j = static_cast<std::size_t>(x / grid_w_um_);
  return flat_index(std::min(i, rows_ - 1), std::min(j, cols_ - 1));
}

void DoseMap::set_doses(std::vector<double> doses) {
  DOSEOPT_CHECK(doses.size() == dose_.size(), "set_doses: size mismatch");
  dose_ = std::move(doses);
}

double DoseMap::max_abs_dose_pct() const {
  double m = 0.0;
  for (double d : dose_) m = std::max(m, std::abs(d));
  return m;
}

std::vector<std::pair<std::size_t, std::size_t>> DoseMap::neighbor_pairs()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(3 * rows_ * cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (i + 1 < rows_ && j + 1 < cols_)
        pairs.emplace_back(flat_index(i, j), flat_index(i + 1, j + 1));
      if (j + 1 < cols_)
        pairs.emplace_back(flat_index(i, j), flat_index(i, j + 1));
      if (i + 1 < rows_)
        pairs.emplace_back(flat_index(i, j), flat_index(i + 1, j));
    }
  }
  return pairs;
}

double DoseMap::max_neighbor_delta_pct() const {
  double m = 0.0;
  for (const auto& [a, b] : neighbor_pairs())
    m = std::max(m, std::abs(dose_[a] - dose_[b]));
  return m;
}

bool DoseMap::satisfies(double lo, double hi, double delta, double tol) const {
  for (double d : dose_)
    if (d < lo - tol || d > hi + tol) return false;
  return max_neighbor_delta_pct() <= delta + tol;
}

std::vector<std::size_t> bin_cells(const DoseMap& map,
                                   const place::Placement& placement) {
  const netlist::Netlist& nl = placement.netlist();
  std::vector<std::size_t> bins(nl.cell_count());
  for (std::size_t c = 0; c < nl.cell_count(); ++c)
    bins[c] = map.grid_at(placement.x_um(static_cast<netlist::CellId>(c)),
                          placement.y_um(static_cast<netlist::CellId>(c)));
  return bins;
}

}  // namespace doseopt::dose
