#include "dose/actuator.h"

#include <cmath>

#include "common/error.h"
#include "la/cholesky.h"

namespace doseopt::dose {

double legendre(int n, double y) {
  DOSEOPT_CHECK(n >= 0 && n <= 12, "legendre: order out of range");
  DOSEOPT_CHECK(std::abs(y) <= 1.0 + 1e-12, "legendre: |y| must be <= 1");
  if (n == 0) return 1.0;
  if (n == 1) return y;
  // Bonnet recurrence: (k+1) P_{k+1} = (2k+1) y P_k - k P_{k-1}.
  double p_prev = 1.0, p = y;
  for (int k = 1; k < n; ++k) {
    const double p_next =
        ((2.0 * k + 1.0) * y * p - static_cast<double>(k) * p_prev) /
        (static_cast<double>(k) + 1.0);
    p_prev = p;
    p = p_next;
  }
  return p;
}

ScanProfile::ScanProfile(std::vector<double> legendre_coeffs)
    : coeffs_(std::move(legendre_coeffs)) {
  DOSEOPT_CHECK(static_cast<int>(coeffs_.size()) <= kMaxCoefficients,
                "ScanProfile: too many Legendre coefficients");
}

double ScanProfile::dose_pct(double y) const {
  double d = 0.0;
  for (std::size_t n = 0; n < coeffs_.size(); ++n)
    d += coeffs_[n] * legendre(static_cast<int>(n) + 1, y);
  return d;
}

SlitProfile::SlitProfile(std::vector<double> poly_coeffs)
    : coeffs_(std::move(poly_coeffs)) {
  DOSEOPT_CHECK(static_cast<int>(coeffs_.size()) <= kMaxOrder + 1,
                "SlitProfile: polynomial order too high");
}

double SlitProfile::dose_pct(double x) const {
  double d = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) d = d * x + coeffs_[i];
  return d;
}

namespace {

/// Normalized grid-center coordinate in [-1, 1] for index k of n.
double norm_coord(std::size_t k, std::size_t n) {
  if (n <= 1) return 0.0;
  return -1.0 + 2.0 * (static_cast<double>(k) + 0.5) / static_cast<double>(n);
}

}  // namespace

std::vector<double> ActuatorRecipe::render(const DoseMap& map) const {
  std::vector<double> out(map.grid_count());
  for (std::size_t i = 0; i < map.rows(); ++i) {
    const double y = norm_coord(i, map.rows());
    const double scan_d = scan.dose_pct(y);
    for (std::size_t j = 0; j < map.cols(); ++j) {
      const double x = norm_coord(j, map.cols());
      out[map.flat_index(i, j)] = slit.dose_pct(x) + scan_d;
    }
  }
  return out;
}

ActuatorFit fit_actuators(const DoseMap& map, int slit_order,
                          int scan_coeffs) {
  DOSEOPT_CHECK(slit_order >= 0 && slit_order <= SlitProfile::kMaxOrder,
                "fit_actuators: slit order out of range");
  DOSEOPT_CHECK(scan_coeffs >= 1 &&
                    scan_coeffs <= ScanProfile::kMaxCoefficients,
                "fit_actuators: scan coefficient count out of range");

  // Unknowns: slit c_0..c_k then scan L_1..L_m.  Basis is evaluated at every
  // grid center; normal equations solved densely (the basis is tiny).
  const std::size_t ns = static_cast<std::size_t>(slit_order) + 1;
  const std::size_t nm = static_cast<std::size_t>(scan_coeffs);
  const std::size_t dim = ns + nm;
  const std::size_t samples = map.grid_count();
  DOSEOPT_CHECK(samples >= dim, "fit_actuators: map too small for basis");

  la::DenseMatrix a(samples, dim);
  la::Vec b(samples);
  for (std::size_t i = 0; i < map.rows(); ++i) {
    const double y = norm_coord(i, map.rows());
    for (std::size_t j = 0; j < map.cols(); ++j) {
      const std::size_t r = map.flat_index(i, j);
      const double x = norm_coord(j, map.cols());
      double xp = 1.0;
      for (std::size_t k = 0; k < ns; ++k) {
        a.at(r, k) = xp;
        xp *= x;
      }
      for (std::size_t n = 0; n < nm; ++n)
        a.at(r, ns + n) = legendre(static_cast<int>(n) + 1, y);
      b[r] = map.dose_pct(i, j);
    }
  }
  const la::Vec coeffs = la::least_squares(a, b, /*ridge=*/1e-10);

  ActuatorFit fit{
      ActuatorRecipe{
          SlitProfile(std::vector<double>(coeffs.begin(),
                                          coeffs.begin() +
                                              static_cast<std::ptrdiff_t>(ns))),
          ScanProfile(std::vector<double>(
              coeffs.begin() + static_cast<std::ptrdiff_t>(ns), coeffs.end()))},
      0.0, 0.0};

  const std::vector<double> rendered = fit.recipe.render(map);
  double ss = 0.0;
  for (std::size_t k = 0; k < samples; ++k) {
    const double r = rendered[k] - map.doses()[k];
    ss += r * r;
    fit.max_residual_pct = std::max(fit.max_residual_pct, std::abs(r));
  }
  fit.rms_residual_pct = std::sqrt(ss / static_cast<double>(samples));
  return fit;
}

}  // namespace doseopt::dose
