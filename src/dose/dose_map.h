// Dose map model (Section II of the paper).
//
// The exposure field is partitioned into an M x N grid of rectangles of at
// most G x G um (the user parameter G of Section II-B); each grid carries a
// percentage dose delta for one layer (poly modulates gate length, active
// modulates gate width).  The map knows the equipment constraints it must
// satisfy: per-grid correction range (eq. (3)/(8)) and neighbor smoothness
// (eq. (4)/(9), including diagonals).
#pragma once

#include <cstddef>
#include <vector>

#include "place/placement.h"

namespace doseopt::dose {

/// Which mask layer a dose map drives.
enum class Layer { kPoly, kActive };

/// A dose-delta map over the exposure field.
class DoseMap {
 public:
  /// Trivial 1x1 map of a unit field (useful as a placeholder before a real
  /// map is assigned).
  DoseMap() : DoseMap(1.0, 1.0, 1.0) {}

  /// Partition a field of `width_um` x `height_um` into grids of at most
  /// `g_um` on a side (uniform sizes; M = ceil(h/g), N = ceil(w/g)).
  DoseMap(double width_um, double height_um, double g_um);

  std::size_t rows() const { return rows_; }     ///< M
  std::size_t cols() const { return cols_; }     ///< N
  std::size_t grid_count() const { return rows_ * cols_; }
  double grid_width_um() const { return grid_w_um_; }
  double grid_height_um() const { return grid_h_um_; }

  double dose_pct(std::size_t i, std::size_t j) const;
  void set_dose_pct(std::size_t i, std::size_t j, double dose);

  /// Flat index of grid (i, j): i * cols + j.
  std::size_t flat_index(std::size_t i, std::size_t j) const;

  /// Grid containing point (x, y) um; clamped to the field.
  std::size_t grid_at(double x_um, double y_um) const;

  /// Flat dose vector (row-major), for the optimizer.
  const std::vector<double>& doses() const { return dose_; }
  void set_doses(std::vector<double> doses);

  /// Maximum |dose| over the map.
  double max_abs_dose_pct() const;

  /// Maximum |dose_a - dose_b| over all neighbor pairs (horizontal,
  /// vertical, and diagonal, as in eq. (4)).
  double max_neighbor_delta_pct() const;

  /// True if every grid is within [lo, hi] and every neighbor pair differs
  /// by at most `delta` (with tolerance `tol` for solver round-off).
  bool satisfies(double lo, double hi, double delta, double tol = 1e-6) const;

  /// Neighbor pairs (flat indices) in the eq. (4) pattern: diagonal (i+1,
  /// j+1), horizontal (i, j+1), and vertical (i+1, j).
  std::vector<std::pair<std::size_t, std::size_t>> neighbor_pairs() const;

 private:
  std::size_t rows_, cols_;
  double grid_w_um_, grid_h_um_;
  double width_um_, height_um_;
  std::vector<double> dose_;
};

/// Bin every cell of a placement into dose-map grids; result[c] is the flat
/// grid index of cell c.
std::vector<std::size_t> bin_cells(const DoseMap& map,
                                   const place::Placement& placement);

}  // namespace doseopt::dose
