#include "power/leakage.h"

#include "common/error.h"

namespace doseopt::power {

double cell_leakage_nw(const netlist::Netlist& nl,
                       liberty::LibraryRepository& repo,
                       const sta::VariantAssignment& variants,
                       netlist::CellId c) {
  DOSEOPT_CHECK(c < nl.cell_count(), "cell_leakage_nw: bad cell");
  const auto [il, iw] = variants.get(c);
  return repo.variant(il, iw).cell(nl.cell(c).master_index).leakage_nw;
}

double total_leakage_uw(const netlist::Netlist& nl,
                        liberty::LibraryRepository& repo,
                        const sta::VariantAssignment& variants) {
  DOSEOPT_CHECK(variants.size() == nl.cell_count(),
                "total_leakage_uw: size mismatch");
  double total_nw = 0.0;
  for (std::size_t c = 0; c < nl.cell_count(); ++c)
    total_nw +=
        cell_leakage_nw(nl, repo, variants, static_cast<netlist::CellId>(c));
  return total_nw * 1e-3;
}

double model_delta_leakage_uw(const netlist::Netlist& nl,
                              const liberty::CoefficientSet& coeffs,
                              const std::vector<double>& delta_l_nm,
                              const std::vector<double>& delta_w_nm) {
  DOSEOPT_CHECK(delta_l_nm.size() == nl.cell_count() &&
                    delta_w_nm.size() == nl.cell_count(),
                "model_delta_leakage_uw: size mismatch");
  double total_nw = 0.0;
  for (std::size_t c = 0; c < nl.cell_count(); ++c) {
    const liberty::LeakageCoeffs& lc =
        coeffs.leakage_coeffs(nl.cell(static_cast<netlist::CellId>(c))
                                  .master_index);
    total_nw += lc.delta_leak_nw(delta_l_nm[c], delta_w_nm[c]);
  }
  return total_nw * 1e-3;
}

}  // namespace doseopt::power
