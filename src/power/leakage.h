// Leakage power analysis (the SOC Encounter power-report substitute).
//
// Total leakage of a design is the sum of each instance's characterized
// leakage at its assigned library variant.  Also provides the fitted-model
// estimate (alpha/beta/gamma form of eq. (2)) used inside the optimizer, so
// tests can compare model vs. golden values.
#pragma once

#include "liberty/coeff_fit.h"
#include "liberty/repository.h"
#include "netlist/netlist.h"
#include "sta/timer.h"

namespace doseopt::power {

/// Golden total leakage (uW) under a variant assignment: sums the
/// characterized per-variant leakage of every instance.
double total_leakage_uw(const netlist::Netlist& nl,
                        liberty::LibraryRepository& repo,
                        const sta::VariantAssignment& variants);

/// Golden leakage of a single instance (nW).
double cell_leakage_nw(const netlist::Netlist& nl,
                       liberty::LibraryRepository& repo,
                       const sta::VariantAssignment& variants,
                       netlist::CellId c);

/// Fitted-model *delta* leakage (uW) for per-cell CD deltas, eq. (2):
/// sum_p alpha_p dL_p^2 + beta_p dL_p + gamma_p dW_p.  `delta_l_nm` /
/// `delta_w_nm` are per-cell.
double model_delta_leakage_uw(const netlist::Netlist& nl,
                              const liberty::CoefficientSet& coeffs,
                              const std::vector<double>& delta_l_nm,
                              const std::vector<double>& delta_w_nm);

}  // namespace doseopt::power
