#include "liberty/liberty_io.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace doseopt::liberty {

namespace {

void write_axis(std::ostream& os, const char* key,
                const std::vector<double>& axis, int indent) {
  os << std::string(indent, ' ') << key << " (\"";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i) os << ", ";
    os << str_format("%.6g", axis[i]);
  }
  os << "\");\n";
}

void write_table(std::ostream& os, const char* group, const NldmTable& t,
                 int indent) {
  const std::string pad(indent, ' ');
  os << pad << group << " (nldm_7x7) {\n";
  write_axis(os, "index_1", t.slew_axis(), indent + 2);
  write_axis(os, "index_2", t.load_axis(), indent + 2);
  os << pad << "  values ( \\\n";
  for (std::size_t i = 0; i < t.slew_points(); ++i) {
    os << pad << "    \"";
    for (std::size_t j = 0; j < t.load_points(); ++j) {
      if (j) os << ", ";
      os << str_format("%.6f", t.at(i, j));
    }
    os << "\"" << (i + 1 < t.slew_points() ? ", \\" : " \\") << "\n";
  }
  os << pad << "  );\n" << pad << "}\n";
}

}  // namespace

void write_liberty(const Library& lib, std::ostream& os) {
  os << str_format("library (%s_dl%g_dw%g) {\n", lib.node().name.c_str(),
                   lib.delta_l_nm(), lib.delta_w_nm());
  os << "  delay_model : table_lookup;\n";
  os << "  time_unit : \"1ns\";\n";
  os << "  leakage_power_unit : \"1nW\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << str_format("  voltage_map (VDD, %.3f);\n", lib.node().vdd_v);
  os << str_format("  /* variant: delta_l=%.3fnm delta_w=%.3fnm */\n",
                   lib.delta_l_nm(), lib.delta_w_nm());
  for (const CharacterizedCell& c : lib.cells()) {
    os << str_format("  cell (%s) {\n", c.name.c_str());
    os << str_format("    cell_leakage_power : %.6f;\n", c.leakage_nw);
    os << "    pin (A) {\n";
    os << "      direction : input;\n";
    os << str_format("      capacitance : %.6f;\n", c.input_cap_ff);
    os << "    }\n";
    os << "    pin (Y) {\n";
    os << "      direction : output;\n";
    os << "      timing () {\n";
    os << "        related_pin : \"A\";\n";
    write_table(os, "cell_rise", c.arc.delay_rise, 8);
    write_table(os, "cell_fall", c.arc.delay_fall, 8);
    write_table(os, "rise_transition", c.arc.slew_rise, 8);
    write_table(os, "fall_transition", c.arc.slew_fall, 8);
    os << "      }\n";
    os << "    }\n";
    os << "  }\n";
  }
  os << "}\n";
}

std::string to_liberty_string(const Library& lib) {
  std::ostringstream os;
  write_liberty(lib, os);
  return os.str();
}

namespace {

/// Minimal recursive-descent tokenizer/parser state for the Liberty subset.
class LibertyParser {
 public:
  explicit LibertyParser(std::istream& is) { slurp(is); }

  Library parse(const tech::TechNode& node) {
    expect_keyword("library");
    const std::string libname = paren_arg();
    // Recover the variant deltas from the library name suffix
    // "<node>_dl<dL>_dw<dW>".
    double dl = 0.0, dw = 0.0;
    const std::size_t pdl = libname.rfind("_dl");
    const std::size_t pdw = libname.rfind("_dw");
    DOSEOPT_CHECK(pdl != std::string::npos && pdw != std::string::npos,
                  "liberty parse: library name lacks variant suffix");
    dl = std::stod(libname.substr(pdl + 3, pdw - (pdl + 3)));
    dw = std::stod(libname.substr(pdw + 3));

    Library lib(node, dl, dw);
    expect("{");
    while (!peek_is("}")) {
      if (peek_is("cell")) {
        lib.add_cell(parse_cell());
      } else {
        skip_statement();
      }
    }
    expect("}");
    return lib;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;

  void slurp(std::istream& is) {
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    // Strip /* */ comments and line continuations.
    std::string clean;
    clean.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
        const std::size_t end = text.find("*/", i + 2);
        DOSEOPT_CHECK(end != std::string::npos,
                      "liberty parse: unterminated comment");
        i = end + 1;
      } else if (text[i] == '\\') {
        // line continuation: skip
      } else {
        clean.push_back(text[i]);
      }
    }
    // Tokenize: punctuation () {} ; : , and quoted strings.
    std::string cur;
    auto flush = [&] {
      if (!cur.empty()) {
        tokens_.push_back(cur);
        cur.clear();
      }
    };
    for (std::size_t i = 0; i < clean.size(); ++i) {
      const char ch = clean[i];
      if (ch == '"') {
        flush();
        std::string s;
        ++i;
        while (i < clean.size() && clean[i] != '"') s.push_back(clean[i++]);
        DOSEOPT_CHECK(i < clean.size(), "liberty parse: unterminated string");
        tokens_.push_back("\"" + s + "\"");
      } else if (std::string("(){};:,").find(ch) != std::string::npos) {
        flush();
        tokens_.push_back(std::string(1, ch));
      } else if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
        flush();
      } else {
        cur.push_back(ch);
      }
    }
    flush();
  }

  const std::string& peek() const {
    DOSEOPT_CHECK(pos_ < tokens_.size(), "liberty parse: unexpected EOF");
    return tokens_[pos_];
  }
  bool peek_is(std::string_view t) const {
    return pos_ < tokens_.size() && tokens_[pos_] == t;
  }
  std::string next() {
    DOSEOPT_CHECK(pos_ < tokens_.size(), "liberty parse: unexpected EOF");
    return tokens_[pos_++];
  }
  void expect(std::string_view t) {
    const std::string got = next();
    DOSEOPT_CHECK(got == t, "liberty parse: expected '" + std::string(t) +
                                "', got '" + got + "'");
  }
  void expect_keyword(std::string_view kw) { expect(kw); }

  std::string paren_arg() {
    expect("(");
    std::string arg;
    while (!peek_is(")")) {
      if (!arg.empty()) arg += " ";
      arg += next();
    }
    expect(")");
    return arg;
  }

  /// Skip "name : value ;" or "name ( ... ) ;" or a whole "name (...) { ... }".
  void skip_statement() {
    next();  // name
    if (peek_is(":")) {
      while (!peek_is(";")) next();
      expect(";");
      return;
    }
    if (peek_is("(")) paren_arg();
    if (peek_is("{")) {
      expect("{");
      int depth = 1;
      while (depth > 0) {
        const std::string t = next();
        if (t == "{") ++depth;
        if (t == "}") --depth;
      }
      return;
    }
    if (peek_is(";")) expect(";");
  }

  std::vector<double> parse_quoted_numbers(const std::string& quoted) {
    DOSEOPT_CHECK(quoted.size() >= 2 && quoted.front() == '"',
                  "liberty parse: expected quoted number list");
    std::vector<double> out;
    for (const std::string& tok :
         split(quoted.substr(1, quoted.size() - 2), ", "))
      out.push_back(std::stod(tok));
    return out;
  }

  NldmTable parse_table() {
    paren_arg();  // template name
    expect("{");
    std::vector<double> idx1, idx2, values;
    while (!peek_is("}")) {
      const std::string name = next();
      if (name == "index_1" || name == "index_2") {
        expect("(");
        auto nums = parse_quoted_numbers(next());
        expect(")");
        expect(";");
        (name == "index_1" ? idx1 : idx2) = std::move(nums);
      } else if (name == "values") {
        expect("(");
        while (!peek_is(")")) {
          const std::string tok = next();
          if (tok == ",") continue;
          for (double v : parse_quoted_numbers(tok)) values.push_back(v);
        }
        expect(")");
        expect(";");
      } else {
        DOSEOPT_FAIL("liberty parse: unexpected table member " + name);
      }
    }
    expect("}");
    DOSEOPT_CHECK(values.size() == idx1.size() * idx2.size(),
                  "liberty parse: table shape mismatch");
    NldmTable t(idx1, idx2);
    for (std::size_t i = 0; i < idx1.size(); ++i)
      for (std::size_t j = 0; j < idx2.size(); ++j)
        t.at(i, j) = values[i * idx2.size() + j];
    return t;
  }

  CharacterizedCell parse_cell() {
    expect("cell");
    CharacterizedCell c;
    c.name = paren_arg();
    c.master_index = 0;  // resolved by the caller if needed
    expect("{");
    while (!peek_is("}")) {
      const std::string name = peek();
      if (name == "cell_leakage_power") {
        next();
        expect(":");
        c.leakage_nw = std::stod(next());
        expect(";");
      } else if (name == "pin") {
        next();
        const std::string pin = paren_arg();
        expect("{");
        while (!peek_is("}")) {
          const std::string member = peek();
          if (member == "capacitance") {
            next();
            expect(":");
            c.input_cap_ff = std::stod(next());
            expect(";");
          } else if (member == "timing") {
            next();
            paren_arg();
            expect("{");
            while (!peek_is("}")) {
              const std::string tm = peek();
              if (tm == "cell_rise") { next(); c.arc.delay_rise = parse_table(); }
              else if (tm == "cell_fall") { next(); c.arc.delay_fall = parse_table(); }
              else if (tm == "rise_transition") { next(); c.arc.slew_rise = parse_table(); }
              else if (tm == "fall_transition") { next(); c.arc.slew_fall = parse_table(); }
              else skip_statement();
            }
            expect("}");
          } else {
            skip_statement();
          }
        }
        expect("}");
        (void)pin;
      } else {
        skip_statement();
      }
    }
    expect("}");
    return c;
  }
};

}  // namespace

Library parse_liberty(const tech::TechNode& node, std::istream& is) {
  LibertyParser parser(is);
  return parser.parse(node);
}

Library parse_liberty_string(const tech::TechNode& node,
                             const std::string& text) {
  std::istringstream is(text);
  return parse_liberty(node, is);
}

}  // namespace doseopt::liberty
