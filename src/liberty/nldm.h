// Non-linear delay model (NLDM) lookup tables.
//
// A table is a grid of values indexed by input transition time (slew, ns)
// and output load capacitance (fF), exactly as in Liberty `cell_delay` /
// `output_transition` groups.  Evaluation is bilinear interpolation inside
// the grid and linear extrapolation from the edge cells outside it, matching
// common STA tool behavior.
#pragma once

#include <cstddef>
#include <vector>

namespace doseopt::liberty {

/// A rectangular lookup table over (slew, load).
class NldmTable {
 public:
  NldmTable() = default;

  /// Construct with strictly increasing axes; values are zero-initialized.
  NldmTable(std::vector<double> slew_axis_ns, std::vector<double> load_axis_ff);

  std::size_t slew_points() const { return slew_axis_.size(); }
  std::size_t load_points() const { return load_axis_.size(); }

  const std::vector<double>& slew_axis() const { return slew_axis_; }
  const std::vector<double>& load_axis() const { return load_axis_; }

  double& at(std::size_t slew_idx, std::size_t load_idx);
  double at(std::size_t slew_idx, std::size_t load_idx) const;

  /// Bilinear interpolation (linear extrapolation beyond the axes).
  double evaluate(double slew_ns, double load_ff) const;

  /// Batched lookup: evaluate `k` (slew, load) pairs against this one table,
  /// writing the interpolated values to `out[0..k)`.  Per lane this performs
  /// exactly the arithmetic of evaluate() -- same segment choice, same
  /// lerp expressions -- so each out[i] is bitwise-equal to
  /// evaluate(slew_ns[i], load_ff[i]).  The lane loop carries no
  /// cross-iteration dependence and compiles to vector code under
  /// -march=native; k == 1 degenerates to the scalar path.  Non-finite
  /// inputs clamp to the edge segment instead of invoking the binary
  /// search (whose comparisons are unordered for NaN) and propagate NaN
  /// through the interpolation arithmetic.
  void evaluate_batch(int k, const double* slew_ns, const double* load_ff,
                      double* out) const;

  /// Raw row-major value storage (slew index major); the batched timing
  /// kernels read table values directly to fuse the four lookups of a
  /// timing arc behind one axis search.
  const double* values_data() const { return values_.data(); }

  /// Index of the axis point nearest to `slew_ns` (used for per-entry
  /// coefficient lookup, "nearest entry" in Section IV-B).
  std::size_t nearest_slew_index(double slew_ns) const;
  std::size_t nearest_load_index(double load_ff) const;

  /// True if axes and all values match exactly.
  bool operator==(const NldmTable& other) const = default;

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;  // row-major: slew index major
};

/// Default 7-point characterization axes used across the library.
std::vector<double> default_slew_axis_ns();
std::vector<double> default_load_axis_ff();

}  // namespace doseopt::liberty
