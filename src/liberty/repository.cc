#include "liberty/repository.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

double dose_to_delta_cd_nm(double dose_pct) {
  return kDoseSensitivityNmPerPct * dose_pct;
}

double variant_index_to_dose_pct(int index) {
  DOSEOPT_CHECK(index >= 0 && index < kVariantsPerLayer,
                "variant_index_to_dose_pct: out of range");
  return kDoseMinPct + kDoseStepPct * index;
}

int dose_to_variant_index(double dose_pct) {
  const double clamped = std::clamp(dose_pct, kDoseMinPct, kDoseMaxPct);
  return static_cast<int>(std::lround((clamped - kDoseMinPct) / kDoseStepPct));
}

LibraryRepository::LibraryRepository(const tech::TechNode& node)
    : device_(node), masters_(make_standard_masters(node)) {}

LibraryRepository::Entry& LibraryRepository::entry_for(
    const std::pair<int, int>& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_[key];
}

std::unique_ptr<Library> LibraryRepository::characterize_variant(int il,
                                                                 int iw) {
  characterize_calls_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Library>(characterize(
      device_, masters_, dose_to_delta_cd_nm(variant_index_to_dose_pct(il)),
      dose_to_delta_cd_nm(variant_index_to_dose_pct(iw))));
}

const Library& LibraryRepository::variant(int il, int iw) {
  DOSEOPT_CHECK(il >= 0 && il < kVariantsPerLayer &&
                    iw >= 0 && iw < kVariantsPerLayer,
                "LibraryRepository::variant: index out of range");
  Entry& e = entry_for({il, iw});
  std::call_once(e.once, [&] {
    e.lib = characterize_variant(il, iw);
    e.ready.store(true, std::memory_order_release);
  });
  return *e.lib;
}

void LibraryRepository::warm(const std::vector<std::pair<int, int>>& keys,
                             ThreadPool* pool) {
  std::vector<std::pair<int, int>> missing;
  for (const auto& key : keys) {
    DOSEOPT_CHECK(key.first >= 0 && key.first < kVariantsPerLayer &&
                      key.second >= 0 && key.second < kVariantsPerLayer,
                  "LibraryRepository::warm: index out of range");
    if (!entry_for(key).ready.load(std::memory_order_acquire) &&
        std::find(missing.begin(), missing.end(), key) == missing.end())
      missing.push_back(key);
  }
  if (missing.empty()) return;

  std::vector<std::unique_ptr<Library>> built(missing.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  p.parallel_for(missing.size(), [&](std::size_t i) {
    const auto [il, iw] = missing[i];
    // characterize() itself fans out over the pool; from inside a pool
    // task that nested loop runs inline, so either level parallelizes.
    built[i] = characterize_variant(il, iw);
  });
  // Publish in key order.  A variant() racing us may have won its slot's
  // call_once already; our copy is then dropped (identical contents).
  for (std::size_t i = 0; i < missing.size(); ++i) {
    Entry& e = entry_for(missing[i]);
    std::call_once(e.once, [&] {
      e.lib = std::move(built[i]);
      e.ready.store(true, std::memory_order_release);
    });
  }
}

const Library& LibraryRepository::variant_for_dose(double dose_poly_pct,
                                                   double dose_active_pct) {
  return variant(dose_to_variant_index(dose_poly_pct),
                 dose_to_variant_index(dose_active_pct));
}

const Library* LibraryRepository::find_variant(int il, int iw) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find({il, iw});
  if (it == cache_.end() ||
      !it->second.ready.load(std::memory_order_acquire))
    return nullptr;
  return it->second.lib.get();
}

void LibraryRepository::insert_variant(int il, int iw,
                                       std::unique_ptr<Library> lib) {
  DOSEOPT_CHECK(il >= 0 && il < kVariantsPerLayer &&
                    iw >= 0 && iw < kVariantsPerLayer,
                "LibraryRepository::insert_variant: index out of range");
  DOSEOPT_CHECK(lib != nullptr,
                "LibraryRepository::insert_variant: null library");
  Entry& e = entry_for({il, iw});
  std::call_once(e.once, [&] {
    e.lib = std::move(lib);
    e.ready.store(true, std::memory_order_release);
  });
}

std::size_t LibraryRepository::characterized_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, entry] : cache_)
    if (entry.ready.load(std::memory_order_acquire)) ++n;
  return n;
}

std::vector<std::pair<int, int>> LibraryRepository::characterized_keys()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, int>> keys;
  keys.reserve(cache_.size());
  for (const auto& [key, entry] : cache_)
    if (entry.ready.load(std::memory_order_acquire)) keys.push_back(key);
  return keys;
}

}  // namespace doseopt::liberty
