#include "liberty/repository.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

double dose_to_delta_cd_nm(double dose_pct) {
  return kDoseSensitivityNmPerPct * dose_pct;
}

double variant_index_to_dose_pct(int index) {
  DOSEOPT_CHECK(index >= 0 && index < kVariantsPerLayer,
                "variant_index_to_dose_pct: out of range");
  return kDoseMinPct + kDoseStepPct * index;
}

int dose_to_variant_index(double dose_pct) {
  const double clamped = std::clamp(dose_pct, kDoseMinPct, kDoseMaxPct);
  return static_cast<int>(std::lround((clamped - kDoseMinPct) / kDoseStepPct));
}

LibraryRepository::LibraryRepository(const tech::TechNode& node)
    : device_(node), masters_(make_standard_masters(node)) {}

const Library& LibraryRepository::variant(int il, int iw) {
  DOSEOPT_CHECK(il >= 0 && il < kVariantsPerLayer &&
                    iw >= 0 && iw < kVariantsPerLayer,
                "LibraryRepository::variant: index out of range");
  const auto key = std::make_pair(il, iw);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    const double dose_l = variant_index_to_dose_pct(il);
    const double dose_w = variant_index_to_dose_pct(iw);
    auto lib = std::make_unique<Library>(
        characterize(device_, masters_, dose_to_delta_cd_nm(dose_l),
                     dose_to_delta_cd_nm(dose_w)));
    it = cache_.emplace(key, std::move(lib)).first;
  }
  return *it->second;
}

void LibraryRepository::warm(const std::vector<std::pair<int, int>>& keys,
                             ThreadPool* pool) {
  std::vector<std::pair<int, int>> missing;
  for (const auto& key : keys) {
    DOSEOPT_CHECK(key.first >= 0 && key.first < kVariantsPerLayer &&
                      key.second >= 0 && key.second < kVariantsPerLayer,
                  "LibraryRepository::warm: index out of range");
    if (!cache_.contains(key) &&
        std::find(missing.begin(), missing.end(), key) == missing.end())
      missing.push_back(key);
  }
  if (missing.empty()) return;

  std::vector<std::unique_ptr<Library>> built(missing.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  p.parallel_for(missing.size(), [&](std::size_t i) {
    const auto [il, iw] = missing[i];
    // characterize() itself fans out over the pool; from inside a pool
    // task that nested loop runs inline, so either level parallelizes.
    built[i] = std::make_unique<Library>(characterize(
        device_, masters_, dose_to_delta_cd_nm(variant_index_to_dose_pct(il)),
        dose_to_delta_cd_nm(variant_index_to_dose_pct(iw))));
  });
  for (std::size_t i = 0; i < missing.size(); ++i)
    cache_.emplace(missing[i], std::move(built[i]));
}

const Library& LibraryRepository::variant_for_dose(double dose_poly_pct,
                                                   double dose_active_pct) {
  return variant(dose_to_variant_index(dose_poly_pct),
                 dose_to_variant_index(dose_active_pct));
}

}  // namespace doseopt::liberty
