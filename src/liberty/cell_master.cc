#include "liberty/cell_master.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

const char* to_string(Function f) {
  switch (f) {
    case Function::kInv: return "INV";
    case Function::kBuf: return "BUF";
    case Function::kNand: return "NAND";
    case Function::kNor: return "NOR";
    case Function::kAnd: return "AND";
    case Function::kOr: return "OR";
    case Function::kXor: return "XOR";
    case Function::kXnor: return "XNOR";
    case Function::kAoi21: return "AOI21";
    case Function::kAoi22: return "AOI22";
    case Function::kOai21: return "OAI21";
    case Function::kOai22: return "OAI22";
    case Function::kMux2: return "MUX2";
    case Function::kDff: return "DFF";
    case Function::kLatch: return "LATCH";
  }
  return "?";
}

int CellMaster::fingers(double max_finger_width_nm) const {
  double w_max = 0.0;
  for (const StageTemplate& s : stages)
    w_max = std::max({w_max, s.wp_nm, s.wn_nm});
  return std::max(1, static_cast<int>(std::ceil(w_max / max_finger_width_nm)));
}

namespace {

// Beta ratio: PMOS/NMOS width for balanced rise/fall.
constexpr double kBeta = 1.5;

struct MasterSpec {
  const char* base;
  Function function;
  int num_inputs;
  int stages;              // 1 = single inverting stage, 2 = two stages
  double rise_stack;       // pull-up series stack depth
  double fall_stack;       // pull-down series stack depth
  double leak_state;       // state-averaged leakage factor
  double width_mult;       // device widths vs INV of same drive
  std::vector<int> drives;
};

CellMaster build_master(const MasterSpec& spec, int drive,
                        const tech::TechNode& node) {
  CellMaster m;
  m.base_name = spec.base;
  m.name = std::string(spec.base) + "X" + std::to_string(drive);
  m.function = spec.function;
  m.drive = drive;
  m.num_inputs = spec.num_inputs;
  m.sequential =
      spec.function == Function::kDff || spec.function == Function::kLatch;

  const double wn_unit = node.min_width_nm * 1.3;  // X1 inverter NMOS width
  const double wp_unit = wn_unit * kBeta;

  for (int s = 0; s < spec.stages; ++s) {
    StageTemplate st;
    const bool output_stage = (s == spec.stages - 1);
    // Internal stages are smaller than the output stage (tapered).
    const double stage_mult =
        output_stage ? static_cast<double>(drive) * spec.width_mult
                     : std::max(1.0, 0.5 * drive) * spec.width_mult;
    st.wn_nm = wn_unit * stage_mult;
    st.wp_nm = wp_unit * stage_mult;
    if (output_stage) {
      // Stacked devices are upsized by the stack depth in real cells; the
      // residual resistance penalty is the sqrt of the stack.
      st.res_factor_rise = std::sqrt(spec.rise_stack);
      st.res_factor_fall = std::sqrt(spec.fall_stack);
      st.wp_nm *= std::sqrt(spec.rise_stack);
      st.wn_nm *= std::sqrt(spec.fall_stack);
    }
    st.cpar_factor = 0.7 + 0.15 * static_cast<double>(spec.num_inputs);
    m.stages.push_back(st);
  }

  // Input cap: first-stage device gates; multi-input cells present one
  // transistor pair per pin, so the per-pin cap does not grow with fanin.
  m.input_cap_factor = 1.0;

  // Leakage geometry: every input pin contributes a transistor pair on
  // single-stage cells; two-stage cells add their first stage.
  const StageTemplate& out = m.stages.back();
  m.wn_total_nm = out.wn_nm * std::max(1, spec.num_inputs);
  m.wp_total_nm = out.wp_nm * std::max(1, spec.num_inputs);
  if (spec.stages > 1) {
    m.wn_total_nm += m.stages.front().wn_nm;
    m.wp_total_nm += m.stages.front().wp_nm;
  }
  m.leak_state_factor = spec.leak_state;
  m.nmos_count = std::max(1, spec.num_inputs) + (spec.stages > 1 ? 1 : 0);
  m.pmos_count = m.nmos_count;

  if (m.sequential) {
    // Flops carry extra internal devices (master/slave, feedback).
    m.wn_total_nm *= 2.6;
    m.wp_total_nm *= 2.6;
    m.nmos_count = m.nmos_count * 2 + 4;
    m.pmos_count = m.pmos_count * 2 + 4;
    m.setup_ns = 0.045;
    m.hold_ns = 0.010;
  }
  return m;
}

}  // namespace

std::vector<CellMaster> make_standard_masters(const tech::TechNode& node) {
  // 36 combinational masters.
  const std::vector<MasterSpec> comb = {
      {"INV",   Function::kInv,   1, 1, 1.0, 1.0, 0.50, 1.00, {1, 2, 4, 8}},
      {"BUF",   Function::kBuf,   1, 2, 1.0, 1.0, 0.50, 1.00, {1, 2, 4}},
      {"NAND2", Function::kNand,  2, 1, 1.0, 2.0, 0.38, 0.95, {1, 2, 4}},
      {"NAND3", Function::kNand,  3, 1, 1.0, 3.0, 0.30, 0.92, {1, 2}},
      {"NAND4", Function::kNand,  4, 1, 1.0, 4.0, 0.26, 0.90, {1}},
      {"NOR2",  Function::kNor,   2, 1, 2.0, 1.0, 0.38, 0.95, {1, 2, 4}},
      {"NOR3",  Function::kNor,   3, 1, 3.0, 1.0, 0.30, 0.92, {1, 2}},
      {"NOR4",  Function::kNor,   4, 1, 4.0, 1.0, 0.26, 0.90, {1}},
      {"AND2",  Function::kAnd,   2, 2, 1.0, 2.0, 0.42, 0.95, {1, 2}},
      {"AND3",  Function::kAnd,   3, 2, 1.0, 3.0, 0.36, 0.92, {1}},
      {"OR2",   Function::kOr,    2, 2, 2.0, 1.0, 0.42, 0.95, {1, 2}},
      {"OR3",   Function::kOr,    3, 2, 3.0, 1.0, 0.36, 0.92, {1}},
      {"XOR2",  Function::kXor,   2, 2, 2.0, 2.0, 0.55, 1.30, {1, 2}},
      {"XNOR2", Function::kXnor,  2, 2, 2.0, 2.0, 0.55, 1.30, {1}},
      {"AOI21", Function::kAoi21, 3, 1, 2.0, 2.0, 0.34, 0.95, {1, 2}},
      {"AOI22", Function::kAoi22, 4, 1, 2.0, 2.0, 0.32, 0.95, {1}},
      {"OAI21", Function::kOai21, 3, 1, 2.0, 2.0, 0.34, 0.95, {1, 2}},
      {"OAI22", Function::kOai22, 4, 1, 2.0, 2.0, 0.32, 0.95, {1}},
      {"MUX2",  Function::kMux2,  3, 2, 2.0, 2.0, 0.48, 1.20, {1, 2}},
  };
  // 9 sequential masters.
  const std::vector<MasterSpec> seq = {
      {"DFF",    Function::kDff,   1, 2, 1.0, 1.0, 0.55, 1.40, {1, 2}},
      {"DFFR",   Function::kDff,   2, 2, 2.0, 2.0, 0.50, 1.45, {1, 2}},
      {"DFFS",   Function::kDff,   2, 2, 2.0, 2.0, 0.50, 1.45, {1}},
      {"SDFF",   Function::kDff,   2, 2, 2.0, 2.0, 0.52, 1.55, {1, 2}},
      {"DFFRS",  Function::kDff,   3, 2, 2.0, 2.0, 0.48, 1.60, {1}},
      {"LAT",    Function::kLatch, 1, 2, 1.0, 1.0, 0.55, 1.10, {1}},
  };

  std::vector<CellMaster> masters;
  for (const auto& spec : comb)
    for (int d : spec.drives) masters.push_back(build_master(spec, d, node));
  for (const auto& spec : seq)
    for (int d : spec.drives) masters.push_back(build_master(spec, d, node));

  std::size_t n_comb = 0, n_seq = 0;
  for (const auto& m : masters) (m.sequential ? n_seq : n_comb)++;
  DOSEOPT_CHECK(n_comb == 36, "expected 36 combinational masters");
  DOSEOPT_CHECK(n_seq == 9, "expected 9 sequential masters");
  return masters;
}

const CellMaster& master_by_name(const std::vector<CellMaster>& masters,
                                 const std::string& name) {
  for (const CellMaster& m : masters)
    if (m.name == name) return m;
  throw Error("master not found: " + name);
}

}  // namespace doseopt::liberty
