#include "liberty/characterizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

namespace {

// PMOS carries roughly half the current of an NMOS of equal width.
constexpr double kPmosDriveRatio = 2.0;

struct StageGeometry {
  double wp_nm, wn_nm;   // variant widths
  double l_nm;           // variant length
  double cpar_ff;        // output parasitic
};

StageGeometry variant_geometry(const tech::DeviceModel& device,
                               const StageTemplate& st, double delta_l_nm,
                               double delta_w_nm) {
  const tech::TechNode& node = device.node();
  StageGeometry g;
  g.l_nm = node.l_nominal_nm + delta_l_nm;
  g.wp_nm = st.wp_nm + delta_w_nm;
  g.wn_nm = st.wn_nm + delta_w_nm;
  DOSEOPT_CHECK(g.l_nm > 0.0 && g.wp_nm > 0.0 && g.wn_nm > 0.0,
                "characterize: non-physical variant geometry");
  g.cpar_ff =
      st.cpar_factor * device.gate_cap_ff(g.wp_nm + g.wn_nm, g.l_nm);
  return g;
}

/// Delay and output slew of one stage for the given edge.
void stage_eval(const tech::DeviceModel& device, const StageTemplate& st,
                const StageGeometry& g, double load_ff, double slew_in_ns,
                bool rising, double* delay_ns, double* slew_out_ns) {
  const double w = rising ? g.wp_nm / kPmosDriveRatio : g.wn_nm;
  const double rf = rising ? st.res_factor_rise : st.res_factor_fall;
  *delay_ns =
      device.stage_delay_ns(w, g.l_nm, rf, g.cpar_ff, load_ff, slew_in_ns);
  *slew_out_ns =
      device.stage_slew_ns(w, g.l_nm, rf, g.cpar_ff, load_ff, slew_in_ns);
}

/// Propagate through all stages of a master; returns total delay and final
/// output slew.  Edge polarity alternates through inverting stages; we
/// characterize the requested *output* edge and walk backwards to find each
/// stage's edge.
void cell_eval(const tech::DeviceModel& device, const CellMaster& m,
               double delta_l_nm, double delta_w_nm, double slew_ns,
               double load_ff, bool out_rising, double* delay_ns,
               double* slew_out_ns) {
  double total_delay = 0.0;
  double slew = slew_ns;
  const std::size_t n = m.stages.size();
  for (std::size_t s = 0; s < n; ++s) {
    const StageTemplate& st = m.stages[s];
    const StageGeometry g = variant_geometry(device, st, delta_l_nm,
                                             delta_w_nm);
    // Output edge of stage s, assuming each stage inverts.
    const bool stage_rising = ((n - 1 - s) % 2 == 0) == out_rising;
    double load;
    if (s + 1 < n) {
      const StageGeometry gnext =
          variant_geometry(device, m.stages[s + 1], delta_l_nm, delta_w_nm);
      load = device.gate_cap_ff(gnext.wp_nm + gnext.wn_nm, gnext.l_nm);
    } else {
      load = load_ff;
    }
    double d, so;
    stage_eval(device, st, g, load, slew, stage_rising, &d, &so);
    total_delay += d;
    slew = so;
  }
  *delay_ns = total_delay;
  *slew_out_ns = slew;
}

}  // namespace

double cell_leakage_nw(const tech::DeviceModel& device, const CellMaster& m,
                       double delta_l_nm, double delta_w_nm) {
  const double l_nm = device.node().l_nominal_nm + delta_l_nm;
  const double wn =
      m.wn_total_nm + static_cast<double>(m.nmos_count) * delta_w_nm;
  const double wp =
      m.wp_total_nm + static_cast<double>(m.pmos_count) * delta_w_nm;
  DOSEOPT_CHECK(wn > 0.0 && wp > 0.0 && l_nm > 0.0,
                "cell_leakage_nw: non-physical geometry");
  return m.leak_state_factor *
         (device.leakage_nw(wn, l_nm) + device.leakage_nw(wp, l_nm));
}

double cell_input_cap_ff(const tech::DeviceModel& device, const CellMaster& m,
                         double delta_l_nm, double delta_w_nm) {
  DOSEOPT_CHECK(!m.stages.empty(), "cell_input_cap_ff: master has no stages");
  const StageGeometry g =
      variant_geometry(device, m.stages.front(), delta_l_nm, delta_w_nm);
  return m.input_cap_factor * device.gate_cap_ff(g.wp_nm + g.wn_nm, g.l_nm);
}

double cell_delay_ns(const tech::DeviceModel& device, const CellMaster& m,
                     double delta_l_nm, double delta_w_nm, double slew_ns,
                     double load_ff, bool rising) {
  double d, so;
  cell_eval(device, m, delta_l_nm, delta_w_nm, slew_ns, load_ff, rising, &d,
            &so);
  return d;
}

double cell_out_slew_ns(const tech::DeviceModel& device, const CellMaster& m,
                        double delta_l_nm, double delta_w_nm, double slew_ns,
                        double load_ff, bool rising) {
  double d, so;
  cell_eval(device, m, delta_l_nm, delta_w_nm, slew_ns, load_ff, rising, &d,
            &so);
  return so;
}

Library characterize(const tech::DeviceModel& device,
                     const std::vector<CellMaster>& masters, double delta_l_nm,
                     double delta_w_nm, const CharacterizeOptions& options) {
  Library lib(device.node(), delta_l_nm, delta_w_nm);
  // Each master's tables depend only on immutable inputs (device model,
  // master template, geometry deltas), so the per-master sweep fans out
  // over the pool with one result slot per master and assembles in master
  // order -- bit-identical output at any thread count.
  std::vector<CharacterizedCell> cells(masters.size());
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::global();
  pool.parallel_for(masters.size(), [&](std::size_t mi) {
    const CellMaster& m = masters[mi];
    CharacterizedCell& cell = cells[mi];
    cell.name = m.name;
    cell.master_index = mi;
    cell.input_cap_ff = cell_input_cap_ff(device, m, delta_l_nm, delta_w_nm);
    cell.leakage_nw = cell_leakage_nw(device, m, delta_l_nm, delta_w_nm);

    NldmTable table(options.slew_axis_ns, options.load_axis_ff);
    cell.arc.delay_rise = table;
    cell.arc.delay_fall = table;
    cell.arc.slew_rise = table;
    cell.arc.slew_fall = table;
    for (std::size_t i = 0; i < options.slew_axis_ns.size(); ++i) {
      for (std::size_t j = 0; j < options.load_axis_ff.size(); ++j) {
        const double slew = options.slew_axis_ns[i];
        const double load = options.load_axis_ff[j];
        double d, so;
        cell_eval(device, m, delta_l_nm, delta_w_nm, slew, load, true, &d,
                  &so);
        cell.arc.delay_rise.at(i, j) = d;
        cell.arc.slew_rise.at(i, j) = so;
        cell_eval(device, m, delta_l_nm, delta_w_nm, slew, load, false, &d,
                  &so);
        cell.arc.delay_fall.at(i, j) = d;
        cell.arc.slew_fall.at(i, j) = so;
      }
    }
  });
  for (CharacterizedCell& cell : cells) lib.add_cell(std::move(cell));
  return lib;
}

}  // namespace doseopt::liberty
