#include "liberty/nldm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

namespace {

void check_axis(const std::vector<double>& axis, const char* what) {
  DOSEOPT_CHECK(axis.size() >= 2, std::string(what) + ": need >= 2 points");
  for (std::size_t i = 1; i < axis.size(); ++i)
    DOSEOPT_CHECK(axis[i] > axis[i - 1],
                  std::string(what) + ": axis not strictly increasing");
}

/// Find i such that axis[i] <= x <= axis[i+1], clamped to valid segments so
/// out-of-range x extrapolates from the nearest edge segment.
std::size_t segment_index(const std::vector<double>& axis, double x) {
  if (x <= axis.front()) return 0;
  if (x >= axis.back()) return axis.size() - 2;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  return static_cast<std::size_t>(it - axis.begin()) - 1;
}

std::size_t nearest_index(const std::vector<double>& axis, double x) {
  const std::size_t seg = segment_index(axis, x);
  return (std::abs(x - axis[seg]) <= std::abs(axis[seg + 1] - x)) ? seg
                                                                  : seg + 1;
}

}  // namespace

NldmTable::NldmTable(std::vector<double> slew_axis_ns,
                     std::vector<double> load_axis_ff)
    : slew_axis_(std::move(slew_axis_ns)), load_axis_(std::move(load_axis_ff)) {
  check_axis(slew_axis_, "NldmTable slew axis");
  check_axis(load_axis_, "NldmTable load axis");
  values_.assign(slew_axis_.size() * load_axis_.size(), 0.0);
}

double& NldmTable::at(std::size_t slew_idx, std::size_t load_idx) {
  DOSEOPT_CHECK(slew_idx < slew_axis_.size() && load_idx < load_axis_.size(),
                "NldmTable::at out of range");
  return values_[slew_idx * load_axis_.size() + load_idx];
}

double NldmTable::at(std::size_t slew_idx, std::size_t load_idx) const {
  DOSEOPT_CHECK(slew_idx < slew_axis_.size() && load_idx < load_axis_.size(),
                "NldmTable::at out of range");
  return values_[slew_idx * load_axis_.size() + load_idx];
}

double NldmTable::evaluate(double slew_ns, double load_ff) const {
  DOSEOPT_CHECK(!values_.empty(), "NldmTable::evaluate on empty table");
  const std::size_t i = segment_index(slew_axis_, slew_ns);
  const std::size_t j = segment_index(load_axis_, load_ff);
  const double s0 = slew_axis_[i], s1 = slew_axis_[i + 1];
  const double l0 = load_axis_[j], l1 = load_axis_[j + 1];
  const double ts = (slew_ns - s0) / (s1 - s0);  // may be <0 or >1: extrapolate
  const double tl = (load_ff - l0) / (l1 - l0);
  const double v00 = at(i, j), v01 = at(i, j + 1);
  const double v10 = at(i + 1, j), v11 = at(i + 1, j + 1);
  const double v0 = v00 + (v01 - v00) * tl;
  const double v1 = v10 + (v11 - v10) * tl;
  return v0 + (v1 - v0) * ts;
}

void NldmTable::evaluate_batch(int k, const double* slew_ns,
                               const double* load_ff, double* out) const {
  DOSEOPT_CHECK(!values_.empty(), "NldmTable::evaluate_batch on empty table");
  const double* sa = slew_axis_.data();
  const double* la = load_axis_.data();
  const std::size_t ns = slew_axis_.size();
  const std::size_t nl = load_axis_.size();
  const double* v = values_.data();
  for (int lane = 0; lane < k; ++lane) {
    const double s = slew_ns[lane];
    const double l = load_ff[lane];
    // Linear edge-clamped segment walk: picks the same segment as the
    // binary search of evaluate() for every finite input (and the edge
    // segment, rather than undefined comparisons, for NaN).
    std::size_t i = 0;
    while (i + 2 < ns && s >= sa[i + 1]) ++i;
    std::size_t j = 0;
    while (j + 2 < nl && l >= la[j + 1]) ++j;
    const double s0 = sa[i], s1 = sa[i + 1];
    const double l0 = la[j], l1 = la[j + 1];
    const double ts = (s - s0) / (s1 - s0);
    const double tl = (l - l0) / (l1 - l0);
    const double v00 = v[i * nl + j], v01 = v[i * nl + j + 1];
    const double v10 = v[(i + 1) * nl + j], v11 = v[(i + 1) * nl + j + 1];
    const double lo = v00 + (v01 - v00) * tl;
    const double hi = v10 + (v11 - v10) * tl;
    out[lane] = lo + (hi - lo) * ts;
  }
}

std::size_t NldmTable::nearest_slew_index(double slew_ns) const {
  return nearest_index(slew_axis_, slew_ns);
}

std::size_t NldmTable::nearest_load_index(double load_ff) const {
  return nearest_index(load_axis_, load_ff);
}

std::vector<double> default_slew_axis_ns() {
  return {0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512};
}

std::vector<double> default_load_axis_ff() {
  return {0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6};
}

}  // namespace doseopt::liberty
