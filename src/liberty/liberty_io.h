// Liberty-format subset writer and reader.
//
// Serializes a characterized Library to the industry Liberty (.lib) text
// syntax -- `library`, `cell`, `pin`, `timing`, `lu_table` groups with
// `index_1`/`index_2`/`values` -- and parses the same subset back.  Round-
// tripping through this format is covered by tests; it also lets a
// downstream user inspect our characterized variants in standard tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/library.h"

namespace doseopt::liberty {

/// Write `lib` as Liberty text to `os`.  The library is named
/// "<node>_dl<dL>_dw<dW>".
void write_liberty(const Library& lib, std::ostream& os);

/// Convenience: Liberty text as a string.
std::string to_liberty_string(const Library& lib);

/// Parse a library previously produced by write_liberty.  `node` supplies
/// the technology parameters (Liberty does not carry our device model).
/// Throws doseopt::Error on malformed input.
Library parse_liberty(const tech::TechNode& node, std::istream& is);

/// Parse from a string.
Library parse_liberty_string(const tech::TechNode& node,
                             const std::string& text);

}  // namespace doseopt::liberty
