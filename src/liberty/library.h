// A characterized cell library at one (delta-L, delta-W) geometry variant.
//
// The optimization flow of the paper uses 21 characterized libraries for
// gate-length-only modulation (dose -5%..+5% in 0.5% steps at Ds = -2 nm/%)
// and 21x21 libraries when the active layer is modulated too.  A Library is
// one such variant: every master's NLDM delay/slew tables, pin caps, and
// leakage, all evaluated at (L_nominal + dL, W + dW).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/cell_master.h"
#include "liberty/nldm.h"
#include "tech/tech_node.h"

namespace doseopt::liberty {

/// Stack-buffer width of the batched arc evaluations; larger batches are
/// processed in chunks of this size.
inline constexpr int kMaxNldmBatch = 8;

/// One timing arc (input pin -> output), rise and fall.
struct TimingArc {
  NldmTable delay_rise;
  NldmTable delay_fall;
  NldmTable slew_rise;
  NldmTable slew_fall;

  /// Worst (max) of rise/fall delay at (slew, load).
  double delay_ns(double slew_ns, double load_ff) const;

  /// Worst (max) of rise/fall output slew at (slew, load).
  double out_slew_ns(double slew_ns, double load_ff) const;

  /// Batched forms: k (slew, load) pairs in, k worst-case values out, each
  /// lane bitwise-equal to the scalar call with that lane's pair.
  void delay_ns_batch(int k, const double* slew_ns, const double* load_ff,
                      double* out) const;
  void out_slew_ns_batch(int k, const double* slew_ns, const double* load_ff,
                         double* out) const;

  /// True when all four tables share identical slew and load axes (the
  /// characterizer always builds arcs this way); the batched STA kernel
  /// then performs one axis search per lane for the whole arc.
  bool shared_axes() const;
};

/// A master characterized at this library's variant geometry.
struct CharacterizedCell {
  std::string name;          ///< master name, e.g. "NAND2X2"
  std::size_t master_index;  ///< index into the master list
  double input_cap_ff = 0.0;
  double leakage_nw = 0.0;
  TimingArc arc;  ///< identical template for every input pin
};

/// A characterized library: all masters at one (dL, dW).
class Library {
 public:
  Library(tech::TechNode node, double delta_l_nm, double delta_w_nm)
      : node_(std::move(node)), delta_l_nm_(delta_l_nm),
        delta_w_nm_(delta_w_nm) {}

  const tech::TechNode& node() const { return node_; }
  double delta_l_nm() const { return delta_l_nm_; }
  double delta_w_nm() const { return delta_w_nm_; }

  void add_cell(CharacterizedCell cell);

  std::size_t cell_count() const { return cells_.size(); }
  const CharacterizedCell& cell(std::size_t i) const;
  const CharacterizedCell& cell_by_name(const std::string& name) const;
  bool has_cell(const std::string& name) const;
  /// Index of a cell by name; throws if absent.
  std::size_t cell_index(const std::string& name) const;

  const std::vector<CharacterizedCell>& cells() const { return cells_; }

 private:
  tech::TechNode node_;
  double delta_l_nm_;
  double delta_w_nm_;
  std::vector<CharacterizedCell> cells_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace doseopt::liberty
