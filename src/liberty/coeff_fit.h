// Fitted dose-sensitivity coefficients (Sections II-C / III of the paper).
//
// From the characterized variant libraries, extract per-master:
//
//   * delay coefficients  A_p = d(delay)/d(L)  and  B_p = d(delay)/d(W),
//     fitted independently at every (slew, load) NLDM entry so that an
//     instance's coefficients can be looked up from its analyzed input slew
//     and output load ("the coefficients associated with the nearest entry
//     (or, entries with interpolation) in the table will be applied");
//
//   * leakage coefficients  dLeak = alpha*dL^2 + beta*dL + gamma*dW
//     (quadratic in gate length, linear in gate width).
//
// Units: delays ns, CDs nm, leakage nW  =>  A,B in ns/nm; alpha nW/nm^2;
// beta, gamma nW/nm.
#pragma once

#include <vector>

#include "fit/leastsq.h"
#include "liberty/nldm.h"
#include "liberty/repository.h"

namespace doseopt::liberty {

/// Per-entry delay sensitivity grids for one master.
struct DelayCoeffGrid {
  NldmTable a_length;  ///< d(delay)/dL at each (slew, load) entry [ns/nm]
  NldmTable b_width;   ///< d(delay)/dW at each (slew, load) entry [ns/nm]
};

/// Leakage sensitivity of one master.
struct LeakageCoeffs {
  double alpha_nw_per_nm2 = 0.0;  ///< quadratic in dL; >= 0 (convex)
  double beta_nw_per_nm = 0.0;    ///< linear in dL; < 0 (leak falls as L grows)
  double gamma_nw_per_nm = 0.0;   ///< linear in dW; > 0
  double nominal_nw = 0.0;        ///< leakage at (dL, dW) = (0, 0)

  /// Model evaluation: delta leakage at (dL, dW).
  double delta_leak_nw(double delta_l_nm, double delta_w_nm) const;
};

/// Residual quality of the delay fits, as the paper reports in Section V
/// (max sum-of-squared-residuals over all fitted curves).
struct DelayFitQuality {
  fit::ResidualStats length_only;   ///< fits over the 21 dL variants
  fit::ResidualStats length_width;  ///< joint fits over the 21x21 variants
};

/// All fitted coefficients for a master set.
class CoefficientSet {
 public:
  /// Fit from `repo` for all masters.  `fit_width` additionally fits the
  /// B/gamma width coefficients from the 21x21 grid (only needed for
  /// both-layer optimization; characterizing 441 variants costs more).
  CoefficientSet(LibraryRepository& repo, bool fit_width);

  const DelayCoeffGrid& delay_coeffs(std::size_t master_index) const;
  const LeakageCoeffs& leakage_coeffs(std::size_t master_index) const;

  /// Interpolated A_p for an instance with the given analyzed slew/load.
  double a_length(std::size_t master_index, double slew_ns,
                  double load_ff) const;

  /// Interpolated B_p (0 when width fitting was disabled).
  double b_width(std::size_t master_index, double slew_ns,
                 double load_ff) const;

  bool width_fitted() const { return fit_width_; }
  const DelayFitQuality& quality() const { return quality_; }

 private:
  bool fit_width_;
  std::vector<DelayCoeffGrid> delay_;
  std::vector<LeakageCoeffs> leakage_;
  DelayFitQuality quality_;
};

}  // namespace doseopt::liberty
