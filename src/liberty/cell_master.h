// Standard-cell master templates.
//
// A master template is the transistor-level description the characterizer
// turns into NLDM tables: per-stage driver widths and stack factors, input
// pin capacitance, parasitic output capacitance, and state-averaged leakage
// geometry.  The production library the paper uses has 36 combinational and
// 9 sequential masters; make_standard_masters() builds the same inventory
// for a given technology node.
#pragma once

#include <string>
#include <vector>

#include "tech/tech_node.h"

namespace doseopt::liberty {

/// Logic function of a master (what the netlist generator needs to know).
enum class Function {
  kInv,
  kBuf,
  kNand,
  kNor,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kAoi21,
  kAoi22,
  kOai21,
  kOai22,
  kMux2,
  kDff,
  kLatch,
};

const char* to_string(Function f);

/// One CMOS stage inside a cell.
struct StageTemplate {
  double wp_nm = 0.0;  ///< pull-up driver width (single finger equivalent)
  double wn_nm = 0.0;  ///< pull-down driver width
  double res_factor_rise = 1.0;  ///< series-stack multiplier on pull-up R
  double res_factor_fall = 1.0;  ///< series-stack multiplier on pull-down R
  /// Parasitic capacitance at the stage output, as a multiple of the stage's
  /// own gate capacitance (diffusion + local wiring).
  double cpar_factor = 0.8;
};

/// Transistor-level template of one cell master.
struct CellMaster {
  std::string name;       ///< e.g. "NAND2X2"
  std::string base_name;  ///< e.g. "NAND2"
  Function function = Function::kInv;
  int drive = 1;       ///< X-drive multiplier
  int num_inputs = 1;  ///< data inputs (excludes clock)
  bool sequential = false;

  std::vector<StageTemplate> stages;  ///< signal path, input to output

  /// Input pin capacitance factor: pin cap = factor * gate cap of the first
  /// stage's devices at the current (L, W) variant.
  double input_cap_factor = 1.0;

  /// Total transistor widths for leakage (all devices, all stages).
  double wn_total_nm = 0.0;
  double wp_total_nm = 0.0;

  /// Device counts: an active-layer width delta dW applies to each printed
  /// device, so total leakage width shifts by count * dW.
  int nmos_count = 1;
  int pmos_count = 1;

  /// State-averaged leakage multiplier (stack effect: series stacks leak
  /// less than a lone device).
  double leak_state_factor = 0.5;

  /// Sequential-only timing (constant across variants; the clk->Q arc is
  /// characterized like a combinational arc).
  double setup_ns = 0.0;
  double hold_ns = 0.0;

  /// Number of printed gate fingers; the dose-driven width delta applies to
  /// each finger, so total width change = fingers * dW.
  int fingers(double max_finger_width_nm) const;
};

/// Build the full standard inventory for `node`: 36 combinational masters
/// (INV/BUF/NAND/NOR/AND/OR/XOR/XNOR/AOI/OAI/MUX at multiple drives) and 9
/// sequential masters (DFF variants, scan flop, latch).
std::vector<CellMaster> make_standard_masters(const tech::TechNode& node);

/// Locate a master by name; throws if absent.
const CellMaster& master_by_name(const std::vector<CellMaster>& masters,
                                 const std::string& name);

}  // namespace doseopt::liberty
