#include "liberty/coeff_fit.h"

#include <cmath>

#include "common/error.h"

namespace doseopt::liberty {

double LeakageCoeffs::delta_leak_nw(double delta_l_nm,
                                    double delta_w_nm) const {
  return alpha_nw_per_nm2 * delta_l_nm * delta_l_nm +
         beta_nw_per_nm * delta_l_nm + gamma_nw_per_nm * delta_w_nm;
}

namespace {

constexpr int kNominalIndex = kVariantsPerLayer / 2;

/// Through-origin linear fit: target = c * x.
double fit_slope(const std::vector<double>& xs, const std::vector<double>& ys,
                 fit::FitResult* result_out = nullptr) {
  std::vector<fit::Sample> samples(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    samples[i] = {{xs[i]}, ys[i]};
  fit::FitResult r = fit::fit_linear(samples);
  if (result_out != nullptr) *result_out = r;
  return r.coefficients[0];
}

}  // namespace

CoefficientSet::CoefficientSet(LibraryRepository& repo, bool fit_width)
    : fit_width_(fit_width) {
  const std::vector<CellMaster>& masters = repo.masters();
  const Library& nominal = repo.nominal();

  // Geometry deltas of each variant index.
  std::vector<double> delta_cd(kVariantsPerLayer);
  for (int i = 0; i < kVariantsPerLayer; ++i)
    delta_cd[i] = dose_to_delta_cd_nm(variant_index_to_dose_pct(i));

  delay_.reserve(masters.size());
  leakage_.reserve(masters.size());

  const NldmTable& proto = nominal.cell(0).arc.delay_rise;
  const std::size_t ns = proto.slew_points();
  const std::size_t nl = proto.load_points();

  for (std::size_t mi = 0; mi < masters.size(); ++mi) {
    DelayCoeffGrid grid;
    grid.a_length = NldmTable(proto.slew_axis(), proto.load_axis());
    grid.b_width = NldmTable(proto.slew_axis(), proto.load_axis());

    // ---- A_p: delay vs dL at each entry, over the 21 poly variants.
    for (std::size_t i = 0; i < ns; ++i) {
      for (std::size_t j = 0; j < nl; ++j) {
        std::vector<double> dl(kVariantsPerLayer);
        std::vector<double> dd(kVariantsPerLayer);       // worst-edge deltas
        std::vector<double> dd_rise(kVariantsPerLayer);  // per-edge, for QA
        std::vector<double> dd_fall(kVariantsPerLayer);
        const CharacterizedCell& nom = nominal.cell(mi);
        const double t0 = std::max(nom.arc.delay_rise.at(i, j),
                                   nom.arc.delay_fall.at(i, j));
        for (int v = 0; v < kVariantsPerLayer; ++v) {
          const CharacterizedCell& c =
              repo.variant(v, kNominalIndex).cell(mi);
          dl[v] = delta_cd[v];
          dd[v] = std::max(c.arc.delay_rise.at(i, j),
                           c.arc.delay_fall.at(i, j)) - t0;
          dd_rise[v] =
              c.arc.delay_rise.at(i, j) - nom.arc.delay_rise.at(i, j);
          dd_fall[v] =
              c.arc.delay_fall.at(i, j) - nom.arc.delay_fall.at(i, j);
        }
        grid.a_length.at(i, j) = fit_slope(dl, dd);
        fit::FitResult qr;
        fit_slope(dl, dd_rise, &qr);
        quality_.length_only.accumulate(qr);
        fit_slope(dl, dd_fall, &qr);
        quality_.length_only.accumulate(qr);
      }
    }

    // ---- B_p and joint-fit quality over the 21x21 grid.
    if (fit_width_) {
      for (std::size_t i = 0; i < ns; ++i) {
        for (std::size_t j = 0; j < nl; ++j) {
          const CharacterizedCell& nom = nominal.cell(mi);
          const double t0 = std::max(nom.arc.delay_rise.at(i, j),
                                     nom.arc.delay_fall.at(i, j));
          // B from the width-only sweep.
          std::vector<double> dw(kVariantsPerLayer), dd(kVariantsPerLayer);
          for (int v = 0; v < kVariantsPerLayer; ++v) {
            const CharacterizedCell& c =
                repo.variant(kNominalIndex, v).cell(mi);
            dw[v] = delta_cd[v];
            dd[v] = std::max(c.arc.delay_rise.at(i, j),
                             c.arc.delay_fall.at(i, j)) - t0;
          }
          grid.b_width.at(i, j) = fit_slope(dw, dd);

          // Joint quality: fit dt = A*dL + B*dW over all 441 variants for
          // the rise edge (the paper reports the max SSR over all fitted
          // curves; one edge per entry keeps the sweep affordable while
          // covering every master and every entry).
          std::vector<fit::Sample> joint;
          joint.reserve(static_cast<std::size_t>(kVariantsPerLayer) *
                        kVariantsPerLayer);
          for (int vl = 0; vl < kVariantsPerLayer; ++vl) {
            for (int vw = 0; vw < kVariantsPerLayer; ++vw) {
              const CharacterizedCell& c = repo.variant(vl, vw).cell(mi);
              joint.push_back(
                  {{delta_cd[vl], delta_cd[vw]},
                   c.arc.delay_rise.at(i, j) - nom.arc.delay_rise.at(i, j)});
            }
          }
          quality_.length_width.accumulate(fit::fit_linear(joint));
        }
      }
    }
    delay_.push_back(std::move(grid));

    // ---- Leakage coefficients.
    LeakageCoeffs lk;
    lk.nominal_nw = nominal.cell(mi).leakage_nw;
    {
      std::vector<fit::Sample> samples;
      samples.reserve(kVariantsPerLayer);
      for (int v = 0; v < kVariantsPerLayer; ++v) {
        const double dl_nm = delta_cd[v];
        const double leak = repo.variant(v, kNominalIndex).cell(mi).leakage_nw;
        samples.push_back({{dl_nm * dl_nm, dl_nm}, leak - lk.nominal_nw});
      }
      const fit::FitResult r = fit::fit_linear(samples);
      lk.alpha_nw_per_nm2 = r.coefficients[0];
      lk.beta_nw_per_nm = r.coefficients[1];
      DOSEOPT_CHECK(lk.alpha_nw_per_nm2 >= 0.0,
                    "leakage fit: non-convex quadratic for " +
                        masters[mi].name);
    }
    if (fit_width_) {
      std::vector<double> dw(kVariantsPerLayer), dleak(kVariantsPerLayer);
      for (int v = 0; v < kVariantsPerLayer; ++v) {
        dw[v] = delta_cd[v];
        dleak[v] =
            repo.variant(kNominalIndex, v).cell(mi).leakage_nw - lk.nominal_nw;
      }
      lk.gamma_nw_per_nm = fit_slope(dw, dleak);
    }
    leakage_.push_back(lk);
  }
}

const DelayCoeffGrid& CoefficientSet::delay_coeffs(
    std::size_t master_index) const {
  DOSEOPT_CHECK(master_index < delay_.size(),
                "delay_coeffs: master index out of range");
  return delay_[master_index];
}

const LeakageCoeffs& CoefficientSet::leakage_coeffs(
    std::size_t master_index) const {
  DOSEOPT_CHECK(master_index < leakage_.size(),
                "leakage_coeffs: master index out of range");
  return leakage_[master_index];
}

double CoefficientSet::a_length(std::size_t master_index, double slew_ns,
                                double load_ff) const {
  return delay_coeffs(master_index).a_length.evaluate(slew_ns, load_ff);
}

double CoefficientSet::b_width(std::size_t master_index, double slew_ns,
                               double load_ff) const {
  if (!fit_width_) return 0.0;
  return delay_coeffs(master_index).b_width.evaluate(slew_ns, load_ff);
}

}  // namespace doseopt::liberty
