#include "liberty/library.h"

#include <algorithm>

#include "common/error.h"

namespace doseopt::liberty {

double TimingArc::delay_ns(double slew_ns, double load_ff) const {
  return std::max(delay_rise.evaluate(slew_ns, load_ff),
                  delay_fall.evaluate(slew_ns, load_ff));
}

double TimingArc::out_slew_ns(double slew_ns, double load_ff) const {
  return std::max(slew_rise.evaluate(slew_ns, load_ff),
                  slew_fall.evaluate(slew_ns, load_ff));
}

namespace {

/// out[i] = max(a[i], b[i]) with std::max semantics (first argument wins on
/// unordered comparisons), matching the scalar delay_ns/out_slew_ns.
inline void lane_max(int k, const double* a, const double* b, double* out) {
  for (int i = 0; i < k; ++i) out[i] = std::max(a[i], b[i]);
}

}  // namespace

void TimingArc::delay_ns_batch(int k, const double* slew_ns,
                               const double* load_ff, double* out) const {
  double rise[kMaxNldmBatch], fall[kMaxNldmBatch];
  for (int base = 0; base < k; base += kMaxNldmBatch) {
    const int m = std::min(k - base, kMaxNldmBatch);
    delay_rise.evaluate_batch(m, slew_ns + base, load_ff + base, rise);
    delay_fall.evaluate_batch(m, slew_ns + base, load_ff + base, fall);
    lane_max(m, rise, fall, out + base);
  }
}

void TimingArc::out_slew_ns_batch(int k, const double* slew_ns,
                                  const double* load_ff, double* out) const {
  double rise[kMaxNldmBatch], fall[kMaxNldmBatch];
  for (int base = 0; base < k; base += kMaxNldmBatch) {
    const int m = std::min(k - base, kMaxNldmBatch);
    slew_rise.evaluate_batch(m, slew_ns + base, load_ff + base, rise);
    slew_fall.evaluate_batch(m, slew_ns + base, load_ff + base, fall);
    lane_max(m, rise, fall, out + base);
  }
}

bool TimingArc::shared_axes() const {
  return delay_rise.slew_axis() == delay_fall.slew_axis() &&
         delay_rise.slew_axis() == slew_rise.slew_axis() &&
         delay_rise.slew_axis() == slew_fall.slew_axis() &&
         delay_rise.load_axis() == delay_fall.load_axis() &&
         delay_rise.load_axis() == slew_rise.load_axis() &&
         delay_rise.load_axis() == slew_fall.load_axis();
}

void Library::add_cell(CharacterizedCell cell) {
  DOSEOPT_CHECK(!by_name_.contains(cell.name),
                "Library::add_cell: duplicate cell " + cell.name);
  by_name_.emplace(cell.name, cells_.size());
  cells_.push_back(std::move(cell));
}

const CharacterizedCell& Library::cell(std::size_t i) const {
  DOSEOPT_CHECK(i < cells_.size(), "Library::cell: index out of range");
  return cells_[i];
}

const CharacterizedCell& Library::cell_by_name(const std::string& name) const {
  return cells_[cell_index(name)];
}

bool Library::has_cell(const std::string& name) const {
  return by_name_.contains(name);
}

std::size_t Library::cell_index(const std::string& name) const {
  const auto it = by_name_.find(name);
  DOSEOPT_CHECK(it != by_name_.end(), "Library: unknown cell " + name);
  return it->second;
}

}  // namespace doseopt::liberty
