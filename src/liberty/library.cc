#include "liberty/library.h"

#include <algorithm>

#include "common/error.h"

namespace doseopt::liberty {

double TimingArc::delay_ns(double slew_ns, double load_ff) const {
  return std::max(delay_rise.evaluate(slew_ns, load_ff),
                  delay_fall.evaluate(slew_ns, load_ff));
}

double TimingArc::out_slew_ns(double slew_ns, double load_ff) const {
  return std::max(slew_rise.evaluate(slew_ns, load_ff),
                  slew_fall.evaluate(slew_ns, load_ff));
}

void Library::add_cell(CharacterizedCell cell) {
  DOSEOPT_CHECK(!by_name_.contains(cell.name),
                "Library::add_cell: duplicate cell " + cell.name);
  by_name_.emplace(cell.name, cells_.size());
  cells_.push_back(std::move(cell));
}

const CharacterizedCell& Library::cell(std::size_t i) const {
  DOSEOPT_CHECK(i < cells_.size(), "Library::cell: index out of range");
  return cells_[i];
}

const CharacterizedCell& Library::cell_by_name(const std::string& name) const {
  return cells_[cell_index(name)];
}

bool Library::has_cell(const std::string& name) const {
  return by_name_.contains(name);
}

std::size_t Library::cell_index(const std::string& name) const {
  const auto it = by_name_.find(name);
  DOSEOPT_CHECK(it != by_name_.end(), "Library: unknown cell " + name);
  return it->second;
}

}  // namespace doseopt::liberty
