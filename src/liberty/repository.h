// Repository of characterized library variants over the dose grid.
//
// The paper's flow characterizes 21 libraries for poly-only modulation
// (dose -5%..+5% in 0.5% steps; at Ds = -2 nm/% each step is a 1 nm gate-
// length change) and 21x21 libraries for simultaneous poly+active
// modulation.  The repository owns the master list and lazily characterizes
// and caches variants on demand, and provides the dose <-> variant-index
// snapping used when applying an optimized dose map ("rounding step" of
// Section IV-A).
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "liberty/characterizer.h"
#include "liberty/library.h"
#include "tech/device.h"

namespace doseopt::liberty {

/// Dose sensitivity used throughout the paper's experiments (nm per %).
inline constexpr double kDoseSensitivityNmPerPct = -2.0;

/// Dose grid: -5% .. +5% in 0.5% steps -> 21 variants per layer.
inline constexpr int kVariantsPerLayer = 21;
inline constexpr double kDoseStepPct = 0.5;
inline constexpr double kDoseMinPct = -5.0;
inline constexpr double kDoseMaxPct = 5.0;

/// Convert a dose percentage to the CD delta it prints (nm).
double dose_to_delta_cd_nm(double dose_pct);

/// Dose value of variant index i in [0, kVariantsPerLayer).
double variant_index_to_dose_pct(int index);

/// Nearest variant index for an arbitrary dose percentage (clamped to range).
int dose_to_variant_index(double dose_pct);

/// Lazily characterized variant library cache.
class LibraryRepository {
 public:
  /// Build masters for `node` and prepare the cache (no characterization
  /// happens until a variant is requested).
  explicit LibraryRepository(const tech::TechNode& node);

  const tech::DeviceModel& device() const { return device_; }
  const std::vector<CellMaster>& masters() const { return masters_; }

  /// The nominal (0, 0) variant.
  const Library& nominal() { return variant(kVariantsPerLayer / 2,
                                            kVariantsPerLayer / 2); }

  /// Variant at poly index `il` and active index `iw` (each 0..20, 10 =
  /// nominal). Characterizes on first use.
  ///
  /// NOT thread-safe when the variant is missing (the cache insert races);
  /// parallel consumers must warm() every variant they will touch first,
  /// after which concurrent variant() calls are read-only and safe.
  const Library& variant(int il, int iw);

  /// Characterize every missing variant among `keys` (pairs of (il, iw)),
  /// fanning the characterization runs out over `pool` (nullptr = the
  /// process pool).  Insertion happens on the calling thread in key order,
  /// so the cache contents are identical for any thread count.
  void warm(const std::vector<std::pair<int, int>>& keys,
            ThreadPool* pool = nullptr);

  /// Variant for dose percentages, snapped to the characterization grid.
  const Library& variant_for_dose(double dose_poly_pct, double dose_active_pct);

  /// Number of variants characterized so far (tests/telemetry).
  std::size_t characterized_count() const { return cache_.size(); }

 private:
  tech::DeviceModel device_;
  std::vector<CellMaster> masters_;
  std::map<std::pair<int, int>, std::unique_ptr<Library>> cache_;
};

}  // namespace doseopt::liberty
