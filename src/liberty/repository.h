// Repository of characterized library variants over the dose grid.
//
// The paper's flow characterizes 21 libraries for poly-only modulation
// (dose -5%..+5% in 0.5% steps; at Ds = -2 nm/% each step is a 1 nm gate-
// length change) and 21x21 libraries for simultaneous poly+active
// modulation.  The repository owns the master list and lazily characterizes
// and caches variants on demand, and provides the dose <-> variant-index
// snapping used when applying an optimized dose map ("rounding step" of
// Section IV-A).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "liberty/characterizer.h"
#include "liberty/library.h"
#include "tech/device.h"

namespace doseopt::liberty {

/// Dose sensitivity used throughout the paper's experiments (nm per %).
inline constexpr double kDoseSensitivityNmPerPct = -2.0;

/// Dose grid: -5% .. +5% in 0.5% steps -> 21 variants per layer.
inline constexpr int kVariantsPerLayer = 21;
inline constexpr double kDoseStepPct = 0.5;
inline constexpr double kDoseMinPct = -5.0;
inline constexpr double kDoseMaxPct = 5.0;

/// Convert a dose percentage to the CD delta it prints (nm).
double dose_to_delta_cd_nm(double dose_pct);

/// Dose value of variant index i in [0, kVariantsPerLayer).
double variant_index_to_dose_pct(int index);

/// Nearest variant index for an arbitrary dose percentage (clamped to range).
int dose_to_variant_index(double dose_pct);

/// Poly-layer variant index after an additional printed delta-L (nm) on top
/// of `base_index`.  Characterized steps are 1 nm of delta-L apart (0.5%
/// dose at Ds = -2 nm/%) and positive delta-L means a *lower* index, so the
/// shift is -round(delta_l), clamped to the characterized grid.  Both the
/// scalar Monte-Carlo yield path and the batched STA engine snap sampled CD
/// variation through this one function, which is what makes their per-die
/// variant assignments -- and therefore their timing -- bitwise comparable.
inline int shifted_poly_index(int base_index, double delta_l_nm) {
  // Round half away from zero without the libm lround call; the index
  // fill runs once per (cell, die) in the Monte-Carlo loop.
  const int shift = static_cast<int>(
      delta_l_nm >= 0.0 ? delta_l_nm + 0.5 : delta_l_nm - 0.5);
  return std::clamp(base_index - shift, 0, kVariantsPerLayer - 1);
}

/// Lazily characterized variant library cache.
///
/// Thread-safe: concurrent variant() calls for the same missing variant
/// characterize it exactly once (per-variant std::once_flag behind a cache
/// mutex), and returned references stay stable for the repository's
/// lifetime.  Characterization is deterministic, so the cache contents are
/// identical whichever thread wins.
class LibraryRepository {
 public:
  /// Build masters for `node` and prepare the cache (no characterization
  /// happens until a variant is requested).
  explicit LibraryRepository(const tech::TechNode& node);

  const tech::DeviceModel& device() const { return device_; }
  const std::vector<CellMaster>& masters() const { return masters_; }

  /// The nominal (0, 0) variant.
  const Library& nominal() { return variant(kVariantsPerLayer / 2,
                                            kVariantsPerLayer / 2); }

  /// Variant at poly index `il` and active index `iw` (each 0..20, 10 =
  /// nominal).  Characterizes on first use; safe to call concurrently.
  const Library& variant(int il, int iw);

  /// Characterize every missing variant among `keys` (pairs of (il, iw)),
  /// fanning the characterization runs out over `pool` (nullptr = the
  /// process pool).  Publication happens on the calling thread in key
  /// order, so the cache contents are identical for any thread count.
  void warm(const std::vector<std::pair<int, int>>& keys,
            ThreadPool* pool = nullptr);

  /// Variant for dose percentages, snapped to the characterization grid.
  const Library& variant_for_dose(double dose_poly_pct, double dose_active_pct);

  /// The variant at (il, iw) if it is already characterized, else nullptr.
  /// Never characterizes; safe for concurrent readers (e.g. the snapshot
  /// writer walking the cache).
  const Library* find_variant(int il, int iw) const;

  /// Adopt an externally built (e.g. snapshot-restored) variant library.
  /// A variant that is already characterized keeps the existing object
  /// (references must stay stable); `lib` is then discarded.
  void insert_variant(int il, int iw, std::unique_ptr<Library> lib);

  /// Number of variants characterized so far (tests/telemetry).
  std::size_t characterized_count() const;

  /// Keys of every characterized variant, in ascending (il, iw) order.
  std::vector<std::pair<int, int>> characterized_keys() const;

  /// Number of characterize() runs this repository has performed (telemetry;
  /// snapshot-restored variants do not count).
  std::uint64_t characterize_calls() const {
    return characterize_calls_.load(std::memory_order_relaxed);
  }

 private:
  /// One cache slot.  `ready` is the acquire/release-published "lib is
  /// usable" flag; `once` makes the build-and-publish step run exactly once.
  struct Entry {
    std::once_flag once;
    std::unique_ptr<Library> lib;
    std::atomic<bool> ready{false};
  };

  /// Locate (or default-create) the entry for `key`.  std::map nodes never
  /// move, so the reference stays valid without the lock held.
  Entry& entry_for(const std::pair<int, int>& key);

  std::unique_ptr<Library> characterize_variant(int il, int iw);

  tech::DeviceModel device_;
  std::vector<CellMaster> masters_;
  mutable std::mutex mu_;  ///< guards cache_ map structure
  std::map<std::pair<int, int>, Entry> cache_;
  std::atomic<std::uint64_t> characterize_calls_{0};
};

}  // namespace doseopt::liberty
