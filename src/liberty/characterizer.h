// Library characterizer.
//
// Replaces the foundry characterization flow: builds NLDM delay/slew tables,
// pin capacitances, and leakage for every master at a given geometry variant
// (delta gate length from the poly-layer dose, delta gate width from the
// active-layer dose), using the analytic device model in src/tech.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "liberty/cell_master.h"
#include "liberty/library.h"
#include "tech/device.h"

namespace doseopt::liberty {

/// Characterization controls.
struct CharacterizeOptions {
  std::vector<double> slew_axis_ns = default_slew_axis_ns();
  std::vector<double> load_axis_ff = default_load_axis_ff();
  /// Pool for the per-master table sweep; nullptr = the process pool.
  /// Masters are characterized independently and assembled in master
  /// order, so the result is identical for any thread count.
  ThreadPool* pool = nullptr;
};

/// Characterize `masters` at gate length L_nominal + delta_l_nm and device
/// widths W + delta_w_nm.  Throws if the variant geometry is non-physical
/// (e.g. width driven below ~0).
Library characterize(const tech::DeviceModel& device,
                     const std::vector<CellMaster>& masters, double delta_l_nm,
                     double delta_w_nm, const CharacterizeOptions& options = {});

/// Leakage power (nW) of one master at a variant geometry; exposed
/// separately so device-level studies (Figs. 5/6) can sweep it directly.
double cell_leakage_nw(const tech::DeviceModel& device, const CellMaster& m,
                       double delta_l_nm, double delta_w_nm);

/// Input pin capacitance (fF) of one master at a variant geometry.
double cell_input_cap_ff(const tech::DeviceModel& device, const CellMaster& m,
                         double delta_l_nm, double delta_w_nm);

/// Single-arc propagation delay (ns) of one master at a variant geometry for
/// a given input slew and output load; `rising` selects the output edge.
double cell_delay_ns(const tech::DeviceModel& device, const CellMaster& m,
                     double delta_l_nm, double delta_w_nm, double slew_ns,
                     double load_ff, bool rising);

/// Output slew for the same conditions.
double cell_out_slew_ns(const tech::DeviceModel& device, const CellMaster& m,
                        double delta_l_nm, double delta_w_nm, double slew_ns,
                        double load_ff, bool rising);

}  // namespace doseopt::liberty
