#include "ssta/ssta.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "extract/extract.h"
#include "faultinject/fault.h"

namespace doseopt::ssta {

using netlist::CellId;
using netlist::NetId;

namespace {

/// Poisons the propagated MCT form with a NaN -- models a corrupt NLDM
/// table or broken sensitivity fit surfacing mid-propagation.  Callers see
/// healthy == false and degrade to the Monte-Carlo yield path.
faultinject::FaultPoint g_fault_ssta_nan("ssta.nan");

constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1/sqrt(2*pi)

/// Variance floor below which x - y is treated as deterministic and the
/// max is exact (pick the larger mean).  Sigmas are O(1e-3..1) ns, so
/// 1e-24 ns^2 is far below representable variation yet above underflow.
constexpr double kDegenerateVariance = 1e-24;

/// Deviation form scaled by a sensitivity: means, shared sensitivities and
/// per-cell terms scale linearly (signed -- the sign carries correlation),
/// the independent remainder by |s|.
CanonicalForm form_scale(const CanonicalForm& x, double s) {
  CanonicalForm y;
  y.mean = s * x.mean;
  for (int k = 0; k < kSources; ++k) y.a[k] = s * x.a[k];
  if (s != 0.0) {
    y.rc.reserve(x.rc.size());
    for (const ResidualTerm& t : x.rc)
      y.rc.push_back(ResidualTerm{t.cell, s * t.coef});
  }
  y.r = std::fabs(s) * x.r;
  return y;
}

/// Merge two sorted per-cell supports: common cells add coefficients
/// (linearly -- same underlying Z), zero sums are dropped.
std::vector<ResidualTerm> merge_support(const std::vector<ResidualTerm>& x,
                                        const std::vector<ResidualTerm>& y) {
  std::vector<ResidualTerm> out;
  out.reserve(x.size() + y.size());
  std::size_t i = 0, j = 0;
  while (i < x.size() || j < y.size()) {
    if (j >= y.size() || (i < x.size() && x[i].cell < y[j].cell)) {
      out.push_back(x[i++]);
    } else if (i >= x.size() || y[j].cell < x[i].cell) {
      out.push_back(y[j++]);
    } else {
      const double c = x[i].coef + y[j].coef;
      if (c != 0.0) out.push_back(ResidualTerm{x[i].cell, c});
      ++i;
      ++j;
    }
  }
  return out;
}

/// Tightness-weighted blend of two sorted supports: t*x + (1-t)*y.
std::vector<ResidualTerm> blend_support(const std::vector<ResidualTerm>& x,
                                        const std::vector<ResidualTerm>& y,
                                        double t) {
  std::vector<ResidualTerm> out;
  out.reserve(x.size() + y.size());
  const double u = 1.0 - t;
  std::size_t i = 0, j = 0;
  while (i < x.size() || j < y.size()) {
    if (j >= y.size() || (i < x.size() && x[i].cell < y[j].cell)) {
      const double c = t * x[i].coef;
      if (c != 0.0) out.push_back(ResidualTerm{x[i].cell, c});
      ++i;
    } else if (i >= x.size() || y[j].cell < x[i].cell) {
      const double c = u * y[j].coef;
      if (c != 0.0) out.push_back(ResidualTerm{y[j].cell, c});
      ++j;
    } else {
      const double c = t * x[i].coef + u * y[j].coef;
      if (c != 0.0) out.push_back(ResidualTerm{x[i].cell, c});
      ++i;
      ++j;
    }
  }
  return out;
}

/// Covariance through the shared per-cell support (sorted intersection).
double support_cov(const std::vector<ResidualTerm>& x,
                   const std::vector<ResidualTerm>& y) {
  double cov = 0.0;
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i].cell < y[j].cell) ++i;
    else if (y[j].cell < x[i].cell) ++j;
    else cov += x[i++].coef * y[j++].coef;
  }
  return cov;
}

/// Deterministic antithetic sampling of max(0, max_i d_i) over the
/// endpoint forms -- the yield-curve integrator behind yield_at().  The
/// max of jointly-Gaussian arrivals is right-skewed, which a single
/// moment-matched Gaussian MCT form cannot represent; re-sampling the
/// FORMS (shared systematic sources + shared per-cell terms + independent
/// remainders) costs no graph traversals and nails the skew.  Endpoints
/// that cannot plausibly set the maximum (mean + 4.5 sigma below the
/// critical endpoint's 4.5-sigma lower bound) are dropped.
std::vector<double> sample_endpoint_panel(
    const std::vector<CanonicalForm>& endpoints, int samples,
    std::uint64_t seed) {
  std::vector<double> out;
  if (samples <= 0 || endpoints.empty()) return out;

  double thresh = -1e300;
  for (const CanonicalForm& ep : endpoints)
    thresh = std::max(thresh, ep.mean - 4.5 * ep.sigma());
  std::vector<const CanonicalForm*> kept;
  for (const CanonicalForm& ep : endpoints)
    if (ep.mean + 4.5 * ep.sigma() >= thresh) kept.push_back(&ep);

  // Dense index over the union of tracked per-cell residual supports.
  std::vector<std::uint32_t> cells;
  for (const CanonicalForm* ep : kept)
    for (const ResidualTerm& t : ep->rc) cells.push_back(t.cell);
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  // Pre-resolved (dense index, coef) term lists per kept endpoint.
  std::vector<std::vector<std::pair<std::size_t, double>>> terms(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    terms[i].reserve(kept[i]->rc.size());
    for (const ResidualTerm& t : kept[i]->rc)
      terms[i].emplace_back(
          static_cast<std::size_t>(
              std::lower_bound(cells.begin(), cells.end(), t.cell) -
              cells.begin()),
          t.coef);
  }

  const int pairs = (samples + 1) / 2;
  out.reserve(2 * static_cast<std::size_t>(pairs));
  Rng rng(seed ^ 0x55AA33CC9F1E2D4BULL);
  std::array<double, kSources> x;
  std::vector<double> z(cells.size());
  std::vector<double> rdraw(kept.size());
  for (int s = 0; s < pairs; ++s) {
    for (double& v : x) v = rng.normal();
    for (double& v : z) v = rng.normal();
    for (double& v : rdraw) v = rng.normal();
    for (const double sign : {1.0, -1.0}) {
      double worst = 0.0;  // the scalar MCT fold starts at 0
      for (std::size_t i = 0; i < kept.size(); ++i) {
        const CanonicalForm& ep = *kept[i];
        double dev = ep.r * rdraw[i];
        for (int k = 0; k < kSources; ++k) dev += ep.a[k] * x[k];
        for (const auto& [zi, coef] : terms[i]) dev += coef * z[zi];
        worst = std::max(worst, ep.mean + sign * dev);
      }
      out.push_back(worst);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z * M_SQRT1_2);
}

double normal_quantile(double p) {
  // Acklam's rational approximation (~1e-9 relative error) plus one Halley
  // refinement step against the exact erfc-based CDF.
  constexpr double kEps = 1e-12;
  p = std::clamp(p, kEps, 1.0 - kEps);

  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;

  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double s = q * q;
    x = (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s + a[5]) *
        q /
        (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // Halley step: e = Phi(x) - p, u = e / phi(x).
  const double e = normal_cdf(x) - p;
  const double u = e / (kInvSqrt2Pi * std::exp(-0.5 * x * x));
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double CanonicalForm::sigma() const { return std::sqrt(variance()); }

bool CanonicalForm::finite() const {
  if (!std::isfinite(mean) || !std::isfinite(r)) return false;
  for (double ak : a)
    if (!std::isfinite(ak)) return false;
  for (const ResidualTerm& t : rc)
    if (!std::isfinite(t.coef)) return false;
  return true;
}

CanonicalForm form_add(const CanonicalForm& x, const CanonicalForm& y) {
  CanonicalForm s;
  s.mean = x.mean + y.mean;
  for (int k = 0; k < kSources; ++k) s.a[k] = x.a[k] + y.a[k];
  s.rc = merge_support(x.rc, y.rc);
  s.r = std::hypot(x.r, y.r);
  return s;
}

void form_prune(CanonicalForm& x, std::size_t max_terms) {
  if (x.rc.size() <= max_terms) return;
  // Deterministic selection: largest |coef| first, lower cell id on ties.
  std::vector<ResidualTerm> terms = std::move(x.rc);
  std::nth_element(terms.begin(), terms.begin() + max_terms, terms.end(),
                   [](const ResidualTerm& a, const ResidualTerm& b) {
                     const double fa = std::fabs(a.coef);
                     const double fb = std::fabs(b.coef);
                     if (fa != fb) return fa > fb;
                     return a.cell < b.cell;
                   });
  double folded = x.r * x.r;
  for (std::size_t i = max_terms; i < terms.size(); ++i)
    folded += terms[i].coef * terms[i].coef;
  terms.resize(max_terms);
  std::sort(terms.begin(), terms.end(),
            [](const ResidualTerm& a, const ResidualTerm& b) {
              return a.cell < b.cell;
            });
  x.rc = std::move(terms);
  x.r = std::sqrt(folded);
}

CanonicalForm form_shift(const CanonicalForm& x, double delta) {
  CanonicalForm s = x;
  s.mean += delta;
  return s;
}

CanonicalForm form_max(const CanonicalForm& x, const CanonicalForm& y) {
  // Variance of x - y: shared systematic sources and shared-cell terms
  // covary; only the folded remainders are independent across forms.
  double cov = support_cov(x.rc, y.rc);
  for (int k = 0; k < kSources; ++k) cov += x.a[k] * y.a[k];
  const double var_x = x.variance();
  const double var_y = y.variance();
  const double theta2 = var_x + var_y - 2.0 * cov;
  if (!(theta2 > kDegenerateVariance)) {
    // Deterministic or perfectly correlated difference: the max is exact.
    // x wins ties, reproducing std::max's fold order bit-for-bit.
    return x.mean >= y.mean ? x : y;
  }

  const double theta = std::sqrt(theta2);
  const double alpha = (x.mean - y.mean) / theta;
  const double t = normal_cdf(alpha);  // tightness: P(x > y)
  const double phi = kInvSqrt2Pi * std::exp(-0.5 * alpha * alpha);

  CanonicalForm m;
  m.mean = x.mean * t + y.mean * (1.0 - t) + theta * phi;
  const double e2 = (var_x + x.mean * x.mean) * t +
                    (var_y + y.mean * y.mean) * (1.0 - t) +
                    (x.mean + y.mean) * theta * phi;
  const double var = std::max(0.0, e2 - m.mean * m.mean);
  double explained = 0.0;
  for (int k = 0; k < kSources; ++k) {
    m.a[k] = t * x.a[k] + (1.0 - t) * y.a[k];
    explained += m.a[k] * m.a[k];
  }
  m.rc = blend_support(x.rc, y.rc, t);
  for (const ResidualTerm& term : m.rc) explained += term.coef * term.coef;
  // Moment-matched variance beyond the tracked sources goes to the
  // independent remainder (clamped: moment matching can explain slightly
  // less than the linear part near alpha extremes).
  m.r = var > explained ? std::sqrt(var - explained) : 0.0;
  return m;
}

double SstaResult::yield_at(double tau_ns) const {
  if (!mct_samples.empty()) {
    const auto it = std::upper_bound(mct_samples.begin(), mct_samples.end(),
                                     tau_ns);
    return static_cast<double>(it - mct_samples.begin()) /
           static_cast<double>(mct_samples.size());
  }
  if (!(sigma_mct_ns > 0.0)) return tau_ns >= mean_mct_ns ? 1.0 : 0.0;
  return normal_cdf((tau_ns - mean_mct_ns) / sigma_mct_ns);
}

double SstaResult::tau_at_yield(double p) const {
  if (!mct_samples.empty()) {
    const auto n = static_cast<std::ptrdiff_t>(mct_samples.size());
    const auto k = std::min<std::ptrdiff_t>(
        n, std::max<std::ptrdiff_t>(
               1, static_cast<std::ptrdiff_t>(std::ceil(p * n))));
    return mct_samples[k - 1];
  }
  return mean_mct_ns + sigma_mct_ns * normal_quantile(p);
}

SstaTimer::SstaTimer(const sta::Timer* timer, const place::Placement* placement,
                     const liberty::CoefficientSet* coeffs,
                     variation::VariationModel model, SstaOptions options)
    : timer_(timer), placement_(placement), coeffs_(coeffs), model_(model),
      options_(options) {
  DOSEOPT_CHECK(timer != nullptr && placement != nullptr && coeffs != nullptr,
                "SstaTimer: null dependency");
}

std::size_t SstaTimer::endpoint_count() const {
  std::size_t n = 0;
  for (CellId ci : timer_->seq_cells_)
    n += timer_->fanin_ptr_[ci + 1] - timer_->fanin_ptr_[ci];
  return n + timer_->netlist_->primary_outputs().size();
}

SstaResult SstaTimer::analyze(const sta::VariantAssignment& base) const {
  timer_->update(base_state_, base);
  const sta::TimingState& st = base_state_;
  const sta::Timer& tm = *timer_;
  const netlist::Netlist& nl = *tm.netlist_;
  const std::size_t net_count = nl.net_count();

  // --- per-cell delta-L canonical form ingredients (shared with the MC
  // sampler: same basis, same scale, same per-cell sigma) ---
  const std::size_t cell_count = nl.cell_count();
  const std::vector<std::pair<double, double>> uv =
      variation::normalized_die_uv(nl, *placement_);
  const double scale = variation::systematic_scale(model_);
  const double cell_resid =
      std::hypot(model_.random_sigma_nm, options_.quantization_sigma_nm);

  // d/d(dL) secants are taken across the +-1 nm neighbor variants of a
  // cell's assigned point on the characterized grid (lower index = +1 nm,
  // see liberty::shifted_poly_index) -- the EXACT grid the Monte-Carlo
  // snaps its sampled fields to, so local NLDM curvature is captured
  // right where the sampling cone lives.
  auto neighbor_span = [&](CellId c) {
    const auto [il, iw] = st.variants_[c];
    const int ip = std::max(0, il - 1);
    const int im = std::min(liberty::kVariantsPerLayer - 1, il + 1);
    return std::tuple<int, int, int>(ip, im, iw);
  };
  auto cell_at = [&](int il, int iw,
                     CellId c) -> const liberty::CharacterizedCell& {
    return tm.repo_->variant(il, iw).cell(nl.cell(c).master_index);
  };

  // Per-cell delta-L deviation form (shared ACLV sensitivities from the
  // systematic basis at the cell's die position, independent residual from
  // random CD variation + variant-grid quantization) and the input-cap
  // dose secant d(pin cap)/d(dL).
  std::vector<CanonicalForm> cell_dl(cell_count);
  std::vector<double> cell_dcap(cell_count, 0.0);
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const CellId c = static_cast<CellId>(ci);
    CanonicalForm& dl = cell_dl[ci];
    const std::array<double, kSources> basis =
        variation::systematic_basis(uv[ci].first, uv[ci].second);
    for (int k = 0; k < kSources; ++k) dl.a[k] = scale * basis[k];
    // The cell's own random + quantization sigma enters as a per-cell
    // term, NOT a pooled residual: every channel this cell's dL feeds
    // (own delay, own slew, upstream load) then stays correlated, and so
    // do all paths that share this cell.
    if (cell_resid > 0.0)
      dl.rc.push_back(ResidualTerm{static_cast<std::uint32_t>(c), cell_resid});
    const auto [ip, im, iw] = neighbor_span(c);
    if (im > ip)
      cell_dcap[ci] = (cell_at(ip, iw, c).input_cap_ff -
                       cell_at(im, iw, c).input_cap_ff) /
                      static_cast<double>(im - ip);
  }

  // Per-net load deviation form: a sink's dL moves its input pin cap and
  // with it the driver's load.  The scalar timer recomputes net loads from
  // the sink variants (compute_net_load), so the Monte-Carlo reference
  // sees exactly this channel; without it the analytic sigma loses the
  // load-coupled share of the per-cell random variation.
  std::vector<CanonicalForm> net_load_dev(net_count);
  for (std::size_t ni = 0; ni < net_count; ++ni) {
    CanonicalForm& ld = net_load_dev[ni];
    for (const netlist::SinkPin& s : nl.net(static_cast<NetId>(ni)).sinks)
      ld = form_add(ld, form_scale(cell_dl[s.cell], cell_dcap[s.cell]));
    form_prune(ld, options_.max_residual_terms);
  }

  // Per-net propagated forms.  net_arr holds FULL arrival forms (PI nets
  // launch at the deterministic zero form, matching net_arrival_ = 0);
  // net_slew_dev holds slew DEVIATION forms (mean 0; PI slew is the fixed
  // boundary slew).
  std::vector<CanonicalForm> net_arr(net_count);
  std::vector<CanonicalForm> net_slew_dev;
  if (options_.slew_coupling) net_slew_dev.assign(net_count, CanonicalForm{});

  const double boundary_slew = tm.options_.input_slew_ns;
  for (CellId c : tm.topo_order_) {
    const netlist::Cell& cell = nl.cell(c);
    const sta::CellTiming& ct = st.result_.cells[c];
    const liberty::CharacterizedCell& lc = *st.lib_cell_[c];
    const CanonicalForm& dl = cell_dl[c];
    const CanonicalForm& load_dev = net_load_dev[cell.output_net];

    // Own-dL secants of delay and output slew at the base (slew, load)
    // point.  ct.input_slew_ns is the clock slew for sequential cells and
    // the worst fanin slew for combinational ones, matching compute_cell.
    double a_delay = 0.0;
    double a_slew = 0.0;
    double bow_delay = 0.0;  // second-order mean correction, see below
    double bow_slew = 0.0;
    {
      const auto [ip, im, iw] = neighbor_span(c);
      if (im > ip) {
        const liberty::CharacterizedCell& cp = cell_at(ip, iw, c);
        const liberty::CharacterizedCell& cm = cell_at(im, iw, c);
        const double span = static_cast<double>(im - ip);  // nm
        a_delay = (cp.arc.delay_ns(ct.input_slew_ns, ct.load_ff) -
                   cm.arc.delay_ns(ct.input_slew_ns, ct.load_ff)) /
                  span;
        a_slew = (cp.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff) -
                  cm.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff)) /
                 span;
        if (im - ip == 2) {
          // Interior grid point: the same stencil also gives the local
          // curvature d^2D/dL^2 (1 nm step), whose Ito-style mean shift
          // 0.5 * D'' * Var(dL) is what the expectation of a curved NLDM
          // surface picks up that a pure secant misses.  At the grid
          // boundary the one-sided stencil has no curvature; leave 0.
          const double half_var = 0.5 * dl.variance();
          bow_delay = half_var *
                      (cp.arc.delay_ns(ct.input_slew_ns, ct.load_ff) -
                       2.0 * lc.arc.delay_ns(ct.input_slew_ns, ct.load_ff) +
                       cm.arc.delay_ns(ct.input_slew_ns, ct.load_ff));
          bow_slew = half_var *
                     (cp.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff) -
                      2.0 * lc.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff) +
                      cm.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff));
        }
      }
    }

    // Load coupling: central differences of the NLDM surfaces in the load
    // axis, scaled by the output net's load deviation form.
    const double hl = std::max(0.05, 0.05 * ct.load_ff);
    const double dd_dload =
        (lc.arc.delay_ns(ct.input_slew_ns, ct.load_ff + hl) -
         lc.arc.delay_ns(ct.input_slew_ns, ct.load_ff - hl)) /
        (2.0 * hl);
    const double ds_dload =
        (lc.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff + hl) -
         lc.arc.out_slew_ns(ct.input_slew_ns, ct.load_ff - hl)) /
        (2.0 * hl);

    // Gate-delay form: mean is the exact NLDM delay at the base point;
    // deviation is first-order in this cell's own dL and the load-coupled
    // dL of its fanout sinks.
    CanonicalForm gate =
        form_add(form_scale(dl, a_delay), form_scale(load_dev, dd_dload));
    gate.mean = ct.gate_delay_ns + bow_delay;
    CanonicalForm out_slew_dev =
        form_add(form_scale(dl, a_slew), form_scale(load_dev, ds_dload));
    out_slew_dev.mean = bow_slew;

    if (cell.sequential) {
      // Launch point: clk->Q delay; the clock slew is deterministic, so
      // there is no upstream slew deviation to couple in.
      form_prune(gate, options_.max_residual_terms);
      net_arr[cell.output_net] = std::move(gate);
      if (options_.slew_coupling) {
        form_prune(out_slew_dev, options_.max_residual_terms);
        net_slew_dev[cell.output_net] = std::move(out_slew_dev);
      }
      continue;
    }

    // Combinational: fold the fanin arrival forms with the statistical max
    // (same edge order and zero-form start as the scalar kernel) and track
    // which edge sets the worst base slew.  The Elmore wire delay to this
    // cell is R_wire * (C_wire/2 + C_pin), and C_pin moves with this
    // cell's OWN dose -- an exactly linear channel (d(wire)/d(C_pin) =
    // R_wire), perfectly correlated with the cell's other dL channels
    // through its shared Z term.  On wire-heavy blocks dropping it both
    // starves the endpoint sigmas and understates cross-path covariance.
    CanonicalForm arr_fold;  // zero form == scalar's worst_arrival = 0.0
    double worst_slew = boundary_slew;
    std::ptrdiff_t worst_edge = -1;
    for (std::size_t e = tm.fanin_ptr_[c]; e < tm.fanin_ptr_[c + 1]; ++e) {
      const NetId n = tm.fanin_net_[e];
      const double dwire =
          tm.parasitics_->net(n).wire_res_kohm * units::kPsToNs;
      arr_fold = form_max(
          arr_fold,
          form_add(form_shift(net_arr[n], st.edge_wire_delay_[e]),
                   form_scale(dl, cell_dcap[c] * dwire)));
      const double slew = st.net_slew_[n] + st.edge_wire_slew_[e];
      if (slew > worst_slew) {  // first edge wins ties, like std::max
        worst_slew = slew;
        worst_edge = static_cast<std::ptrdiff_t>(e);
      }
    }

    // Upstream slew deviation arriving on the worst-slew edge couples into
    // both the gate delay and the output slew via central finite
    // differences of the NLDM surfaces in the slew axis.  The edge slew
    // includes the wire degradation (2.2x the Elmore constant), which
    // rides the same receiver-pin-cap channel as the wire delay.
    if (options_.slew_coupling && worst_edge >= 0) {
      const NetId wn = tm.fanin_net_[static_cast<std::size_t>(worst_edge)];
      const CanonicalForm sin_dev = form_add(
          net_slew_dev[wn],
          form_scale(dl, cell_dcap[c] * 2.2 *
                             tm.parasitics_->net(wn).wire_res_kohm *
                             units::kPsToNs));
      const double h = std::max(1e-4, 0.05 * ct.input_slew_ns);
      const double kd = (lc.arc.delay_ns(ct.input_slew_ns + h, ct.load_ff) -
                         lc.arc.delay_ns(ct.input_slew_ns - h, ct.load_ff)) /
                        (2.0 * h);
      gate = form_add(gate, form_scale(sin_dev, kd));
      const double ks =
          (lc.arc.out_slew_ns(ct.input_slew_ns + h, ct.load_ff) -
           lc.arc.out_slew_ns(ct.input_slew_ns - h, ct.load_ff)) /
          (2.0 * h);
      out_slew_dev = form_add(out_slew_dev, form_scale(sin_dev, ks));
    }
    if (options_.slew_coupling) {
      form_prune(out_slew_dev, options_.max_residual_terms);
      net_slew_dev[cell.output_net] = std::move(out_slew_dev);
    }

    CanonicalForm arr = form_add(arr_fold, gate);
    form_prune(arr, options_.max_residual_terms);
    net_arr[cell.output_net] = std::move(arr);
  }

  // --- endpoint forms and MCT distribution, in finish()-scan order ---
  SstaResult res;
  res.endpoints.reserve(endpoint_count());
  CanonicalForm mct;  // zero form == scalar's mct = 0.0
  for (CellId ci : tm.seq_cells_) {
    const double setup = tm.setup_ns_[ci];
    for (std::size_t e = tm.fanin_ptr_[ci]; e < tm.fanin_ptr_[ci + 1]; ++e) {
      const NetId n = tm.fanin_net_[e];
      // Two shifts so the mean associates as (arrival + wire) + setup,
      // exactly like the scalar MCT scan; the wire delay to the capture
      // D pin rides the capture cell's own pin-cap channel.
      CanonicalForm ep = form_add(
          form_shift(form_shift(net_arr[n], st.edge_wire_delay_[e]), setup),
          form_scale(cell_dl[ci],
                     cell_dcap[ci] * tm.parasitics_->net(n).wire_res_kohm *
                         units::kPsToNs));
      mct = form_max(mct, ep);
      form_prune(mct, options_.max_residual_terms);
      res.endpoints.push_back(std::move(ep));
    }
  }
  for (NetId n : nl.primary_outputs()) {
    CanonicalForm ep = form_shift(net_arr[n], st.po_wire_delay_[n]);
    mct = form_max(mct, ep);
    form_prune(mct, options_.max_residual_terms);
    res.endpoints.push_back(std::move(ep));
  }

  if (g_fault_ssta_nan.should_fire())
    mct.mean = std::numeric_limits<double>::quiet_NaN();

  res.mct = mct;
  res.mean_mct_ns = mct.mean;
  res.sigma_mct_ns = mct.sigma();
  res.healthy = mct.finite();
  if (res.healthy) {
    res.mct_samples = sample_endpoint_panel(res.endpoints,
                                            options_.yield_samples,
                                            model_.seed);
    // The panel is the better MCT estimator when there is real variance:
    // the iterated Clark fold accumulates moment-matching bias over
    // hundreds of correlated endpoints (mean drifts up, sigma collapses),
    // while the panel samples the endpoint forms jointly and exactly.
    // The sigma gate keeps the deterministic case on the scalar-exact
    // Clark path.
    if (!res.mct_samples.empty() && res.sigma_mct_ns > 0.0) {
      double sum = 0.0, sq = 0.0;
      for (const double v : res.mct_samples) {
        sum += v;
        sq += v * v;
      }
      const double n = static_cast<double>(res.mct_samples.size());
      res.mean_mct_ns = sum / n;
      res.sigma_mct_ns = std::sqrt(
          std::max(0.0, sq / n - (sum / n) * (sum / n)));
    }
  }
  return res;
}

std::vector<double> SstaTimer::endpoint_delays(
    const sta::VariantAssignment& va) const {
  timer_->update(mc_state_, va);
  const sta::TimingState& st = mc_state_;
  const sta::Timer& tm = *timer_;
  const netlist::Netlist& nl = *tm.netlist_;

  std::vector<double> out;
  out.reserve(endpoint_count());
  for (CellId ci : tm.seq_cells_) {
    const double setup = tm.setup_ns_[ci];
    for (std::size_t e = tm.fanin_ptr_[ci]; e < tm.fanin_ptr_[ci + 1]; ++e) {
      const NetId n = tm.fanin_net_[e];
      out.push_back((st.net_arrival_[n] + st.edge_wire_delay_[e]) + setup);
    }
  }
  for (NetId n : nl.primary_outputs())
    out.push_back(st.net_arrival_[n] + st.po_wire_delay_[n]);
  return out;
}

}  // namespace doseopt::ssta
