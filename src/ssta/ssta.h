// Block-based statistical static timing analysis (SSTA).
//
// The Monte-Carlo yield path (src/variation) answers "what fraction of dies
// meets tau?" by re-timing thousands of sampled dies -- exact per die, but
// thousands of graph traversals per estimate.  This module answers the same
// question analytically in TWO traversals (one scalar base pass + one
// canonical-form pass) by propagating first-order delay forms through the
// very same levelized timing graph:
//
//   d  =  mean  +  sum_k a_k X_k  +  sum_i c_i Z_i  +  r R
//
// where the X_k are the kSystematicSources standard-normal coefficients of
// the ACLV polynomial field (the EXACT sources the Monte-Carlo sampler
// draws, see variation::systematic_basis), the Z_i are per-CELL standard
// normals (cell i's random CD variation + 1 nm variant-grid quantization,
// independent across cells but SHARED by every form that references cell
// i), and R is an independent remainder.  The sparse c_i support is what
// keeps reconvergent and sibling paths correlated through the cells they
// share -- with a single pooled residual the statistical max treats
// overlapping paths as independent, which both inflates E[max] and cancels
// the common variance (a ~2x sigma error on real netlists).  Forms prune
// their support to the largest |c_i| terms (SstaOptions::
// max_residual_terms), folding the dropped tail into R.
//
// Sums of forms are exact (means add, sensitivities add componentwise --
// shared-cell terms add linearly, remainders in quadrature).  The max of
// two forms uses the classic tightness-probability (Clark) moment-matching
// operator with the full covariance (systematic + shared-cell); a
// degenerate max (both operands deterministic or perfectly correlated)
// reduces to picking the larger mean, which is what makes SSTA collapse to
// the scalar Timer bit-for-bit when every sensitivity is zero.
//
// Cross-validation discipline: SSTA shares one parameterization with the
// golden Monte-Carlo (same basis, same scale, same per-cell sigma), so
// tests/test_ssta can assert per-endpoint mean/sigma agreement against a
// 10k-sample batched MC, and bench_ssta can chart the accuracy/speed
// frontier (BENCH_ssta.json).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "liberty/coeff_fit.h"
#include "place/placement.h"
#include "sta/timer.h"
#include "variation/yield.h"

namespace doseopt::ssta {

/// Number of shared (die-global) variation sources; see variation::
/// kSystematicSources.  Every canonical form carries one sensitivity per
/// source plus one independent residual.
inline constexpr int kSources = variation::kSystematicSources;

/// Standard normal CDF, Phi(z).
double normal_cdf(double z);

/// Standard normal quantile, Phi^-1(p); p is clamped away from {0, 1}.
double normal_quantile(double p);

/// One sparse per-cell residual term: coef * Z_cell, where Z_cell is a
/// standard normal independent across cells but shared by every form that
/// references the same cell (signed coef -- correlation bookkeeping).
struct ResidualTerm {
  std::uint32_t cell = 0;
  double coef = 0.0;
};

/// First-order canonical delay form: mean + sum_k a[k] X_k
/// + sum_i rc[i].coef Z_rc[i].cell + r R.  rc is sorted by cell id and
/// holds only nonzero coefficients; R is independent per form.
struct CanonicalForm {
  double mean = 0.0;
  std::array<double, kSources> a{};  ///< shared-source sensitivities
  std::vector<ResidualTerm> rc;      ///< per-cell residual support
  double r = 0.0;                    ///< folded independent remainder

  double variance() const {
    double v = r * r;
    for (double ak : a) v += ak * ak;
    for (const ResidualTerm& t : rc) v += t.coef * t.coef;
    return v;
  }
  double sigma() const;
  bool finite() const;
};

/// Sum of two forms (exact: shared sources and shared-cell terms add
/// componentwise, remainders add in quadrature).  Mean is computed as
/// x.mean + y.mean in that order.
CanonicalForm form_add(const CanonicalForm& x, const CanonicalForm& y);

/// Form plus a deterministic delay (wire, setup).
CanonicalForm form_shift(const CanonicalForm& x, double delta);

/// Bound the per-cell residual support to the `max_terms` largest-|coef|
/// entries, folding the dropped tail into the independent remainder r
/// (in quadrature).  Deterministic: ties keep the lower cell id.
void form_prune(CanonicalForm& x, std::size_t max_terms);

/// Tightness-probability (Clark) max.  When the variance of x - y is
/// numerically zero the operands are deterministic or perfectly
/// correlated and the exact max is whichever has the larger mean; ties
/// keep x, matching std::max's "first argument wins" so the scalar fold
/// order is reproduced exactly.
CanonicalForm form_max(const CanonicalForm& x, const CanonicalForm& y);

/// SSTA engine knobs.
struct SstaOptions {
  /// Sigma (nm) of the 1 nm variant-grid snap the Monte-Carlo reference
  /// applies to every sampled delta-L: round-to-grid error is
  /// Uniform(-0.5, 0.5) nm, sigma = sqrt(1/12).  Folded into each cell's
  /// independent residual so the analytic sigma matches what MC actually
  /// times.  Set to 0 for the idealized (unsnapped) model.
  double quantization_sigma_nm = 0.28867513459481287;
  /// Propagate first-order slew deviations alongside arrivals (gate delay
  /// responds to upstream CD variation through the input slew as well as
  /// through its own gate length).  Costs one extra form per net; buys the
  /// few-percent sigma accuracy the 1%-absolute yield target needs.
  bool slew_coupling = true;
  /// Cap on the sparse per-cell residual support carried by each form;
  /// the smallest-|coef| tail folds into the independent remainder.  The
  /// accuracy/speed knob of the engine (bench_ssta sweeps it): 0 degrades
  /// to the classic pooled-residual canonical form.
  std::size_t max_residual_terms = 64;
  /// Sample count of the endpoint-panel integration behind yield_at /
  /// tau_at_yield: the max of the endpoint FORMS (no graph traversals) is
  /// re-sampled deterministically with antithetic pairs, capturing the
  /// right-skew of the max that a single Gaussian MCT form cannot.  0
  /// falls back to the Gaussian mct-form yield curve.
  int yield_samples = 32768;
};

/// Analytic timing-yield result: the MCT distribution as a canonical form
/// plus the per-endpoint arrival-time forms (finish()-scan order: flop D
/// edges by ascending capture cell, then primary outputs).
struct SstaResult {
  CanonicalForm mct;
  std::vector<CanonicalForm> endpoints;
  /// MCT moments: from the endpoint-panel samples when they were drawn
  /// (the iterated Clark fold accumulates moment-matching bias over many
  /// correlated endpoints), else from the mct form.
  double mean_mct_ns = 0.0;
  double sigma_mct_ns = 0.0;
  /// Sorted MCT samples of the endpoint-panel integration (empty when
  /// SstaOptions::yield_samples == 0 or the result is unhealthy).
  std::vector<double> mct_samples;
  /// False when the propagated forms picked up a NaN/Inf (fault injection,
  /// corrupt tables); callers degrade to the Monte-Carlo path.
  bool healthy = true;

  /// P(MCT <= tau): the empirical CDF of the endpoint-panel samples, or
  /// the Gaussian mct-form CDF when no samples were drawn.
  double yield_at(double tau_ns) const;
  /// Smallest tau with yield_at(tau) >= p (panel quantile, or the
  /// Gaussian quantile when no samples were drawn).
  double tau_at_yield(double p) const;
};

/// The SSTA engine: bound to a Timer (whose CSR structure and scalar base
/// analysis it shares), a placement (die coordinates -> basis arguments),
/// and the fitted dose-sensitivity coefficients (d(delay)/dL).  Holds
/// persistent TimingStates, so one SstaTimer serves one worker lane (not
/// thread-safe); parallel consumers build one per lane -- results are
/// bit-identical for any lane count because analyze() is a pure function
/// of (base, model, options).
class SstaTimer {
 public:
  SstaTimer(const sta::Timer* timer, const place::Placement* placement,
            const liberty::CoefficientSet* coeffs,
            variation::VariationModel model, SstaOptions options = {});

  /// Propagate canonical forms around the nominal assignment `base`.
  /// Exactly one scalar base pass (incremental off the held state) plus
  /// one canonical-form traversal.
  SstaResult analyze(const sta::VariantAssignment& base) const;

  /// Scalar endpoint delays (arrival + setup / PO wire) of one concrete
  /// die, in the same endpoint order as SstaResult::endpoints -- the
  /// Monte-Carlo cross-validation hook for per-endpoint tests.
  std::vector<double> endpoint_delays(const sta::VariantAssignment& va) const;

  /// Number of capture endpoints (flop D edges + primary outputs).
  std::size_t endpoint_count() const;

  const variation::VariationModel& model() const { return model_; }
  const SstaOptions& options() const { return options_; }

 private:
  const sta::Timer* timer_;
  const place::Placement* placement_;
  const liberty::CoefficientSet* coeffs_;
  variation::VariationModel model_;
  SstaOptions options_;

  // Persistent scalar states: base_state_ carries the analyzed base die the
  // forms linearize around; mc_state_ serves endpoint_delays() so repeated
  // MC cross-validation passes pay incremental cost.
  mutable sta::TimingState base_state_;
  mutable sta::TimingState mc_state_;
};

}  // namespace doseopt::ssta
