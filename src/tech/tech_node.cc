#include "tech/tech_node.h"

#include "common/error.h"

namespace doseopt::tech {

TechNode make_tech_65nm() {
  TechNode n;
  n.name = "65nm";
  n.l_nominal_nm = 65.0;
  // The paper notes the minimum transistor width in the 65 nm library is
  // around 200 nm and the maximum exceeds 650 nm.
  n.min_width_nm = 200.0;
  n.max_width_nm = 680.0;
  n.vdd_v = 1.0;
  n.temperature_c = 25.0;
  // Vth roll-off calibrated so a +/-10 nm gate-length change reproduces the
  // ~2.5x / ~0.62x total-leakage ratios of Table II:
  //   Vth(55) - Vth(65) ~ -36 mV, Vth(75) - Vth(65) ~ +18 mV.
  n.vth0_v = 0.36;
  n.vth_rolloff_v0_v = 3.18;
  n.vth_rolloff_lambda_nm = 14.6;
  n.subthreshold_n = 1.5;
  n.alpha_sat = 1.3;
  // Leakage prefactor calibrated so an INVX1 leaks ~12 nW and chip-level
  // totals land in the hundreds of uW for Table-I-sized designs.
  n.leak_i0_na_per_nm = 0.90e2;
  // Drive scale calibrated for ~20-60 ps loaded stage delays.
  n.drive_k_kohm_nm = 750.0;
  n.cgate_ff_per_nm = 1.45e-3;
  n.wire_res_kohm_per_um = 0.0008;
  n.wire_cap_ff_per_um = 0.15;
  n.row_height_um = 1.8;
  n.site_width_um = 0.2;
  return n;
}

TechNode make_tech_90nm() {
  TechNode n;
  n.name = "90nm";
  n.l_nominal_nm = 90.0;
  n.min_width_nm = 280.0;
  n.max_width_nm = 960.0;
  n.vdd_v = 1.2;
  n.temperature_c = 25.0;
  // Calibrated against Table III: +/-10 nm changes total leakage by
  // ~1.9x / ~0.70x => Vth(80) - Vth(90) ~ -25 mV, Vth(100) - Vth(90) ~ +14 mV.
  n.vth0_v = 0.33;
  n.vth_rolloff_v0_v = 5.91;
  n.vth_rolloff_lambda_nm = 17.2;
  n.subthreshold_n = 1.5;
  n.alpha_sat = 1.3;
  // The paper's 90 nm designs leak far more per cell (Table III vs Table II);
  // the prefactor reflects that.
  n.leak_i0_na_per_nm = 1.15e2;
  n.drive_k_kohm_nm = 915.0;
  n.cgate_ff_per_nm = 1.85e-3;
  n.wire_res_kohm_per_um = 0.0006;
  n.wire_cap_ff_per_um = 0.18;
  n.row_height_um = 2.5;
  n.site_width_um = 0.28;
  return n;
}

TechNode tech_node_by_name(const std::string& name) {
  if (name == "65nm") return make_tech_65nm();
  if (name == "90nm") return make_tech_90nm();
  throw Error("unknown technology node: " + name);
}

double thermal_voltage_v(double temperature_c) {
  constexpr double kBoltzmannOverQ = 8.617333262e-5;  // V/K
  return kBoltzmannOverQ * (temperature_c + 273.15);
}

}  // namespace doseopt::tech
