#include "tech/device.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace doseopt::tech {

namespace {
// Fraction of input transition time that adds to propagation delay.  A real
// stage speeds up or slows down with input slew; the linear term is the
// standard first-order model and keeps the characterizer's tables smooth.
constexpr double kSlewToDelay = 0.07;
// Output slew as a multiple of the RC time constant (2.2 RC corresponds to
// the 10%-90% transition of a single pole).
constexpr double kSlewRcFactor = 2.2;
// Residual slew feed-through: a slow input edge degrades the output edge.
constexpr double kSlewFeedThrough = 0.05;
// ln(2): 50% crossing of a single-pole RC step response.
const double kLn2 = std::log(2.0);
}  // namespace

DeviceModel::DeviceModel(const TechNode& node) : node_(node) {
  DOSEOPT_CHECK(node_.l_nominal_nm > 0.0, "DeviceModel: bad nominal L");
  vt_thermal_v_ =
      node_.subthreshold_n * thermal_voltage_v(node_.temperature_c);
}

double DeviceModel::vth_v(double l_nm) const {
  DOSEOPT_CHECK(l_nm > 0.0, "vth_v: non-positive channel length");
  return node_.vth0_v -
         node_.vth_rolloff_v0_v * std::exp(-l_nm / node_.vth_rolloff_lambda_nm);
}

double DeviceModel::on_current(double w_nm, double l_nm) const {
  DOSEOPT_CHECK(w_nm > 0.0 && l_nm > 0.0, "on_current: bad geometry");
  const double overdrive = node_.vdd_v - vth_v(l_nm);
  DOSEOPT_CHECK(overdrive > 0.0, "on_current: device does not turn on");
  return (w_nm / l_nm) * std::pow(overdrive, node_.alpha_sat);
}

double DeviceModel::drive_resistance_kohm(double w_nm, double l_nm) const {
  // R = k * Vdd / Ion; folding the node's drive_k into one scale constant.
  return node_.drive_k_kohm_nm * node_.vdd_v /
         (on_current(w_nm, l_nm) * node_.l_nominal_nm);
}

double DeviceModel::leakage_nw(double w_nm, double l_nm) const {
  DOSEOPT_CHECK(w_nm > 0.0, "leakage_nw: bad width");
  const double isub_na = node_.leak_i0_na_per_nm * w_nm *
                         std::exp(-vth_v(l_nm) / vt_thermal_v_);
  return isub_na * node_.vdd_v;  // nA * V = nW
}

double DeviceModel::gate_cap_ff(double w_nm, double l_nm) const {
  return node_.cgate_ff_per_nm * w_nm * (l_nm / node_.l_nominal_nm);
}

double DeviceModel::stage_delay_ns(double w_nm, double l_nm,
                                   double res_factor, double cpar_ff,
                                   double cload_ff, double slew_ns) const {
  DOSEOPT_CHECK(res_factor > 0.0, "stage_delay_ns: bad res_factor");
  const double r = res_factor * drive_resistance_kohm(w_nm, l_nm);
  const double rc_ps = r * (cpar_ff + cload_ff);  // kOhm * fF = ps
  return kLn2 * rc_ps * units::kPsToNs + kSlewToDelay * slew_ns;
}

double DeviceModel::stage_slew_ns(double w_nm, double l_nm, double res_factor,
                                  double cpar_ff, double cload_ff,
                                  double slew_ns) const {
  const double r = res_factor * drive_resistance_kohm(w_nm, l_nm);
  const double rc_ps = r * (cpar_ff + cload_ff);
  return kSlewRcFactor * rc_ps * units::kPsToNs + kSlewFeedThrough * slew_ns;
}

}  // namespace doseopt::tech
