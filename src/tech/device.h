// Analytic transistor / inverter-stage device model.
//
// Substitutes for SPICE in the characterization flow.  Provides:
//   * Vth(L) with exponential short-channel roll-off,
//   * alpha-power-law on-current and the equivalent switching resistance,
//   * state-averaged subthreshold leakage power,
//   * gate capacitance,
// and, on top of those, the propagation delay / output slew / leakage of a
// single CMOS stage -- the primitive from which the cell characterizer
// builds NLDM tables.
#pragma once

#include "tech/tech_node.h"

namespace doseopt::tech {

/// Device-level model bound to one technology node.
class DeviceModel {
 public:
  explicit DeviceModel(const TechNode& node);

  const TechNode& node() const { return node_; }

  /// Threshold voltage at drawn channel length l_nm (volts).
  double vth_v(double l_nm) const;

  /// Saturation drive current of a device of width w_nm, length l_nm,
  /// in arbitrary-but-consistent units (alpha-power law).
  double on_current(double w_nm, double l_nm) const;

  /// Equivalent switching resistance (kOhm) of a device: R = k * Vdd / Ion.
  double drive_resistance_kohm(double w_nm, double l_nm) const;

  /// Subthreshold leakage power (nW) of a single always-off device of width
  /// w_nm and length l_nm at the node's Vdd and temperature.
  double leakage_nw(double w_nm, double l_nm) const;

  /// Gate capacitance (fF) of a device of width w_nm, length l_nm.
  double gate_cap_ff(double w_nm, double l_nm) const;

  /// Propagation delay (ns) of a CMOS stage: driving device of width w_nm /
  /// length l_nm (with `res_factor` for series stacks), parasitic cap
  /// cpar_ff, external load cload_ff, input slew slew_ns.
  double stage_delay_ns(double w_nm, double l_nm, double res_factor,
                        double cpar_ff, double cload_ff,
                        double slew_ns) const;

  /// Output transition time (ns) of the same stage.
  double stage_slew_ns(double w_nm, double l_nm, double res_factor,
                       double cpar_ff, double cload_ff, double slew_ns) const;

 private:
  TechNode node_;
  double vt_thermal_v_;  ///< n * vT, precomputed
};

}  // namespace doseopt::tech
