// Technology node description.
//
// This is the substitute for the paper's SPICE decks and foundry process
// models.  Each node carries the parameters of an analytic transistor model:
//
//   * alpha-power-law saturation current for drive strength / delay,
//   * exponential Vth roll-off versus channel length (short-channel effect),
//   * subthreshold leakage exponential in -Vth(L)/(n*vT),
//
// which together give exactly the dependencies the paper measures in
// Figs. 3-6: delay ~linear in L and in dW near nominal, leakage ~exponential
// in L and ~linear in dW.  The numeric constants are calibrated so the
// uniform-dose sweep (Tables II/III) reproduces the paper's leakage and MCT
// ratios in shape and rough magnitude.
#pragma once

#include <string>

namespace doseopt::tech {

/// Process corner (we model the TT corner the paper uses).
enum class Corner { kTypical };

/// All parameters of a technology node used by the device model, the cell
/// characterizer, and the parasitic extractor.
struct TechNode {
  std::string name;

  // --- Lithography / geometry ---
  double l_nominal_nm = 0.0;   ///< drawn nominal gate length
  double min_width_nm = 0.0;   ///< minimum transistor width
  double max_width_nm = 0.0;   ///< largest single-finger width in the library

  // --- Electrical ---
  double vdd_v = 0.0;
  double temperature_c = 25.0;
  double vth0_v = 0.0;          ///< long-channel threshold voltage
  double vth_rolloff_v0_v = 0.0;     ///< Vth(L) = vth0 - V0 * exp(-L/lambda)
  double vth_rolloff_lambda_nm = 0.0;
  double subthreshold_n = 1.5;  ///< subthreshold ideality factor
  double alpha_sat = 1.3;       ///< alpha-power-law exponent

  // --- Calibration scale factors ---
  /// Leakage current prefactor: nA of subthreshold current per nm of device
  /// width at Vth = 0 (folded with the Boltzmann exponential at runtime).
  double leak_i0_na_per_nm = 0.0;
  /// Equivalent switching resistance scale: kOhm for a device of nominal L
  /// and 1 nm width at the node's gate overdrive (folded at runtime).
  double drive_k_kohm_nm = 0.0;
  /// Gate capacitance per nm of width at nominal L (fF/nm).
  double cgate_ff_per_nm = 0.0;

  // --- Interconnect (used by the extractor) ---
  double wire_res_kohm_per_um = 0.0;
  double wire_cap_ff_per_um = 0.0;

  // --- Standard-cell geometry (used by the placer) ---
  double row_height_um = 0.0;
  double site_width_um = 0.0;
};

/// 65 nm node calibrated against the paper's 65 nm observations
/// (Tables II, V, VI; Figs. 3-6).
TechNode make_tech_65nm();

/// 90 nm node calibrated against the paper's 90 nm observations (Table III).
TechNode make_tech_90nm();

/// Look up a node by name ("65nm" or "90nm"); throws on unknown names.
TechNode tech_node_by_name(const std::string& name);

/// Thermal voltage kT/q in volts at the given temperature.
double thermal_voltage_v(double temperature_c);

}  // namespace doseopt::tech
