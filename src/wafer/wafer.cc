#include "wafer/wafer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "liberty/repository.h"

namespace doseopt::wafer {

Wafer::Wafer(const WaferModel& model) : model_(model) {
  DOSEOPT_CHECK(model_.wafer_radius_mm > 0 && model_.field_size_mm > 0,
                "Wafer: bad geometry");
  Rng rng(model_.seed);
  const double usable = model_.wafer_radius_mm - model_.edge_exclusion_mm;
  const double step = model_.field_size_mm;
  const int n = static_cast<int>(usable / step) + 1;
  for (int i = -n; i <= n; ++i) {
    for (int j = -n; j <= n; ++j) {
      Field f;
      f.x_mm = (i + 0.5) * step;
      f.y_mm = (j + 0.5) * step;
      // A field is printed if it lies fully inside the usable radius
      // (corner check).
      const double corner_r =
          std::hypot(std::abs(f.x_mm) + 0.5 * step,
                     std::abs(f.y_mm) + 0.5 * step);
      if (corner_r > usable) continue;
      const double r = std::hypot(f.x_mm, f.y_mm) / model_.wafer_radius_mm;
      f.cd_bias_nm = model_.bowl2_nm * r * r +
                     model_.bowl4_nm * r * r * r * r +
                     rng.normal(0.0, model_.field_random_sigma_nm);
      fields_.push_back(f);
    }
  }
  DOSEOPT_CHECK(!fields_.empty(), "Wafer: no fields fit the wafer");
}

double Wafer::residual_cd_nm(std::size_t field) const {
  DOSEOPT_CHECK(field < fields_.size(), "residual_cd_nm: bad field");
  const Field& f = fields_[field];
  return f.cd_bias_nm +
         liberty::kDoseSensitivityNmPerPct * f.dose_corr_pct;
}

double Wafer::awlv_range_nm() const {
  double lo = 1e30, hi = -1e30;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const double cd = residual_cd_nm(i);
    lo = std::min(lo, cd);
    hi = std::max(hi, cd);
  }
  return hi - lo;
}

double Wafer::awlv_sigma_nm() const {
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const double cd = residual_cd_nm(i);
    sum += cd;
    sq += cd * cd;
  }
  const double n = static_cast<double>(fields_.size());
  const double mean = sum / n;
  return std::sqrt(std::max(0.0, sq / n - mean * mean));
}

double Wafer::apply_awlv_correction() {
  for (Field& f : fields_) {
    // Cancel the bias: dose = -bias / Ds, clamped to the Dosicom per-field
    // offset range.
    const double ideal = -f.cd_bias_nm / liberty::kDoseSensitivityNmPerPct;
    f.dose_corr_pct = std::clamp(ideal, -model_.max_field_dose_pct,
                                 model_.max_field_dose_pct);
  }
  return awlv_range_nm();
}

void Wafer::clear_corrections() {
  for (Field& f : fields_) f.dose_corr_pct = 0.0;
}

double WaferTimingResult::yield_at(double clock_ns) const {
  if (field_mct_ns.empty()) return 0.0;
  std::size_t pass = 0;
  for (const double mct : field_mct_ns)
    if (mct <= clock_ns) ++pass;
  return static_cast<double>(pass) /
         static_cast<double>(field_mct_ns.size());
}

WaferTimingResult analyze_wafer_timing(const Wafer& wafer,
                                       const netlist::Netlist& nl,
                                       const sta::Timer& timer,
                                       const sta::VariantAssignment& base) {
  DOSEOPT_CHECK(base.size() == nl.cell_count(),
                "analyze_wafer_timing: assignment size mismatch");
  WaferTimingResult result;
  result.field_mct_ns.reserve(wafer.field_count());

  // Distinct residual CD shifts map to the same variant step; cache by the
  // snapped step so a full wafer costs only a handful of STA runs.
  std::vector<double> cache(2 * liberty::kVariantsPerLayer + 1, -1.0);
  double sum = 0.0;
  result.min_mct_ns = 1e30;
  for (std::size_t fi = 0; fi < wafer.field_count(); ++fi) {
    const int steps = static_cast<int>(
        std::lround(wafer.residual_cd_nm(fi)));  // 1 nm per variant step
    const int key = std::clamp(steps, -liberty::kVariantsPerLayer,
                               liberty::kVariantsPerLayer) +
                    liberty::kVariantsPerLayer;
    double mct = cache[static_cast<std::size_t>(key)];
    if (mct < 0.0) {
      sta::VariantAssignment va = base;
      for (std::size_t c = 0; c < nl.cell_count(); ++c) {
        const auto id = static_cast<netlist::CellId>(c);
        const auto [ip, iw] = base.get(id);
        // Positive residual CD (longer gates) = lower poly variant index.
        va.set(id,
               std::clamp(ip - steps, 0, liberty::kVariantsPerLayer - 1),
               iw);
      }
      mct = timer.analyze(va).mct_ns;
      cache[static_cast<std::size_t>(key)] = mct;
    }
    result.field_mct_ns.push_back(mct);
    sum += mct;
    result.max_mct_ns = std::max(result.max_mct_ns, mct);
    result.min_mct_ns = std::min(result.min_mct_ns, mct);
  }
  result.mean_mct_ns = sum / static_cast<double>(wafer.field_count());
  return result;
}

}  // namespace doseopt::wafer
