// Across-wafer linewidth variation (AWLV) and wafer-level dose correction.
//
// The paper's conclusion names this as the next step: "extension of the
// dose map optimization methodology to minimize the delay variation of
// different chips across the wafer or the exposure field."  This module
// implements that extension:
//
//   * a wafer model: exposure fields tiled inside the wafer radius, with a
//     radial systematic CD bias (the classic track/etcher bowl shape that
//     the paper attributes AWLV to) plus per-field random offsets;
//   * the AWLV metric (range and sigma of per-field mean CD);
//   * a per-field dose correction (Dosicom field offsets, bounded) that
//     cancels the field-mean bias -- the manufacturing-side use of
//     DoseMapper the paper builds on;
//   * wafer-level timing analysis: per-field golden MCT under the residual
//     CD bias, stacked on top of an (optional) intra-field design-aware
//     dose map, giving the across-wafer MCT distribution and yield.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/timer.h"

namespace doseopt::wafer {

/// One exposure field on the wafer.
struct Field {
  double x_mm = 0.0;  ///< field-center coordinates, wafer center = (0, 0)
  double y_mm = 0.0;
  double cd_bias_nm = 0.0;   ///< systematic + random delta-L before correction
  double dose_corr_pct = 0.0;  ///< applied per-field dose correction
};

/// Wafer geometry and CD-bias model parameters.
struct WaferModel {
  double wafer_radius_mm = 150.0;
  double field_size_mm = 26.0;    ///< square step-and-scan field
  double edge_exclusion_mm = 3.0;
  // Radial bias: cd(r) = bowl2 * (r/R)^2 + bowl4 * (r/R)^4  (nm).
  double bowl2_nm = 3.0;
  double bowl4_nm = 2.0;
  double field_random_sigma_nm = 0.4;  ///< per-field random CD offset
  double max_field_dose_pct = 3.0;     ///< Dosicom per-field offset bound
  std::uint64_t seed = 777;
};

/// A populated wafer.
class Wafer {
 public:
  explicit Wafer(const WaferModel& model);

  const WaferModel& model() const { return model_; }
  const std::vector<Field>& fields() const { return fields_; }
  std::size_t field_count() const { return fields_.size(); }

  /// AWLV as the full range (max - min) of per-field effective CD bias
  /// after the currently applied dose corrections.
  double awlv_range_nm() const;

  /// Standard deviation of per-field effective CD bias.
  double awlv_sigma_nm() const;

  /// Residual CD bias of one field after its dose correction.
  double residual_cd_nm(std::size_t field) const;

  /// Compute and apply the per-field dose corrections that cancel the
  /// field-mean CD bias, clamped to +/-max_field_dose_pct.  This is the
  /// manufacturing-side DoseMapper use (AWLV minimization) of the paper's
  /// Section I.  Returns the post-correction AWLV range.
  double apply_awlv_correction();

  /// Clear all corrections (back to the raw process).
  void clear_corrections();

 private:
  WaferModel model_;
  std::vector<Field> fields_;
};

/// Per-field timing across the wafer: golden MCT of the design in every
/// field, with the field's residual CD bias added on top of `base` (e.g. a
/// design-aware dose-map assignment).
struct WaferTimingResult {
  std::vector<double> field_mct_ns;  ///< indexed like Wafer::fields()
  double mean_mct_ns = 0.0;
  double max_mct_ns = 0.0;
  double min_mct_ns = 0.0;

  /// Fraction of fields with MCT <= clock.
  double yield_at(double clock_ns) const;
};

/// Analyze every field of `wafer` by shifting the design's variant
/// assignment by the field's residual CD bias (snapped to the 1 nm variant
/// steps) and running golden STA.
WaferTimingResult analyze_wafer_timing(const Wafer& wafer,
                                       const netlist::Netlist& nl,
                                       const sta::Timer& timer,
                                       const sta::VariantAssignment& base);

}  // namespace doseopt::wafer
