#include "place/placement.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace doseopt::place {

int Die::row_count() const {
  return std::max(1, static_cast<int>(height_um / row_height_um));
}

int Die::sites_per_row() const {
  return std::max(1, static_cast<int>(width_um / site_width_um));
}

int master_width_sites(const liberty::CellMaster& master) {
  // One diffusion-contact site per pin plus drive-dependent driver area;
  // sequential cells are substantially larger.
  int sites = 2 + master.num_inputs + master.drive;
  if (master.sequential) sites += 8;
  return sites;
}

double master_width_um(const liberty::CellMaster& master, const Die& die) {
  return master_width_sites(master) * die.site_width_um;
}

Placement::Placement(const netlist::Netlist* nl, Die die)
    : netlist_(nl), die_(die), locations_(nl->cell_count()) {
  DOSEOPT_CHECK(die_.width_um > 0 && die_.height_um > 0 &&
                    die_.row_height_um > 0 && die_.site_width_um > 0,
                "Placement: bad die geometry");
}

void Placement::set_location(netlist::CellId c, CellLocation loc) {
  DOSEOPT_CHECK(c < locations_.size(), "set_location: bad cell");
  DOSEOPT_CHECK(loc.row >= 0 && loc.row < die_.row_count(),
                "set_location: row out of die");
  DOSEOPT_CHECK(loc.site >= 0 &&
                    loc.site + width_sites(c) <= die_.sites_per_row(),
                "set_location: site out of die");
  locations_[c] = loc;
}

double Placement::x_um(netlist::CellId c) const {
  return (locations_[c].site + 0.5 * width_sites(c)) * die_.site_width_um;
}

double Placement::y_um(netlist::CellId c) const {
  return (locations_[c].row + 0.5) * die_.row_height_um;
}

int Placement::width_sites(netlist::CellId c) const {
  return master_width_sites(netlist_->master_of(c));
}

bool Placement::is_legal() const {
  // Sort cells per row by site and check for overlap.
  std::vector<std::vector<netlist::CellId>> by_row(
      static_cast<std::size_t>(die_.row_count()));
  for (std::size_t c = 0; c < locations_.size(); ++c) {
    const CellLocation& loc = locations_[c];
    if (loc.row < 0 || loc.row >= die_.row_count()) return false;
    if (loc.site < 0 ||
        loc.site + width_sites(static_cast<netlist::CellId>(c)) >
            die_.sites_per_row())
      return false;
    by_row[static_cast<std::size_t>(loc.row)].push_back(
        static_cast<netlist::CellId>(c));
  }
  for (auto& row : by_row) {
    std::sort(row.begin(), row.end(),
              [this](netlist::CellId a, netlist::CellId b) {
                return locations_[a].site < locations_[b].site;
              });
    for (std::size_t i = 1; i < row.size(); ++i) {
      const netlist::CellId prev = row[i - 1];
      if (locations_[prev].site + width_sites(prev) >
          locations_[row[i]].site)
        return false;
    }
  }
  return true;
}

void Placement::swap_cells(netlist::CellId a, netlist::CellId b) {
  DOSEOPT_CHECK(a < locations_.size() && b < locations_.size(),
                "swap_cells: bad cell");
  std::swap(locations_[a], locations_[b]);
}

double Placement::net_hpwl_um(netlist::NetId n) const {
  const netlist::Net& net = netlist_->net(n);
  double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
  int pins = 0;
  auto add = [&](double x, double y) {
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
    ++pins;
  };
  // Primary I/O nets span only their cell pins: chip-level I/O is assumed
  // to be buffered at the boundary, so the core-side net starts at the
  // buffer (modeled as the net's pin cluster).
  if (net.driver != netlist::kNoCell) add(x_um(net.driver), y_um(net.driver));
  for (const netlist::SinkPin& s : net.sinks) add(x_um(s.cell), y_um(s.cell));
  if (pins < 2) return 0.0;
  return (max_x - min_x) + (max_y - min_y);
}

double Placement::total_hpwl_um() const {
  double total = 0.0;
  for (std::size_t n = 0; n < netlist_->net_count(); ++n)
    total += net_hpwl_um(static_cast<netlist::NetId>(n));
  return total;
}

}  // namespace doseopt::place
