// Row-based standard-cell placement.
//
// The die is a grid of horizontal rows of uniform-width sites.  A Placement
// assigns each cell a site-aligned lower-left corner.  This substitutes for
// the placement half of the paper's SOC Encounter flow: it provides the
// geometry the extractor, the dose-map grid binning, and the cell-swapping
// optimization (dosePl) operate on.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "tech/tech_node.h"

namespace doseopt::place {

/// Die outline and row geometry.
struct Die {
  double width_um = 0.0;
  double height_um = 0.0;
  double row_height_um = 0.0;
  double site_width_um = 0.0;

  int row_count() const;
  int sites_per_row() const;
};

/// Physical footprint of a master, in sites.
int master_width_sites(const liberty::CellMaster& master);

/// Width in um of a master on a given die.
double master_width_um(const liberty::CellMaster& master, const Die& die);

/// Location of one cell: row index and site index (lower-left corner).
struct CellLocation {
  std::int32_t row = 0;
  std::int32_t site = 0;
};

/// A legal (or candidate) placement of every cell in a netlist.
class Placement {
 public:
  Placement(const netlist::Netlist* nl, Die die);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const Die& die() const { return die_; }

  CellLocation location(netlist::CellId c) const { return locations_[c]; }
  void set_location(netlist::CellId c, CellLocation loc);

  /// Center coordinates of a cell in um.
  double x_um(netlist::CellId c) const;
  double y_um(netlist::CellId c) const;

  /// Width of a cell in sites.
  int width_sites(netlist::CellId c) const;

  /// True if no cell overlaps another or the die boundary.
  bool is_legal() const;

  /// Swap the locations of two cells.  If footprints differ the wider cell
  /// may overlap a neighbor; callers re-legalize afterwards.
  void swap_cells(netlist::CellId a, netlist::CellId b);

  /// Half-perimeter wirelength of one net (um); pin positions are cell
  /// centers, primary I/O pins sit at the die boundary nearest the net's
  /// center of gravity.
  double net_hpwl_um(netlist::NetId n) const;

  /// Total HPWL over all nets (um).
  double total_hpwl_um() const;

 private:
  const netlist::Netlist* netlist_;
  Die die_;
  std::vector<CellLocation> locations_;
};

}  // namespace doseopt::place
