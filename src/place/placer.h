// Initial placement and legalization.
//
// The initial placer lays cells in connectivity (cone) order along a
// boustrophedon scan of the rows, which keeps topologically adjacent cells
// physically close -- the locality property the dose-map grid binning and
// the dosePl bounding-box heuristics rely on.  The legalizer restores a
// non-overlapping site-aligned placement after perturbations (cell swaps),
// standing in for the ECO placement step of the paper's flow.
#pragma once

#include <cstdint>

#include "place/placement.h"

namespace doseopt::place {

/// Build a die for `nl` with the given target core area (um^2).  Row height
/// and site width come from the technology node; the die is square.  Throws
/// if the netlist cannot fit at >= 97% utilization.
Die make_die(const tech::TechNode& node, const netlist::Netlist& nl,
             double area_um2);

/// Deterministic initial placement: cone-ordered snake fill with a small
/// seeded perturbation so distinct seeds give distinct-but-comparable
/// layouts.  The result is legal.
Placement initial_placement(const netlist::Netlist& nl, const Die& die,
                            std::uint64_t seed);

/// Fractional position hint for one cell (both in [0, 1]).
struct PlacementHint {
  double x_frac = 0.5;
  double y_frac = 0.5;
};

/// Placement from per-cell position hints (e.g. from the synthetic design
/// generator, which knows the intended spatial structure).  Each cell is
/// dropped at its hinted location and the result legalized.
Placement placement_from_hints(const netlist::Netlist& nl, const Die& die,
                               const std::vector<PlacementHint>& hints);

/// Restore legality after perturbations, moving cells as little as possible
/// (row-local repacking; overflowing cells spill to neighboring rows).
/// Throws if the design cannot be legalized (die too full).
void legalize(Placement& placement);

/// Utilization: total cell area / core area.
double utilization(const Placement& placement);

}  // namespace doseopt::place
