#include "place/bbox.h"

#include <algorithm>

namespace doseopt::place {

Rect cell_bounding_box(const Placement& placement, netlist::CellId c) {
  const netlist::Netlist& nl = placement.netlist();
  Rect r{1e30, 1e30, -1e30, -1e30};
  auto add = [&r, &placement](netlist::CellId cell) {
    const double x = placement.x_um(cell);
    const double y = placement.y_um(cell);
    r.min_x = std::min(r.min_x, x);
    r.min_y = std::min(r.min_y, y);
    r.max_x = std::max(r.max_x, x);
    r.max_y = std::max(r.max_y, y);
  };
  add(c);
  for (netlist::NetId n : nl.cell(c).input_nets) {
    const netlist::CellId drv = nl.net(n).driver;
    if (drv != netlist::kNoCell) add(drv);
  }
  for (const netlist::SinkPin& s : nl.net(nl.cell(c).output_net).sinks)
    add(s.cell);
  return r;
}

double cell_distance_um(const Placement& placement, netlist::CellId a,
                        netlist::CellId b) {
  return std::abs(placement.x_um(a) - placement.x_um(b)) +
         std::abs(placement.y_um(a) - placement.y_um(b));
}

double incident_hpwl_um(const Placement& placement, netlist::CellId c) {
  const netlist::Netlist& nl = placement.netlist();
  double total = placement.net_hpwl_um(nl.cell(c).output_net);
  for (netlist::NetId n : nl.cell(c).input_nets)
    total += placement.net_hpwl_um(n);
  return total;
}

}  // namespace doseopt::place
