// Cell bounding boxes for the dosePl swapping heuristic (Appendix A of the
// paper): the bounding box of a cell is the bounding box of the cell itself,
// all of its fanin cells, and all of its fanout cells.
#pragma once

#include "place/placement.h"

namespace doseopt::place {

/// Axis-aligned rectangle in um.
struct Rect {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  bool contains(double x, double y) const {
    return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }
  bool intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
};

/// Bounding box of cell `c`, its fanins, and its fanouts (Fig. 9).
Rect cell_bounding_box(const Placement& placement, netlist::CellId c);

/// Manhattan distance between the centers of two cells (um).
double cell_distance_um(const Placement& placement, netlist::CellId a,
                        netlist::CellId b);

/// Sum of HPWL over the nets incident to cell `c` (output net + every input
/// net); the dosePl heuristic bounds the relative increase of this quantity.
double incident_hpwl_um(const Placement& placement, netlist::CellId c);

}  // namespace doseopt::place
