#include "place/placer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace doseopt::place {

namespace {

double total_cell_area_um2(const netlist::Netlist& nl, const Die& die) {
  double area = 0.0;
  for (std::size_t c = 0; c < nl.cell_count(); ++c)
    area += master_width_um(nl.master_of(static_cast<netlist::CellId>(c)),
                            die) *
            die.row_height_um;
  return area;
}

/// Cone-clustered cell order: DFS from each primary output / flop D input
/// backwards through drivers, emitting cells in post-order.  Cells in the
/// same logic cone end up contiguous.
std::vector<netlist::CellId> cone_order(const netlist::Netlist& nl) {
  std::vector<netlist::CellId> order;
  order.reserve(nl.cell_count());
  std::vector<bool> visited(nl.cell_count(), false);

  std::vector<netlist::CellId> stack;
  std::vector<bool> expanded(nl.cell_count(), false);
  auto visit_cone = [&](netlist::CellId root) {
    if (root == netlist::kNoCell || visited[root]) return;
    // Iterative post-order DFS through driver edges.
    stack.push_back(root);
    while (!stack.empty()) {
      const netlist::CellId c = stack.back();
      if (visited[c]) {
        stack.pop_back();
        continue;
      }
      if (!expanded[c]) {
        expanded[c] = true;
        for (netlist::NetId n : nl.cell(c).input_nets) {
          const netlist::CellId drv = nl.net(n).driver;
          if (drv != netlist::kNoCell && !visited[drv] &&
              !nl.cell(c).sequential)
            stack.push_back(drv);
        }
      } else {
        visited[c] = true;
        order.push_back(c);
        stack.pop_back();
      }
    }
  };

  // Roots: drivers of primary outputs, then flop fanin cones, then flops
  // themselves, then anything left.
  for (netlist::NetId n : nl.primary_outputs()) {
    const netlist::CellId drv = nl.net(n).driver;
    if (drv != netlist::kNoCell) visit_cone(drv);
  }
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto c = static_cast<netlist::CellId>(ci);
    if (!nl.cell(c).sequential) continue;
    for (netlist::NetId n : nl.cell(c).input_nets) {
      const netlist::CellId drv = nl.net(n).driver;
      if (drv != netlist::kNoCell) visit_cone(drv);
    }
  }
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci)
    visit_cone(static_cast<netlist::CellId>(ci));

  DOSEOPT_CHECK(order.size() == nl.cell_count(),
                "cone_order: missed cells");
  return order;
}

}  // namespace

Die make_die(const tech::TechNode& node, const netlist::Netlist& nl,
             double area_um2) {
  DOSEOPT_CHECK(area_um2 > 0.0, "make_die: bad area");
  Die die;
  die.row_height_um = node.row_height_um;
  die.site_width_um = node.site_width_um;
  const double side = std::sqrt(area_um2);
  // Snap height to whole rows and width to whole sites.
  die.height_um =
      std::max(1.0, std::round(side / die.row_height_um)) * die.row_height_um;
  die.width_um =
      std::max(1.0, std::round(side / die.site_width_um)) * die.site_width_um;
  const double cells = total_cell_area_um2(nl, die);
  DOSEOPT_CHECK(cells <= 0.97 * die.width_um * die.height_um,
                "make_die: design does not fit in requested area");
  return die;
}

Placement initial_placement(const netlist::Netlist& nl, const Die& die,
                            std::uint64_t seed) {
  Placement placement(&nl, die);
  std::vector<netlist::CellId> order = cone_order(nl);

  // Seeded perturbation: rotate the order by a random offset and swap a few
  // percent of adjacent pairs, so different seeds explore different layouts
  // without destroying locality.
  Rng rng(seed);
  if (!order.empty()) {
    std::rotate(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(
                                    rng.uniform_index(order.size())),
                order.end());
    const std::size_t swaps = order.size() / 50;
    for (std::size_t i = 0; i < swaps; ++i) {
      const std::size_t j = rng.uniform_index(order.size() - 1);
      std::swap(order[j], order[j + 1]);
    }
  }

  // Boustrophedon snake fill with uniform spreading: scale the packing so
  // the whole die is used rather than packing tightly into the first rows.
  const int rows = die.row_count();
  const int sites = die.sites_per_row();
  double total_sites_needed = 0.0;
  for (netlist::CellId c : order)
    total_sites_needed += placement.width_sites(c);
  // Leave one row of headroom so rounding never overflows the die.
  const double spread = std::max(
      1.0, static_cast<double>(std::max(1, rows - 1)) * sites /
               total_sites_needed);

  int row = 0;
  double cursor = 0.0;
  bool left_to_right = true;
  for (netlist::CellId c : order) {
    const int w = placement.width_sites(c);
    if (cursor + w * spread > sites) {
      row = std::min(row + 1, rows - 1);  // legalize() resolves any pile-up
      cursor = 0.0;
      left_to_right = !left_to_right;
    }
    const int site_pos =
        left_to_right ? static_cast<int>(cursor)
                      : sites - static_cast<int>(cursor) - w;
    placement.set_location(c, CellLocation{row, std::max(0, site_pos)});
    cursor += w * spread;
  }
  legalize(placement);
  return placement;
}

Placement placement_from_hints(const netlist::Netlist& nl, const Die& die,
                               const std::vector<PlacementHint>& hints) {
  DOSEOPT_CHECK(hints.size() == nl.cell_count(),
                "placement_from_hints: hint count mismatch");
  Placement placement(&nl, die);
  const int rows = die.row_count();
  const int sites = die.sites_per_row();
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto c = static_cast<netlist::CellId>(ci);
    const PlacementHint& h = hints[ci];
    const int w = placement.width_sites(c);
    const int row = std::clamp(static_cast<int>(h.y_frac * rows), 0, rows - 1);
    const int site = std::clamp(static_cast<int>(h.x_frac * sites) - w / 2, 0,
                                sites - w);
    placement.set_location(c, CellLocation{row, site});
  }
  legalize(placement);
  return placement;
}

void legalize(Placement& placement) {
  const netlist::Netlist& nl = placement.netlist();
  const Die& die = placement.die();
  const int rows = die.row_count();
  const int sites = die.sites_per_row();

  std::vector<std::vector<netlist::CellId>> by_row(
      static_cast<std::size_t>(rows));
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto c = static_cast<netlist::CellId>(ci);
    const int r = std::clamp(placement.location(c).row, 0, rows - 1);
    by_row[static_cast<std::size_t>(r)].push_back(c);
  }

  // Phase 1: balance row capacity.  Rows whose total cell width exceeds the
  // row evict their rightmost cells; evicted cells go to the nearest row
  // with spare capacity.
  std::vector<int> row_used(static_cast<std::size_t>(rows), 0);
  auto width_of = [&placement](netlist::CellId c) {
    return placement.width_sites(c);
  };
  for (int r = 0; r < rows; ++r) {
    auto& row = by_row[static_cast<std::size_t>(r)];
    std::sort(row.begin(), row.end(),
              [&placement](netlist::CellId a, netlist::CellId b) {
                return placement.location(a).site < placement.location(b).site;
              });
    for (const netlist::CellId c : row)
      row_used[static_cast<std::size_t>(r)] += width_of(c);
  }
  std::vector<netlist::CellId> carry;
  for (int r = 0; r < rows; ++r) {
    auto& row = by_row[static_cast<std::size_t>(r)];
    while (row_used[static_cast<std::size_t>(r)] > sites && !row.empty()) {
      const netlist::CellId c = row.back();
      row.pop_back();
      row_used[static_cast<std::size_t>(r)] -= width_of(c);
      carry.push_back(c);
    }
  }
  for (const netlist::CellId c : carry) {
    const int w = width_of(c);
    const int desired = std::clamp(placement.location(c).row, 0, rows - 1);
    bool placed = false;
    for (int d = 0; d < rows && !placed; ++d) {
      for (const int r : {desired - d, desired + d}) {
        if (r < 0 || r >= rows) continue;
        if (row_used[static_cast<std::size_t>(r)] + w <= sites) {
          auto& row = by_row[static_cast<std::size_t>(r)];
          // Keep the row sorted by desired site.
          const auto it = std::lower_bound(
              row.begin(), row.end(), c,
              [&placement](netlist::CellId a, netlist::CellId b) {
                return placement.location(a).site < placement.location(b).site;
              });
          row.insert(it, c);
          row_used[static_cast<std::size_t>(r)] += w;
          placed = true;
          break;
        }
      }
      if (placed) break;
    }
    DOSEOPT_CHECK(placed, "legalize: die has no remaining capacity");
  }

  // Phase 2: pack each row.  Every cell sits as close to its desired site as
  // the cells to its right allow (suffix capping), so the whole row is
  // guaranteed to fit.
  std::vector<int> suffix;
  for (int r = 0; r < rows; ++r) {
    auto& row = by_row[static_cast<std::size_t>(r)];
    suffix.assign(row.size() + 1, 0);
    for (std::size_t i = row.size(); i-- > 0;)
      suffix[i] = suffix[i + 1] + width_of(row[i]);
    int cursor = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const netlist::CellId c = row[i];
      const int cap = sites - suffix[i];  // rightmost start that still fits
      const int pos =
          std::max(cursor, std::min(placement.location(c).site, cap));
      placement.set_location(c, CellLocation{r, pos});
      cursor = pos + width_of(c);
    }
  }
  DOSEOPT_CHECK(placement.is_legal(),
                "legalize: failed to produce legal result");
}

double utilization(const Placement& placement) {
  const Die& die = placement.die();
  return total_cell_area_um2(placement.netlist(), die) /
         (die.width_um * die.height_um);
}

}  // namespace doseopt::place
