// Synthetic benchmark design generator.
//
// Substitutes for the paper's industrial AES/JPEG testcases (Table I).  The
// generator builds a levelized random DAG whose observable statistics are
// matched to the paper: cell count, net count (=> primary-input count), chip
// area, and -- via the depth-balance parameter -- the slack criticality
// profile of Table VII (65 nm designs have a "wall" of near-critical paths;
// 90 nm designs have few).  The logic function is arbitrary; every consumer
// in this project (STA, leakage, dose-map optimization, cell swapping)
// depends only on these statistics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "liberty/cell_master.h"
#include "netlist/netlist.h"
#include "place/placer.h"

namespace doseopt::gen {

/// Parameters of one synthetic design.
struct DesignSpec {
  std::string name;
  std::string tech;  ///< "65nm" or "90nm"
  std::size_t target_cells = 0;
  std::size_t target_nets = 0;  ///< > target_cells; difference = PI count
  double chip_area_mm2 = 0.0;
  double flop_fraction = 0.12;
  int logic_depth = 30;        ///< deepest combinational level
  double depth_balance = 0.3;  ///< extra weight on the near-max-depth band
                               ///< (creates the 65 nm "wall" of Table VII)
  double depth_taper = 0.0;    ///< per-level exponential decay of cell count
                               ///< beyond 60% depth (thins the critical tail
                               ///< the way the 90 nm designs are thin)
  std::uint64_t seed = 1;

  /// Scale the design down by `factor` (cells, nets, area) for fast runs.
  DesignSpec scaled(double factor) const;
};

/// Table I specs.
DesignSpec aes65_spec();
DesignSpec jpeg65_spec();
DesignSpec aes90_spec();
DesignSpec jpeg90_spec();
/// All four, in the paper's order.
std::vector<DesignSpec> table1_specs();

/// Look up a Table I spec by name ("aes65", "jpeg65", "aes90", "jpeg90");
/// throws doseopt::Error on unknown names.
DesignSpec spec_by_name(const std::string& name);

/// A generated design: netlist + legal placement on a die sized to the
/// spec's chip area.
struct GeneratedDesign {
  DesignSpec spec;
  std::unique_ptr<netlist::Netlist> netlist;
  place::Die die;
  std::unique_ptr<place::Placement> placement;
};

/// Generate a design.  `masters` must outlive the returned object (pass the
/// LibraryRepository's master list so netlist indices align with
/// characterized-library indices).
GeneratedDesign generate_design(const DesignSpec& spec,
                                const std::vector<liberty::CellMaster>& masters,
                                const tech::TechNode& node);

}  // namespace doseopt::gen
