#include "gen/design_gen.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"

namespace doseopt::gen {

using netlist::CellId;
using netlist::kNoCell;
using netlist::NetId;

DesignSpec DesignSpec::scaled(double factor) const {
  DOSEOPT_CHECK(factor > 0.0 && factor <= 1.0, "DesignSpec::scaled: factor");
  DesignSpec s = *this;
  s.target_cells = std::max<std::size_t>(200, static_cast<std::size_t>(
                                                  target_cells * factor));
  const std::size_t pis = target_nets - target_cells;
  s.target_nets =
      s.target_cells + std::max<std::size_t>(8, static_cast<std::size_t>(
                                                    pis * factor));
  s.chip_area_mm2 = chip_area_mm2 * factor;
  return s;
}

DesignSpec aes65_spec() {
  DesignSpec s;
  s.name = "AES-65";
  s.tech = "65nm";
  s.target_cells = 16187;
  s.target_nets = 16450;
  s.chip_area_mm2 = 0.058;
  s.flop_fraction = 0.12;
  s.logic_depth = 26;
  s.depth_balance = 0.80;
  s.depth_taper = 0.0;
  s.seed = 0xae565;
  return s;
}

DesignSpec jpeg65_spec() {
  DesignSpec s;
  s.name = "JPEG-65";
  s.tech = "65nm";
  s.target_cells = 68286;
  s.target_nets = 68311;
  s.chip_area_mm2 = 0.268;
  s.flop_fraction = 0.10;
  s.logic_depth = 32;
  s.depth_balance = 0.50;
  s.depth_taper = 0.10;
  s.seed = 0x19e65;
  return s;
}

DesignSpec aes90_spec() {
  DesignSpec s;
  s.name = "AES-90";
  s.tech = "90nm";
  s.target_cells = 21944;
  s.target_nets = 22581;
  s.chip_area_mm2 = 0.25;
  s.flop_fraction = 0.12;
  s.logic_depth = 26;
  s.depth_balance = 0.0;
  s.depth_taper = 0.30;
  s.seed = 0xae590;
  return s;
}

DesignSpec jpeg90_spec() {
  DesignSpec s;
  s.name = "JPEG-90";
  s.tech = "90nm";
  s.target_cells = 98555;
  s.target_nets = 105955;
  s.chip_area_mm2 = 1.09;
  s.flop_fraction = 0.10;
  s.logic_depth = 30;
  s.depth_balance = 0.0;
  s.depth_taper = 0.60;
  s.seed = 0x19e90;
  return s;
}

std::vector<DesignSpec> table1_specs() {
  return {aes65_spec(), jpeg65_spec(), aes90_spec(), jpeg90_spec()};
}

DesignSpec spec_by_name(const std::string& name) {
  if (name == "aes65") return aes65_spec();
  if (name == "jpeg65") return jpeg65_spec();
  if (name == "aes90") return aes90_spec();
  if (name == "jpeg90") return jpeg90_spec();
  throw Error("unknown design: " + name +
              " (expected aes65|jpeg65|aes90|jpeg90)");
}

namespace {

/// Combinational master mix: (master, relative weight, input count).
struct MixEntry {
  const char* master;
  double weight;
  int inputs;
};

const std::vector<MixEntry>& master_mix() {
  static const std::vector<MixEntry> mix = {
      {"INVX1", 10.0, 1},   {"INVX2", 5.0, 1},    {"BUFX1", 3.0, 1},
      {"BUFX2", 2.0, 1},    {"NAND2X1", 18.0, 2}, {"NAND2X2", 6.0, 2},
      {"NOR2X1", 12.0, 2},  {"NOR2X2", 4.0, 2},   {"NAND3X1", 6.0, 3},
      {"NOR3X1", 4.0, 3},   {"NAND4X1", 2.0, 4},  {"NOR4X1", 1.5, 4},
      {"AND2X1", 5.0, 2},   {"OR2X1", 4.0, 2},    {"AND3X1", 2.0, 3},
      {"OR3X1", 1.5, 3},    {"XOR2X1", 5.0, 2},   {"XNOR2X1", 2.5, 2},
      {"AOI21X1", 4.0, 3},  {"OAI21X1", 4.0, 3},  {"AOI22X1", 2.0, 4},
      {"OAI22X1", 2.0, 4},  {"MUX2X1", 3.0, 3},
  };
  return mix;
}

const std::vector<std::pair<const char*, double>>& flop_mix() {
  static const std::vector<std::pair<const char*, double>> mix = {
      {"DFFX1", 10.0}, {"DFFX2", 3.0},  {"DFFRX1", 6.0},
      {"DFFRX2", 2.0}, {"SDFFX1", 4.0}, {"DFFSX1", 2.0},
  };
  return mix;
}

/// One net plus its spatial position hint in [0, 1).
struct PlacedNet {
  NetId net;
  double u;
};

/// Master-mix index for the 65 nm near-critical "wall" band: a regular
/// 2-input fabric (XOR-tree-like, as in an AES S-box / MixColumns datapath)
/// whose uniform stage delays produce many near-equal critical paths.
std::size_t wall_mix_pick(Rng& rng) {
  static const std::size_t nand2 = [] {
    for (std::size_t i = 0; i < master_mix().size(); ++i)
      if (std::string_view(master_mix()[i].master) == "NAND2X1") return i;
    throw Error("wall_mix_pick: NAND2X1 missing from mix");
  }();
  static const std::size_t xor2 = [] {
    for (std::size_t i = 0; i < master_mix().size(); ++i)
      if (std::string_view(master_mix()[i].master) == "XOR2X1") return i;
    throw Error("wall_mix_pick: XOR2X1 missing from mix");
  }();
  static const std::size_t nor2 = [] {
    for (std::size_t i = 0; i < master_mix().size(); ++i)
      if (std::string_view(master_mix()[i].master) == "NOR2X1") return i;
    throw Error("wall_mix_pick: NOR2X1 missing from mix");
  }();
  const double r = rng.uniform();
  if (r < 0.5) return nand2;
  if (r < 0.8) return xor2;
  return nor2;
}

/// Pick a net from a u-sorted list near position `u`, with a Gaussian spread
/// of `sigma_u` in u-space.  The anchor is found by binary search on the
/// actual u values (lists may cover only a sub-range of [0, 1]), and the
/// spread is converted to an index offset through the list's local density.
NetId pick_near(const netlist::Netlist& nl, const std::vector<PlacedNet>& list,
                double u, double sigma_u, Rng& rng) {
  DOSEOPT_CHECK(!list.empty(), "pick_near: empty candidate list");
  const double n = static_cast<double>(list.size());
  const auto anchor = std::lower_bound(
      list.begin(), list.end(), u,
      [](const PlacedNet& a, double val) { return a.u < val; });
  const double center =
      static_cast<double>(std::min<std::ptrdiff_t>(
          anchor - list.begin(), static_cast<std::ptrdiff_t>(n) - 1));
  const double span =
      std::max(1e-6, list.back().u - list.front().u);
  const double sigma_idx = std::max(0.9, sigma_u / span * n);
  // Fanout-aware: retry a few times before accepting an overloaded net, so
  // thin levels do not dump every consumer onto one driver.
  constexpr std::size_t kMaxPickFanout = 16;
  NetId best = list.front().net;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const double idx = center + rng.normal(0.0, sigma_idx * (1.0 + attempt));
    const auto i =
        static_cast<std::size_t>(std::clamp(idx, 0.0, n - 1.0));
    best = list[i].net;
    if (nl.net(best).sinks.size() < kMaxPickFanout) break;
  }
  return best;
}

}  // namespace

GeneratedDesign generate_design(const DesignSpec& spec,
                                const std::vector<liberty::CellMaster>& masters,
                                const tech::TechNode& node) {
  DOSEOPT_CHECK(spec.target_nets > spec.target_cells,
                "generate_design: nets must exceed cells");
  DOSEOPT_CHECK(spec.logic_depth >= 2, "generate_design: depth too small");
  DOSEOPT_CHECK(node.name == spec.tech, "generate_design: node mismatch");

  Rng rng(spec.seed);

  GeneratedDesign out;
  out.spec = spec;
  out.netlist = std::make_unique<netlist::Netlist>(spec.name, spec.tech,
                                                   &masters);
  netlist::Netlist& nl = *out.netlist;

  auto master_index = [&masters](const std::string& name) {
    for (std::size_t i = 0; i < masters.size(); ++i)
      if (masters[i].name == name) return i;
    throw Error("generate_design: unknown master " + name);
  };

  // Spatial locality: fanins are drawn from a Gaussian neighborhood of the
  // consuming cell's 1-D locality coordinate u in [0, 1).  The u-line is
  // folded onto the die as K horizontal bands traversed boustrophedon, so
  // cells with nearby u are nearby in 2-D regardless of logic level.  The
  // locality radius is fixed in *micrometers* (independent of design size),
  // as in real placed netlists.
  const double die_side_um =
      std::sqrt(spec.chip_area_mm2 * units::kMm2ToUm2);
  const double kBandHeightUm = 18.0;   // vertical pitch of the u-snake
  const double kLocalitySigmaUm = 4.0; // fanin neighborhood radius
  const int kBands =
      std::max(4, static_cast<int>(std::lround(die_side_um / kBandHeightUm)));
  const double kFaninSigma = kLocalitySigmaUm / (kBands * die_side_um);
  auto snake_hint = [kBands, kFaninSigma](double u, Rng& r) {
    const double t = std::clamp(u, 0.0, 1.0 - 1e-9) * kBands;
    const int band = static_cast<int>(t);
    double x = t - band;                    // position within the band
    if (band % 2 == 1) x = 1.0 - x;         // boustrophedon
    const double y = (band + 0.5) / kBands;
    return place::PlacementHint{x + r.normal(0.0, 0.2 * kFaninSigma * kBands),
                                y + r.normal(0.0, 0.30 / kBands)};
  };

  // Per-cell placement hints, filled as cells are created.
  std::vector<place::PlacementHint> hints;

  const int depth = spec.logic_depth;

  // --- primary inputs ---
  const std::size_t n_pis = spec.target_nets - spec.target_cells;
  std::vector<PlacedNet> level0;
  for (std::size_t i = 0; i < n_pis; ++i) {
    const NetId n = nl.add_net("pi" + std::to_string(i));
    nl.mark_primary_input(n);
    level0.push_back(
        {n, (static_cast<double>(i) + 0.5) / static_cast<double>(n_pis)});
  }

  // --- flops (launch points; D inputs connected at the end) ---
  const auto n_flops = static_cast<std::size_t>(
      spec.flop_fraction * static_cast<double>(spec.target_cells));
  std::vector<CellId> flops;
  std::vector<double> flop_u;
  {
    std::vector<double> w;
    for (const auto& [name, weight] : flop_mix()) w.push_back(weight);
    for (std::size_t i = 0; i < n_flops; ++i) {
      const auto& [name, weight] = flop_mix()[rng.weighted_index(w)];
      const NetId q = nl.add_net("q" + std::to_string(i));
      const CellId f =
          nl.add_cell("ff" + std::to_string(i), master_index(name), q);
      const double u =
          (static_cast<double>(i) + 0.5) / static_cast<double>(n_flops);
      flops.push_back(f);
      flop_u.push_back(u);
      level0.push_back({q, u});
      hints.push_back(snake_hint(u, rng));
    }
    std::sort(level0.begin(), level0.end(),
              [](const PlacedNet& a, const PlacedNet& b) { return a.u < b.u; });
  }

  // --- levelized combinational logic ---
  const std::size_t n_comb = spec.target_cells - n_flops;

  // Cells per level: mixture of uniform over [1, D] and a band near D that
  // produces the near-critical-path "wall" (Table VII shaping).
  std::vector<double> level_weight(static_cast<std::size_t>(depth) + 1, 0.0);
  for (int l = 1; l <= depth; ++l) {
    const double frac = static_cast<double>(l) / depth;
    double w = 1.0;
    if (frac > 0.6)
      w *= std::exp(-spec.depth_taper * (frac - 0.6) * depth);
    if (l >= static_cast<int>(0.82 * depth)) w += spec.depth_balance * 5.0;
    level_weight[static_cast<std::size_t>(l)] = w;
  }
  std::vector<std::size_t> count_per_level(
      static_cast<std::size_t>(depth) + 1, 0);
  for (std::size_t i = 0; i < n_comb; ++i)
    ++count_per_level[rng.weighted_index(level_weight)];
  int deepest = depth;
  while (deepest > 1 &&
         count_per_level[static_cast<std::size_t>(deepest)] == 0)
    --deepest;
  for (int l = 1; l <= deepest; ++l) {
    auto& cnt = count_per_level[static_cast<std::size_t>(l)];
    if (cnt == 0) cnt = 1;
  }

  // A small pool of high-fanout "control" nets (clock-enable / reset-like):
  // picked over a medium range (10x the local radius) with a fanout cap, as
  // a buffered control tree would present.
  std::vector<PlacedNet> control_pool;
  for (std::size_t i = 0; i < level0.size(); i += 20)
    control_pool.push_back(level0[i]);
  if (control_pool.size() < 2) control_pool = level0;
  constexpr std::size_t kMaxControlFanout = 24;

  std::vector<double> comb_weights;
  for (const MixEntry& e : master_mix()) comb_weights.push_back(e.weight);

  std::vector<std::vector<PlacedNet>> nets_by_level(
      static_cast<std::size_t>(depth) + 1);
  nets_by_level[0] = level0;

  std::size_t cell_serial = 0;
  for (int level = 1; level <= depth; ++level) {
    const std::size_t count =
        count_per_level[static_cast<std::size_t>(level)];
    auto& this_level = nets_by_level[static_cast<std::size_t>(level)];
    this_level.reserve(count);
    // A level is part of the compact "tube" only once tapering has actually
    // thinned it; wide levels stay spread across the die.
    const double avg_level_count =
        static_cast<double>(n_comb) / static_cast<double>(depth);
    const bool in_tube = spec.depth_taper > 0.0 &&
                         level > static_cast<int>(0.6 * depth) &&
                         static_cast<double>(count) < 0.25 * avg_level_count;
    const bool in_wall = spec.depth_balance > 0.0 &&
                         level >= static_cast<int>(0.82 * depth);
    for (std::size_t i = 0; i < count; ++i) {
      double u = (static_cast<double>(i) + 0.5) / static_cast<double>(count);
      // Tapered designs keep their thin critical tail spatially compact (a
      // single functional unit), otherwise sparse levels force die-scale
      // wires between consecutive tube stages.  The tube occupies a fixed
      // ~120 um stretch of the u-snake (u distance maps to physical distance
      // at rate kBands * die_side per unit u).
      if (in_tube) {
        const double tube_span_u = 80.0 / (kBands * die_side_um);
        u = 0.5 + (u - 0.5) * tube_span_u;
      }
      const MixEntry& mix =
          in_wall ? master_mix()[wall_mix_pick(rng)]
                  : master_mix()[rng.weighted_index(comb_weights)];
      const NetId out_net = nl.add_net("n" + std::to_string(nl.net_count()));
      const CellId c = nl.add_cell("u" + std::to_string(cell_serial++),
                                   master_index(mix.master), out_net);
      std::vector<NetId> chosen;
      for (int pin = 0; pin < mix.inputs; ++pin) {
        NetId src = netlist::kNoNet;
        // Retry a few times to avoid wiring one net to several pins of the
        // same cell (harmless but unrealistic, and it collapses distinct
        // timing paths).
        for (int attempt = 0; attempt < 6; ++attempt) {
          if (pin == 0) {
            // Guarantees the cell's level.
            src = pick_near(nl,
                nets_by_level[static_cast<std::size_t>(level - 1)],
                            u, kFaninSigma, rng);
          } else if (rng.bernoulli(0.04)) {
            src = pick_near(nl, control_pool, u, 10.0 * kFaninSigma, rng);
            if (nl.net(src).sinks.size() >= kMaxControlFanout)
              src = pick_near(nl,
                              nets_by_level[static_cast<std::size_t>(
                                  level - 1)],
                              u, kFaninSigma, rng);
          } else {
            int lo;
            if (spec.depth_balance > 0.0 &&
                level >= static_cast<int>(0.82 * depth) &&
                rng.bernoulli(0.8)) {
              // Walled (65 nm-like) designs: extra reconvergence inside the
              // near-critical band multiplies the near-equal path count.
              lo = level - 1;
            } else if (spec.depth_taper > 0.0 &&
                       level > static_cast<int>(0.6 * depth)) {
              // Tapered (90 nm-like) designs: side inputs of deep cells come
              // from shallow logic, so the thin critical tail stays a tube
              // with little reconvergence -- few near-critical paths.
              lo = rng.uniform_int(0, std::max(1, static_cast<int>(
                                                      0.6 * depth) - 1));
            } else {
              // Default: an earlier level, biased recent for short wires.
              lo = level - 1 - rng.uniform_int(0, 5);
            }
            lo = std::clamp(lo, 0, level - 1);
            while (lo > 0 &&
                   nets_by_level[static_cast<std::size_t>(lo)].empty())
              --lo;
            src = pick_near(nl, nets_by_level[static_cast<std::size_t>(lo)],
                            u, kFaninSigma, rng);
          }
          if (std::find(chosen.begin(), chosen.end(), src) == chosen.end())
            break;
        }
        chosen.push_back(src);
        nl.connect_input(c, pin, src);
      }
      this_level.push_back({out_net, u});
      hints.push_back(snake_hint(u, rng));
    }
  }

  // --- flop D inputs: capture from deep nets near the flop's position ---
  {
    std::vector<PlacedNet> deep;
    for (int l = std::max(1, static_cast<int>(0.45 * deepest)); l <= depth;
         ++l)
      for (const PlacedNet& pn : nets_by_level[static_cast<std::size_t>(l)])
        deep.push_back(pn);
    DOSEOPT_CHECK(!deep.empty(), "generate_design: no deep nets");
    std::sort(deep.begin(), deep.end(),
              [](const PlacedNet& a, const PlacedNet& b) { return a.u < b.u; });
    for (std::size_t fi = 0; fi < flops.size(); ++fi) {
      const CellId f = flops[fi];
      const auto& m = nl.master_of(f);
      for (int pin = 0; pin < m.num_inputs; ++pin) {
        const NetId src =
            (pin == 0)
                ? pick_near(nl, deep, flop_u[fi], kFaninSigma, rng)
                : pick_near(nl, control_pool, flop_u[fi],
                            10.0 * kFaninSigma, rng);
        nl.connect_input(f, pin, src);
      }
    }
  }

  // --- primary outputs & sink cleanup: every net must have a reader ---
  std::size_t n_pos = 0;
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& n = nl.net(static_cast<NetId>(ni));
    if (n.sinks.empty() && !n.is_primary_output) {
      nl.mark_primary_output(static_cast<NetId>(ni));
      ++n_pos;
    }
  }
  DOSEOPT_CHECK(n_pos > 0, "generate_design: no primary outputs");

  // --- drive-strength refinement: upsize drivers of high-fanout nets ---
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto c = static_cast<CellId>(ci);
    const netlist::Cell& cell = nl.cell(c);
    const std::size_t fanout = nl.net(cell.output_net).sinks.size();
    if (fanout < 4) continue;
    const liberty::CellMaster& m = masters[cell.master_index];
    const int want_drive = fanout >= 12 ? 8 : (fanout >= 8 ? 4 : 2);
    for (int d = want_drive; d > m.drive; d /= 2) {
      const std::string candidate = m.base_name + "X" + std::to_string(d);
      const auto it = std::find_if(
          masters.begin(), masters.end(),
          [&candidate](const liberty::CellMaster& mm) {
            return mm.name == candidate;
          });
      if (it != masters.end()) {
        nl.set_master(c, static_cast<std::size_t>(it - masters.begin()));
        break;
      }
    }
  }

  nl.validate();

  // --- placement from the generator's spatial hints ---
  for (auto& h : hints) {
    h.x_frac = std::clamp(h.x_frac, 0.0, 1.0);
    h.y_frac = std::clamp(h.y_frac, 0.0, 1.0);
  }
  out.die = place::make_die(node, nl, spec.chip_area_mm2 * units::kMm2ToUm2);
  out.placement = std::make_unique<place::Placement>(
      place::placement_from_hints(nl, out.die, hints));
  return out;
}

}  // namespace doseopt::gen
