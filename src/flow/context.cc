#include "flow/context.h"

#include <cstdlib>

#include "common/error.h"

namespace doseopt::flow {

DesignContext::DesignContext(const gen::DesignSpec& spec)
    : spec_(spec), node_(tech::tech_node_by_name(spec.tech)),
      repo_(std::make_unique<liberty::LibraryRepository>(node_)) {
  design_ = gen::generate_design(spec_, repo_->masters(), node_);
  parasitics_ = extract::extract(*design_.placement, node_);
  timer_ = std::make_unique<sta::Timer>(design_.netlist.get(), &parasitics_,
                                        repo_.get());
  refresh_nominal();
}

DesignContext::DesignContext(serde::DesignState state)
    : spec_(std::move(state.spec)), node_(std::move(state.node)),
      repo_(std::move(state.repo)) {
  design_.spec = spec_;
  design_.netlist = std::move(state.netlist);
  design_.die = state.die;
  design_.placement = std::move(state.placement);
  parasitics_ = extract::extract(*design_.placement, node_);
  timer_ = std::make_unique<sta::Timer>(design_.netlist.get(), &parasitics_,
                                        repo_.get());
  refresh_nominal();
}

std::uint64_t DesignContext::save_snapshot(const std::string& path) const {
  return serde::write_design_snapshot(path, spec_, *design_.netlist,
                                      *design_.placement, *repo_);
}

void DesignContext::refresh_nominal() {
  sta::VariantAssignment nominal(design_.netlist->cell_count());
  nominal_timing_ = timer_->analyze(nominal);
  nominal_leakage_uw_ =
      power::total_leakage_uw(*design_.netlist, *repo_, nominal);
}

const liberty::CoefficientSet& DesignContext::coefficients(bool width) {
  // Pre-characterize every variant the fit will touch through the thread
  // pool before the (serial) fitting loops read them: the length fit
  // sweeps the 21 poly variants, the width fit the full 21x21 grid.
  constexpr int kNominal = liberty::kVariantsPerLayer / 2;
  if (width) {
    if (!coeffs_width_.has_value()) {
      std::vector<std::pair<int, int>> keys;
      for (int vl = 0; vl < liberty::kVariantsPerLayer; ++vl)
        for (int vw = 0; vw < liberty::kVariantsPerLayer; ++vw)
          keys.emplace_back(vl, vw);
      repo_->warm(keys);
      coeffs_width_.emplace(*repo_, /*fit_width=*/true);
    }
    return *coeffs_width_;
  }
  if (!coeffs_length_.has_value()) {
    std::vector<std::pair<int, int>> keys;
    for (int vl = 0; vl < liberty::kVariantsPerLayer; ++vl)
      keys.emplace_back(vl, kNominal);
    repo_->warm(keys);
    coeffs_length_.emplace(*repo_, /*fit_width=*/false);
  }
  return *coeffs_length_;
}

bool fast_mode() {
  const char* env = std::getenv("DOSEOPT_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double design_scale() { return fast_mode() ? 0.12 : 1.0; }

gen::DesignSpec scaled_spec(const gen::DesignSpec& spec) {
  return fast_mode() ? spec.scaled(design_scale()) : spec;
}

}  // namespace doseopt::flow
