// End-to-end experiment context (the outer flow of Fig. 7/8).
//
// Bundles everything the optimization steps need for one design: the
// technology node, the characterized library repository, the generated
// netlist with its placement, extracted parasitics, the timer, the nominal
// timing/leakage baseline, and (lazily) the fitted dose-sensitivity
// coefficients.  Benchmarks and examples build one of these per testcase.
#pragma once

#include <memory>
#include <optional>

#include "extract/extract.h"
#include "gen/design_gen.h"
#include "liberty/coeff_fit.h"
#include "liberty/repository.h"
#include "power/leakage.h"
#include "serde/snapshot.h"
#include "sta/timer.h"

namespace doseopt::flow {

/// One fully analyzed design, ready for dose-map / placement optimization.
class DesignContext {
 public:
  /// Generate, place, extract, and time the design described by `spec`.
  explicit DesignContext(const gen::DesignSpec& spec);

  /// Adopt a snapshot-restored design (serde::read_design_state): skips
  /// generation and characterization, re-derives parasitics and the nominal
  /// baseline deterministically.  Bit-identical to the generating
  /// constructor for the same spec.
  explicit DesignContext(serde::DesignState state);

  /// Write this context's durable state (spec, netlist, placement, every
  /// characterized variant) as a crash-safe snapshot.  Returns the payload
  /// checksum (for last-good journaling).
  std::uint64_t save_snapshot(const std::string& path) const;

  const gen::DesignSpec& spec() const { return spec_; }
  const tech::TechNode& node() const { return node_; }
  liberty::LibraryRepository& repo() { return *repo_; }
  netlist::Netlist& netlist() { return *design_.netlist; }
  place::Placement& placement() { return *design_.placement; }
  extract::Parasitics& parasitics() { return parasitics_; }
  const sta::Timer& timer() const { return *timer_; }

  /// Nominal (zero-dose) analysis results.
  const sta::TimingResult& nominal_timing() const { return nominal_timing_; }
  double nominal_mct_ns() const { return nominal_timing_.mct_ns; }
  double nominal_leakage_uw() const { return nominal_leakage_uw_; }

  /// Fitted coefficients; characterizes the 21 (or 21x21) variant libraries
  /// on first use.  `width` selects whether B/gamma are fitted too.
  const liberty::CoefficientSet& coefficients(bool width);

  /// True when coefficients(width) has already been fitted (cache-hit
  /// telemetry for the job server).
  bool has_coefficients(bool width) const {
    return width ? coeffs_width_.has_value() : coeffs_length_.has_value();
  }

  /// Re-run nominal timing (after the placement was perturbed).
  void refresh_nominal();

 private:
  gen::DesignSpec spec_;
  tech::TechNode node_;
  std::unique_ptr<liberty::LibraryRepository> repo_;
  gen::GeneratedDesign design_;
  extract::Parasitics parasitics_;
  std::unique_ptr<sta::Timer> timer_;
  sta::TimingResult nominal_timing_;
  double nominal_leakage_uw_ = 0.0;
  std::optional<liberty::CoefficientSet> coeffs_length_;
  std::optional<liberty::CoefficientSet> coeffs_width_;
};

/// True when the environment requests reduced-size runs (DOSEOPT_FAST=1);
/// benches use this to scale the Table I designs down for smoke testing.
bool fast_mode();

/// Scale factor implied by fast mode (1.0 full size, 0.12 in fast mode).
double design_scale();

/// Table I spec, scaled for the current mode.
gen::DesignSpec scaled_spec(const gen::DesignSpec& spec);

}  // namespace doseopt::flow
