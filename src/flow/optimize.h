// One-call timing & leakage optimization flow (Fig. 7 of the paper):
// dose-map optimization (DMopt) followed by dose map-aware cell swapping
// (dosePl), with golden signoff at each stage.
#pragma once

#include "dmopt/dmopt.h"
#include "doseplace/doseplace.h"
#include "flow/context.h"

namespace doseopt::flow {

/// Which DMopt formulation to run.
enum class DmoptMode {
  kMinimizeLeakage,    ///< QP: min leakage s.t. timing
  kMinimizeCycleTime,  ///< QCP: min cycle time s.t. leakage
};

/// Flow controls.
struct FlowOptions {
  DmoptMode mode = DmoptMode::kMinimizeCycleTime;
  dmopt::DmoptOptions dmopt;
  bool run_dose_placement = false;  ///< run the dosePl cell-swapping stage
  doseplace::DosePlOptions dosepl;
};

/// Flow outcome: per-stage golden metrics.
struct FlowResult {
  double nominal_mct_ns = 0.0;
  double nominal_leakage_uw = 0.0;
  dmopt::DmoptResult dmopt;
  bool dosepl_run = false;
  doseplace::DosePlResult dosepl;

  /// Final golden MCT/leakage after every enabled stage.
  double final_mct_ns = 0.0;
  double final_leakage_uw = 0.0;

  // Stage wall times (nondeterministic -- excluded from bit-exact result
  // comparisons, like the per-stage runtime_s fields).
  double dmopt_s = 0.0;   ///< DMopt stage, including golden signoff
  double dosepl_s = 0.0;  ///< dosePl stage; 0 when not run
  double total_s = 0.0;   ///< whole flow
};

/// Run the flow on `ctx`.  When dosePl is enabled the context's placement
/// and parasitics are modified in place (call ctx.refresh_nominal() to
/// re-baseline afterwards if needed).
FlowResult run_flow(DesignContext& ctx, const FlowOptions& options);

}  // namespace doseopt::flow
