// The `ssta_yield` job: analytic timing-yield analysis of a design's
// nominal recipe, with an optional golden Monte-Carlo cross-check.
//
// Two graph traversals (one scalar base pass + one canonical-form pass)
// replace the thousands of Monte-Carlo re-timings a sampled yield estimate
// costs; the MC leg is retained as the accuracy oracle (bench_ssta charts
// the frontier) and as the degradation target when the SSTA forms are
// poisoned (ssta.nan fault injection), mirroring the serve stack's other
// self-healing ladders.
#pragma once

#include <cstddef>
#include <string>

#include "flow/context.h"
#include "ssta/ssta.h"
#include "variation/yield.h"

namespace doseopt::flow {

/// Controls for one ssta_yield run.
struct SstaYieldOptions {
  variation::VariationModel model;  ///< shared SSTA/MC parameterization
  ssta::SstaOptions ssta;
  double tau_ns = 0.0;  ///< clock to evaluate yield at; 0 = nominal MCT
  /// Golden MC cross-check sample count; 0 skips the MC leg entirely
  /// (unless SSTA degrades, which always falls back to MC).
  int mc_samples = 0;
};

/// Deterministic result (no wall times: served replies are bit-compared
/// against direct calls).
struct SstaYieldResult {
  double tau_ns = 0.0;        ///< clock the yields are evaluated at
  std::size_t endpoints = 0;  ///< capture endpoints in the analytic scan

  // Analytic view.
  double ssta_mean_mct_ns = 0.0;
  double ssta_sigma_mct_ns = 0.0;
  double ssta_yield = 0.0;  ///< P(MCT <= tau); MC value when degraded
  double tau_p50_ns = 0.0;  ///< tau_at_yield(0.50)
  double tau_p95_ns = 0.0;  ///< tau_at_yield(0.95)
  double tau_p99_ns = 0.0;  ///< tau_at_yield(0.99)

  // Monte-Carlo view (zeroed when the MC leg did not run).
  int mc_samples = 0;
  double mc_yield = 0.0;
  double mc_mean_mct_ns = 0.0;
  double mc_std_mct_ns = 0.0;
  double yield_abs_error = 0.0;  ///< |ssta_yield - mc_yield|; 0 without MC

  // Traversal accounting (the speedup numerator/denominator).
  int ssta_traversals = 0;  ///< 2 when healthy (base pass + form pass)
  int mc_traversals = 0;    ///< batched passes the MC leg consumed

  /// Self-healing bookkeeping: degraded = SSTA forms were non-finite and
  /// the yield came from golden MC instead (fallback = "ssta_to_mc").
  bool degraded = false;
  std::string fallback;
};

/// Run the analysis on `ctx`'s nominal variant assignment.
SstaYieldResult run_ssta_yield(DesignContext& ctx,
                               const SstaYieldOptions& options);

}  // namespace doseopt::flow
