#include "flow/optimize.h"

namespace doseopt::flow {

FlowResult run_flow(DesignContext& ctx, const FlowOptions& options) {
  FlowResult result;
  result.nominal_mct_ns = ctx.nominal_mct_ns();
  result.nominal_leakage_uw = ctx.nominal_leakage_uw();

  const liberty::CoefficientSet& coeffs =
      ctx.coefficients(options.dmopt.modulate_width);

  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &coeffs, &ctx.timer(), &ctx.nominal_timing(), options.dmopt);

  result.dmopt = options.mode == DmoptMode::kMinimizeLeakage
                     ? optimizer.minimize_leakage()
                     : optimizer.minimize_cycle_time();
  result.final_mct_ns = result.dmopt.golden_mct_ns;
  result.final_leakage_uw = result.dmopt.golden_leakage_uw;

  if (options.run_dose_placement) {
    doseplace::DosePlacer placer(&ctx.netlist(), &ctx.placement(),
                                 &ctx.parasitics(), &ctx.repo(), &ctx.timer(),
                                 options.dosepl);
    const dose::DoseMap* active = result.dmopt.active_map.has_value()
                                      ? &*result.dmopt.active_map
                                      : nullptr;
    result.dosepl =
        placer.run(result.dmopt.poly_map, active, result.dmopt.variants);
    result.dosepl_run = true;
    result.final_mct_ns = result.dosepl.final_mct_ns;
    result.final_leakage_uw = result.dosepl.final_leakage_uw;
  }
  return result;
}

}  // namespace doseopt::flow
