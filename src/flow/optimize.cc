#include "flow/optimize.h"

#include <chrono>

namespace doseopt::flow {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

FlowResult run_flow(DesignContext& ctx, const FlowOptions& options) {
  const auto t_start = std::chrono::steady_clock::now();
  FlowResult result;
  result.nominal_mct_ns = ctx.nominal_mct_ns();
  result.nominal_leakage_uw = ctx.nominal_leakage_uw();

  const liberty::CoefficientSet& coeffs =
      ctx.coefficients(options.dmopt.modulate_width);

  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &coeffs, &ctx.timer(), &ctx.nominal_timing(), options.dmopt);

  const auto t_dmopt = std::chrono::steady_clock::now();
  result.dmopt = options.mode == DmoptMode::kMinimizeLeakage
                     ? optimizer.minimize_leakage()
                     : optimizer.minimize_cycle_time();
  result.dmopt_s = seconds_since(t_dmopt);
  result.final_mct_ns = result.dmopt.golden_mct_ns;
  result.final_leakage_uw = result.dmopt.golden_leakage_uw;

  if (options.run_dose_placement) {
    doseplace::DosePlacer placer(&ctx.netlist(), &ctx.placement(),
                                 &ctx.parasitics(), &ctx.repo(), &ctx.timer(),
                                 options.dosepl);
    const dose::DoseMap* active = result.dmopt.active_map.has_value()
                                      ? &*result.dmopt.active_map
                                      : nullptr;
    const auto t_dosepl = std::chrono::steady_clock::now();
    result.dosepl =
        placer.run(result.dmopt.poly_map, active, result.dmopt.variants);
    result.dosepl_s = seconds_since(t_dosepl);
    result.dosepl_run = true;
    result.final_mct_ns = result.dosepl.final_mct_ns;
    result.final_leakage_uw = result.dosepl.final_leakage_uw;
  }
  result.total_s = seconds_since(t_start);
  return result;
}

}  // namespace doseopt::flow
