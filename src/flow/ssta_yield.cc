#include "flow/ssta_yield.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace doseopt::flow {

namespace {

/// Smallest tau such that at least ceil(p * n) dies meet it (the empirical
/// p-quantile used when the analytic quantiles are unavailable).
double empirical_quantile(std::vector<double>& sorted_mcts, double p) {
  if (sorted_mcts.empty()) return 0.0;
  const std::size_t n = sorted_mcts.size();
  const std::size_t k = std::min(
      n, std::max<std::size_t>(
             1, static_cast<std::size_t>(
                    std::ceil(p * static_cast<double>(n)))));
  return sorted_mcts[k - 1];
}

}  // namespace

SstaYieldResult run_ssta_yield(DesignContext& ctx,
                               const SstaYieldOptions& options) {
  SstaYieldResult res;
  const liberty::CoefficientSet& coeffs = ctx.coefficients(false);
  const sta::VariantAssignment base(ctx.netlist().cell_count());
  res.tau_ns = options.tau_ns > 0.0 ? options.tau_ns : ctx.nominal_mct_ns();

  const ssta::SstaTimer engine(&ctx.timer(), &ctx.placement(), &coeffs,
                               options.model, options.ssta);
  const ssta::SstaResult sr = engine.analyze(base);
  res.endpoints = engine.endpoint_count();

  const int width =
      std::clamp(options.model.sta_batch_width, 1, sta::kBatchLanes);
  const auto run_mc = [&](int samples) {
    variation::VariationModel m = options.model;
    m.monte_carlo_samples = samples;
    const variation::YieldAnalyzer analyzer(&ctx.netlist(), &ctx.placement(),
                                            &ctx.repo(), &ctx.timer(), m);
    res.mc_samples = samples;
    res.mc_traversals += (samples + width - 1) / width;
    return analyzer.analyze(base);
  };

  if (!sr.healthy) {
    // Poisoned forms: the golden Monte-Carlo is the answer of record.
    res.degraded = true;
    res.fallback = "ssta_to_mc";
    const int samples = options.mc_samples > 0
                            ? options.mc_samples
                            : options.model.monte_carlo_samples;
    const variation::YieldResult mc = run_mc(samples);
    res.mc_yield = mc.yield_at(res.tau_ns);
    res.mc_mean_mct_ns = mc.mean_mct_ns;
    res.mc_std_mct_ns = mc.std_mct_ns;
    res.ssta_yield = res.mc_yield;
    res.ssta_mean_mct_ns = mc.mean_mct_ns;
    res.ssta_sigma_mct_ns = mc.std_mct_ns;
    std::vector<double> mcts;
    mcts.reserve(mc.dies.size());
    for (const variation::DieSample& d : mc.dies) mcts.push_back(d.mct_ns);
    std::sort(mcts.begin(), mcts.end());
    res.tau_p50_ns = empirical_quantile(mcts, 0.50);
    res.tau_p95_ns = empirical_quantile(mcts, 0.95);
    res.tau_p99_ns = empirical_quantile(mcts, 0.99);
    return res;
  }

  res.ssta_traversals = 2;  // scalar base pass + canonical-form pass
  res.ssta_mean_mct_ns = sr.mean_mct_ns;
  res.ssta_sigma_mct_ns = sr.sigma_mct_ns;
  res.ssta_yield = sr.yield_at(res.tau_ns);
  res.tau_p50_ns = sr.tau_at_yield(0.50);
  res.tau_p95_ns = sr.tau_at_yield(0.95);
  res.tau_p99_ns = sr.tau_at_yield(0.99);

  if (options.mc_samples > 0) {
    const variation::YieldResult mc = run_mc(options.mc_samples);
    res.mc_yield = mc.yield_at(res.tau_ns);
    res.mc_mean_mct_ns = mc.mean_mct_ns;
    res.mc_std_mct_ns = mc.std_mct_ns;
    res.yield_abs_error = std::fabs(res.ssta_yield - res.mc_yield);
  }
  return res;
}

}  // namespace doseopt::flow
