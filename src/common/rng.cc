#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace doseopt {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DOSEOPT_CHECK(lo <= hi, "uniform: empty range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DOSEOPT_CHECK(n > 0, "uniform_index: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

int Rng::uniform_int(int lo, int hi) {
  DOSEOPT_CHECK(lo <= hi, "uniform_int: empty range");
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
#if defined(__GLIBC__)
  // glibc's sincos shares the sin/cos kernels and returns bit-identical
  // values in one argument reduction; the Monte-Carlo sampler draws enough
  // normals per die that the second libm call is measurable.
  double sin_theta, cos_theta;
  ::sincos(theta, &sin_theta, &cos_theta);
#else
  const double sin_theta = std::sin(theta);
  const double cos_theta = std::cos(theta);
#endif
  cached_normal_ = r * sin_theta;
  has_cached_normal_ = true;
  return r * cos_theta;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DOSEOPT_CHECK(!weights.empty(), "weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    DOSEOPT_CHECK(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  DOSEOPT_CHECK(total > 0.0, "weighted_index: all-zero weights");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace doseopt
