// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (circuit generators, placement
// perturbation) draw from Rng so that every experiment is exactly
// reproducible from a seed.  The engine is xoshiro256** seeded through
// SplitMix64, which has no pathological low-seed behavior.
#pragma once

#include <cstdint>
#include <vector>

namespace doseopt {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Sample an index according to non-negative weights (need not sum to 1).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child generator (for parallel/substream use).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace doseopt
