#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace doseopt {

namespace {
thread_local bool tl_in_parallel = false;

/// Scoped flag so nested parallel_for calls run inline.
struct ParallelRegionGuard {
  bool prev;
  ParallelRegionGuard() : prev(tl_in_parallel) { tl_in_parallel = true; }
  ~ParallelRegionGuard() { tl_in_parallel = prev; }
};
}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  bool stop = false;
  std::uint64_t job_id = 0;
  int working = 0;  ///< workers still draining the current job

  // Current job (valid while working > 0 or the caller is in the loop).
  const std::function<void(int, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  std::exception_ptr error;

  void run_chunks(int lane) {
    ParallelRegionGuard guard;
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          if (abort.load(std::memory_order_relaxed)) return;
          (*fn)(lane, i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  void worker_loop(int lane) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_start.wait(lock, [&] { return stop || job_id != seen; });
        if (stop) return;
        seen = job_id;
      }
      run_chunks(lane);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--working == 0) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int lanes) {
  if (lanes <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    lanes = hw > 0 ? static_cast<int>(hw) : 1;
  }
  lane_count_ = lanes;
  if (lanes <= 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int lane = 1; lane < lanes; ++lane)
    impl_->workers.emplace_back([this, lane] { impl_->worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_start.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::parallel_for_lane(
    std::size_t n, const std::function<void(int, std::size_t)>& fn) {
  if (n == 0) return;
  // Serial paths: no workers, a tiny loop, or a nested call from inside a
  // pool task (fanning out again could deadlock on this very pool).
  if (impl_ == nullptr || n == 1 || in_parallel_region()) {
    ParallelRegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.fn = &fn;
    im.n = n;
    im.chunk =
        std::max<std::size_t>(1, n / (static_cast<std::size_t>(lane_count_) * 8));
    im.cursor.store(0);
    im.abort.store(false);
    im.error = nullptr;
    im.working = lane_count_ - 1;
    ++im.job_id;
  }
  im.cv_start.notify_all();
  im.run_chunks(/*lane=*/0);
  std::unique_lock<std::mutex> lock(im.mu);
  im.cv_done.wait(lock, [&] { return im.working == 0; });
  im.fn = nullptr;
  if (im.error) {
    std::exception_ptr e = im.error;
    im.error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_lane(n, [&fn](int, std::size_t i) { fn(i); });
}

bool ThreadPool::in_parallel_region() { return tl_in_parallel; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("DOSEOPT_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    return 0;  // hardware concurrency
  }());
  return pool;
}

}  // namespace doseopt
