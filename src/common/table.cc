#include "common/table.h"

#include <algorithm>
#include <ostream>

#include "common/strings.h"

namespace doseopt {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const Row& r : rows_)
    if (!r.separator) grow(r.cells);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  if (total >= 2) total -= 2;

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size())
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const Row& r : rows_) {
    if (r.separator) {
      os << std::string(total, '-') << '\n';
    } else {
      emit(r.cells);
    }
  }
}

std::string fmt_f(double v, int prec) { return str_format("%.*f", prec, v); }

std::string fmt_pct(double v, int prec) {
  return str_format("%.*f", prec, v);
}

}  // namespace doseopt
