// Error handling for the doseopt library.
//
// Library code throws doseopt::Error for violated preconditions and
// unrecoverable runtime failures.  The DOSEOPT_CHECK family gives
// assert-with-message semantics that stay enabled in release builds; the
// invariants they guard (graph well-formedness, index bounds, solver
// preconditions) are cheap relative to the work they protect.
#pragma once

#include <stdexcept>
#include <string>

namespace doseopt {

/// Exception type thrown by all doseopt subsystems.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);
}  // namespace detail

}  // namespace doseopt

/// Verify `cond`; on failure throw doseopt::Error with location and message.
#define DOSEOPT_CHECK(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::doseopt::detail::check_failed(__FILE__, __LINE__, #cond, msg); \
    }                                                                  \
  } while (0)

/// Unconditional failure (unreachable code paths, exhausted switches).
#define DOSEOPT_FAIL(msg) \
  ::doseopt::detail::check_failed(__FILE__, __LINE__, "fail", msg)
