// Aligned plain-text table printer used by the benchmark harnesses to emit
// rows in the same layout as the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace doseopt {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Set the header row.
  void set_header(std::vector<std::string> header);

  /// Append a data row. Rows may have differing cell counts.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line.
  void add_separator();

  /// Render to a stream with two-space column gaps.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt_f(double v, int prec);

/// Format a percentage improvement the way the paper does ("-" for baseline).
std::string fmt_pct(double v, int prec = 2);

}  // namespace doseopt
