#include "common/strings.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace doseopt {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t len =
        (end == std::string_view::npos ? s.size() : end) - start;
    if (len > 0) out.emplace_back(s.substr(start, len));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const std::size_t last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  DOSEOPT_CHECK(n >= 0, "str_format: encoding error");
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool try_parse_double(std::string_view s, double* out) {
  const std::string buf(trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;  // trailing garbage
  if (errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool try_parse_int(std::string_view s, long* out) {
  const std::string buf(trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  if (errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace doseopt
