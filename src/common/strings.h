// Small string utilities shared by the Liberty writer/parser and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace doseopt {

/// Split `s` on any character in `delims`, dropping empty tokens.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict numeric parsing for user input (CLI flags, config fields): the
/// whole string must be a single finite number -- trailing garbage, empty
/// input, and out-of-range values all return false (unlike std::atof,
/// which silently yields 0).
bool try_parse_double(std::string_view s, double* out);
bool try_parse_int(std::string_view s, long* out);

}  // namespace doseopt
