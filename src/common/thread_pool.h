// Fixed-size thread pool with a deterministic result contract.
//
// The pool runs index-addressed loops (`parallel_for`) over persistent
// worker threads.  Work distribution is dynamic (an atomic cursor hands out
// chunks), so *which* thread runs an index is non-deterministic -- callers
// must keep tasks slot-isolated: iteration i may read shared immutable
// state and write only result slot i, with the value depending only on i.
// Under that contract the output is bit-identical for any thread count,
// which is what keeps seeded Monte-Carlo sweeps and library
// characterization reproducible (a hard requirement of the experiment
// flow).
//
// The calling thread participates as lane 0; workers are lanes 1..N-1.  A
// `parallel_for` issued from inside a pool task runs inline on the calling
// lane (no nested fan-out), so composed parallel code cannot deadlock the
// pool.  `ThreadPool(1)` has no workers at all and degenerates to a plain
// serial loop, useful as the reference in determinism tests.
#pragma once

#include <cstddef>
#include <functional>

namespace doseopt {

class ThreadPool {
 public:
  /// `lanes` is the total worker count including the calling thread;
  /// `lanes <= 1` means no extra threads (serial execution).  0 selects
  /// the hardware concurrency.
  explicit ThreadPool(int lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (calling thread + workers).
  int lane_count() const { return lane_count_; }

  /// Run fn(i) for i in [0, n).  Blocks until all iterations finish; the
  /// first exception thrown by any iteration is rethrown here (remaining
  /// chunks are abandoned).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(lane, i) for i in [0, n), where `lane` in [0, lane_count()) is
  /// stable for the duration of the call -- use it to index per-lane
  /// scratch state (e.g. one TimingState per lane).  Iterations issued
  /// inline from a nested call all report the caller's chunk as lane 0 of
  /// the *inner* loop, which is safe because nested loops own their own
  /// per-lane state.
  void parallel_for_lane(std::size_t n,
                         const std::function<void(int, std::size_t)>& fn);

  /// True when the current thread is already executing a pool task (from
  /// any pool); nested parallel loops detect this and run inline.
  static bool in_parallel_region();

  /// Process-wide shared pool.  Lane count comes from DOSEOPT_THREADS when
  /// set (>= 1), otherwise the hardware concurrency.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null when lane_count_ == 1
  int lane_count_ = 1;
};

}  // namespace doseopt
