// Unit conventions used throughout doseopt.
//
// All quantities are plain doubles in the following canonical units:
//
//   time         ns        (gate delays, arrival times, cycle time)
//   power        uW        (leakage)
//   CD / length  nm        (gate length L, gate width W, delta-CD)
//   placement    um        (cell coordinates, die size, grid pitch)
//   capacitance  fF        (pin caps, wire caps)
//   resistance   kOhm      (drive resistance, wire resistance;
//                           kOhm * fF = ps = 1e-3 ns)
//   voltage      V
//   dose         percent   (delta from nominal exposure energy)
//
// The constants below make unit conversions explicit at use sites.
#pragma once

namespace doseopt::units {

/// ps expressed in ns (kOhm * fF products are in ps).
inline constexpr double kPsToNs = 1e-3;

/// um expressed in nm.
inline constexpr double kUmToNm = 1e3;

/// nm expressed in um.
inline constexpr double kNmToUm = 1e-3;

/// mm^2 expressed in um^2 (chip areas in Table I are quoted in mm^2).
inline constexpr double kMm2ToUm2 = 1e6;

}  // namespace doseopt::units
