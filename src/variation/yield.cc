#include "variation/yield.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "power/leakage.h"

namespace doseopt::variation {

using netlist::CellId;

YieldAnalyzer::YieldAnalyzer(const netlist::Netlist* nl,
                             const place::Placement* placement,
                             liberty::LibraryRepository* repo,
                             const sta::Timer* timer, VariationModel model)
    : nl_(nl), placement_(placement), repo_(repo), timer_(timer),
      model_(model) {
  DOSEOPT_CHECK(nl_ && placement_ && repo_ && timer_,
                "YieldAnalyzer: null dependency");
  DOSEOPT_CHECK(model_.monte_carlo_samples > 0,
                "YieldAnalyzer: need at least one sample");
  DOSEOPT_CHECK(model_.systematic_sigma_nm >= 0.0 &&
                    model_.random_sigma_nm >= 0.0,
                "YieldAnalyzer: negative sigma");
}

std::vector<double> YieldAnalyzer::sample_delta_l_nm(
    std::uint64_t sample_seed) const {
  Rng rng(sample_seed);
  const place::Die& die = placement_->die();

  // Spatially correlated ACLV residual: a random low-order polynomial field
  // over normalized die coordinates u, v in [-1, 1]:
  //   f(u, v) = a u + b v + c u^2 + d v^2 + e u v, normalized so that the
  // field's RMS over the die is systematic_sigma_nm.
  const double a = rng.normal(), b = rng.normal(), c = rng.normal(),
               d = rng.normal(), e = rng.normal();
  // RMS of the basis over the unit square with N(0,1) coefficients:
  // E[f^2] = Var(a u) + ... = 1/3 + 1/3 + Var(u^2)... use the numeric value
  // sqrt(1/3 + 1/3 + 4/45 + 4/45 + 1/9) ~ 0.977 for independent coeffs.
  const double basis_rms = 0.977;
  const double scale = model_.systematic_sigma_nm / basis_rms;

  std::vector<double> dl(nl_->cell_count());
  for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    const double u = 2.0 * placement_->x_um(id) / die.width_um - 1.0;
    const double v = 2.0 * placement_->y_um(id) / die.height_um - 1.0;
    const double systematic =
        scale * (a * u + b * v + c * (u * u - 1.0 / 3.0) +
                 d * (v * v - 1.0 / 3.0) + e * u * v);
    dl[ci] = systematic + rng.normal(0.0, model_.random_sigma_nm);
  }
  return dl;
}

YieldResult YieldAnalyzer::analyze(const sta::VariantAssignment& base,
                                   ThreadPool* pool) const {
  DOSEOPT_CHECK(base.size() == nl_->cell_count(),
                "YieldAnalyzer: assignment size mismatch");
  YieldResult result;
  const auto samples = static_cast<std::size_t>(model_.monte_carlo_samples);

  // Per-die seeds drawn serially so the sample set is independent of the
  // worker count; each die is then a pure function of its seed.
  std::vector<std::uint64_t> die_seed(samples);
  Rng seeder(model_.seed);
  for (std::uint64_t& s : die_seed) s = seeder.next_u64();

  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();

  // Variation only shifts the poly index, so every variant a die can touch
  // lives on {all poly indices} x {active indices present in the base
  // assignment}.  Warm them up front: afterwards the workers' repository
  // accesses (STA cell resolution and leakage sums) are read-only.
  {
    std::vector<bool> active_used(liberty::kVariantsPerLayer, false);
    for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci)
      active_used[static_cast<std::size_t>(
          base.get(static_cast<CellId>(ci)).second)] = true;
    std::vector<std::pair<int, int>> keys;
    for (int iw = 0; iw < liberty::kVariantsPerLayer; ++iw) {
      if (!active_used[iw]) continue;
      for (int il = 0; il < liberty::kVariantsPerLayer; ++il)
        keys.emplace_back(il, iw);
    }
    repo_->warm(keys, &p);
  }

  result.dies.assign(samples, DieSample{});
  std::vector<sta::TimingState> lane_state(
      static_cast<std::size_t>(p.lane_count()));
  p.parallel_for_lane(samples, [&](int lane, std::size_t s) {
    const std::vector<double> dl = sample_delta_l_nm(die_seed[s]);
    sta::VariantAssignment va = base;
    for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      const auto [ip, iw] = base.get(id);
      // The assigned variant already encodes the dose-driven delta-L; the
      // variation adds to it.  Variant index steps are 1 nm of delta-L
      // (0.5% dose at Ds = -2 nm/%); positive delta-L = lower index.
      const int shifted = std::clamp(
          ip - static_cast<int>(std::lround(dl[ci] / 1.0)), 0,
          liberty::kVariantsPerLayer - 1);
      va.set(id, shifted, iw);
    }
    DieSample& die = result.dies[s];
    die.mct_ns = timer_->update(lane_state[static_cast<std::size_t>(lane)], va)
                     .mct_ns;
    die.leakage_uw = power::total_leakage_uw(*nl_, *repo_, va);
  });

  double sum = 0.0, sum_sq = 0.0, leak_sum = 0.0;
  std::vector<double> mcts;
  mcts.reserve(result.dies.size());
  for (const DieSample& die : result.dies) {
    sum += die.mct_ns;
    sum_sq += die.mct_ns * die.mct_ns;
    leak_sum += die.leakage_uw;
    mcts.push_back(die.mct_ns);
  }
  const double n = static_cast<double>(result.dies.size());
  result.mean_mct_ns = sum / n;
  result.std_mct_ns =
      std::sqrt(std::max(0.0, sum_sq / n - result.mean_mct_ns *
                                               result.mean_mct_ns));
  result.mean_leakage_uw = leak_sum / n;
  std::sort(mcts.begin(), mcts.end());
  result.p95_mct_ns =
      mcts[static_cast<std::size_t>(0.95 * (mcts.size() - 1))];
  return result;
}

double YieldResult::yield_at(double clock_ns) const {
  if (dies.empty()) return 0.0;
  std::size_t pass = 0;
  for (const DieSample& die : dies)
    if (die.mct_ns <= clock_ns) ++pass;
  return static_cast<double>(pass) / static_cast<double>(dies.size());
}

}  // namespace doseopt::variation
