#include "variation/yield.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "power/leakage.h"

namespace doseopt::variation {

using netlist::CellId;

namespace {

/// MCT distribution statistics over the sampled dies (shared by the batched
/// and scalar paths; identical inputs give identical outputs).
void finalize_stats(YieldResult& result) {
  double sum = 0.0, sum_sq = 0.0, leak_sum = 0.0;
  std::vector<double> mcts;
  mcts.reserve(result.dies.size());
  for (const DieSample& die : result.dies) {
    sum += die.mct_ns;
    sum_sq += die.mct_ns * die.mct_ns;
    leak_sum += die.leakage_uw;
    mcts.push_back(die.mct_ns);
  }
  const double n = static_cast<double>(result.dies.size());
  result.mean_mct_ns = sum / n;
  result.std_mct_ns =
      std::sqrt(std::max(0.0, sum_sq / n - result.mean_mct_ns *
                                               result.mean_mct_ns));
  result.mean_leakage_uw = leak_sum / n;
  std::sort(mcts.begin(), mcts.end());
  result.p95_mct_ns =
      mcts[static_cast<std::size_t>(0.95 * (mcts.size() - 1))];
}

}  // namespace

YieldAnalyzer::YieldAnalyzer(const netlist::Netlist* nl,
                             const place::Placement* placement,
                             liberty::LibraryRepository* repo,
                             const sta::Timer* timer, VariationModel model)
    : nl_(nl), placement_(placement), repo_(repo), timer_(timer),
      model_(model) {
  DOSEOPT_CHECK(nl_ && placement_ && repo_ && timer_,
                "YieldAnalyzer: null dependency");
  DOSEOPT_CHECK(model_.monte_carlo_samples > 0,
                "YieldAnalyzer: need at least one sample");
  DOSEOPT_CHECK(model_.systematic_sigma_nm >= 0.0 &&
                    model_.random_sigma_nm >= 0.0,
                "YieldAnalyzer: negative sigma");
  DOSEOPT_CHECK(model_.sta_batch_width >= 1 &&
                    model_.sta_batch_width <= sta::kBatchLanes,
                "YieldAnalyzer: sta_batch_width out of range");
}

std::vector<std::pair<double, double>> normalized_die_uv(
    const netlist::Netlist& nl, const place::Placement& placement) {
  const place::Die& die = placement.die();
  std::vector<std::pair<double, double>> uv(nl.cell_count());
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    uv[ci] = {2.0 * placement.x_um(id) / die.width_um - 1.0,
              2.0 * placement.y_um(id) / die.height_um - 1.0};
  }
  return uv;
}

std::vector<std::pair<double, double>> YieldAnalyzer::die_uv() const {
  return normalized_die_uv(*nl_, *placement_);
}

void YieldAnalyzer::sample_delta_l_into(
    std::uint64_t sample_seed,
    const std::vector<std::pair<double, double>>& uv,
    std::vector<double>& out) const {
  Rng rng(sample_seed);

  // Spatially correlated ACLV residual: a random low-order polynomial field
  // over normalized die coordinates u, v in [-1, 1] (see systematic_basis;
  // the field's RMS over the die is systematic_sigma_nm).  One N(0,1) draw
  // per source, in basis order -- the same kSystematicSources the SSTA
  // engine carries sensitivities for.
  std::array<double, kSystematicSources> coef;
  for (double& c : coef) c = rng.normal();
  const double scale = systematic_scale(model_);

  // The per-cell random component draws one standard normal per cell, which
  // makes the draw the hot path of the whole Monte-Carlo loop (cell_count
  // draws per die, both engines).  Marsaglia's polar method generates the
  // same distribution from a log and a sqrt alone -- no trig -- and caches
  // the pair like Rng::normal() does.
  const double sigma = model_.random_sigma_nm;
  double cached = 0.0;
  bool has_cached = false;
  auto polar_normal = [&rng, &cached, &has_cached]() {
    if (has_cached) {
      has_cached = false;
      return cached;
    }
    double x, y, q;
    do {
      x = 2.0 * rng.uniform() - 1.0;
      y = 2.0 * rng.uniform() - 1.0;
      q = x * x + y * y;
    } while (q >= 1.0 || q == 0.0);
    const double f = std::sqrt(-2.0 * std::log(q) / q);
    cached = y * f;
    has_cached = true;
    return x * f;
  };

  out.resize(nl_->cell_count());
  for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci) {
    const auto [u, v] = uv[ci];
    // Left-associated accumulation in source order -- bitwise-identical to
    // the historical single-expression sum.
    const std::array<double, kSystematicSources> basis =
        systematic_basis(u, v);
    double field = coef[0] * basis[0];
    for (int k = 1; k < kSystematicSources; ++k) field += coef[k] * basis[k];
    out[ci] = scale * field + sigma * polar_normal();
  }
}

std::vector<double> YieldAnalyzer::sample_delta_l_nm(
    std::uint64_t sample_seed) const {
  std::vector<double> dl;
  sample_delta_l_into(sample_seed, die_uv(), dl);
  return dl;
}

std::vector<std::uint64_t> YieldAnalyzer::die_seeds(
    std::size_t samples) const {
  // Per-die seeds drawn serially so the sample set is independent of the
  // worker count; each die is then a pure function of its seed.
  std::vector<std::uint64_t> die_seed(samples);
  Rng seeder(model_.seed);
  for (std::uint64_t& s : die_seed) s = seeder.next_u64();
  return die_seed;
}

void YieldAnalyzer::warm_repo(const sta::VariantAssignment& base,
                              ThreadPool& p) const {
  // Variation only shifts the poly index, so every variant a die can touch
  // lives on {all poly indices} x {active indices present in the base
  // assignment}.  Warm them up front: afterwards the workers' repository
  // accesses (STA cell resolution and leakage sums) are read-only.
  std::vector<bool> active_used(liberty::kVariantsPerLayer, false);
  for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci)
    active_used[static_cast<std::size_t>(
        base.get(static_cast<CellId>(ci)).second)] = true;
  std::vector<std::pair<int, int>> keys;
  for (int iw = 0; iw < liberty::kVariantsPerLayer; ++iw) {
    if (!active_used[iw]) continue;
    for (int il = 0; il < liberty::kVariantsPerLayer; ++il)
      keys.emplace_back(il, iw);
  }
  repo_->warm(keys, &p);
}

YieldResult YieldAnalyzer::analyze(const sta::VariantAssignment& base,
                                   ThreadPool* pool) const {
  DOSEOPT_CHECK(base.size() == nl_->cell_count(),
                "YieldAnalyzer: assignment size mismatch");
  YieldResult result;
  const auto samples = static_cast<std::size_t>(model_.monte_carlo_samples);
  const std::size_t cell_count = nl_->cell_count();
  const std::vector<std::uint64_t> die_seed = die_seeds(samples);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  warm_repo(base, p);

  const std::vector<std::pair<double, double>> uv = die_uv();
  std::vector<int> base_il(cell_count), base_iw(cell_count);
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const auto [il, iw] = base.get(static_cast<CellId>(ci));
    base_il[ci] = il;
    base_iw[ci] = iw;
  }

  // Leakage lookup table keyed (master, active, poly): exactly the values
  // power::total_leakage_uw reads, gathered once here so the per-die sum is
  // a plain array walk instead of cell_count mutexed repository lookups.
  // Each cell gets a row pointer into its (master, active) slice, indexed by
  // the sampled poly index.
  constexpr int V = liberty::kVariantsPerLayer;
  std::vector<bool> iw_used(V, false);
  for (std::size_t ci = 0; ci < cell_count; ++ci) iw_used[base_iw[ci]] = true;
  const std::size_t masters = repo_->variant(V / 2, V / 2).cell_count();
  std::vector<double> leak_lut(masters * V * V, 0.0);
  for (int iw = 0; iw < V; ++iw) {
    if (!iw_used[iw]) continue;
    for (int il = 0; il < V; ++il) {
      const liberty::Library& L = repo_->variant(il, iw);
      for (std::size_t m = 0; m < masters; ++m)
        leak_lut[(m * V + static_cast<std::size_t>(iw)) * V +
                 static_cast<std::size_t>(il)] = L.cell(m).leakage_nw;
    }
  }
  std::vector<const double*> leak_row(cell_count);
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const std::size_t master =
        nl_->cell(static_cast<CellId>(ci)).master_index;
    leak_row[ci] =
        &leak_lut[(master * V + static_cast<std::size_t>(base_iw[ci])) * V];
  }

  const int width =
      std::clamp(model_.sta_batch_width, 1, sta::kBatchLanes);
  const std::size_t batches = (samples + width - 1) / width;
  const sta::BatchedTimer batched(timer_);
  constexpr int K = sta::kBatchLanes;

  // Per-worker scratch: the batched workspace, one delta-L buffer per lane,
  // the lane-major poly-index panel (shared by timing and the leakage
  // gather), and a persistent scalar state for degraded-lane re-timing.
  struct LaneScratch {
    sta::BatchWorkspace ws;
    std::array<std::vector<double>, sta::kBatchLanes> dl;
    std::vector<std::uint8_t> idx;
    sta::TimingState fb_state;
  };
  std::vector<LaneScratch> scratch(static_cast<std::size_t>(p.lane_count()));
  std::vector<std::uint8_t> fallback(samples, 0);

  result.dies.assign(samples, DieSample{});
  p.parallel_for_lane(batches, [&](int lane, std::size_t b) {
    LaneScratch& sc = scratch[static_cast<std::size_t>(lane)];
    const std::size_t s0 = b * static_cast<std::size_t>(width);
    const int k = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(width), samples - s0));

    sc.idx.resize(cell_count * K);
    for (int l = 0; l < k; ++l)
      sample_delta_l_into(die_seed[s0 + static_cast<std::size_t>(l)], uv,
                          sc.dl[l]);
    for (std::size_t ci = 0; ci < cell_count; ++ci) {
      // The assigned variant already encodes the dose-driven delta-L; the
      // variation adds to it (1 nm of delta-L per variant index step,
      // positive delta-L = lower index).
      for (int l = 0; l < k; ++l)
        sc.idx[ci * K + l] = static_cast<std::uint8_t>(
            liberty::shifted_poly_index(base_il[ci], sc.dl[l][ci]));
    }

    const sta::BatchTimingResult br = batched.analyze_batch_indices(
        base, sc.idx.data(), k, sc.ws, /*want_cells=*/false,
        /*want_slacks=*/false);
    for (int l = 0; l < k; ++l) {
      const std::size_t s = s0 + static_cast<std::size_t>(l);
      DieSample& die = result.dies[s];
      if (br.lane_ok[l]) {
        die.mct_ns = br.mct_ns[l];
      } else {
        // Degraded lane: re-time this die with the scalar engine off the
        // same poly indices (bit-identical recovery).
        sta::VariantAssignment va = base;
        for (std::size_t ci = 0; ci < cell_count; ++ci)
          va.set(static_cast<CellId>(ci), sc.idx[ci * K + l], base_iw[ci]);
        die.mct_ns = timer_->update(sc.fb_state, va).mct_ns;
        fallback[s] = 1;
      }
      double total_nw = 0.0;
      for (std::size_t ci = 0; ci < cell_count; ++ci)
        total_nw += leak_row[ci][sc.idx[ci * K + l]];
      die.leakage_uw = total_nw * 1e-3;
    }
  });

  for (std::uint8_t f : fallback)
    result.scalar_fallback_dies += static_cast<int>(f);
  finalize_stats(result);
  return result;
}

YieldResult YieldAnalyzer::analyze_scalar(const sta::VariantAssignment& base,
                                          ThreadPool* pool) const {
  DOSEOPT_CHECK(base.size() == nl_->cell_count(),
                "YieldAnalyzer: assignment size mismatch");
  YieldResult result;
  const auto samples = static_cast<std::size_t>(model_.monte_carlo_samples);
  const std::vector<std::uint64_t> die_seed = die_seeds(samples);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  warm_repo(base, p);

  const std::vector<std::pair<double, double>> uv = die_uv();
  result.dies.assign(samples, DieSample{});
  std::vector<sta::TimingState> lane_state(
      static_cast<std::size_t>(p.lane_count()));
  std::vector<std::vector<double>> lane_dl(
      static_cast<std::size_t>(p.lane_count()));
  p.parallel_for_lane(samples, [&](int lane, std::size_t s) {
    std::vector<double>& dl = lane_dl[static_cast<std::size_t>(lane)];
    sample_delta_l_into(die_seed[s], uv, dl);
    sta::VariantAssignment va = base;
    for (std::size_t ci = 0; ci < nl_->cell_count(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      const auto [ip, iw] = base.get(id);
      va.set(id, liberty::shifted_poly_index(ip, dl[ci]), iw);
    }
    DieSample& die = result.dies[s];
    die.mct_ns = timer_->update(lane_state[static_cast<std::size_t>(lane)], va)
                     .mct_ns;
    die.leakage_uw = power::total_leakage_uw(*nl_, *repo_, va);
  });

  finalize_stats(result);
  return result;
}

double YieldResult::yield_at(double clock_ns) const {
  if (dies.empty()) return 0.0;
  std::size_t pass = 0;
  for (const DieSample& die : dies)
    if (die.mct_ns <= clock_ns) ++pass;
  return static_cast<double>(pass) / static_cast<double>(dies.size());
}

}  // namespace doseopt::variation
