// Timing-yield analysis under CD variation.
//
// The paper's title metric is "timing yield": the fraction of manufactured
// dies that meet a target clock period.  Dose-map optimization shifts the
// *systematic* component of each cell's gate-length distribution; what
// remains is residual variation -- ACLV left after DoseMapper correction
// (spatially correlated across the die) plus local random variation.
//
// This module samples that residual on top of a dose-map assignment and
// estimates the MCT distribution and the yield at a target period, using
// the same golden STA and characterized variant libraries as the rest of
// the flow.  The spatially correlated component is modeled as a smooth
// low-frequency field over the die (quadratic in x/y with random
// coefficients, the classic ACLV signature); the random component is
// i.i.d. per cell.  Both are snapped to the characterized 1 nm CD steps.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "dose/dose_map.h"
#include "sta/timer.h"

namespace doseopt::variation {

/// Number of shared systematic variation sources: the random coefficients
/// of the low-order ACLV polynomial field.  The Monte-Carlo sampler draws
/// one standard normal per source per die; the SSTA engine carries one
/// first-order sensitivity per source per delay form.  Both views of a
/// die's variation are parameterized by exactly these sources (plus the
/// i.i.d. per-cell random residual), which is what makes the analytic
/// distribution directly comparable to the sampled one.
inline constexpr int kSystematicSources = 5;

/// RMS of the systematic polynomial basis over the unit die with N(0,1)
/// coefficients: sqrt(1/3 + 1/3 + 4/45 + 4/45 + 1/9) ~ 0.977.  The field
/// is scaled by systematic_sigma_nm / kSystematicBasisRms so its die-RMS
/// equals systematic_sigma_nm.
inline constexpr double kSystematicBasisRms = 0.977;

/// The systematic basis functions at normalized die coordinates (u, v) in
/// [-1, 1], in the order the sampler draws their coefficients:
///   f(u, v) = a u + b v + c (u^2 - 1/3) + d (v^2 - 1/3) + e u v.
inline std::array<double, kSystematicSources> systematic_basis(double u,
                                                               double v) {
  return {u, v, u * u - 1.0 / 3.0, v * v - 1.0 / 3.0, u * v};
}

/// Residual CD-variation model parameters.
struct VariationModel {
  double systematic_sigma_nm = 1.5;  ///< amplitude of the correlated field
  double random_sigma_nm = 0.8;      ///< per-cell random CD sigma
  int monte_carlo_samples = 200;
  std::uint64_t seed = 12345;
  /// Dies timed per batched-STA traversal (1..sta::kBatchLanes).  Any width
  /// produces bit-identical dies -- every lane is bitwise-equal to a scalar
  /// pass -- so this is a pure throughput knob.
  int sta_batch_width = sta::kBatchLanes;
};

/// Per-source field amplitude implied by the model (nm per unit of basis).
inline double systematic_scale(const VariationModel& model) {
  return model.systematic_sigma_nm / kSystematicBasisRms;
}

/// Normalized die coordinates (u, v) in [-1, 1] per cell -- the argument of
/// systematic_basis().  Invariant across dies; shared by the Monte-Carlo
/// sampler and the SSTA sensitivity builder.
std::vector<std::pair<double, double>> normalized_die_uv(
    const netlist::Netlist& nl, const place::Placement& placement);

/// One sampled die's analysis.
struct DieSample {
  double mct_ns = 0.0;
  double leakage_uw = 0.0;
};

/// Monte-Carlo yield analysis result.
struct YieldResult {
  std::vector<DieSample> dies;   ///< per-sample results, unsorted
  double mean_mct_ns = 0.0;
  double std_mct_ns = 0.0;
  double p95_mct_ns = 0.0;       ///< 95th-percentile MCT
  double mean_leakage_uw = 0.0;
  /// Dies the batched path flagged unhealthy (lane_ok == false, e.g. under
  /// `sta.batch_nan` fault injection) and transparently re-timed through
  /// the scalar engine.  0 in a fault-free run.
  int scalar_fallback_dies = 0;

  /// Fraction of dies with MCT <= clock.
  double yield_at(double clock_ns) const;
};

/// The analyzer: bound to a placed, timed design.
class YieldAnalyzer {
 public:
  YieldAnalyzer(const netlist::Netlist* nl, const place::Placement* placement,
                liberty::LibraryRepository* repo, const sta::Timer* timer,
                VariationModel model);

  /// Sample `model.monte_carlo_samples` dies around the nominal assignment
  /// `base` (e.g. the output of DMopt) and analyze each with golden STA.
  /// Dies are packed into batches of `model.sta_batch_width` and each batch
  /// is timed in ONE structure-of-arrays traversal (sta::BatchedTimer);
  /// batches fan out over `pool` (nullptr = the process pool).  Per-die
  /// seeds are drawn serially and each die is a pure function of its seed,
  /// so the output is bit-identical for any thread count and any batch
  /// width -- and bit-identical to analyze_scalar().  A die whose lane
  /// fails the batched engine's health validation is re-timed through the
  /// scalar path (counted in YieldResult::scalar_fallback_dies).
  YieldResult analyze(const sta::VariantAssignment& base,
                      ThreadPool* pool = nullptr) const;

  /// The scalar reference path: one incremental STA pass per die off a
  /// persistent per-worker TimingState.  Kept as the measured baseline for
  /// the batched engine (bench_yield reports both) and as the degradation
  /// target when a batch lane is poisoned.
  YieldResult analyze_scalar(const sta::VariantAssignment& base,
                             ThreadPool* pool = nullptr) const;

  /// One sampled per-cell delta-L field (nm), for tests/visualization.
  std::vector<double> sample_delta_l_nm(std::uint64_t sample_seed) const;

 private:
  /// Normalized die coordinates (u, v) in [-1, 1] per cell -- invariant
  /// across dies, computed once per analyze() and shared by every sample.
  std::vector<std::pair<double, double>> die_uv() const;

  /// Sample one die's delta-L field into a caller-provided buffer (resized
  /// to cell_count); bitwise-identical to sample_delta_l_nm() without the
  /// per-sample allocation.
  void sample_delta_l_into(std::uint64_t sample_seed,
                           const std::vector<std::pair<double, double>>& uv,
                           std::vector<double>& out) const;

  std::vector<std::uint64_t> die_seeds(std::size_t samples) const;
  void warm_repo(const sta::VariantAssignment& base, ThreadPool& p) const;

  const netlist::Netlist* nl_;
  const place::Placement* placement_;
  liberty::LibraryRepository* repo_;
  const sta::Timer* timer_;
  VariationModel model_;
};

}  // namespace doseopt::variation
