// Timing-yield analysis under CD variation.
//
// The paper's title metric is "timing yield": the fraction of manufactured
// dies that meet a target clock period.  Dose-map optimization shifts the
// *systematic* component of each cell's gate-length distribution; what
// remains is residual variation -- ACLV left after DoseMapper correction
// (spatially correlated across the die) plus local random variation.
//
// This module samples that residual on top of a dose-map assignment and
// estimates the MCT distribution and the yield at a target period, using
// the same golden STA and characterized variant libraries as the rest of
// the flow.  The spatially correlated component is modeled as a smooth
// low-frequency field over the die (quadratic in x/y with random
// coefficients, the classic ACLV signature); the random component is
// i.i.d. per cell.  Both are snapped to the characterized 1 nm CD steps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "dose/dose_map.h"
#include "sta/timer.h"

namespace doseopt::variation {

/// Residual CD-variation model parameters.
struct VariationModel {
  double systematic_sigma_nm = 1.5;  ///< amplitude of the correlated field
  double random_sigma_nm = 0.8;      ///< per-cell random CD sigma
  int monte_carlo_samples = 200;
  std::uint64_t seed = 12345;
};

/// One sampled die's analysis.
struct DieSample {
  double mct_ns = 0.0;
  double leakage_uw = 0.0;
};

/// Monte-Carlo yield analysis result.
struct YieldResult {
  std::vector<DieSample> dies;   ///< per-sample results, unsorted
  double mean_mct_ns = 0.0;
  double std_mct_ns = 0.0;
  double p95_mct_ns = 0.0;       ///< 95th-percentile MCT
  double mean_leakage_uw = 0.0;

  /// Fraction of dies with MCT <= clock.
  double yield_at(double clock_ns) const;
};

/// The analyzer: bound to a placed, timed design.
class YieldAnalyzer {
 public:
  YieldAnalyzer(const netlist::Netlist* nl, const place::Placement* placement,
                liberty::LibraryRepository* repo, const sta::Timer* timer,
                VariationModel model);

  /// Sample `model.monte_carlo_samples` dies around the nominal assignment
  /// `base` (e.g. the output of DMopt) and analyze each with golden STA.
  /// Dies fan out over `pool` (nullptr = the process pool); each die's
  /// result depends only on its precomputed seed and each worker lane
  /// re-times its dies incrementally off a persistent TimingState, so the
  /// output is bit-identical for any thread count.
  YieldResult analyze(const sta::VariantAssignment& base,
                      ThreadPool* pool = nullptr) const;

  /// One sampled per-cell delta-L field (nm), for tests/visualization.
  std::vector<double> sample_delta_l_nm(std::uint64_t sample_seed) const;

 private:
  const netlist::Netlist* nl_;
  const place::Placement* placement_;
  liberty::LibraryRepository* repo_;
  const sta::Timer* timer_;
  VariationModel model_;
};

}  // namespace doseopt::variation
