// Lock-free latency histogram for the metrics endpoint.
//
// Fixed geometric buckets (factor 2 from 0.05 ms), recorded with relaxed
// atomic increments so the job hot path pays one add; quantiles are
// estimated at read time by log-linear interpolation inside the bucket
// that crosses the requested rank.  Good to ~2x resolution at the tails,
// which is what a p99 dashboard needs -- exact per-sample storage would
// cost allocation on the serve path.
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/json.h"

namespace doseopt::serve {

class LatencyHistogram {
 public:
  /// Bucket i spans [kFloorMs * 2^(i-1), kFloorMs * 2^i); bucket 0 catches
  /// everything below kFloorMs, the last bucket everything above.
  static constexpr int kBuckets = 28;  ///< covers 0.05 ms .. ~1.9 h
  static constexpr double kFloorMs = 0.05;

  void record(double ms);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Latency at `q` in [0,1] (0.5 = median).  0 when empty.
  double quantile_ms(double q) const;

  /// {"count", "p50_ms", "p90_ms", "p99_ms", "max_ms",
  ///  "le_ms": [upper bounds], "counts": [...]} -- only buckets up to the
  /// highest non-empty one are emitted.
  Json to_json() const;

 private:
  static int bucket_of(double ms);
  static double upper_bound_ms(int bucket);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  /// Maximum observed, in nanoseconds (integer so compare-exchange works).
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace doseopt::serve
