// Thin POSIX socket helpers for the job server: Unix-domain and TCP
// listeners/connectors plus whole-buffer send/recv.  All functions throw
// doseopt::Error on system-call failure (with errno text); writes use
// MSG_NOSIGNAL so a peer hangup surfaces as an error, not SIGPIPE.
#pragma once

#include <cstddef>
#include <string>

namespace doseopt::serve {

/// Bind + listen on a Unix-domain socket at `path` (unlinks a stale file
/// first).  Returns the listening fd.
int listen_unix(const std::string& path);

/// Bind + listen on 127.0.0.1:`port` (port 0 = kernel-assigned).  Returns
/// the listening fd; `*bound_port` receives the actual port when non-null.
int listen_tcp(int port, int* bound_port = nullptr);

/// Connect to a Unix-domain socket.  `timeout_ms > 0` bounds the connect
/// attempt; 0 blocks indefinitely.
int connect_unix(const std::string& path, int timeout_ms = 0);

/// Connect to 127.0.0.1:`port`, with the same timeout contract.
int connect_tcp(int port, int timeout_ms = 0);

/// Bound every subsequent recv/send on `fd` to `timeout_ms` (SO_RCVTIMEO /
/// SO_SNDTIMEO); 0 removes the bound.  An expired bound surfaces from
/// recv_all/send_all as doseopt::Error("... timed out ...").
void set_io_timeout(int fd, int timeout_ms);

/// Accept one connection; returns the fd, or -1 when the listener was shut
/// down (any other failure throws).
int accept_connection(int listen_fd);

/// Write exactly `size` bytes; throws on error or peer hangup.
void send_all(int fd, const void* data, std::size_t size);

/// Read exactly `size` bytes.  Returns false on clean EOF at offset 0;
/// throws on error or mid-buffer EOF.
bool recv_all(int fd, void* data, std::size_t size);

/// shutdown(2) both directions then close(2); ignores errors (teardown).
void close_socket(int fd);

}  // namespace doseopt::serve
