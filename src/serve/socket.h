// Thin POSIX socket helpers for the job server: Unix-domain and TCP
// listeners/connectors plus whole-buffer send/recv.  All functions throw
// doseopt::Error on system-call failure (with errno text); writes use
// MSG_NOSIGNAL so a peer hangup surfaces as an error, not SIGPIPE.
#pragma once

#include <cstddef>
#include <string>

namespace doseopt::serve {

/// Bind + listen on a Unix-domain socket at `path` (unlinks a stale file
/// first).  Returns the listening fd.
int listen_unix(const std::string& path);

/// Bind + listen on 127.0.0.1:`port` (port 0 = kernel-assigned).  Returns
/// the listening fd; `*bound_port` receives the actual port when non-null.
int listen_tcp(int port, int* bound_port = nullptr);

/// Connect to a Unix-domain socket.
int connect_unix(const std::string& path);

/// Connect to 127.0.0.1:`port`.
int connect_tcp(int port);

/// Accept one connection; returns the fd, or -1 when the listener was shut
/// down (any other failure throws).
int accept_connection(int listen_fd);

/// Write exactly `size` bytes; throws on error or peer hangup.
void send_all(int fd, const void* data, std::size_t size);

/// Read exactly `size` bytes.  Returns false on clean EOF at offset 0;
/// throws on error or mid-buffer EOF.
bool recv_all(int fd, void* data, std::size_t size);

/// shutdown(2) both directions then close(2); ignores errors (teardown).
void close_socket(int fd);

}  // namespace doseopt::serve
