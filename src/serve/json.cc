#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace doseopt::serve {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  DOSEOPT_CHECK(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Json::as_number() const {
  DOSEOPT_CHECK(type_ == Type::kNumber, "json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  DOSEOPT_CHECK(type_ == Type::kString, "json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  DOSEOPT_CHECK(type_ == Type::kArray, "json: not an array");
  return array_;
}

bool Json::has(const std::string& key) const {
  DOSEOPT_CHECK(type_ == Type::kObject, "json: not an object");
  return object_.contains(key);
}

const Json& Json::get(const std::string& key) const {
  DOSEOPT_CHECK(type_ == Type::kObject, "json: not an object");
  const auto it = object_.find(key);
  DOSEOPT_CHECK(it != object_.end(), "json: missing key " + key);
  return it->second;
}

double Json::get_number(const std::string& key, double fallback) const {
  if (!has(key) || get(key).is_null()) return fallback;
  return get(key).as_number();
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  if (!has(key) || get(key).is_null()) return fallback;
  return get(key).as_bool();
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  if (!has(key) || get(key).is_null()) return fallback;
  return get(key).as_string();
}

void Json::set(const std::string& key, Json value) {
  DOSEOPT_CHECK(type_ == Type::kObject, "json: not an object");
  object_[key] = std::move(value);
}

void Json::push_back(Json value) {
  DOSEOPT_CHECK(type_ == Type::kArray, "json: not an array");
  array_.push_back(std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      out += buf;
      break;
    }
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("json parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (consume_literal("true")) return Json::boolean(true);
    if (consume_literal("false")) return Json::boolean(false);
    if (consume_literal("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (basic multilingual plane; the protocol only
          // carries ASCII identifiers, this is completeness).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str())
      fail("bad number: " + token);
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace doseopt::serve
