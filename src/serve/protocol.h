// Wire protocol of the doseopt job service.
//
// Every message is one length-prefixed frame:
//
//   [ u32 magic 0x444F5331 "DOS1" ][ u32 type ][ u32 payload length ]
//   [ payload bytes (UTF-8 JSON, except kPing/kPong which are empty) ]
//
// all little-endian.  Frames are independent; a connection carries any
// number of them in either direction.  Payloads are JSON documents -- see
// job.h for the job request/result schema and server.h for metrics.
#pragma once

#include <cstdint>
#include <string>

namespace doseopt::serve {

/// Frame magic ("DOS1" read as little-endian u32).
inline constexpr std::uint32_t kFrameMagic = 0x3153'4F44u;

/// Frames larger than this are rejected as corrupt (protects the server
/// from a garbage length prefix allocating gigabytes).
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Message types.
enum class MsgType : std::uint32_t {
  kPing = 1,            ///< liveness probe, empty payload
  kPong = 2,            ///< reply to kPing, empty payload
  kJobRequest = 3,      ///< JSON job description (job.h)
  kJobResult = 4,       ///< JSON result for one job
  kJobError = 5,        ///< JSON {"id", "error"} -- job failed
  kJobRejected = 6,     ///< JSON {"id", "retry_after_ms"} -- backpressure
  kMetricsRequest = 7,  ///< empty payload
  kMetricsReply = 8,    ///< JSON telemetry dump
  kShutdown = 9,        ///< ask the server to drain and stop; empty payload
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Write one frame to `fd` (blocking, whole-frame).
void write_frame(int fd, MsgType type, const std::string& payload);

/// Read one frame.  Returns false on clean EOF at a frame boundary; throws
/// doseopt::Error on corrupt framing, oversized payloads, or mid-frame EOF.
bool read_frame(int fd, Frame* frame);

}  // namespace doseopt::serve
