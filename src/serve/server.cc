#include "serve/server.h"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "faultinject/fault.h"
#include "flow/optimize.h"
#include "serve/protocol.h"
#include "serve/socket.h"

namespace doseopt::serve {

namespace {

faultinject::FaultPoint g_fault_job("serve.job");
/// Kills the worker process with SIGKILL mid-job -- after the session is
/// built but before the solve finishes, the hardest recovery case for the
/// fleet supervisor.  Honored only when ServerOptions::allow_crash_faults
/// is set (fleet workers launched with --crash-faults); an in-process test
/// server ignores a firing instead of killing the test binary.
faultinject::FaultPoint g_fault_worker_crash("fleet.worker_crash");

double ms_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::uint64_t us_since(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.snapshot_dir, options_.result_store_dir) {}

Server::~Server() { stop(); }

void Server::start() {
  DOSEOPT_CHECK(!running(), "serve: server already started");
  DOSEOPT_CHECK(!options_.uds_path.empty() || options_.tcp_port >= 0,
                "serve: no listener configured (need uds_path or tcp_port)");
  DOSEOPT_CHECK(options_.lanes >= 1, "serve: lanes must be >= 1");
  DOSEOPT_CHECK(options_.queue_capacity >= 1,
                "serve: queue_capacity must be >= 1");

  stopping_.store(false, std::memory_order_release);
  shutdown_requested_.store(false, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();

  if (!options_.uds_path.empty()) uds_fd_ = listen_unix(options_.uds_path);
  if (options_.tcp_port >= 0) tcp_fd_ = listen_tcp(options_.tcp_port,
                                                   &tcp_port_);

  // Worker lanes: a dedicated scheduler thread enters parallel_for_lane
  // with one long-lived iteration per lane.  Inside an iteration the pool
  // region is active, so every parallel loop a job issues runs inline --
  // each job is serial on its lane, which is what makes results
  // bit-identical to a direct flow:: call at any lane count.
  pool_ = std::make_unique<ThreadPool>(options_.lanes);
  const std::size_t lanes = static_cast<std::size_t>(options_.lanes);
  scheduler_thread_ = std::thread([this, lanes] {
    pool_->parallel_for_lane(
        lanes, [this](int, std::size_t i) { worker_loop(static_cast<int>(i)); });
  });

  if (uds_fd_ >= 0)
    accept_threads_.emplace_back([this, fd = uds_fd_] { accept_loop(fd); });
  if (tcp_fd_ >= 0)
    accept_threads_.emplace_back([this, fd = tcp_fd_] { accept_loop(fd); });

  running_.store(true, std::memory_order_release);
  if (options_.verbose)
    std::fprintf(stderr, "[serve] listening (lanes=%d queue=%zu)\n",
                 options_.lanes, options_.queue_capacity);
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Stop accepting: closing the listeners makes accept_connection return
  // -1 in the accept loops.
  if (uds_fd_ >= 0) close_socket(std::exchange(uds_fd_, -1));
  if (tcp_fd_ >= 0) close_socket(std::exchange(tcp_fd_, -1));
  for (auto& t : accept_threads_) t.join();
  accept_threads_.clear();

  // Graceful drain: new requests are rejected (stopping_), queued jobs run
  // to completion and their replies still go out over open connections.
  queue_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
  }
  queue_cv_.notify_all();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  pool_.reset();

  // Unblock and join the connection readers; each reader closes its own fd
  // on exit.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns)
    if (conn->open.load(std::memory_order_acquire))
      ::shutdown(conn->fd, SHUT_RDWR);
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();

  cache_.save_all();
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  if (options_.verbose) std::fprintf(stderr, "[serve] stopped\n");
}

void Server::wait_for_shutdown() const {
  while (!shutdown_requested_.load(std::memory_order_acquire) &&
         running_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void Server::accept_loop(int listen_fd) {
  int consecutive_errors = 0;
  while (true) {
    int fd = -1;
    try {
      fd = accept_connection(listen_fd);
    } catch (const std::exception& e) {
      // A transient accept failure (EMFILE, injected fault) must not kill
      // the listener; the pending connection stays queued for the retry.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      if (options_.verbose)
        std::fprintf(stderr, "[serve] accept error: %s\n", e.what());
      if (++consecutive_errors >= 16) return;  // persistent: give up
      continue;
    }
    consecutive_errors = 0;
    if (fd < 0) return;  // listener closed by stop()
    if (stopping_.load(std::memory_order_acquire)) {
      close_socket(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  try {
    Frame frame;
    while (read_frame(conn->fd, &frame)) {
      switch (frame.type) {
        case MsgType::kPing:
          reply(conn, static_cast<std::uint32_t>(MsgType::kPong),
                Json::object());
          break;
        case MsgType::kJobRequest:
          handle_request(conn, frame.payload);
          break;
        case MsgType::kMetricsRequest:
          reply(conn, static_cast<std::uint32_t>(MsgType::kMetricsReply),
                metrics());
          break;
        case MsgType::kShutdown:
          if (options_.verbose)
            std::fprintf(stderr, "[serve] shutdown requested by client\n");
          request_shutdown();
          break;
        default: {
          Json err = Json::object();
          err.set("error", Json::string("unexpected frame type"));
          reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    // Corrupt framing (bad magic, oversized length, torn frame, injected
    // read fault): the stream is desynchronized, so the only safe recovery
    // is a best-effort protocol-error reply followed by dropping the
    // connection.  The lane is untouched -- queued jobs from this
    // connection still run (and are dropped on reply).
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose)
      std::fprintf(stderr, "[serve] connection error: %s\n", e.what());
    Json err = Json::object();
    err.set("error", Json::string(e.what()));
    err.set("protocol_error", Json::boolean(true));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
  }
  conn->open.store(false, std::memory_order_release);
  close_socket(conn->fd);
}

void Server::handle_request(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  JobSpec spec;
  try {
    spec = JobSpec::from_json(Json::parse(payload));
  } catch (const std::exception& e) {
    Json err = Json::object();
    err.set("error", Json::string(e.what()));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
    return;
  }

  const auto reject = [&](double retry_after_ms, bool breaker_open) {
    jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    Json r = Json::object();
    if (!spec.id.empty()) r.set("id", Json::string(spec.id));
    r.set("retry_after_ms", Json::number(retry_after_ms));
    if (breaker_open) r.set("breaker_open", Json::boolean(true));
    reply(conn, static_cast<std::uint32_t>(MsgType::kJobRejected), r);
  };

  if (stopping_.load(std::memory_order_acquire)) {
    reject(options_.retry_after_ms, false);
    return;
  }
  // Open circuit breaker: shed load instead of queueing work the solver is
  // currently failing; the hint is the breaker's remaining cooldown.
  if (const double shed_ms = breaker_remaining_ms(); shed_ms > 0.0) {
    jobs_shed_.fetch_add(1, std::memory_order_relaxed);
    reject(shed_ms, true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      reject(options_.retry_after_ms, false);
      return;
    }
    queue_.push_back(PendingJob{conn, std::move(spec),
                                std::chrono::steady_clock::now()});
  }
  jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.notify_one();
}

void Server::worker_loop(int lane) {
  while (true) {
    PendingJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (options_.verbose)
      std::fprintf(stderr, "[serve] lane %d: job '%s' (%s)\n", lane,
                   job.spec.id.c_str(), job.spec.design.c_str());
    execute_job(std::move(job));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

bool Server::expired(const PendingJob& job) {
  if (job.spec.deadline_ms <= 0.0) return false;
  const double waited =
      ms_since(job.enqueued, std::chrono::steady_clock::now());
  if (waited <= job.spec.deadline_ms) return false;
  jobs_expired_.fetch_add(1, std::memory_order_relaxed);
  Json err = Json::object();
  if (!job.spec.id.empty()) err.set("id", Json::string(job.spec.id));
  err.set("error", Json::string("deadline exceeded"));
  err.set("expired", Json::boolean(true));
  err.set("waited_ms", Json::number(waited));
  reply(job.conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
  return true;
}

void Server::execute_job(PendingJob job) {
  const int max_attempts = std::max(1, options_.job_max_attempts);
  std::string last_error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    try {
      faultinject::maybe_throw(g_fault_job, "job execution");
      run_job(job);
      breaker_failures_.store(0, std::memory_order_relaxed);
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      if (attempt < max_attempts &&
          job.conn->open.load(std::memory_order_acquire)) {
        jobs_retried_.fetch_add(1, std::memory_order_relaxed);
        if (options_.verbose)
          std::fprintf(stderr, "[serve] job '%s' attempt %d failed: %s\n",
                       job.spec.id.c_str(), attempt, e.what());
        // Deterministic backoff: a pure function of (job key, attempt), so
        // a replayed faulted run schedules identically.
        Rng jitter(job.spec.job_key() ^ static_cast<std::uint64_t>(attempt));
        const double wait_ms = options_.job_retry_backoff_ms *
                               static_cast<double>(attempt) *
                               (0.5 + 0.5 * jitter.uniform());
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<long>(wait_ms * 1000.0)));
      }
    }
  }
  // Attempts exhausted: report, and count toward tripping the breaker.
  jobs_failed_.fetch_add(1, std::memory_order_relaxed);
  note_job_failure();
  Json err = Json::object();
  if (!job.spec.id.empty()) err.set("id", Json::string(job.spec.id));
  err.set("error", Json::string(last_error));
  err.set("attempts", Json::number(static_cast<double>(max_attempts)));
  reply(job.conn, static_cast<std::uint32_t>(MsgType::kJobError), err);
}

double Server::breaker_remaining_ms() const {
  const std::int64_t until =
      breaker_open_until_us_.load(std::memory_order_acquire);
  if (until == 0) return 0.0;
  const std::int64_t now_us = static_cast<std::int64_t>(
      us_since(start_time_, std::chrono::steady_clock::now()));
  return now_us >= until ? 0.0
                         : static_cast<double>(until - now_us) / 1000.0;
}

void Server::note_job_failure() {
  if (options_.breaker_threshold <= 0) return;
  const int failures =
      breaker_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures < options_.breaker_threshold) return;
  breaker_failures_.store(0, std::memory_order_relaxed);
  breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t now_us = static_cast<std::int64_t>(
      us_since(start_time_, std::chrono::steady_clock::now()));
  breaker_open_until_us_.store(
      now_us +
          static_cast<std::int64_t>(options_.breaker_cooldown_ms * 1000.0),
      std::memory_order_release);
  if (options_.verbose)
    std::fprintf(stderr, "[serve] circuit breaker open for %.0fms\n",
                 options_.breaker_cooldown_ms);
}

void Server::run_job(const PendingJob& job) {
  using clock = std::chrono::steady_clock;
  {
    if (!job.conn->open.load(std::memory_order_acquire)) {
      jobs_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (expired(job)) return;

    // Memoized identical job: the flow is deterministic, so the stored
    // result document is exactly what a fresh solve would produce.
    const std::uint64_t job_key = job.spec.job_key();
    if (const auto cached = cache_.lookup_result(job_key)) {
      Json out = Json::object();
      if (!job.spec.id.empty()) out.set("id", Json::string(job.spec.id));
      out.set("status", Json::string("ok"));
      Json cache_info = Json::object();
      cache_info.set("context_hit", Json::boolean(true));
      cache_info.set("snapshot_restored", Json::boolean(false));
      cache_info.set("coefficients_hit", Json::boolean(true));
      cache_info.set("result_hit", Json::boolean(true));
      out.set("cache", std::move(cache_info));
      Json stages = Json::object();
      stages.set("context_ms", Json::number(0.0));
      stages.set("coefficients_ms", Json::number(0.0));
      stages.set("flow_ms", Json::number(0.0));
      out.set("stage_ms", std::move(stages));
      out.set("result", Json::parse(*cached));
      jobs_completed_.fetch_add(1, std::memory_order_relaxed);
      // Record before replying: a client that reads its reply and
      // immediately polls metrics must already see this job counted.
      hist_job_.record(ms_since(job.enqueued, clock::now()));
      reply(job.conn, static_cast<std::uint32_t>(MsgType::kJobResult), out);
      return;
    }

    auto session = cache_.acquire(job.spec);
    std::lock_guard<std::mutex> session_lock(session->mu);
    // Re-check after possibly waiting on another job of the same session.
    if (!job.conn->open.load(std::memory_order_acquire)) {
      jobs_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (expired(job)) return;

    const auto t0 = clock::now();
    const bool ctx_hit = session->ctx != nullptr;
    bool restored = false;
    cache_.populate(*session, job.spec, &restored);
    flow::DesignContext& ctx = *session->ctx;
    const auto t1 = clock::now();
    stage_context_us_.fetch_add(us_since(t0, t1), std::memory_order_relaxed);
    hist_context_.record(ms_since(t0, t1));
    // Mid-job crash injection: the session exists but the client has no
    // answer yet, so the supervisor must respawn the worker and the router
    // must replay the job for the client to ever see a result.
    if (options_.allow_crash_faults && g_fault_worker_crash.should_fire()) {
      std::fprintf(stderr, "[serve] fleet.worker_crash fired: killing pid %d "
                   "mid-job '%s'\n",
                   static_cast<int>(::getpid()), job.spec.id.c_str());
      ::kill(::getpid(), SIGKILL);
    }
    if (expired(job)) return;

    const bool coeff_hit = ctx.has_coefficients(job.spec.modulate_width);
    cache_.count_coeff(coeff_hit);
    ctx.coefficients(job.spec.modulate_width);
    const auto t2 = clock::now();
    stage_coeff_us_.fetch_add(us_since(t1, t2), std::memory_order_relaxed);
    hist_coeff_.record(ms_since(t1, t2));
    if (expired(job)) return;

    Json result_json;
    if (job.spec.mode == "ssta_yield") {
      // Analytic yield job: no dose optimization, nothing mutated -- one
      // canonical-form pass (plus the optional MC cross-check) over the
      // session's nominal recipe.
      result_json = ssta_yield_result_to_json(
          flow::run_ssta_yield(ctx, job.spec.ssta_options()));
    } else {
      // dosePl mutates the context's placement and parasitics in place;
      // save and restore them so the cached session stays pristine for
      // later jobs.
      std::optional<place::Placement> saved_placement;
      std::optional<extract::Parasitics> saved_parasitics;
      if (job.spec.run_dosepl) {
        saved_placement = ctx.placement();
        saved_parasitics = ctx.parasitics();
      }
      flow::FlowResult result;
      try {
        result = flow::run_flow(ctx, job.spec.flow_options());
      } catch (...) {
        // The flow may have died mid-dosePl with the placement half-moved;
        // restore before rethrowing so the session stays usable for the
        // retry (and for unrelated jobs sharing it).
        if (saved_placement.has_value()) {
          ctx.placement() = std::move(*saved_placement);
          ctx.parasitics() = std::move(*saved_parasitics);
        }
        throw;
      }
      if (saved_placement.has_value()) {
        ctx.placement() = std::move(*saved_placement);
        ctx.parasitics() = std::move(*saved_parasitics);
      }

      const dmopt::CutTelemetry& ct = result.dmopt.telemetry;
      dmopt_rounds_.fetch_add(static_cast<std::uint64_t>(ct.total_rounds),
                              std::memory_order_relaxed);
      dmopt_admm_iterations_.fetch_add(
          static_cast<std::uint64_t>(ct.total_admm_iterations),
          std::memory_order_relaxed);
      dmopt_cuts_.fetch_add(ct.total_cuts, std::memory_order_relaxed);
      dmopt_assembly_us_.fetch_add(ct.assembly_ns / 1000,
                                   std::memory_order_relaxed);
      dmopt_solve_us_.fetch_add(ct.solve_ns / 1000,
                                std::memory_order_relaxed);
      dmopt_extract_us_.fetch_add(ct.extract_ns / 1000,
                                  std::memory_order_relaxed);
      dmopt_mg_seeds_.fetch_add(static_cast<std::uint64_t>(ct.mg_seeds),
                                std::memory_order_relaxed);
      dmopt_mg_rejects_.fetch_add(static_cast<std::uint64_t>(ct.mg_rejects),
                                  std::memory_order_relaxed);
      dmopt_mixed_solves_.fetch_add(
          static_cast<std::uint64_t>(ct.qp_mixed_solves),
          std::memory_order_relaxed);
      dmopt_mixed_fallbacks_.fetch_add(
          static_cast<std::uint64_t>(ct.qp_mixed_fallbacks),
          std::memory_order_relaxed);
      dmopt_spec_consumed_.fetch_add(
          static_cast<std::uint64_t>(ct.speculative_consumed),
          std::memory_order_relaxed);
      dmopt_spec_wasted_.fetch_add(
          static_cast<std::uint64_t>(ct.speculative_wasted),
          std::memory_order_relaxed);
      result_json = flow_result_to_json(result);
    }
    const auto t3 = clock::now();
    stage_flow_us_.fetch_add(us_since(t2, t3), std::memory_order_relaxed);
    hist_flow_.record(ms_since(t2, t3));

    // Fleet workers persist a freshly built session right away: if this
    // process is killed later, the respawned replacement restores from the
    // snapshot instead of paying the characterization again.
    if (options_.eager_snapshots && !ctx_hit && !restored)
      cache_.save_session(*session);

    Json out = Json::object();
    if (!job.spec.id.empty()) out.set("id", Json::string(job.spec.id));
    out.set("status", Json::string("ok"));
    Json cache_info = Json::object();
    cache_info.set("context_hit", Json::boolean(ctx_hit));
    cache_info.set("snapshot_restored", Json::boolean(restored));
    cache_info.set("coefficients_hit", Json::boolean(coeff_hit));
    cache_info.set("result_hit", Json::boolean(false));
    out.set("cache", std::move(cache_info));
    Json stages = Json::object();
    stages.set("context_ms", Json::number(ms_since(t0, t1)));
    stages.set("coefficients_ms", Json::number(ms_since(t1, t2)));
    stages.set("flow_ms", Json::number(ms_since(t2, t3)));
    out.set("stage_ms", std::move(stages));
    cache_.store_result(job_key, result_json.dump());
    out.set("result", std::move(result_json));

    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    // As above: count into the histogram before the client can observe the
    // reply and poll metrics.
    hist_job_.record(ms_since(job.enqueued, clock::now()));
    reply(job.conn, static_cast<std::uint32_t>(MsgType::kJobResult), out);
  }
}

void Server::reply(const std::shared_ptr<Connection>& conn,
                   std::uint32_t type, const Json& payload) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    write_frame(conn->fd, static_cast<MsgType>(type), payload.dump());
  } catch (const std::exception& e) {
    // Peer went away mid-reply (or the write faulted): the frame may be
    // half-written, so the stream is unusable.  Shut the socket down so a
    // client blocked in recv sees EOF immediately (instead of waiting out
    // its io timeout) and can reconnect + resubmit; the memoized result
    // makes the retry bit-identical and cheap.
    conn->open.store(false, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    if (options_.verbose)
      std::fprintf(stderr, "[serve] dropped reply: %s\n", e.what());
  }
}

Json Server::metrics() const {
  Json m = Json::object();
  m.set("lanes", Json::number(options_.lanes));
  m.set("queue_capacity",
        Json::number(static_cast<double>(options_.queue_capacity)));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    m.set("queue_depth", Json::number(static_cast<double>(queue_.size())));
    m.set("in_flight", Json::number(static_cast<double>(in_flight_)));
  }
  const auto n = [](const std::atomic<std::uint64_t>& a) {
    return Json::number(
        static_cast<double>(a.load(std::memory_order_relaxed)));
  };
  Json jobs = Json::object();
  jobs.set("accepted", n(jobs_accepted_));
  jobs.set("completed", n(jobs_completed_));
  jobs.set("failed", n(jobs_failed_));
  jobs.set("rejected", n(jobs_rejected_));
  jobs.set("expired", n(jobs_expired_));
  jobs.set("dropped", n(jobs_dropped_));
  jobs.set("retried", n(jobs_retried_));
  jobs.set("shed", n(jobs_shed_));
  m.set("jobs", std::move(jobs));

  Json breaker = Json::object();
  breaker.set("open", Json::boolean(breaker_remaining_ms() > 0.0));
  breaker.set("trips", n(breaker_trips_));
  breaker.set("consecutive_failures",
              Json::number(static_cast<double>(
                  breaker_failures_.load(std::memory_order_relaxed))));
  m.set("breaker", std::move(breaker));

  Json transport = Json::object();
  transport.set("accept_errors", n(accept_errors_));
  transport.set("protocol_errors", n(protocol_errors_));
  m.set("transport", std::move(transport));

  const SessionCache::Stats s = cache_.stats();
  Json c = Json::object();
  c.set("sessions", Json::number(static_cast<double>(s.sessions)));
  c.set("context_hits", Json::number(static_cast<double>(s.context_hits)));
  c.set("context_misses",
        Json::number(static_cast<double>(s.context_misses)));
  c.set("snapshots_restored",
        Json::number(static_cast<double>(s.snapshots_restored)));
  c.set("restore_failures",
        Json::number(static_cast<double>(s.restore_failures)));
  c.set("save_failures", Json::number(static_cast<double>(s.save_failures)));
  c.set("coefficient_hits", Json::number(static_cast<double>(s.coeff_hits)));
  c.set("coefficient_misses",
        Json::number(static_cast<double>(s.coeff_misses)));
  c.set("result_hits", Json::number(static_cast<double>(s.result_hits)));
  c.set("result_misses", Json::number(static_cast<double>(s.result_misses)));
  c.set("result_disk_hits",
        Json::number(static_cast<double>(s.result_disk_hits)));
  c.set("result_quarantined",
        Json::number(static_cast<double>(s.result_quarantined)));
  c.set("result_store_failures",
        Json::number(static_cast<double>(s.result_store_failures)));
  c.set("characterize_calls",
        Json::number(static_cast<double>(s.characterize_calls)));
  m.set("cache", std::move(c));

  Json stages = Json::object();
  const auto us_ms = [](const std::atomic<std::uint64_t>& a) {
    return Json::number(
        static_cast<double>(a.load(std::memory_order_relaxed)) / 1000.0);
  };
  stages.set("context_ms", us_ms(stage_context_us_));
  stages.set("coefficients_ms", us_ms(stage_coeff_us_));
  stages.set("flow_ms", us_ms(stage_flow_us_));
  m.set("stage_ms_total", std::move(stages));

  Json hist = Json::object();
  hist.set("job", hist_job_.to_json());
  hist.set("context", hist_context_.to_json());
  hist.set("coefficients", hist_coeff_.to_json());
  hist.set("flow", hist_flow_.to_json());
  m.set("latency_histograms", std::move(hist));

  Json dmopt = Json::object();
  dmopt.set("cut_rounds", n(dmopt_rounds_));
  dmopt.set("admm_iterations", n(dmopt_admm_iterations_));
  dmopt.set("cuts", n(dmopt_cuts_));
  dmopt.set("assembly_ms", us_ms(dmopt_assembly_us_));
  dmopt.set("solve_ms", us_ms(dmopt_solve_us_));
  dmopt.set("extract_ms", us_ms(dmopt_extract_us_));
  dmopt.set("mg_seeds", n(dmopt_mg_seeds_));
  dmopt.set("mg_rejects", n(dmopt_mg_rejects_));
  dmopt.set("mixed_solves", n(dmopt_mixed_solves_));
  dmopt.set("mixed_fallbacks", n(dmopt_mixed_fallbacks_));
  dmopt.set("speculative_consumed", n(dmopt_spec_consumed_));
  dmopt.set("speculative_wasted", n(dmopt_spec_wasted_));
  m.set("dmopt", std::move(dmopt));

  m.set("uptime_ms",
        Json::number(ms_since(start_time_, std::chrono::steady_clock::now())));
  return m;
}

}  // namespace doseopt::serve
