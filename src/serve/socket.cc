#include "serve/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "faultinject/fault.h"

namespace doseopt::serve {

namespace {

faultinject::FaultPoint g_fault_accept("serve.accept");
faultinject::FaultPoint g_fault_read("serve.read");
faultinject::FaultPoint g_fault_write("serve.write");

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Drive a pending non-blocking connect to completion within `timeout_ms`
/// (<= 0 waits forever), then surface the kernel's verdict via SO_ERROR.
void finish_connect(int fd, int timeout_ms, const std::string& what) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLOUT;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc > 0) break;
    if (rc == 0)
      throw Error(what + ": connect timed out after " +
                  std::to_string(timeout_ms) + "ms");
    if (errno != EINTR) sys_fail(what + ": poll");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
    sys_fail(what + ": getsockopt(SO_ERROR)");
  if (err != 0) {
    errno = err;
    sys_fail(what + ": connect");
  }
}

/// connect(2) with an optional bound.  The socket is flipped non-blocking
/// for the attempt (so a dead peer cannot hang the caller) and restored
/// after; throws on failure or timeout, leaving the caller to close `fd`.
void connect_bounded(int fd, const sockaddr* addr, socklen_t addr_len,
                     int timeout_ms, const std::string& what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) sys_fail(what + ": fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    sys_fail(what + ": fcntl(F_SETFL)");
  const int rc = ::connect(fd, addr, addr_len);
  if (rc != 0) {
    // EAGAIN: AF_UNIX reports a full backlog this way; poll until writable.
    if (errno != EINPROGRESS && errno != EINTR && errno != EAGAIN)
      sys_fail(what + ": connect");
    finish_connect(fd, timeout_ms, what);
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) sys_fail(what + ": fcntl(F_SETFL)");
}

/// True when a server is actually accepting on the unix socket at `path`.
/// A leftover file from a killed process refuses the connect instead --
/// that is the stale case the caller is allowed to reclaim.
bool unix_socket_alive(const std::string& path) {
  try {
    close_socket(connect_unix(path, /*timeout_ms=*/250));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Bounded retry budget for bind(2) races: two servers reclaiming the same
/// stale path, or a TCP port still draining its predecessor's TIME_WAIT.
constexpr int kBindAttempts = 8;
constexpr int kBindRetryDelayUs = 50 * 1000;

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");

  // bind(2) on AF_UNIX refuses an existing path outright, and a server
  // killed without cleanup (SIGKILL, crash, container stop) always leaves
  // its socket file behind.  Reclaim the path only after a probe connect
  // shows nobody is accepting on it -- unconditionally unlinking would
  // silently steal a live server's clients.
  for (int attempt = 0;; ++attempt) {
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      break;
    const int bind_errno = errno;
    if (bind_errno != EADDRINUSE || attempt + 1 >= kBindAttempts) {
      ::close(fd);
      errno = bind_errno;
      sys_fail("bind(" + path + ")");
    }
    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0 && !S_ISSOCK(st.st_mode)) {
      ::close(fd);
      throw Error("refusing to bind over non-socket file: " + path);
    }
    if (unix_socket_alive(path)) {
      ::close(fd);
      throw Error("unix socket already in use by a live server: " + path);
    }
    ::unlink(path.c_str());
    ::usleep(kBindRetryDelayUs);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    sys_fail("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // SO_REUSEADDR covers the common restart-into-TIME_WAIT case; the retry
  // loop additionally rides out a predecessor that is still tearing down
  // its listener.  Ephemeral binds (port 0) cannot collide, so they get a
  // single attempt.
  for (int attempt = 0;; ++attempt) {
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      break;
    const int bind_errno = errno;
    if (port == 0 || bind_errno != EADDRINUSE ||
        attempt + 1 >= kBindAttempts) {
      ::close(fd);
      errno = bind_errno;
      sys_fail("bind(tcp " + std::to_string(port) + ")");
    }
    ::usleep(kBindRetryDelayUs);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    sys_fail("listen(tcp)");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      sys_fail("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  try {
    connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                    timeout_ms, "connect(" + path + ")");
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

int connect_tcp(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  try {
    connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                    timeout_ms, "connect(tcp " + std::to_string(port) + ")");
  } catch (...) {
    ::close(fd);
    throw;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    sys_fail("setsockopt(SO_RCVTIMEO)");
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0)
    sys_fail("setsockopt(SO_SNDTIMEO)");
}

int accept_connection(int listen_fd) {
  // Injected before accept(2) so the pending connection survives the fault
  // and the retried accept picks it up.
  faultinject::maybe_throw(g_fault_accept, "accept");
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    // Listener torn down during shutdown: report as clean end-of-accepts.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) return -1;
    sys_fail("accept");
  }
}

void send_all(int fd, const void* data, std::size_t size) {
  faultinject::maybe_throw(g_fault_write, "send");
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw Error("send: timed out");
      sys_fail("send");
    }
    if (n == 0) throw Error("send: peer closed connection");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool recv_all(int fd, void* data, std::size_t size) {
  faultinject::maybe_throw(g_fault_read, "recv");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw Error("recv: timed out");
      sys_fail("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw Error("recv: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void close_socket(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace doseopt::serve
