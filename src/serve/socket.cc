#include "serve/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace doseopt::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    sys_fail("bind(" + path + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    sys_fail("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    sys_fail("bind(tcp " + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    sys_fail("listen(tcp)");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      sys_fail("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    sys_fail("connect(" + path + ")");
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    sys_fail("connect(tcp " + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    // Listener torn down during shutdown: report as clean end-of-accepts.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) return -1;
    sys_fail("accept");
  }
}

void send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    if (n == 0) throw Error("send: peer closed connection");
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool recv_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw Error("recv: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void close_socket(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

}  // namespace doseopt::serve
