// Persistent doseopt job server.
//
// Accepts framed JSON job requests (serve/protocol.h) over a Unix-domain
// socket and/or a loopback TCP socket, schedules them on worker lanes built
// from common::ThreadPool, and answers with the same golden metrics a
// direct flow::run_flow call produces -- bit-identical, because each job
// runs serial-inline on its lane (nested parallel loops detect the pool
// region and collapse), so results cannot depend on lane count or on what
// other jobs are in flight.
//
// Scheduling: a bounded FIFO queue feeds the lanes.  A full queue rejects
// the request immediately with kJobRejected carrying retry_after_ms
// (backpressure; the client backs off instead of the server buffering
// unboundedly).  Jobs carry optional deadlines, checked cooperatively
// before each expensive stage; an expired or disconnected job is dropped
// without running its solve.  stop() performs a graceful drain: no new
// work is accepted, queued jobs finish, then sessions are snapshotted.
//
// Telemetry: per-stage wall clocks (context build, coefficient fit, flow
// solve), queue depth, accept/complete/reject/expire counters, and session
// cache hit rates, served as JSON via kMetricsRequest and metrics().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "serve/cache.h"
#include "serve/histogram.h"
#include "serve/job.h"
#include "serve/json.h"

namespace doseopt::serve {

struct ServerOptions {
  std::string uds_path;  ///< "" = no Unix-domain listener
  int tcp_port = -1;     ///< -1 = no TCP listener; 0 = kernel-assigned
  int lanes = 2;         ///< concurrent worker lanes
  std::size_t queue_capacity = 8;    ///< pending jobs before backpressure
  double retry_after_ms = 250.0;     ///< hint sent with kJobRejected
  std::string snapshot_dir;          ///< "" = no warm-start persistence
  bool verbose = false;              ///< log job lifecycle to stderr
  /// Self-healing knobs.  A failing job is re-attempted in place up to
  /// job_max_attempts times (deterministic backoff between attempts);
  /// breaker_threshold consecutive *exhausted* jobs trip the circuit
  /// breaker, which sheds new requests with kJobRejected (retry_after =
  /// remaining cooldown) until breaker_cooldown_ms elapses.
  int job_max_attempts = 2;
  double job_retry_backoff_ms = 10.0;
  int breaker_threshold = 8;      ///< 0 disables the breaker
  double breaker_cooldown_ms = 1000.0;
  /// Fleet knobs.  result_store_dir points every worker of a fleet at one
  /// shared content-addressed on-disk result cache (see serde/result_store);
  /// eager_snapshots persists a session right after its cold build+solve so
  /// a respawned replacement worker restores it instead of
  /// re-characterizing; allow_crash_faults opts this process in to the
  /// fleet.worker_crash injection point (SIGKILL mid-job) -- only fleet
  /// workers launched with --crash-faults enable it, so in-process test
  /// servers never kill the test binary.
  std::string result_store_dir;
  bool eager_snapshots = false;
  bool allow_crash_faults = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind listeners and start the accept and worker threads.  Throws
  /// doseopt::Error when no listener is configured or binding fails.
  void start();

  /// Graceful shutdown: stop accepting, drain the queue, join all
  /// threads, snapshot sessions.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual TCP port after start() (useful with tcp_port = 0).
  int tcp_port() const { return tcp_port_; }

  /// Ask the server to leave wait_for_shutdown(); safe from a signal
  /// handler (atomic flag, polled).  Does not stop the server by itself.
  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_release);
  }

  /// Block until request_shutdown() or a kShutdown frame arrives.
  void wait_for_shutdown() const;

  /// Telemetry snapshot (also served via kMetricsRequest).
  Json metrics() const;

  SessionCache& cache() { return cache_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;             ///< frames are written atomically
    std::atomic<bool> open{true};    ///< false after EOF or error
    std::thread reader;
  };

  struct PendingJob {
    std::shared_ptr<Connection> conn;
    JobSpec spec;
    std::chrono::steady_clock::time_point enqueued;
  };

  void accept_loop(int listen_fd);
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const std::string& payload);
  void worker_loop(int lane);
  /// Retry wrapper: run_job() with per-job re-attempts, breaker accounting,
  /// and the terminal kJobError reply when attempts are exhausted.
  void execute_job(PendingJob job);
  /// One attempt of a job (cache lookup, context build, flow solve, reply).
  void run_job(const PendingJob& job);
  void reply(const std::shared_ptr<Connection>& conn, std::uint32_t type,
             const Json& payload);
  /// True (and counts/answers the job as expired) when past its deadline.
  bool expired(const PendingJob& job);
  /// Circuit breaker: remaining shed window (0 = closed), and the
  /// consecutive-failure bump that may open it.
  double breaker_remaining_ms() const;
  void note_job_failure();

  ServerOptions options_;
  SessionCache cache_;
  std::unique_ptr<ThreadPool> pool_;

  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;
  std::thread scheduler_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  mutable std::mutex queue_mu_;  ///< mutable: metrics() reads queue depth
  std::condition_variable queue_cv_;   ///< workers wait for jobs
  std::condition_variable drain_cv_;   ///< stop() waits for empty + idle
  std::deque<PendingJob> queue_;
  std::size_t in_flight_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  ///< reject new, drain queued
  std::atomic<bool> shutdown_requested_{false};
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_expired_{0};
  std::atomic<std::uint64_t> jobs_dropped_{0};  ///< client went away
  std::atomic<std::uint64_t> jobs_retried_{0};  ///< in-place re-attempts
  std::atomic<std::uint64_t> jobs_shed_{0};     ///< rejected by open breaker
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  /// Circuit breaker state: consecutive exhausted jobs, trip count, and the
  /// shed-until instant (microseconds since start_time_; 0 = closed).
  std::atomic<int> breaker_failures_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::int64_t> breaker_open_until_us_{0};
  /// Stage wall clocks, microseconds, summed over jobs.
  std::atomic<std::uint64_t> stage_context_us_{0};
  std::atomic<std::uint64_t> stage_coeff_us_{0};
  std::atomic<std::uint64_t> stage_flow_us_{0};
  /// Per-stage and end-to-end latency distributions (the sums above give
  /// averages; the histograms expose tails for the fleet dashboard).
  LatencyHistogram hist_job_;      ///< enqueue -> reply, memo hits included
  LatencyHistogram hist_context_;
  LatencyHistogram hist_coeff_;
  LatencyHistogram hist_flow_;
  /// DMopt cutting-plane telemetry, summed over jobs (the structured
  /// replacement for the DOSEOPT_TRACE stderr dump).
  std::atomic<std::uint64_t> dmopt_rounds_{0};
  std::atomic<std::uint64_t> dmopt_admm_iterations_{0};
  std::atomic<std::uint64_t> dmopt_cuts_{0};
  std::atomic<std::uint64_t> dmopt_assembly_us_{0};
  std::atomic<std::uint64_t> dmopt_solve_us_{0};
  std::atomic<std::uint64_t> dmopt_extract_us_{0};
  std::atomic<std::uint64_t> dmopt_mg_seeds_{0};
  std::atomic<std::uint64_t> dmopt_mg_rejects_{0};
  std::atomic<std::uint64_t> dmopt_mixed_solves_{0};
  std::atomic<std::uint64_t> dmopt_mixed_fallbacks_{0};
  std::atomic<std::uint64_t> dmopt_spec_consumed_{0};
  std::atomic<std::uint64_t> dmopt_spec_wasted_{0};
};

}  // namespace doseopt::serve
