// Session cache of analyzed designs, keyed by job content hash.
//
// A session is one fully analyzed design (flow::DesignContext) shared by
// every job whose (design, scale, seed) triple hashes to the same key.  The
// expensive per-design state -- generated netlist, placement, characterized
// variant libraries, fitted coefficient sets -- therefore amortizes across
// repeated and parameter-swept requests; a cache-hit job skips straight to
// the QP/QCP solve.  A second layer memoizes finished result documents by
// full job hash (the flow is deterministic), so an exactly repeated job
// skips the solve too.
//
// Concurrency contract: the cache map is guarded by its own mutex; each
// session carries a mutex that a worker holds for the *duration of a job*
// (jobs mutate the context: lazy coefficient fits, dosePl placement moves
// with save/restore).  Jobs on different sessions run fully in parallel.
//
// When a snapshot directory is configured, populate() warm-starts a missing
// session from `<dir>/<key>.snap` (serde layer) instead of re-generating
// and re-characterizing, and save_all() persists every built session so
// caches survive server restarts.
//
// When a result-store directory is configured, memoized result documents
// are additionally published to the shared content-addressed on-disk store
// (serde/result_store.h).  The store is shared across every worker process
// of a fleet: a result solved by one worker answers as a memoized hit on
// any other -- and survives the death of the worker that computed it.  A
// corrupt record is quarantined (renamed to `<file>.corrupt`) and treated
// as a miss; the deterministic re-solve republishes identical bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "flow/context.h"
#include "serve/job.h"

namespace doseopt::serve {

class SessionCache {
 public:
  /// One cached design.  `mu` serializes jobs against the context.
  struct Session {
    std::mutex mu;
    std::unique_ptr<flow::DesignContext> ctx;  ///< built under mu
    std::uint64_t key = 0;
  };

  /// Counters (monotonic, relaxed).
  struct Stats {
    std::uint64_t context_hits = 0;
    std::uint64_t context_misses = 0;
    std::uint64_t snapshots_restored = 0;
    std::uint64_t restore_failures = 0;  ///< corrupt snapshot -> cold rebuild
    std::uint64_t save_failures = 0;     ///< snapshot write failed (kept going)
    std::uint64_t coeff_hits = 0;
    std::uint64_t coeff_misses = 0;
    std::uint64_t result_hits = 0;
    std::uint64_t result_misses = 0;
    std::uint64_t result_disk_hits = 0;   ///< served from the shared store
    std::uint64_t result_quarantined = 0; ///< corrupt store records set aside
    std::uint64_t result_store_failures = 0;  ///< publish failed (kept going)
    std::uint64_t sessions = 0;
    std::uint64_t characterize_calls = 0;  ///< summed over idle sessions
  };

  explicit SessionCache(std::string snapshot_dir = "",
                        std::string result_store_dir = "");

  /// Session slot for this job's (design, scale, seed); never blocks on
  /// other sessions.  The context may not be built yet -- callers lock
  /// `session->mu`, then call populate() if `ctx` is null.
  std::shared_ptr<Session> acquire(const JobSpec& spec);

  /// Build (or snapshot-restore) the session's context.  Caller must hold
  /// `session.mu`.  Sets `*restored` to true when the context came from a
  /// snapshot file.  Counts hit/miss/restore statistics.
  ///
  /// Restore is self-healing: an unreadable or checksum-corrupt snapshot is
  /// quarantined (renamed to `<file>.corrupt`) and the context is rebuilt
  /// cold from the spec -- never an abort.  The rebuild is deterministic,
  /// so the resulting session is bit-identical to a never-snapshotted one.
  void populate(Session& session, const JobSpec& spec, bool* restored);

  /// Record a coefficient-cache observation (telemetry only).
  void count_coeff(bool hit);

  /// Memoized job results keyed by JobSpec::job_key().  The pipeline is
  /// deterministic, so an identical job always yields the identical result
  /// document; a repeated request skips even the QP/QCP solve.  In-memory
  /// map is bounded FIFO (oldest entries evicted past kMaxResults); a miss
  /// there falls through to the shared on-disk store when configured, and a
  /// disk hit is promoted back into memory.
  std::optional<std::string> lookup_result(std::uint64_t job_key);
  void store_result(std::uint64_t job_key, std::string result_json);

  static constexpr std::size_t kMaxResults = 1024;

  /// Persist one built session now (caller must hold `session.mu`; no-op
  /// without a snapshot directory or for an unbuilt session).  Fleet
  /// workers call this eagerly after a cold build so a respawned
  /// replacement restores the session instead of re-characterizing.
  /// Failures are counted, never thrown.
  void save_session(Session& session);

  /// Persist every built session to the snapshot directory (no-op without
  /// one).  Takes each session's mutex, so it waits for running jobs.
  /// Per-session write failures are counted and skipped (the remaining
  /// sessions still persist); each successful publish is recorded in the
  /// serde last-good journal.
  void save_all();

  /// Statistics snapshot.  Busy sessions are skipped when summing
  /// characterize_calls (their mutex is held by a running job).
  Stats stats() const;

  const std::string& snapshot_dir() const { return snapshot_dir_; }
  const std::string& result_store_dir() const { return result_store_dir_; }

 private:
  std::string snapshot_path(std::uint64_t key) const;
  /// Insert into the in-memory memo map (caller holds results_mu_).
  void remember_result(std::uint64_t job_key, std::string result_json);

  std::string snapshot_dir_;
  std::string result_store_dir_;
  mutable std::mutex mu_;  ///< guards sessions_ map structure
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;

  std::mutex results_mu_;
  std::map<std::uint64_t, std::string> results_;
  std::deque<std::uint64_t> result_order_;  ///< FIFO eviction order

  std::atomic<std::uint64_t> context_hits_{0};
  std::atomic<std::uint64_t> context_misses_{0};
  std::atomic<std::uint64_t> snapshots_restored_{0};
  std::atomic<std::uint64_t> restore_failures_{0};
  std::atomic<std::uint64_t> save_failures_{0};
  std::atomic<std::uint64_t> coeff_hits_{0};
  std::atomic<std::uint64_t> coeff_misses_{0};
  std::atomic<std::uint64_t> result_hits_{0};
  std::atomic<std::uint64_t> result_misses_{0};
  std::atomic<std::uint64_t> result_disk_hits_{0};
  std::atomic<std::uint64_t> result_quarantined_{0};
  std::atomic<std::uint64_t> result_store_failures_{0};
};

}  // namespace doseopt::serve
