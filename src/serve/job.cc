#include "serve/job.h"

#include "common/error.h"
#include "serde/stream.h"

namespace doseopt::serve {

JobSpec JobSpec::from_json(const Json& j) {
  DOSEOPT_CHECK(j.is_object(), "job: request payload must be a JSON object");
  JobSpec spec;
  spec.id = j.get_string("id", "");
  spec.design = j.get_string("design", spec.design);
  spec.scale = j.get_number("scale", spec.scale);
  spec.seed = static_cast<std::uint64_t>(j.get_number("seed", 0.0));
  spec.mode = j.get_string("mode", spec.mode);
  spec.grid_um = j.get_number("grid", spec.grid_um);
  spec.smoothness_delta = j.get_number("delta", spec.smoothness_delta);
  spec.dose_range_pct = j.get_number("range", spec.dose_range_pct);
  spec.modulate_width = j.get_bool("width", spec.modulate_width);
  spec.run_dosepl = j.get_bool("dosepl", spec.run_dosepl);
  spec.incremental = j.get_bool("incremental", spec.incremental);
  spec.mixed_precision = j.get_bool("mixed", spec.mixed_precision);
  spec.deadline_ms = j.get_number("deadline_ms", spec.deadline_ms);
  spec.tau_ns = j.get_number("tau", spec.tau_ns);
  spec.mc_samples =
      static_cast<int>(j.get_number("mc_samples", spec.mc_samples));
  spec.yield_target = j.get_number("yield_target", spec.yield_target);

  DOSEOPT_CHECK(spec.scale > 0.0 && spec.scale <= 1.0,
                "job: scale must be in (0, 1]");
  DOSEOPT_CHECK(spec.mode == "timing" || spec.mode == "leakage" ||
                    spec.mode == "ssta_yield",
                "job: mode must be 'timing', 'leakage', or 'ssta_yield'");
  DOSEOPT_CHECK(spec.grid_um > 0.0, "job: grid must be positive");
  DOSEOPT_CHECK(spec.dose_range_pct > 0.0, "job: range must be positive");
  DOSEOPT_CHECK(spec.deadline_ms >= 0.0, "job: deadline_ms must be >= 0");
  DOSEOPT_CHECK(spec.tau_ns >= 0.0, "job: tau must be >= 0");
  DOSEOPT_CHECK(spec.mc_samples >= 0, "job: mc_samples must be >= 0");
  DOSEOPT_CHECK(spec.yield_target >= 0.0 && spec.yield_target < 1.0,
                "job: yield_target must be in [0, 1)");
  DOSEOPT_CHECK(spec.yield_target == 0.0 || spec.mode == "leakage",
                "job: yield_target requires mode 'leakage'");
  return spec;
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  if (!id.empty()) j.set("id", Json::string(id));
  j.set("design", Json::string(design));
  j.set("scale", Json::number(scale));
  if (seed != 0) j.set("seed", Json::number(static_cast<double>(seed)));
  j.set("mode", Json::string(mode));
  j.set("grid", Json::number(grid_um));
  j.set("delta", Json::number(smoothness_delta));
  j.set("range", Json::number(dose_range_pct));
  j.set("width", Json::boolean(modulate_width));
  j.set("dosepl", Json::boolean(run_dosepl));
  j.set("incremental", Json::boolean(incremental));
  j.set("mixed", Json::boolean(mixed_precision));
  if (deadline_ms > 0.0) j.set("deadline_ms", Json::number(deadline_ms));
  if (tau_ns > 0.0) j.set("tau", Json::number(tau_ns));
  if (mc_samples > 0)
    j.set("mc_samples", Json::number(static_cast<double>(mc_samples)));
  if (yield_target > 0.0) j.set("yield_target", Json::number(yield_target));
  return j;
}

gen::DesignSpec JobSpec::design_spec() const {
  gen::DesignSpec spec = gen::spec_by_name(design);
  if (scale < 1.0) spec = spec.scaled(scale);
  if (seed != 0) spec.seed = seed;
  return spec;
}

flow::FlowOptions JobSpec::flow_options() const {
  flow::FlowOptions options;
  options.mode = mode == "leakage" ? flow::DmoptMode::kMinimizeLeakage
                                   : flow::DmoptMode::kMinimizeCycleTime;
  options.dmopt.grid_um = grid_um;
  options.dmopt.smoothness_delta = smoothness_delta;
  options.dmopt.dose_lower_pct = -dose_range_pct;
  options.dmopt.dose_upper_pct = dose_range_pct;
  options.dmopt.modulate_width = modulate_width;
  options.dmopt.incremental = incremental;
  options.dmopt.qp_settings.mixed_precision = mixed_precision;
  options.run_dose_placement = run_dosepl;
  if (yield_target > 0.0) {
    options.dmopt.yield_target = yield_target;
    if (mc_samples > 0)
      options.dmopt.yield_variation.monte_carlo_samples = mc_samples;
  }
  return options;
}

flow::SstaYieldOptions JobSpec::ssta_options() const {
  flow::SstaYieldOptions options;
  options.tau_ns = tau_ns;
  options.mc_samples = mc_samples;
  return options;
}

namespace {

std::uint64_t hash_field(std::uint64_t h, const std::string& s) {
  h = serde::fnv1a64(s.data(), s.size(), h);
  const char sep = '|';
  return serde::fnv1a64(&sep, 1, h);
}

std::uint64_t hash_field(std::uint64_t h, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  return serde::fnv1a64(&bits, sizeof(bits), h);
}

std::uint64_t hash_field(std::uint64_t h, std::uint64_t v) {
  return serde::fnv1a64(&v, sizeof(v), h);
}

}  // namespace

std::uint64_t JobSpec::session_key() const {
  std::uint64_t h = 14695981039346656037ULL;
  h = hash_field(h, design);
  h = hash_field(h, scale);
  h = hash_field(h, seed);
  return h;
}

std::uint64_t JobSpec::job_key() const {
  std::uint64_t h = session_key();
  h = hash_field(h, mode);
  h = hash_field(h, grid_um);
  h = hash_field(h, smoothness_delta);
  h = hash_field(h, dose_range_pct);
  h = hash_field(h, static_cast<std::uint64_t>(modulate_width ? 1 : 0));
  h = hash_field(h, static_cast<std::uint64_t>(run_dosepl ? 1 : 0));
  h = hash_field(h, static_cast<std::uint64_t>(incremental ? 1 : 0));
  h = hash_field(h, static_cast<std::uint64_t>(mixed_precision ? 1 : 0));
  h = hash_field(h, tau_ns);
  h = hash_field(h, static_cast<std::uint64_t>(mc_samples));
  h = hash_field(h, yield_target);
  return h;
}

namespace {

Json dose_map_to_json(const dose::DoseMap& map) {
  Json j = Json::object();
  j.set("rows", Json::number(static_cast<double>(map.rows())));
  j.set("cols", Json::number(static_cast<double>(map.cols())));
  Json doses = Json::array();
  for (const double d : map.doses()) doses.push_back(Json::number(d));
  j.set("doses", std::move(doses));
  return j;
}

}  // namespace

Json flow_result_to_json(const flow::FlowResult& result) {
  Json j = Json::object();
  j.set("nominal_mct_ns", Json::number(result.nominal_mct_ns));
  j.set("nominal_leakage_uw", Json::number(result.nominal_leakage_uw));
  j.set("final_mct_ns", Json::number(result.final_mct_ns));
  j.set("final_leakage_uw", Json::number(result.final_leakage_uw));

  Json dm = Json::object();
  dm.set("golden_mct_ns", Json::number(result.dmopt.golden_mct_ns));
  dm.set("golden_leakage_uw", Json::number(result.dmopt.golden_leakage_uw));
  dm.set("model_mct_ns", Json::number(result.dmopt.model_mct_ns));
  dm.set("model_delta_leakage_uw",
         Json::number(result.dmopt.model_delta_leakage_uw));
  dm.set("solver_status",
         Json::string(qp::to_string(result.dmopt.solver_status)));
  dm.set("total_qp_iterations",
         Json::number(result.dmopt.total_qp_iterations));
  dm.set("bisection_probes", Json::number(result.dmopt.bisection_probes));
  // Cutting-plane counters: deterministic (compared bit-exact)...
  const dmopt::CutTelemetry& ct = result.dmopt.telemetry;
  dm.set("cut_rounds", Json::number(ct.total_rounds));
  dm.set("admm_iterations", Json::number(ct.total_admm_iterations));
  dm.set("cuts", Json::number(static_cast<double>(ct.total_cuts)));
  // ...and wall-clock split (nondeterministic, excluded from comparisons
  // like runtime_s).
  Json solver_ms = Json::object();
  solver_ms.set("assembly", Json::number(ct.assembly_ns / 1e6));
  solver_ms.set("solve", Json::number(ct.solve_ns / 1e6));
  solver_ms.set("extract", Json::number(ct.extract_ns / 1e6));
  dm.set("solver_ms", std::move(solver_ms));
  dm.set("runtime_s", Json::number(result.dmopt.runtime_s));
  // Recovery-ladder bookkeeping: which degraded paths (if any) produced
  // this result.  Deterministic, compared bit-exact in the E2E tests.
  Json recovery = Json::object();
  recovery.set("degraded", Json::boolean(result.dmopt.degraded));
  if (result.dmopt.degraded) {
    recovery.set("fallback", Json::string(result.dmopt.fallback));
    recovery.set("leakage_slack_uw",
                 Json::number(result.dmopt.leakage_slack_uw));
  }
  recovery.set("qp_cold_fallbacks", Json::number(ct.qp_cold_fallbacks));
  recovery.set("mg_seeds", Json::number(ct.mg_seeds));
  recovery.set("mg_rejects", Json::number(ct.mg_rejects));
  recovery.set("qp_mixed_solves", Json::number(ct.qp_mixed_solves));
  recovery.set("qp_mixed_fallbacks", Json::number(ct.qp_mixed_fallbacks));
  recovery.set("speculative_consumed", Json::number(ct.speculative_consumed));
  recovery.set("speculative_wasted", Json::number(ct.speculative_wasted));
  dm.set("recovery", std::move(recovery));
  if (result.dmopt.yield_target > 0.0) {
    // Yield-percentile mode: the constraint the loop actually optimized
    // and its SSTA/MC verdicts.  All deterministic.
    Json yld = Json::object();
    yld.set("target", Json::number(result.dmopt.yield_target));
    yld.set("tau_ns", Json::number(result.dmopt.yield_tau_ns));
    yld.set("ssta_yield", Json::number(result.dmopt.ssta_yield));
    yld.set("mc_yield", Json::number(result.dmopt.mc_yield));
    yld.set("rollbacks", Json::number(result.dmopt.yield_rollbacks));
    dm.set("yield", std::move(yld));
  }
  dm.set("poly_map", dose_map_to_json(result.dmopt.poly_map));
  if (result.dmopt.active_map.has_value())
    dm.set("active_map", dose_map_to_json(*result.dmopt.active_map));
  j.set("dmopt", std::move(dm));

  if (result.dosepl_run) {
    Json dp = Json::object();
    dp.set("rounds_run", Json::number(result.dosepl.rounds_run));
    dp.set("rounds_accepted", Json::number(result.dosepl.rounds_accepted));
    dp.set("swaps_accepted", Json::number(result.dosepl.swaps_accepted));
    dp.set("initial_mct_ns", Json::number(result.dosepl.initial_mct_ns));
    dp.set("final_mct_ns", Json::number(result.dosepl.final_mct_ns));
    dp.set("initial_leakage_uw",
           Json::number(result.dosepl.initial_leakage_uw));
    dp.set("final_leakage_uw", Json::number(result.dosepl.final_leakage_uw));
    dp.set("runtime_s", Json::number(result.dosepl.runtime_s));
    j.set("dosepl", std::move(dp));
  }
  Json stage_s = Json::object();
  stage_s.set("dmopt", Json::number(result.dmopt_s));
  stage_s.set("dosepl", Json::number(result.dosepl_s));
  stage_s.set("total", Json::number(result.total_s));
  j.set("stage_s", std::move(stage_s));
  return j;
}

Json ssta_yield_result_to_json(const flow::SstaYieldResult& result) {
  Json j = Json::object();
  j.set("tau_ns", Json::number(result.tau_ns));
  j.set("endpoints", Json::number(static_cast<double>(result.endpoints)));

  Json ssta = Json::object();
  ssta.set("mean_mct_ns", Json::number(result.ssta_mean_mct_ns));
  ssta.set("sigma_mct_ns", Json::number(result.ssta_sigma_mct_ns));
  ssta.set("yield", Json::number(result.ssta_yield));
  ssta.set("tau_p50_ns", Json::number(result.tau_p50_ns));
  ssta.set("tau_p95_ns", Json::number(result.tau_p95_ns));
  ssta.set("tau_p99_ns", Json::number(result.tau_p99_ns));
  ssta.set("traversals", Json::number(result.ssta_traversals));
  j.set("ssta", std::move(ssta));

  Json mc = Json::object();
  mc.set("samples", Json::number(result.mc_samples));
  mc.set("yield", Json::number(result.mc_yield));
  mc.set("mean_mct_ns", Json::number(result.mc_mean_mct_ns));
  mc.set("std_mct_ns", Json::number(result.mc_std_mct_ns));
  mc.set("traversals", Json::number(result.mc_traversals));
  j.set("mc", std::move(mc));

  j.set("yield_abs_error", Json::number(result.yield_abs_error));

  Json recovery = Json::object();
  recovery.set("degraded", Json::boolean(result.degraded));
  if (result.degraded) recovery.set("fallback", Json::string(result.fallback));
  j.set("recovery", std::move(recovery));
  return j;
}

Json normalized_result(const Json& result) {
  Json r = result;
  if (r.has("dmopt")) {
    Json dm = r.get("dmopt");
    dm.set("runtime_s", Json::number(0.0));
    dm.set("solver_ms", Json::number(0.0));
    r.set("dmopt", std::move(dm));
  }
  if (r.has("dosepl")) {
    Json dp = r.get("dosepl");
    dp.set("runtime_s", Json::number(0.0));
    r.set("dosepl", std::move(dp));
  }
  if (r.has("stage_s")) r.set("stage_s", Json::number(0.0));
  return r;
}

}  // namespace doseopt::serve
