// Minimal JSON value, parser, and writer for the job protocol.
//
// Implements the subset the doseopt service needs: objects, arrays, UTF-8
// strings with \" \\ \/ \b \f \n \r \t \uXXXX escapes, IEEE doubles, bools,
// null.  Numbers are written with %.17g so every double survives a
// serialize/parse round trip bit-exactly -- the end-to-end tests rely on
// this to assert server results equal direct flow:: calls.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace doseopt::serve {

/// A JSON value (tree-owning).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw doseopt::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;

  /// Object field access.  get() throws on a missing key; the defaulted
  /// variants return the fallback when the key is absent or null.
  bool has(const std::string& key) const;
  const Json& get(const std::string& key) const;
  double get_number(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Mutators (object/array only).
  void set(const std::string& key, Json value);
  void push_back(Json value);

  /// Serialize (compact, keys in sorted order -- deterministic output).
  std::string dump() const;

  /// Parse a complete JSON document; throws doseopt::Error with the byte
  /// offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;

  void dump_to(std::string& out) const;
};

}  // namespace doseopt::serve
