#include "serve/protocol.h"

#include <cstring>

#include "common/error.h"
#include "faultinject/fault.h"
#include "serve/socket.h"

namespace doseopt::serve {

namespace {

faultinject::FaultPoint g_fault_frame("serve.frame");

void put_u32_le(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32_le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

bool valid_type(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(MsgType::kPing) &&
         t <= static_cast<std::uint32_t>(MsgType::kShutdown);
}

}  // namespace

void write_frame(int fd, MsgType type, const std::string& payload) {
  DOSEOPT_CHECK(payload.size() <= kMaxFramePayload,
                "write_frame: payload too large");
  std::string buf(12 + payload.size(), '\0');
  put_u32_le(buf.data(), kFrameMagic);
  put_u32_le(buf.data() + 4, static_cast<std::uint32_t>(type));
  put_u32_le(buf.data() + 8, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(buf.data() + 12, payload.data(), payload.size());
  send_all(fd, buf.data(), buf.size());
}

bool read_frame(int fd, Frame* frame) {
  char header[12];
  if (!recv_all(fd, header, sizeof(header))) return false;
  // Fires after the header was consumed: downstream sees exactly what a
  // torn/corrupted frame produces (a desynchronized stream).
  faultinject::maybe_throw(g_fault_frame, "frame decode");
  if (get_u32_le(header) != kFrameMagic)
    throw Error("protocol: bad frame magic");
  const std::uint32_t type = get_u32_le(header + 4);
  if (!valid_type(type))
    throw Error("protocol: unknown message type " + std::to_string(type));
  // Bounded *before* any allocation: a garbage length prefix (oversized, or
  // a negative i32 reinterpreted as u32 up to 4 GiB) must never drive
  // resize().
  const std::uint32_t length = get_u32_le(header + 8);
  if (length > kMaxFramePayload)
    throw Error("protocol: frame payload of " + std::to_string(length) +
                " bytes exceeds " + std::to_string(kMaxFramePayload) +
                "-byte limit");
  frame->type = static_cast<MsgType>(type);
  frame->payload.resize(length);
  if (length > 0 && !recv_all(fd, frame->payload.data(), length))
    throw Error("protocol: connection closed mid-frame");
  return true;
}

}  // namespace doseopt::serve
