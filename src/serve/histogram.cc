#include "serve/histogram.h"

#include <cmath>

namespace doseopt::serve {

int LatencyHistogram::bucket_of(double ms) {
  if (!(ms > kFloorMs)) return 0;
  const int b = 1 + static_cast<int>(std::floor(std::log2(ms / kFloorMs)));
  return b >= kBuckets ? kBuckets - 1 : b;
}

double LatencyHistogram::upper_bound_ms(int bucket) {
  return kFloorMs * std::exp2(static_cast<double>(bucket));
}

void LatencyHistogram::record(double ms) {
  if (ms < 0.0 || std::isnan(ms)) ms = 0.0;
  buckets_[bucket_of(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto ns = static_cast<std::uint64_t>(ms * 1.0e6);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::quantile_ms(double q) const {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(
        buckets_[b].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo = b == 0 ? 0.0 : upper_bound_ms(b - 1);
      const double hi = upper_bound_ms(b);
      const double frac = (rank - cumulative) / in_bucket;
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return upper_bound_ms(kBuckets - 1);
}

Json LatencyHistogram::to_json() const {
  Json h = Json::object();
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  h.set("count", Json::number(static_cast<double>(total)));
  h.set("p50_ms", Json::number(quantile_ms(0.50)));
  h.set("p90_ms", Json::number(quantile_ms(0.90)));
  h.set("p99_ms", Json::number(quantile_ms(0.99)));
  h.set("max_ms",
        Json::number(static_cast<double>(
                         max_ns_.load(std::memory_order_relaxed)) /
                     1.0e6));
  int last = -1;
  for (int b = 0; b < kBuckets; ++b)
    if (buckets_[b].load(std::memory_order_relaxed) != 0) last = b;
  Json bounds = Json::array();
  Json counts = Json::array();
  for (int b = 0; b <= last; ++b) {
    bounds.push_back(Json::number(upper_bound_ms(b)));
    counts.push_back(Json::number(static_cast<double>(
        buckets_[b].load(std::memory_order_relaxed))));
  }
  h.set("le_ms", std::move(bounds));
  h.set("counts", std::move(counts));
  return h;
}

}  // namespace doseopt::serve
