#include "serve/cache.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "serde/result_store.h"
#include "serde/snapshot.h"

namespace doseopt::serve {

namespace {

/// The snapshot must describe the same design the job asked for; a stale or
/// hash-colliding file falls back to a fresh build instead of silently
/// answering for the wrong design.
bool spec_matches(const gen::DesignSpec& a, const gen::DesignSpec& b) {
  return a.name == b.name && a.tech == b.tech &&
         a.target_cells == b.target_cells && a.target_nets == b.target_nets &&
         a.seed == b.seed;
}

}  // namespace

SessionCache::SessionCache(std::string snapshot_dir,
                           std::string result_store_dir)
    : snapshot_dir_(std::move(snapshot_dir)),
      result_store_dir_(std::move(result_store_dir)) {
  if (!snapshot_dir_.empty()) {
    std::filesystem::create_directories(snapshot_dir_);
    serde::reclaim_stale_tmp_files(snapshot_dir_);
  }
  if (!result_store_dir_.empty()) {
    std::filesystem::create_directories(result_store_dir_);
    serde::reclaim_stale_tmp_files(result_store_dir_);
  }
}

std::shared_ptr<SessionCache::Session> SessionCache::acquire(
    const JobSpec& spec) {
  const std::uint64_t key = spec.session_key();
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sessions_[key];
  if (!slot) {
    slot = std::make_shared<Session>();
    slot->key = key;
  }
  return slot;
}

void SessionCache::populate(Session& session, const JobSpec& spec,
                            bool* restored) {
  if (restored != nullptr) *restored = false;
  if (session.ctx != nullptr) {
    context_hits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  context_misses_.fetch_add(1, std::memory_order_relaxed);
  const gen::DesignSpec want = spec.design_spec();

  if (!snapshot_dir_.empty()) {
    const std::string path = snapshot_path(session.key);
    if (std::filesystem::exists(path)) {
      try {
        serde::DesignState state = serde::read_design_snapshot(path);
        if (spec_matches(state.spec, want)) {
          session.ctx =
              std::make_unique<flow::DesignContext>(std::move(state));
          snapshots_restored_.fetch_add(1, std::memory_order_relaxed);
          if (restored != nullptr) *restored = true;
          return;
        }
      } catch (const std::exception& e) {
        // Corrupt or unreadable snapshot (bad checksum, truncation, injected
        // read fault): quarantine the file for post-mortem and fall through
        // to a cold rebuild.  The rebuild is deterministic from the spec, so
        // the session ends up bit-identical to a never-snapshotted one.
        restore_failures_.fetch_add(1, std::memory_order_relaxed);
        const auto journal = serde::journal_read(snapshot_dir_);
        const std::string name = path.substr(path.find_last_of('/') + 1);
        std::fprintf(stderr,
                     "[serve] snapshot restore failed (%s)%s; quarantining "
                     "and rebuilding cold: %s\n",
                     e.what(),
                     journal.count(name) != 0
                         ? " [journaled as last-good: corrupted on disk]"
                         : "",
                     path.c_str());
        std::error_code ec;
        std::filesystem::rename(path, path + ".corrupt", ec);
        if (ec) std::filesystem::remove(path, ec);
      }
    }
  }
  session.ctx = std::make_unique<flow::DesignContext>(want);
}

void SessionCache::count_coeff(bool hit) {
  (hit ? coeff_hits_ : coeff_misses_).fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::string> SessionCache::lookup_result(
    std::uint64_t job_key) {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    const auto it = results_.find(job_key);
    if (it != results_.end()) {
      result_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  if (!result_store_dir_.empty()) {
    try {
      if (auto payload = serde::read_result(result_store_dir_, job_key)) {
        // Another worker (or a dead predecessor of this one) published the
        // record; promote it into memory so repeats skip the disk.
        result_hits_.fetch_add(1, std::memory_order_relaxed);
        result_disk_hits_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(results_mu_);
        remember_result(job_key, *payload);
        return payload;
      }
    } catch (const std::exception& e) {
      // Corrupt shared record (torn write from a crashed host, bit rot,
      // injected fleet.cache_corrupt): set it aside for post-mortem and
      // treat the key as a miss.  The re-solve is deterministic, so the
      // republished record is bit-identical to what the file should have
      // held.
      result_quarantined_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "[serve] result cache record corrupt (%s); quarantining\n",
                   e.what());
      serde::quarantine_result(result_store_dir_, job_key);
    }
  }
  result_misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SessionCache::remember_result(std::uint64_t job_key,
                                   std::string result_json) {
  const auto [it, inserted] =
      results_.emplace(job_key, std::move(result_json));
  if (!inserted) return;  // racing identical job already stored it
  result_order_.push_back(job_key);
  while (result_order_.size() > kMaxResults) {
    results_.erase(result_order_.front());
    result_order_.pop_front();
  }
}

void SessionCache::store_result(std::uint64_t job_key,
                                std::string result_json) {
  if (!result_store_dir_.empty()) {
    try {
      serde::write_result(result_store_dir_, job_key, result_json);
    } catch (const std::exception& e) {
      // A failed publish (disk full, injected fault) must not fail the job;
      // the result still memoizes in memory.
      result_store_failures_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "[serve] result cache publish failed: %s\n",
                   e.what());
    }
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  remember_result(job_key, std::move(result_json));
}

void SessionCache::save_session(Session& session) {
  if (snapshot_dir_.empty() || session.ctx == nullptr) return;
  const std::string path = snapshot_path(session.key);
  try {
    const std::uint64_t checksum = session.ctx->save_snapshot(path);
    serde::journal_append(snapshot_dir_,
                          path.substr(path.find_last_of('/') + 1), checksum);
  } catch (const std::exception& e) {
    // One failed write (disk full, injected fault) must not abort the
    // drain or starve the remaining sessions of persistence.
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "[serve] snapshot save failed for %s: %s\n",
                 path.c_str(), e.what());
  }
}

void SessionCache::save_all() {
  if (snapshot_dir_.empty()) return;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [key, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->mu);
    save_session(*session);
  }
}

SessionCache::Stats SessionCache::stats() const {
  Stats s;
  s.context_hits = context_hits_.load(std::memory_order_relaxed);
  s.context_misses = context_misses_.load(std::memory_order_relaxed);
  s.snapshots_restored = snapshots_restored_.load(std::memory_order_relaxed);
  s.restore_failures = restore_failures_.load(std::memory_order_relaxed);
  s.save_failures = save_failures_.load(std::memory_order_relaxed);
  s.coeff_hits = coeff_hits_.load(std::memory_order_relaxed);
  s.coeff_misses = coeff_misses_.load(std::memory_order_relaxed);
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.result_misses = result_misses_.load(std::memory_order_relaxed);
  s.result_disk_hits = result_disk_hits_.load(std::memory_order_relaxed);
  s.result_quarantined = result_quarantined_.load(std::memory_order_relaxed);
  s.result_store_failures =
      result_store_failures_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.sessions = sessions_.size();
    sessions.reserve(sessions_.size());
    for (const auto& [key, session] : sessions_) sessions.push_back(session);
  }
  for (const auto& session : sessions) {
    std::unique_lock<std::mutex> lock(session->mu, std::try_to_lock);
    if (lock.owns_lock() && session->ctx != nullptr)
      s.characterize_calls += session->ctx->repo().characterize_calls();
  }
  return s;
}

std::string SessionCache::snapshot_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016" PRIx64 ".snap", key);
  return snapshot_dir_ + "/" + name;
}

}  // namespace doseopt::serve
