#include "serve/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.h"
#include "serve/socket.h"

namespace doseopt::serve {

Client Client::connect_unix_path(const std::string& path) {
  return Client(connect_unix(path));
}

Client Client::connect_tcp_port(int port) { return Client(connect_tcp(port)); }

Client::~Client() {
  if (fd_ >= 0) close_socket(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close_socket(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::ping() {
  write_frame(fd_, MsgType::kPing, "");
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame), "client: server closed during ping");
  DOSEOPT_CHECK(frame.type == MsgType::kPong,
                "client: unexpected reply to ping");
}

Client::Reply Client::read_reply() {
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame),
                "client: server closed before replying");
  DOSEOPT_CHECK(frame.type == MsgType::kJobResult ||
                    frame.type == MsgType::kJobError ||
                    frame.type == MsgType::kJobRejected,
                "client: unexpected reply frame type");
  Reply reply;
  reply.type = frame.type;
  reply.payload = Json::parse(frame.payload);
  return reply;
}

Client::Reply Client::submit(const JobSpec& spec) {
  write_frame(fd_, MsgType::kJobRequest, spec.to_json().dump());
  return read_reply();
}

Client::Reply Client::submit_with_retry(const JobSpec& spec,
                                        int max_attempts) {
  Reply reply;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    reply = submit(spec);
    if (reply.type != MsgType::kJobRejected) return reply;
    const double wait_ms = reply.payload.get_number("retry_after_ms", 100.0);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(wait_ms * 1000.0)));
  }
  return reply;
}

Json Client::metrics() {
  write_frame(fd_, MsgType::kMetricsRequest, "");
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame),
                "client: server closed before metrics reply");
  DOSEOPT_CHECK(frame.type == MsgType::kMetricsReply,
                "client: unexpected reply to metrics request");
  return Json::parse(frame.payload);
}

void Client::request_shutdown() { write_frame(fd_, MsgType::kShutdown, ""); }

}  // namespace doseopt::serve
