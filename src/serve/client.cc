#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "serve/socket.h"

namespace doseopt::serve {

namespace {

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
}

}  // namespace

Client::Client(int fd, Endpoint endpoint, ClientOptions options)
    : fd_(fd), endpoint_(std::move(endpoint)), options_(options) {
  if (options_.io_timeout_ms > 0) set_io_timeout(fd_, options_.io_timeout_ms);
}

Client Client::connect_unix_path(const std::string& path,
                                 const ClientOptions& options) {
  Endpoint ep;
  ep.tcp = false;
  ep.path = path;
  return Client(connect_unix(path, options.connect_timeout_ms), std::move(ep),
                options);
}

Client Client::connect_tcp_port(int port, const ClientOptions& options) {
  Endpoint ep;
  ep.tcp = true;
  ep.port = port;
  return Client(connect_tcp(port, options.connect_timeout_ms), std::move(ep),
                options);
}

Client::~Client() { disconnect(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      options_(other.options_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    disconnect();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    options_ = other.options_;
  }
  return *this;
}

void Client::disconnect() {
  if (fd_ >= 0) close_socket(fd_);
  fd_ = -1;
}

int Client::open_endpoint() const {
  return endpoint_.tcp
             ? connect_tcp(endpoint_.port, options_.connect_timeout_ms)
             : connect_unix(endpoint_.path, options_.connect_timeout_ms);
}

void Client::reconnect() {
  disconnect();
  fd_ = open_endpoint();
  if (options_.io_timeout_ms > 0) set_io_timeout(fd_, options_.io_timeout_ms);
}

void Client::ping() {
  DOSEOPT_CHECK(fd_ >= 0, "client: not connected");
  write_frame(fd_, MsgType::kPing, "");
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame), "client: server closed during ping");
  DOSEOPT_CHECK(frame.type == MsgType::kPong,
                "client: unexpected reply to ping");
}

Client::Reply Client::read_reply() {
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame),
                "client: server closed before replying");
  DOSEOPT_CHECK(frame.type == MsgType::kJobResult ||
                    frame.type == MsgType::kJobError ||
                    frame.type == MsgType::kJobRejected,
                "client: unexpected reply frame type");
  Reply reply;
  reply.type = frame.type;
  reply.payload = Json::parse(frame.payload);
  return reply;
}

Client::Reply Client::submit(const JobSpec& spec) {
  DOSEOPT_CHECK(fd_ >= 0, "client: not connected");
  write_frame(fd_, MsgType::kJobRequest, spec.to_json().dump());
  return read_reply();
}

Client::Reply Client::submit_with_retry(const JobSpec& spec,
                                        const RetryPolicy& policy) {
  // One generator for the whole call: the jitter sequence (and therefore
  // the retry schedule) is a pure function of the seed.
  Rng jitter(policy.jitter_seed);
  auto backoff_ms = [&](int attempt) {
    double ms = policy.base_ms;
    for (int i = 0; i < attempt && ms < policy.max_ms; ++i)
      ms *= policy.multiplier;
    ms = std::min(ms, policy.max_ms);
    return ms * (0.5 + 0.5 * jitter.uniform());
  };

  Reply reply;
  std::string last_error;
  bool have_reply = false;
  const int attempts = std::max(1, policy.max_attempts);
  const auto t0 = std::chrono::steady_clock::now();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // A job with a deadline gets the *remaining* budget on each attempt:
    // retries must not let the job spend a multiple of its deadline.
    JobSpec attempt_spec = spec;
    if (spec.deadline_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const double remaining = spec.deadline_ms - elapsed_ms;
      if (remaining <= 0.0)
        throw Error("client: job '" + spec.id + "' deadline (" +
                    std::to_string(spec.deadline_ms) +
                    " ms) exhausted before attempt " +
                    std::to_string(attempt + 1) +
                    (last_error.empty() ? "" : ": " + last_error));
      attempt_spec.deadline_ms = remaining;
    }
    try {
      if (fd_ < 0) reconnect();
      reply = submit(attempt_spec);
      have_reply = true;
    } catch (const std::exception& e) {
      // Transport died mid-round-trip; the connection's framing state is
      // unknown, so drop it and (maybe) try again on a fresh one.  The
      // server memoizes by job key, so a re-submitted job whose reply was
      // lost returns the identical cached result.
      last_error = e.what();
      disconnect();
      if (!policy.retry_on_transport_error || attempt + 1 >= attempts) throw;
      sleep_ms(backoff_ms(attempt));
      continue;
    }
    if (reply.type == MsgType::kJobRejected) {
      if (attempt + 1 >= attempts) return reply;
      // Backpressure / open circuit breaker: honor the server's suggested
      // wait, but never less than our own backoff floor.
      const double server_ms = reply.payload.get_number("retry_after_ms", 0.0);
      sleep_ms(std::max(server_ms, backoff_ms(attempt)));
      continue;
    }
    if (reply.type == MsgType::kJobError && policy.retry_on_job_error &&
        attempt + 1 < attempts) {
      sleep_ms(backoff_ms(attempt));
      continue;
    }
    return reply;
  }
  if (!have_reply)
    throw Error("client: job '" + spec.id + "' failed after " +
                std::to_string(attempts) + " attempts: " + last_error);
  return reply;
}

Json Client::metrics() {
  DOSEOPT_CHECK(fd_ >= 0, "client: not connected");
  write_frame(fd_, MsgType::kMetricsRequest, "");
  Frame frame;
  DOSEOPT_CHECK(read_frame(fd_, &frame),
                "client: server closed before metrics reply");
  DOSEOPT_CHECK(frame.type == MsgType::kMetricsReply,
                "client: unexpected reply to metrics request");
  return Json::parse(frame.payload);
}

void Client::request_shutdown() {
  DOSEOPT_CHECK(fd_ >= 0, "client: not connected");
  write_frame(fd_, MsgType::kShutdown, "");
}

}  // namespace doseopt::serve
