// Job descriptions and results of the doseopt service.
//
// A job carries the same knobs as doseopt_cli: which Table I design, the
// size scale, an optional seed override, the DMopt formulation and its
// grid/smoothness/range parameters, width modulation, and the dosePl stage.
// Request schema (all fields optional except "design"):
//
//   { "id": "job-1", "design": "aes65", "scale": 0.05, "seed": 0,
//     "mode": "timing" | "leakage" | "ssta_yield", "grid": 10.0,
//     "delta": 2.0, "range": 5.0, "width": false, "dosepl": false,
//     "incremental": true, "mixed": false, "deadline_ms": 0,
//     "tau": 0.0, "mc_samples": 0, "yield_target": 0.0 }
//
// Mode "ssta_yield" runs the analytic yield analysis (flow/ssta_yield.h)
// instead of a dose optimization; "yield_target" > 0 turns a "leakage" job
// into the yield-percentile constraint mode of DMopt.
//
// Results carry the golden per-stage metrics plus the optimized dose maps;
// every double is emitted with %.17g so comparisons against a direct
// flow:: invocation are bit-exact after a JSON round trip.
#pragma once

#include <cstdint>
#include <string>

#include "flow/optimize.h"
#include "flow/ssta_yield.h"
#include "gen/design_gen.h"
#include "serve/json.h"

namespace doseopt::serve {

/// Parsed job description.
struct JobSpec {
  std::string id;
  std::string design = "aes65";
  double scale = 1.0;
  std::uint64_t seed = 0;  ///< 0 = keep the design's default seed
  std::string mode = "timing";
  double grid_um = 5.0;
  double smoothness_delta = 2.0;
  double dose_range_pct = 5.0;
  bool modulate_width = false;
  bool run_dosepl = false;
  /// Incremental cutting-plane solve path (warm-started QP); false forces
  /// the cold A/B reference.  Golden results are identical either way.
  bool incremental = true;
  /// Mixed-precision (float32 inner CG) warm solves.  Solutions must pass
  /// the float64 KKT acceptance; a stalled or rejected float run falls back
  /// to pure double (recovery.qp_mixed_fallbacks), so golden results are
  /// solver-precision-independent.
  bool mixed_precision = false;
  double deadline_ms = 0.0;  ///< 0 = no deadline
  // SSTA / yield knobs (mode "ssta_yield" and the yield-percentile DMopt).
  double tau_ns = 0.0;        ///< yield evaluation clock; 0 = nominal MCT
  int mc_samples = 0;         ///< MC cross-check samples; 0 = model default
  double yield_target = 0.0;  ///< DMopt yield percentile; 0 = off

  /// Parse from the kJobRequest JSON payload; throws doseopt::Error on
  /// malformed or out-of-range fields.
  static JobSpec from_json(const Json& j);
  Json to_json() const;

  /// The design spec this job runs on (scaled, seed-overridden).
  gen::DesignSpec design_spec() const;

  /// Flow controls equivalent to the CLI flags.
  flow::FlowOptions flow_options() const;

  /// Controls of the ssta_yield job kind (mode == "ssta_yield").
  flow::SstaYieldOptions ssta_options() const;

  /// Content hash of the fields that decide the *session* (design
  /// identity): design, scale, seed.  Jobs with equal session keys share a
  /// cached DesignContext; solver knobs differ per job.
  std::uint64_t session_key() const;

  /// Content hash of every field except id/deadline (full job identity).
  std::uint64_t job_key() const;
};

/// Serialize the deterministic portion of a flow result (plus wall-clock
/// runtime fields, which callers must exclude from bit-exact comparisons).
Json flow_result_to_json(const flow::FlowResult& result);

/// Serialize an ssta_yield result.  Every field is deterministic, so the
/// whole document participates in bit-exact served-vs-direct comparisons.
Json ssta_yield_result_to_json(const flow::SstaYieldResult& result);

/// Zero the wall-clock fields of a result document (dmopt.runtime_s,
/// dmopt.solver_ms, dosepl.runtime_s, stage_s) so that two executions of
/// the same deterministic job compare bit-exact through Json::dump().
/// Documents without those fields (ssta_yield) pass through unchanged.
/// Shared by the loadgen verifier, the router's hedge cross-check, and the
/// campaign driver's commit hashing.
Json normalized_result(const Json& result);

}  // namespace doseopt::serve
