// Blocking client for the doseopt job server.
//
// One Client wraps one connection and keeps at most one job outstanding:
// submit() writes a kJobRequest frame and blocks until the matching reply
// (result, error, or backpressure rejection) arrives.  Concurrency comes
// from using one Client per thread; the server interleaves jobs from many
// connections across its worker lanes.
//
// The client is self-healing: it remembers its endpoint, so a transport
// failure (torn frame, dropped connection, injected socket fault, timeout)
// can be recovered by reconnect() -- and submit_with_retry() does so
// automatically under a RetryPolicy with exponential backoff and
// deterministic jitter.  Because the server memoizes results by job key,
// re-submitting after a lost reply returns the bit-identical result without
// re-solving.
#pragma once

#include <cstdint>
#include <string>

#include "serve/job.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace doseopt::serve {

/// Connection-level knobs.  Zero means "no bound" (block forever), the
/// historical behavior.
struct ClientOptions {
  int connect_timeout_ms = 0;  ///< bound on each connect attempt
  int io_timeout_ms = 0;       ///< bound on each recv/send (dead-server guard)
};

/// Retry schedule for submit_with_retry(): attempt k (0-based) sleeps
/// min(max_ms, base_ms * multiplier^k) scaled by a deterministic jitter in
/// [1/2, 1) drawn from common::Rng(jitter_seed) -- the same seed always
/// produces the same backoff sequence.
struct RetryPolicy {
  int max_attempts = 16;
  double base_ms = 25.0;
  double multiplier = 2.0;
  double max_ms = 2000.0;
  std::uint64_t jitter_seed = 0x5eed;
  /// Also retry transport errors (reconnecting first).  Rejections
  /// (backpressure / open circuit breaker) are always retried after the
  /// server-suggested retry_after_ms.
  bool retry_on_transport_error = true;
  /// Also retry kJobError replies (transient injected/solver faults).
  bool retry_on_job_error = false;
};

class Client {
 public:
  /// Connect over a Unix-domain socket / loopback TCP.  Throws on failure.
  static Client connect_unix_path(const std::string& path,
                                  const ClientOptions& options = {});
  static Client connect_tcp_port(int port, const ClientOptions& options = {});

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip a kPing; throws if the server does not answer kPong.
  void ping();

  /// A job's terminal reply.
  struct Reply {
    MsgType type = MsgType::kJobError;  ///< kJobResult/kJobError/kJobRejected
    Json payload;
    bool ok() const { return type == MsgType::kJobResult; }
  };

  /// Submit one job and block for its reply.  Throws on transport failure.
  Reply submit(const JobSpec& spec);

  /// Submit under `policy`: reconnects and retries transport errors,
  /// honors retry_after_ms on rejections, optionally retries job errors.
  /// Returns the first acceptable reply, or the last reply when attempts
  /// run out; throws only if every attempt died in transport.
  Reply submit_with_retry(const JobSpec& spec, const RetryPolicy& policy = {});

  /// Drop the connection (if any) and re-establish it to the remembered
  /// endpoint.  Safe to call when already disconnected.
  void reconnect();

  /// True while the underlying socket is believed healthy.
  bool connected() const { return fd_ >= 0; }

  /// Fetch the server's telemetry JSON.
  Json metrics();

  /// Ask the server to drain and exit (no reply expected).
  void request_shutdown();

 private:
  struct Endpoint {
    bool tcp = false;
    std::string path;
    int port = 0;
  };

  Client(int fd, Endpoint endpoint, ClientOptions options);
  Reply read_reply();
  void disconnect();
  int open_endpoint() const;

  int fd_ = -1;
  Endpoint endpoint_;
  ClientOptions options_;
};

}  // namespace doseopt::serve
