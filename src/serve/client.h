// Blocking client for the doseopt job server.
//
// One Client wraps one connection and keeps at most one job outstanding:
// submit() writes a kJobRequest frame and blocks until the matching reply
// (result, error, or backpressure rejection) arrives.  Concurrency comes
// from using one Client per thread; the server interleaves jobs from many
// connections across its worker lanes.
#pragma once

#include <string>

#include "serve/job.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace doseopt::serve {

class Client {
 public:
  /// Connect over a Unix-domain socket / loopback TCP.  Throws on failure.
  static Client connect_unix_path(const std::string& path);
  static Client connect_tcp_port(int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip a kPing; throws if the server does not answer kPong.
  void ping();

  /// A job's terminal reply.
  struct Reply {
    MsgType type = MsgType::kJobError;  ///< kJobResult/kJobError/kJobRejected
    Json payload;
    bool ok() const { return type == MsgType::kJobResult; }
  };

  /// Submit one job and block for its reply.
  Reply submit(const JobSpec& spec);

  /// Submit with bounded retries on backpressure rejection: sleeps the
  /// server-suggested retry_after_ms between attempts.  Returns the first
  /// non-rejection reply (or the last rejection when attempts run out).
  Reply submit_with_retry(const JobSpec& spec, int max_attempts = 16);

  /// Fetch the server's telemetry JSON.
  Json metrics();

  /// Ask the server to drain and exit (no reply expected).
  void request_shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}
  Reply read_reply();

  int fd_ = -1;
};

}  // namespace doseopt::serve
