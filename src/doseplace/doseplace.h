// Dose map-aware placement optimization (dosePl) -- the cell-swapping
// heuristic of the paper's Appendix (Algorithm 1).
//
// Given a placement-aware optimized dose map, swap setup-critical cells into
// higher-dose grids (and non-critical cells out) to further improve timing,
// under filters that protect wirelength and leakage:
//   * both cells must lie inside each other's fanin/fanout bounding boxes,
//   * their distance must not exceed a multiple of the gate pitch (gamma2),
//   * the HPWL of each cell's incident nets must not grow by more than
//     gamma3,
//   * the pair's combined leakage must not grow by more than gamma4.
// Each round performs up to gamma5 swaps, then legalizes, re-extracts
// parasitics (ECO), and re-times; rounds that do not improve the golden MCT
// are rolled back with their cells marked unswappable.
#pragma once

#include "dose/dose_map.h"
#include "extract/extract.h"
#include "liberty/repository.h"
#include "place/placement.h"
#include "sta/timer.h"

namespace doseopt::doseplace {

/// Heuristic controls (gamma1..gamma5 of the paper, plus top-K).
struct DosePlOptions {
  std::size_t top_k_paths = 10000;   ///< K critical paths per round
  int rounds = 10;                   ///< total swap rounds
  int max_swaps_per_path = 1;        ///< gamma1
  double distance_pitch_factor = 20.0;  ///< gamma2 = factor * gate pitch
  double hpwl_increase_limit = 0.20;    ///< gamma3 (fractional)
  double leak_increase_limit = 0.10;    ///< gamma4 (fractional)
  int max_swaps_per_round = 1;          ///< gamma5
};

/// Result of a dosePl run.
struct DosePlResult {
  int rounds_run = 0;
  int rounds_accepted = 0;
  int swaps_accepted = 0;
  double initial_mct_ns = 0.0;
  double final_mct_ns = 0.0;
  double initial_leakage_uw = 0.0;
  double final_leakage_uw = 0.0;
  double runtime_s = 0.0;
};

/// The swapper.  Mutates `placement`, `parasitics`, and `variants` in place
/// (the caller keeps ownership); the dose maps stay fixed.
class DosePlacer {
 public:
  DosePlacer(netlist::Netlist* nl, place::Placement* placement,
             extract::Parasitics* parasitics,
             liberty::LibraryRepository* repo, const sta::Timer* timer,
             DosePlOptions options);

  /// Run the heuristic against `poly_map` (and optionally `active_map`).
  /// `variants` must correspond to the maps at the current placement; it is
  /// kept consistent as cells move between grids.
  DosePlResult run(const dose::DoseMap& poly_map,
                   const dose::DoseMap* active_map,
                   sta::VariantAssignment& variants);

 private:
  /// Refresh every cell's variant from its (possibly new) grid dose.
  void reassign_variants(const dose::DoseMap& poly_map,
                         const dose::DoseMap* active_map,
                         sta::VariantAssignment& variants) const;

  netlist::Netlist* nl_;
  place::Placement* placement_;
  extract::Parasitics* parasitics_;
  liberty::LibraryRepository* repo_;
  const sta::Timer* timer_;
  DosePlOptions options_;
};

}  // namespace doseopt::doseplace
