#include "doseplace/doseplace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "common/error.h"
#include "place/bbox.h"
#include "place/placer.h"
#include "power/leakage.h"

namespace doseopt::doseplace {

using netlist::CellId;
using netlist::kNoCell;
using netlist::NetId;

namespace {

/// Nets whose extracted parasitics differ between two extractions (exact
/// field compare) -- the incremental-timing invalidation set after an ECO.
std::vector<NetId> changed_parasitic_nets(const extract::Parasitics& before,
                                          const extract::Parasitics& after) {
  std::vector<NetId> changed;
  for (std::size_t n = 0; n < after.net_count(); ++n) {
    const auto id = static_cast<NetId>(n);
    const extract::NetParasitics& a = before.net(id);
    const extract::NetParasitics& b = after.net(id);
    if (a.length_um != b.length_um || a.wire_cap_ff != b.wire_cap_ff ||
        a.wire_res_kohm != b.wire_res_kohm)
      changed.push_back(id);
  }
  return changed;
}

}  // namespace

DosePlacer::DosePlacer(netlist::Netlist* nl, place::Placement* placement,
                       extract::Parasitics* parasitics,
                       liberty::LibraryRepository* repo,
                       const sta::Timer* timer, DosePlOptions options)
    : nl_(nl), placement_(placement), parasitics_(parasitics), repo_(repo),
      timer_(timer), options_(options) {
  DOSEOPT_CHECK(nl_ && placement_ && parasitics_ && repo_ && timer_,
                "DosePlacer: null dependency");
}

void DosePlacer::reassign_variants(const dose::DoseMap& poly_map,
                                   const dose::DoseMap* active_map,
                                   sta::VariantAssignment& variants) const {
  for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
    const auto id = static_cast<CellId>(c);
    const std::size_t g =
        poly_map.grid_at(placement_->x_um(id), placement_->y_um(id));
    const double dp = poly_map.doses()[g];
    double da = 0.0;
    if (active_map != nullptr) {
      const std::size_t ga =
          active_map->grid_at(placement_->x_um(id), placement_->y_um(id));
      da = active_map->doses()[ga];
    }
    variants.set(id, liberty::dose_to_variant_index(dp),
                 liberty::dose_to_variant_index(da));
  }
}

DosePlResult DosePlacer::run(const dose::DoseMap& poly_map,
                             const dose::DoseMap* active_map,
                             sta::VariantAssignment& variants) {
  const auto t0 = std::chrono::steady_clock::now();
  DosePlResult result;

  const double gate_pitch_um =
      placement_->die().width_um /
      std::sqrt(static_cast<double>(nl_->cell_count()));
  const double max_distance_um =
      options_.distance_pitch_factor * gate_pitch_um;

  // Persistent incremental-STA state: a swap round only re-times the cone
  // of the moved cells' nets, not the whole design.
  sta::TimingState timing_state;
  sta::TimingResult timing = timer_->update(timing_state, variants);
  result.initial_mct_ns = timing.mct_ns;
  result.initial_leakage_uw = power::total_leakage_uw(*nl_, *repo_, variants);
  double best_mct = timing.mct_ns;

  std::unordered_set<CellId> fixed;  // rolled-back cells, never retried

  // Cells per grid for candidate lookup.  Valid until a round's ECO
  // actually moves cells (legalize after accepted swaps); a rolled-back
  // round restores every location exactly, so the binning survives it.
  std::vector<std::vector<CellId>> grid_cells(poly_map.grid_count());
  bool grid_cells_dirty = true;

  // Saved state for rollback (snapshotted at the top of each round).
  struct SavedLoc {
    CellId cell;
    place::CellLocation loc;
  };
  std::vector<SavedLoc> saved;
  saved.reserve(nl_->cell_count());

  for (int round = 0; round < options_.rounds; ++round) {
    ++result.rounds_run;

    // --- golden analysis of the current state (no-op when unchanged) ---
    timing = timer_->update(timing_state, variants);
    std::vector<sta::TimingPath> paths =
        timer_->top_paths(variants, timing, options_.top_k_paths);
    if (paths.empty()) break;

    // Weights (eq. (13)): W(cell) = sum over containing critical paths of
    // e^{-slack}.  Also mark criticality.
    std::vector<double> weight(nl_->cell_count(), 0.0);
    std::vector<bool> critical(nl_->cell_count(), false);
    for (const sta::TimingPath& p : paths) {
      const double w = std::exp(-p.slack_ns);
      for (CellId c : p.cells) {
        weight[c] += w;
        critical[c] = true;
      }
    }

    // Paths in non-decreasing slack order (most critical first).
    std::sort(paths.begin(), paths.end(),
              [](const sta::TimingPath& a, const sta::TimingPath& b) {
                return a.slack_ns < b.slack_ns;
              });

    if (grid_cells_dirty) {
      for (auto& cells : grid_cells) cells.clear();
      for (std::size_t c = 0; c < nl_->cell_count(); ++c) {
        const auto id = static_cast<CellId>(c);
        grid_cells[poly_map.grid_at(placement_->x_um(id),
                                    placement_->y_um(id))]
            .push_back(id);
      }
      grid_cells_dirty = false;
    }

    saved.clear();
    for (std::size_t c = 0; c < nl_->cell_count(); ++c)
      saved.push_back({static_cast<CellId>(c),
                       placement_->location(static_cast<CellId>(c))});

    // --- Algorithm 1: find up to gamma5 swaps ---
    int swaps_this_round = 0;
    std::vector<CellId> swapped_cells;
    std::vector<int> swaps_on_path(paths.size(), 0);
    // Map cells to the paths that contain them, to update per-path counts.
    // (Only needed for the paths we touch; rebuilt per swap for simplicity.)

    for (std::size_t pk = 0;
         pk < paths.size() && swaps_this_round < options_.max_swaps_per_round;
         ++pk) {
      const sta::TimingPath& path = paths[pk];
      if (swaps_on_path[pk] >= options_.max_swaps_per_path) continue;

      // Cells of this path in non-increasing weight order.
      std::vector<CellId> cells = path.cells;
      std::sort(cells.begin(), cells.end(), [&weight](CellId a, CellId b) {
        return weight[a] > weight[b];
      });

      bool swapped = false;
      for (CellId cell_l : cells) {
        if (fixed.contains(cell_l)) continue;
        const std::size_t gl = poly_map.grid_at(placement_->x_um(cell_l),
                                                placement_->y_um(cell_l));
        const double dose_l = poly_map.doses()[gl];

        // Grids intersecting the cell's bounding box, by dose descending.
        const place::Rect bl = place::cell_bounding_box(*placement_, cell_l);
        std::vector<std::size_t> grids;
        {
          const std::size_t i_lo = poly_map.grid_at(bl.min_x, bl.min_y) /
                                   poly_map.cols();
          const std::size_t j_lo = poly_map.grid_at(bl.min_x, bl.min_y) %
                                   poly_map.cols();
          const std::size_t i_hi = poly_map.grid_at(bl.max_x, bl.max_y) /
                                   poly_map.cols();
          const std::size_t j_hi = poly_map.grid_at(bl.max_x, bl.max_y) %
                                   poly_map.cols();
          for (std::size_t gi = i_lo; gi <= i_hi; ++gi)
            for (std::size_t gj = j_lo; gj <= j_hi; ++gj)
              grids.push_back(poly_map.flat_index(gi, gj));
        }
        std::sort(grids.begin(), grids.end(),
                  [&poly_map](std::size_t a, std::size_t b) {
                    return poly_map.doses()[a] > poly_map.doses()[b];
                  });

        for (const std::size_t g : grids) {
          if (poly_map.doses()[g] <= dose_l) break;  // no dose gain left

          // Non-critical candidates in this grid, nearest first.  Distances
          // are computed once per candidate, not inside the comparator.
          std::vector<std::pair<double, CellId>> candidates;
          for (CellId cm : grid_cells[g])
            if (!critical[cm] && !fixed.contains(cm) && cm != cell_l)
              candidates.emplace_back(
                  place::cell_distance_um(*placement_, cell_l, cm), cm);
          std::sort(candidates.begin(), candidates.end());

          for (const auto& [dist_m, cell_m] : candidates) {
            if (dist_m > max_distance_um)
              break;  // sorted by distance: all further ones fail too
            const place::Rect bm =
                place::cell_bounding_box(*placement_, cell_m);
            if (!bm.contains(placement_->x_um(cell_l),
                             placement_->y_um(cell_l)) ||
                !bl.contains(placement_->x_um(cell_m),
                             placement_->y_um(cell_m)))
              continue;

            // HPWL filter (gamma3) on both cells' incident nets.
            const double hl0 = place::incident_hpwl_um(*placement_, cell_l);
            const double hm0 = place::incident_hpwl_um(*placement_, cell_m);
            placement_->swap_cells(cell_l, cell_m);
            const double hl1 = place::incident_hpwl_um(*placement_, cell_l);
            const double hm1 = place::incident_hpwl_um(*placement_, cell_m);
            const bool hpwl_ok =
                hl1 <= hl0 * (1.0 + options_.hpwl_increase_limit) + 1e-9 &&
                hm1 <= hm0 * (1.0 + options_.hpwl_increase_limit) + 1e-9;

            // Leakage filter (gamma4): pair leakage at the swapped grids.
            const auto master_l = nl_->cell(cell_l).master_index;
            const auto master_m = nl_->cell(cell_m).master_index;
            const int vl_old = liberty::dose_to_variant_index(dose_l);
            const int vm_old =
                liberty::dose_to_variant_index(poly_map.doses()[g]);
            const double leak_before =
                repo_->variant(vl_old, 10).cell(master_l).leakage_nw +
                repo_->variant(vm_old, 10).cell(master_m).leakage_nw;
            const double leak_after =
                repo_->variant(vm_old, 10).cell(master_l).leakage_nw +
                repo_->variant(vl_old, 10).cell(master_m).leakage_nw;
            const bool leak_ok =
                leak_after <=
                leak_before * (1.0 + options_.leak_increase_limit);

            if (!hpwl_ok || !leak_ok) {
              placement_->swap_cells(cell_l, cell_m);  // undo
              continue;
            }

            // Accept this candidate swap.
            ++swaps_this_round;
            ++swaps_on_path[pk];
            swapped_cells.push_back(cell_l);
            swapped_cells.push_back(cell_m);
            swapped = true;
            break;
          }
          if (swapped) break;
        }
        if (swapped) break;
      }
    }

    if (swaps_this_round == 0) break;  // nothing left to try

    // --- ECO: legalize, re-extract, re-assign variants, golden re-time ---
    // The extraction replaces the whole Parasitics object, so diff it
    // against the previous one to hand the timer the exact set of nets to
    // re-time (legalization usually perturbs only nets near the swaps).
    place::legalize(*placement_);
    extract::Parasitics before_eco = *parasitics_;
    *parasitics_ = extract::extract(*placement_, repo_->device().node());
    reassign_variants(poly_map, active_map, variants);
    const sta::TimingResult& after = timer_->update(
        timing_state, variants,
        changed_parasitic_nets(before_eco, *parasitics_));

    if (after.mct_ns < best_mct - 1e-9) {
      best_mct = after.mct_ns;
      ++result.rounds_accepted;
      result.swaps_accepted += swaps_this_round;
      grid_cells_dirty = true;  // legalized locations stay
    } else {
      // Roll back: restore every location, re-extract, re-assign, and
      // re-sync the timing state against the restored parasitics.
      for (const SavedLoc& s : saved) placement_->set_location(s.cell, s.loc);
      before_eco = *parasitics_;
      *parasitics_ = extract::extract(*placement_, repo_->device().node());
      reassign_variants(poly_map, active_map, variants);
      timer_->update(timing_state, variants,
                     changed_parasitic_nets(before_eco, *parasitics_));
      for (CellId c : swapped_cells) fixed.insert(c);
    }
  }

  result.final_mct_ns = best_mct;
  result.final_leakage_uw = power::total_leakage_uw(*nl_, *repo_, variants);
  result.runtime_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return result;
}

}  // namespace doseopt::doseplace
