#include "serde/result_store.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "faultinject/fault.h"
#include "serde/stream.h"

namespace doseopt::serde {

namespace {

faultinject::FaultPoint g_fault_cache_corrupt("fleet.cache_corrupt");

constexpr char kMagic[8] = {'D', 'O', 'S', 'E', 'R', 'E', 'S', '1'};

void fsync_fd_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(),
                        directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY);
  if (fd < 0)
    throw Error("result store: open for fsync failed: " + path + ": " +
                std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw Error("result store: fsync failed: " + path + ": " +
                std::strerror(errno));
}

}  // namespace

std::string result_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016" PRIx64 ".res", key);
  return dir + "/" + name;
}

void write_result(const std::string& dir, std::uint64_t key,
                  std::string_view payload) {
  std::filesystem::create_directories(dir);
  const std::string path = result_path(dir, key);
  // Unique temp name per process *and* per call: concurrent worker lanes
  // publishing the same key never interleave bytes into one temp file.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

  ByteWriter header;
  for (const char c : kMagic) header.put_u8(static_cast<std::uint8_t>(c));
  header.put_u32(kResultStoreVersion);
  header.put_u64(payload.size());
  header.put_u64(fnv1a64(payload.data(), payload.size()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("result store: cannot open " + tmp + " for writing");
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!os) {
      os.close();
      ::unlink(tmp.c_str());
      throw Error("result store: write to " + tmp + " failed");
    }
  }
  // Durability order mirrors the snapshot layer: bytes, rename, directory
  // entry.  A crash at any instant leaves the old record or the new one,
  // never a torn mix.
  fsync_fd_path(tmp, /*directory=*/false);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw Error("result store: rename to " + path + " failed: " + err);
  }
  fsync_fd_path(dir, /*directory=*/true);
}

std::optional<std::string> read_result(const std::string& dir,
                                       std::uint64_t key) {
  const std::string path = result_path(dir, key);
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  faultinject::maybe_throw(g_fault_cache_corrupt, "result cache read");

  char magic[8];
  is.read(magic, 8);
  if (!is || std::memcmp(magic, kMagic, 8) != 0)
    throw Error("result store: bad magic in " + path);
  char fixed[4 + 8 + 8];
  is.read(fixed, sizeof(fixed));
  if (!is) throw Error("result store: truncated header in " + path);
  ByteReader hr(std::string_view(fixed, sizeof(fixed)));
  const std::uint32_t version = hr.get_u32();
  if (version != kResultStoreVersion)
    throw Error("result store: unsupported version " +
                std::to_string(version) + " in " + path);
  const std::uint64_t size = hr.get_u64();
  const std::uint64_t checksum = hr.get_u64();

  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size)
    throw Error("result store: payload shorter than header declares in " +
                path);
  if (is.peek() != std::istream::traits_type::eof())
    throw Error("result store: trailing bytes in " + path);
  if (fnv1a64(payload.data(), payload.size()) != checksum)
    throw Error("result store: checksum mismatch in " + path);
  return payload;
}

void quarantine_result(const std::string& dir, std::uint64_t key) {
  const std::string path = result_path(dir, key);
  std::error_code ec;
  std::filesystem::rename(path, path + ".corrupt", ec);
  if (ec) std::filesystem::remove(path, ec);
}

int reclaim_stale_tmp_files(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return 0;
  int reclaimed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    // Match "<base>.tmp.<pid>" and "<base>.tmp.<pid>.<seq>".
    const std::size_t at = name.rfind(".tmp.");
    if (at == std::string::npos) continue;
    const std::string suffix = name.substr(at + 5);
    const std::size_t dot = suffix.find('.');
    const std::string pid_str = suffix.substr(0, dot);
    if (pid_str.empty() ||
        pid_str.find_first_not_of("0123456789") != std::string::npos)
      continue;
    if (dot != std::string::npos) {
      const std::string seq_str = suffix.substr(dot + 1);
      if (seq_str.empty() ||
          seq_str.find_first_not_of("0123456789") != std::string::npos)
        continue;
    }
    const long pid = std::strtol(pid_str.c_str(), nullptr, 10);
    if (pid <= 0 || pid == static_cast<long>(::getpid())) continue;
    // kill(pid, 0) probes liveness: ESRCH means the writer is gone and its
    // temp file can never be renamed into place.  EPERM means alive (owned
    // by someone else) -- leave it.
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec)) ++reclaimed;
  }
  return reclaimed;
}

}  // namespace doseopt::serde
