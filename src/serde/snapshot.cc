#include "serde/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "faultinject/fault.h"
#include "serde/stream.h"

namespace doseopt::serde {

namespace {

faultinject::FaultPoint g_fault_write("serde.snapshot_write");
faultinject::FaultPoint g_fault_read("serde.snapshot_read");

constexpr char kMagic[8] = {'D', 'O', 'S', 'E', 'S', 'N', 'A', 'P'};

/// fsync the file at `path` (by a fresh descriptor) so the rename that
/// follows publishes fully durable bytes.
void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(),
                        directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY);
  if (fd < 0)
    throw Error("snapshot: open for fsync failed: " + path + ": " +
                std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw Error("snapshot: fsync failed: " + path + ": " +
                std::strerror(errno));
}

/// Directory part of `path` ("." when none).
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

void put_spec(ByteWriter& w, const gen::DesignSpec& spec) {
  w.put_string(spec.name);
  w.put_string(spec.tech);
  w.put_u64(spec.target_cells);
  w.put_u64(spec.target_nets);
  w.put_f64(spec.chip_area_mm2);
  w.put_f64(spec.flop_fraction);
  w.put_i32(spec.logic_depth);
  w.put_f64(spec.depth_balance);
  w.put_f64(spec.depth_taper);
  w.put_u64(spec.seed);
}

gen::DesignSpec get_spec(ByteReader& r) {
  gen::DesignSpec spec;
  spec.name = r.get_string();
  spec.tech = r.get_string();
  spec.target_cells = r.get_u64();
  spec.target_nets = r.get_u64();
  spec.chip_area_mm2 = r.get_f64();
  spec.flop_fraction = r.get_f64();
  spec.logic_depth = r.get_i32();
  spec.depth_balance = r.get_f64();
  spec.depth_taper = r.get_f64();
  spec.seed = r.get_u64();
  return spec;
}

void put_netlist(ByteWriter& w, const netlist::Netlist& nl) {
  w.put_string(nl.design_name());
  w.put_string(nl.tech_name());
  w.put_u64(nl.net_count());
  for (const netlist::Net& net : nl.nets()) w.put_string(net.name);
  w.put_u64(nl.cell_count());
  for (const netlist::Cell& cell : nl.cells()) {
    w.put_string(cell.name);
    w.put_u64(cell.master_index);
    w.put_u32(cell.output_net);
  }
  // Sink lists per net, in stored order: STA sums net loads in sink order,
  // so replaying connect_input in this exact order keeps timing bit-exact.
  for (const netlist::Net& net : nl.nets()) {
    w.put_u64(net.sinks.size());
    for (const netlist::SinkPin& s : net.sinks) {
      w.put_u32(s.cell);
      w.put_i32(s.pin);
    }
  }
  w.put_u32_vec(nl.primary_inputs());
  w.put_u32_vec(nl.primary_outputs());
}

std::unique_ptr<netlist::Netlist> get_netlist(
    ByteReader& r, const std::vector<liberty::CellMaster>* masters) {
  std::string design_name = r.get_string();
  std::string tech_name = r.get_string();
  auto nl = std::make_unique<netlist::Netlist>(std::move(design_name),
                                               std::move(tech_name), masters);
  const std::uint64_t net_count = r.get_u64();
  for (std::uint64_t n = 0; n < net_count; ++n) nl->add_net(r.get_string());
  const std::uint64_t cell_count = r.get_u64();
  for (std::uint64_t c = 0; c < cell_count; ++c) {
    std::string name = r.get_string();
    const std::uint64_t master_index = r.get_u64();
    const std::uint32_t out = r.get_u32();
    nl->add_cell(std::move(name), master_index, out);
  }
  for (std::uint64_t n = 0; n < net_count; ++n) {
    const std::uint64_t sink_count = r.get_u64();
    for (std::uint64_t s = 0; s < sink_count; ++s) {
      const std::uint32_t cell = r.get_u32();
      const std::int32_t pin = r.get_i32();
      nl->connect_input(cell, pin, static_cast<netlist::NetId>(n));
    }
  }
  for (const std::uint32_t n : r.get_u32_vec()) nl->mark_primary_input(n);
  for (const std::uint32_t n : r.get_u32_vec()) nl->mark_primary_output(n);
  nl->validate();
  return nl;
}

void put_placement(ByteWriter& w, const place::Placement& placement) {
  const place::Die& die = placement.die();
  w.put_f64(die.width_um);
  w.put_f64(die.height_um);
  w.put_f64(die.row_height_um);
  w.put_f64(die.site_width_um);
  const std::size_t cells = placement.netlist().cell_count();
  w.put_u64(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    const place::CellLocation loc =
        placement.location(static_cast<netlist::CellId>(c));
    w.put_i32(loc.row);
    w.put_i32(loc.site);
  }
}

std::unique_ptr<place::Placement> get_placement(ByteReader& r,
                                                const netlist::Netlist* nl,
                                                place::Die* die_out) {
  place::Die die;
  die.width_um = r.get_f64();
  die.height_um = r.get_f64();
  die.row_height_um = r.get_f64();
  die.site_width_um = r.get_f64();
  const std::uint64_t cells = r.get_u64();
  if (cells != nl->cell_count())
    throw Error("snapshot corrupt: placement cell count " +
                std::to_string(cells) + " != netlist cell count " +
                std::to_string(nl->cell_count()));
  auto placement = std::make_unique<place::Placement>(nl, die);
  for (std::uint64_t c = 0; c < cells; ++c) {
    place::CellLocation loc;
    loc.row = r.get_i32();
    loc.site = r.get_i32();
    placement->set_location(static_cast<netlist::CellId>(c), loc);
  }
  *die_out = die;
  return placement;
}

void put_table(ByteWriter& w, const liberty::NldmTable& t) {
  w.put_f64_vec(t.slew_axis());
  w.put_f64_vec(t.load_axis());
  for (std::size_t i = 0; i < t.slew_points(); ++i)
    for (std::size_t j = 0; j < t.load_points(); ++j) w.put_f64(t.at(i, j));
}

liberty::NldmTable get_table(ByteReader& r) {
  std::vector<double> slew = r.get_f64_vec();
  std::vector<double> load = r.get_f64_vec();
  liberty::NldmTable t(std::move(slew), std::move(load));
  for (std::size_t i = 0; i < t.slew_points(); ++i)
    for (std::size_t j = 0; j < t.load_points(); ++j) t.at(i, j) = r.get_f64();
  return t;
}

void put_library(ByteWriter& w, const liberty::Library& lib) {
  w.put_f64(lib.delta_l_nm());
  w.put_f64(lib.delta_w_nm());
  w.put_u64(lib.cell_count());
  for (const liberty::CharacterizedCell& cell : lib.cells()) {
    w.put_string(cell.name);
    w.put_u64(cell.master_index);
    w.put_f64(cell.input_cap_ff);
    w.put_f64(cell.leakage_nw);
    put_table(w, cell.arc.delay_rise);
    put_table(w, cell.arc.delay_fall);
    put_table(w, cell.arc.slew_rise);
    put_table(w, cell.arc.slew_fall);
  }
}

std::unique_ptr<liberty::Library> get_library(ByteReader& r,
                                              const tech::TechNode& node) {
  const double delta_l = r.get_f64();
  const double delta_w = r.get_f64();
  auto lib = std::make_unique<liberty::Library>(node, delta_l, delta_w);
  const std::uint64_t cells = r.get_u64();
  for (std::uint64_t i = 0; i < cells; ++i) {
    liberty::CharacterizedCell cell;
    cell.name = r.get_string();
    cell.master_index = r.get_u64();
    cell.input_cap_ff = r.get_f64();
    cell.leakage_nw = r.get_f64();
    cell.arc.delay_rise = get_table(r);
    cell.arc.delay_fall = get_table(r);
    cell.arc.slew_rise = get_table(r);
    cell.arc.slew_fall = get_table(r);
    lib->add_cell(std::move(cell));
  }
  return lib;
}

}  // namespace

std::uint64_t write_design_state(std::ostream& os, const gen::DesignSpec& spec,
                                 const netlist::Netlist& netlist,
                                 const place::Placement& placement,
                                 const liberty::LibraryRepository& repo) {
  faultinject::maybe_throw(g_fault_write, "snapshot write");
  ByteWriter w;
  put_spec(w, spec);

  // Master inventory, for read-time validation that the rebuilt repository
  // aligns index-for-index with the snapshotted netlist.
  w.put_u64(repo.masters().size());
  for (const liberty::CellMaster& m : repo.masters()) w.put_string(m.name);

  put_netlist(w, netlist);
  put_placement(w, placement);

  const std::vector<std::pair<int, int>> keys = repo.characterized_keys();
  w.put_u64(keys.size());
  for (const auto& [il, iw] : keys) {
    const liberty::Library* lib = repo.find_variant(il, iw);
    DOSEOPT_CHECK(lib != nullptr, "snapshot: characterized variant vanished");
    w.put_i32(il);
    w.put_i32(iw);
    put_library(w, *lib);
  }

  const std::string payload = w.take();
  const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());
  ByteWriter header;
  for (const char c : kMagic) header.put_u8(static_cast<std::uint8_t>(c));
  header.put_u32(kSnapshotVersion);
  header.put_u64(payload.size());
  header.put_u64(checksum);
  os.write(header.bytes().data(),
           static_cast<std::streamsize>(header.bytes().size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) throw Error("snapshot: stream write failed");
  return checksum;
}

DesignState read_design_state(std::istream& is) {
  faultinject::maybe_throw(g_fault_read, "snapshot read");
  char magic[8];
  is.read(magic, 8);
  if (!is || std::memcmp(magic, kMagic, 8) != 0)
    throw Error("snapshot: bad magic (not a doseopt snapshot)");

  char fixed[4 + 8 + 8];
  is.read(fixed, sizeof(fixed));
  if (!is) throw Error("snapshot truncated: incomplete header");
  ByteReader hr(std::string_view(fixed, sizeof(fixed)));
  const std::uint32_t version = hr.get_u32();
  if (version != kSnapshotVersion)
    throw Error("snapshot: unsupported version " + std::to_string(version) +
                " (expected " + std::to_string(kSnapshotVersion) + ")");
  const std::uint64_t payload_size = hr.get_u64();
  const std::uint64_t checksum = hr.get_u64();

  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_size)
    throw Error("snapshot truncated: payload shorter than header declares");
  const std::uint64_t actual = fnv1a64(payload.data(), payload.size());
  if (actual != checksum)
    throw Error("snapshot: checksum mismatch (file corrupt)");
  if (is.peek() != std::istream::traits_type::eof())
    throw Error("snapshot: trailing bytes after payload");

  ByteReader r(payload);
  DesignState state;
  state.spec = get_spec(r);
  state.node = tech::tech_node_by_name(state.spec.tech);
  state.repo = std::make_unique<liberty::LibraryRepository>(state.node);

  const std::uint64_t master_count = r.get_u64();
  if (master_count != state.repo->masters().size())
    throw Error("snapshot: master inventory size mismatch");
  for (std::uint64_t i = 0; i < master_count; ++i) {
    const std::string name = r.get_string();
    if (name != state.repo->masters()[i].name)
      throw Error("snapshot: master name mismatch at index " +
                  std::to_string(i) + ": " + name + " != " +
                  state.repo->masters()[i].name);
  }

  state.netlist = get_netlist(r, &state.repo->masters());
  state.placement = get_placement(r, state.netlist.get(), &state.die);

  const std::uint64_t variant_count = r.get_u64();
  for (std::uint64_t v = 0; v < variant_count; ++v) {
    const std::int32_t il = r.get_i32();
    const std::int32_t iw = r.get_i32();
    state.repo->insert_variant(il, iw, get_library(r, state.node));
  }

  if (!r.exhausted())
    throw Error("snapshot corrupt: " + std::to_string(r.remaining()) +
                " trailing payload bytes");
  return state;
}

std::uint64_t write_design_snapshot(const std::string& path,
                                    const gen::DesignSpec& spec,
                                    const netlist::Netlist& netlist,
                                    const place::Placement& placement,
                                    const liberty::LibraryRepository& repo) {
  // Unique temp name: concurrent writers (or a stale temp from a crashed
  // process) can never interleave bytes into each other's file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::uint64_t checksum = 0;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("snapshot: cannot open " + tmp + " for writing");
    try {
      checksum = write_design_state(os, spec, netlist, placement, repo);
    } catch (...) {
      os.close();
      ::unlink(tmp.c_str());  // never leave a known-bad temp behind
      throw;
    }
  }
  // Durability order: file bytes, then the rename, then the directory
  // entry.  A crash between any two steps leaves the previous snapshot
  // intact and readable.
  fsync_path(tmp, /*directory=*/false);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw Error("snapshot: rename to " + path + " failed: " + err);
  }
  fsync_path(dir_of(path), /*directory=*/true);
  return checksum;
}

DesignState read_design_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("snapshot: cannot open " + path);
  return read_design_state(is);
}

std::string journal_path(const std::string& dir) {
  return dir + "/journal.lastgood";
}

void journal_append(const std::string& dir, const std::string& name,
                    std::uint64_t checksum) {
  const std::string line = str_format("%s %016llx\n", name.c_str(),
                                      static_cast<unsigned long long>(checksum));
  // O_APPEND keeps concurrent appenders line-atomic for short lines;
  // fsync makes the record durable before the caller trusts it.
  const int fd = ::open(journal_path(dir).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    throw Error("snapshot journal: cannot open " + journal_path(dir) + ": " +
                std::strerror(errno));
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw Error("snapshot journal: write failed: " + err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw Error("snapshot journal: fsync failed");
}

std::map<std::string, std::uint64_t> journal_read(const std::string& dir) {
  std::map<std::string, std::uint64_t> last_good;
  std::ifstream is(journal_path(dir));
  if (!is) return last_good;
  std::string line;
  while (std::getline(is, line)) {
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;  // torn final line
    const std::string name = line.substr(0, space);
    char* end = nullptr;
    const unsigned long long checksum =
        std::strtoull(line.c_str() + space + 1, &end, 16);
    if (end == line.c_str() + space + 1) continue;
    last_good[name] = static_cast<std::uint64_t>(checksum);
  }
  return last_good;
}

}  // namespace doseopt::serde
