// Binary stream primitives for the snapshot layer.
//
// All multi-byte quantities are packed little-endian with explicit byte
// shifts, so the on-disk format is identical on any host.  Doubles travel
// as their IEEE-754 bit pattern (bit_cast), which makes snapshot round
// trips bit-exact.  A running FNV-1a 64 checksum over the payload bytes is
// maintained on both sides; the snapshot header stores it so corruption is
// detected before any value is interpreted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace doseopt::serde {

/// FNV-1a 64-bit over a byte range, continuing from `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 14695981039346656037ULL);

/// Append-only little-endian encoder over an owned byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(std::string_view s);
  void put_f64_vec(const std::vector<double>& v);
  void put_u32_vec(const std::vector<std::uint32_t>& v);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.  Every
/// read past the end throws doseopt::Error("snapshot truncated ...").
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  std::vector<double> get_f64_vec();
  std::vector<std::uint32_t> get_u32_vec();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const std::uint8_t* need(std::size_t n);
  /// Validated element count for a sequence of `elem_size`-byte items; caps
  /// counts at the bytes actually remaining so a corrupt length cannot
  /// drive a huge allocation.
  std::size_t get_count(std::size_t elem_size);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace doseopt::serde
