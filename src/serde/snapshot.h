// Versioned, checksummed binary snapshots of analyzed-design state.
//
// A snapshot captures everything that is expensive to rebuild for a dose
// optimization request: the design spec, the generated netlist (with exact
// sink and PI/PO orders, so restored STA is bit-identical), the legal
// placement, and every characterized library variant (full NLDM tables).
// Parasitics and fitted coefficients are *derived* state -- recomputed
// deterministically from the restored objects -- and are not stored.
//
// File layout:
//
//   [ 8 bytes magic "DOSESNAP" ][ u32 version ][ u64 payload size ]
//   [ u64 FNV-1a checksum of payload ][ payload bytes ... ]
//
// The reader validates magic, version, size, and checksum before decoding
// a single payload value; any mismatch throws doseopt::Error with a
// description (never undefined behavior on corrupt input).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "gen/design_gen.h"
#include "liberty/repository.h"
#include "netlist/netlist.h"
#include "place/placement.h"
#include "tech/tech_node.h"

namespace doseopt::serde {

/// Current snapshot format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// A restored design: the netlist is bound to the repository's master list,
/// the repository holds every variant the snapshot carried.  Feed this to
/// flow::DesignContext to resume optimization without re-generating or
/// re-characterizing anything.
struct DesignState {
  gen::DesignSpec spec;
  tech::TechNode node;
  std::unique_ptr<liberty::LibraryRepository> repo;
  std::unique_ptr<netlist::Netlist> netlist;
  place::Die die;
  std::unique_ptr<place::Placement> placement;
};

/// Serialize design state to a stream.  `repo` contributes its master list
/// (validated on read) and every characterized variant.  Returns the
/// payload checksum written into the header.
std::uint64_t write_design_state(std::ostream& os, const gen::DesignSpec& spec,
                                 const netlist::Netlist& netlist,
                                 const place::Placement& placement,
                                 const liberty::LibraryRepository& repo);

/// Deserialize a snapshot written by write_design_state.  Throws
/// doseopt::Error on bad magic, unsupported version, size or checksum
/// mismatch, or structurally invalid content (netlist validation runs).
DesignState read_design_state(std::istream& is);

/// File convenience wrappers.  Writes are crash-safe: the snapshot is
/// streamed to a unique temp file, fsynced, renamed over `path`, and the
/// directory entry is fsynced -- a crash at any instant leaves either the
/// old file or the new one, never a torn mix.  Returns the payload
/// checksum (for the last-good journal).
std::uint64_t write_design_snapshot(const std::string& path,
                                    const gen::DesignSpec& spec,
                                    const netlist::Netlist& netlist,
                                    const place::Placement& placement,
                                    const liberty::LibraryRepository& repo);
DesignState read_design_snapshot(const std::string& path);

/// Last-good snapshot journal: an append-only text file recording, for
/// every successfully published snapshot, its file name and payload
/// checksum.  On restore failure the journal distinguishes "this file was
/// once verified good and has since been corrupted on disk" from "unknown
/// file" -- and gives tests/tools a durable record to audit against.
///
/// Format: one `<name> <checksum-hex>` line per publish; later lines win.
void journal_append(const std::string& dir, const std::string& name,
                    std::uint64_t checksum);

/// Read the journal back as name -> last recorded checksum.  A missing
/// journal yields an empty map; a torn final line (crash mid-append) is
/// skipped, never an error.
std::map<std::string, std::uint64_t> journal_read(const std::string& dir);

/// Journal file path inside `dir` (for tests and tooling).
std::string journal_path(const std::string& dir);

}  // namespace doseopt::serde
