// Checksummed append-only write-ahead journal.
//
// The campaign driver records orchestration intent ("about to run job i")
// and outcome ("job i committed with result hash H") so that a process
// killed at ANY instant can resume exactly once: committed jobs are
// skipped through the content-addressed result store, in-flight intents
// are deterministically re-submitted.  The format reuses the serde
// conventions (little-endian framing, FNV-1a checksums, tmp+rename+fsync
// durability):
//
//   segment file "<dir>/journal.<index %06u>.seg":
//     [ 8 bytes magic "DOSEJNL1" ][ u32 version ][ u64 segment index ]
//     record*:
//       [ u32 record magic ][ u32 type ][ u64 seq ]
//       [ u64 payload size ][ u64 FNV-1a of payload ][ payload bytes ]
//
// Appends write the full record then fsync the segment; rotation creates
// the next segment header via tmp file + rename + directory fsync, so a
// crash can never leave a half-written segment header.  Replay validates
// every record in order (magic, checksum, contiguous seq) and tolerates a
// torn tail -- a partially written final record -- ONLY in the final
// segment, reporting it instead of throwing; torn or missing bytes
// anywhere else are real corruption and throw doseopt::Error.
//
// The `campaign.journal_torn` fault point fires inside append(): it writes
// only a prefix of the record bytes and throws, producing exactly the
// torn tail a mid-write crash would -- the recovery path (reopen, which
// truncates the tail, then re-append) is what the chaos harness and the
// fault sweep exercise.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace doseopt::serde {

/// Current journal format version.
inline constexpr std::uint32_t kJournalVersion = 1;

/// One replayed record.
struct JournalRecord {
  std::uint32_t type = 0;
  std::uint64_t seq = 0;
  std::string payload;
};

/// Result of replaying a journal directory.
struct JournalReplay {
  std::vector<JournalRecord> records;  ///< every valid record, in seq order
  std::uint64_t next_seq = 0;          ///< seq the next append would get
  std::uint64_t segments = 0;          ///< segment files seen
  bool torn_tail = false;              ///< final segment ended mid-record
  std::uint64_t torn_bytes = 0;        ///< bytes discarded from the tail
};

/// Path of segment `index` inside `dir` ("<dir>/journal.<index %06u>.seg").
std::string journal_segment_path(const std::string& dir, std::uint64_t index);

/// Read and validate every segment of `dir` in index order.  A directory
/// with no segments replays empty.  Throws doseopt::Error on corruption
/// anywhere except a torn tail of the final segment (reported, not
/// thrown).
JournalReplay replay_journal(const std::string& dir);

/// Appender.  Opening replays the directory first: a torn tail left by a
/// crashed writer is truncated away, and appends continue at the next
/// sequence number of the surviving prefix.
class JournalWriter {
 public:
  /// `rotate_bytes`: a segment exceeding this starts a successor on the
  /// next append.
  explicit JournalWriter(std::string dir,
                         std::size_t rotate_bytes = 1u << 20);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Durably append one record (write + fsync); returns its seq.  Throws
  /// on I/O failure or an injected campaign.journal_torn firing; after a
  /// torn append the writer is poisoned (the segment has a garbage tail)
  /// and every later append throws -- recover by constructing a fresh
  /// JournalWriter, which truncates the tail.
  std::uint64_t append(std::uint32_t type, std::string_view payload);

  std::uint64_t next_seq() const;
  std::uint64_t segment_index() const;

 private:
  void open_fresh_segment(std::uint64_t index);

  mutable std::mutex mu_;
  std::string dir_;
  std::size_t rotate_bytes_;
  int fd_ = -1;
  bool poisoned_ = false;
  std::uint64_t segment_index_ = 0;
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace doseopt::serde
