#include "serde/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "faultinject/fault.h"
#include "serde/result_store.h"
#include "serde/stream.h"

namespace doseopt::serde {

namespace {

/// Fires inside JournalWriter::append, after a prefix of the record bytes
/// went out but before the fsync -- the exact torn tail a power cut or
/// SIGKILL mid-write leaves behind.  Recovery = reopen (truncate) + retry.
faultinject::FaultPoint g_fault_journal_torn("campaign.journal_torn");

constexpr char kSegmentMagic[8] = {'D', 'O', 'S', 'E', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kRecordMagic = 0x4C4E4A44;  // "DJNL" little-endian
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 8;
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 8 + 8;

void fsync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0)
    throw Error("journal: fsync failed: " + what + ": " +
                std::strerror(errno));
}

void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(),
                        directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY);
  if (fd < 0)
    throw Error("journal: open for fsync failed: " + path + ": " +
                std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw Error("journal: fsync failed: " + path + ": " +
                std::strerror(errno));
}

std::string segment_header_bytes(std::uint64_t index) {
  ByteWriter w;
  for (const char c : kSegmentMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u32(kJournalVersion);
  w.put_u64(index);
  return w.take();
}

std::string record_bytes(std::uint32_t type, std::uint64_t seq,
                         std::string_view payload) {
  ByteWriter w;
  w.put_u32(kRecordMagic);
  w.put_u32(type);
  w.put_u64(seq);
  w.put_u64(payload.size());
  w.put_u64(fnv1a64(payload.data(), payload.size()));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

/// Indices of the segment files present in `dir`, sorted.
std::vector<std::uint64_t> segment_indices(const std::string& dir) {
  std::vector<std::uint64_t> indices;
  if (!std::filesystem::exists(dir)) return indices;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 13 || name.compare(0, 8, "journal.") != 0 ||
        name.compare(name.size() - 4, 4, ".seg") != 0)
      continue;
    const std::string digits = name.substr(8, name.size() - 12);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    indices.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("journal: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// Parse one segment's bytes into `out`.  Returns the number of bytes of
/// valid prefix; a shorter return than `bytes.size()` means the remainder
/// failed to parse (caller decides torn-tail vs corruption).  Throws only
/// on errors that cannot be a torn write (wrong magic/version/index, or a
/// checksum-valid record whose seq breaks continuity).
std::size_t parse_segment(const std::string& path, const std::string& bytes,
                          std::uint64_t expect_index, std::uint64_t* seq,
                          std::vector<JournalRecord>* out) {
  if (bytes.size() < kSegmentHeaderBytes) {
    // Rotation publishes headers atomically (tmp+rename), so a short
    // header is not a torn write -- unless the file is the freshly-renamed
    // successor a crashed writer never appended to, which rename makes
    // impossible to half-produce.  Treat as corruption.
    throw Error("journal: segment header truncated in " + path);
  }
  if (std::memcmp(bytes.data(), kSegmentMagic, 8) != 0)
    throw Error("journal: bad segment magic in " + path);
  ByteReader hr(std::string_view(bytes).substr(8, kSegmentHeaderBytes - 8));
  const std::uint32_t version = hr.get_u32();
  if (version != kJournalVersion)
    throw Error("journal: unsupported version " + std::to_string(version) +
                " in " + path);
  const std::uint64_t index = hr.get_u64();
  if (index != expect_index)
    throw Error("journal: segment index mismatch in " + path + " (header " +
                std::to_string(index) + ", name " +
                std::to_string(expect_index) + ")");

  std::size_t pos = kSegmentHeaderBytes;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) return pos;
    ByteReader r(std::string_view(bytes).substr(pos, kRecordHeaderBytes));
    if (r.get_u32() != kRecordMagic) return pos;
    const std::uint32_t type = r.get_u32();
    const std::uint64_t rec_seq = r.get_u64();
    const std::uint64_t size = r.get_u64();
    const std::uint64_t checksum = r.get_u64();
    if (bytes.size() - pos - kRecordHeaderBytes < size) return pos;
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kRecordHeaderBytes,
                                       static_cast<std::size_t>(size));
    if (fnv1a64(payload.data(), payload.size()) != checksum) return pos;
    // A checksum-valid record with the wrong seq cannot be a torn write;
    // it is logic corruption (reordered or spliced segments).
    if (rec_seq != *seq)
      throw Error("journal: sequence break in " + path + " (record " +
                  std::to_string(rec_seq) + ", expected " +
                  std::to_string(*seq) + ")");
    JournalRecord rec;
    rec.type = type;
    rec.seq = rec_seq;
    rec.payload.assign(payload.data(), payload.size());
    out->push_back(std::move(rec));
    ++*seq;
    pos += kRecordHeaderBytes + static_cast<std::size_t>(size);
  }
  return pos;
}

}  // namespace

std::string journal_segment_path(const std::string& dir,
                                 std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "journal.%06" PRIu64 ".seg", index);
  return dir + "/" + name;
}

JournalReplay replay_journal(const std::string& dir) {
  JournalReplay replay;
  const std::vector<std::uint64_t> indices = segment_indices(dir);
  replay.segments = indices.size();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != i)
      throw Error("journal: missing segment " + std::to_string(i) + " in " +
                  dir);
    const std::string path = journal_segment_path(dir, indices[i]);
    const std::string bytes = read_file(path);
    const std::size_t valid = parse_segment(path, bytes, indices[i],
                                            &replay.next_seq,
                                            &replay.records);
    if (valid < bytes.size()) {
      if (i + 1 != indices.size())
        throw Error("journal: corrupt record mid-journal in " + path +
                    " at offset " + std::to_string(valid));
      // Final segment: a partially written last record is exactly what a
      // crash mid-append leaves.  Tolerate it; the surviving prefix is the
      // journal.
      replay.torn_tail = true;
      replay.torn_bytes = bytes.size() - valid;
    }
  }
  return replay;
}

JournalWriter::JournalWriter(std::string dir, std::size_t rotate_bytes)
    : dir_(std::move(dir)), rotate_bytes_(rotate_bytes) {
  std::filesystem::create_directories(dir_);
  // A crash during rotation can leave a header tmp file behind; the same
  // pid-liveness reclaim the result store uses cleans it up.
  reclaim_stale_tmp_files(dir_);
  const JournalReplay replay = replay_journal(dir_);
  next_seq_ = replay.next_seq;
  if (replay.segments == 0) {
    open_fresh_segment(0);
    return;
  }
  segment_index_ = replay.segments - 1;
  const std::string path = journal_segment_path(dir_, segment_index_);
  if (replay.torn_tail) {
    // Truncate the garbage tail so appends continue a clean prefix.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - replay.torn_bytes);
    fsync_path(path, /*directory=*/false);
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0)
    throw Error("journal: cannot reopen " + path + ": " +
                std::strerror(errno));
  segment_bytes_ = std::filesystem::file_size(path);
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::open_fresh_segment(std::uint64_t index) {
  const std::string path = journal_segment_path(dir_, index);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const std::string header = segment_header_bytes(index);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("journal: cannot open " + tmp + " for writing");
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (!os) {
      os.close();
      ::unlink(tmp.c_str());
      throw Error("journal: write to " + tmp + " failed");
    }
  }
  fsync_path(tmp, /*directory=*/false);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw Error("journal: rename to " + path + " failed: " + err);
  }
  fsync_path(dir_, /*directory=*/true);

  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0)
    throw Error("journal: cannot open " + path + ": " + std::strerror(errno));
  segment_index_ = index;
  segment_bytes_ = header.size();
}

std::uint64_t JournalWriter::append(std::uint32_t type,
                                    std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_)
    throw Error("journal: writer poisoned by a torn append; reopen the "
                "journal to truncate the tail");
  if (segment_bytes_ >= rotate_bytes_) open_fresh_segment(segment_index_ + 1);

  const std::uint64_t seq = next_seq_;
  const std::string bytes = record_bytes(type, seq, payload);
  if (g_fault_journal_torn.should_fire()) {
    // Model a crash mid-write: half the record reaches the file, no fsync,
    // and this writer can no longer be trusted to append after garbage.
    const std::size_t half = bytes.size() / 2;
    (void)!::write(fd_, bytes.data(), half);
    poisoned_ = true;
    throw Error("[fault:campaign.journal_torn] journal append torn");
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = true;  // unknown how much hit the file
      throw Error("journal: append write failed: " + std::string(
                      std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  fsync_fd(fd_, journal_segment_path(dir_, segment_index_));
  segment_bytes_ += bytes.size();
  ++next_seq_;
  return seq;
}

std::uint64_t JournalWriter::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t JournalWriter::segment_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_index_;
}

}  // namespace doseopt::serde
