#include "serde/stream.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace doseopt::serde {

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void ByteWriter::put_u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::put_string(std::string_view s) {
  put_u64(s.size());
  buf_.append(s.data(), s.size());
}

void ByteWriter::put_f64_vec(const std::vector<double>& v) {
  put_u64(v.size());
  for (const double x : v) put_f64(x);
}

void ByteWriter::put_u32_vec(const std::vector<std::uint32_t>& v) {
  put_u64(v.size());
  for (const std::uint32_t x : v) put_u32(x);
}

const std::uint8_t* ByteReader::need(std::size_t n) {
  if (data_.size() - pos_ < n)
    throw Error("snapshot truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(data_.size() - pos_));
  const auto* p = reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::size_t ByteReader::get_count(std::size_t elem_size) {
  const std::uint64_t n = get_u64();
  if (n > remaining() / elem_size)
    throw Error("snapshot corrupt: sequence of " + std::to_string(n) +
                " elements exceeds remaining payload");
  return static_cast<std::size_t>(n);
}

std::uint8_t ByteReader::get_u8() { return *need(1); }

std::uint32_t ByteReader::get_u32() {
  const std::uint8_t* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string ByteReader::get_string() {
  const std::size_t n = get_count(1);
  const std::uint8_t* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<double> ByteReader::get_f64_vec() {
  const std::size_t n = get_count(8);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = get_f64();
  return v;
}

std::vector<std::uint32_t> ByteReader::get_u32_vec() {
  const std::size_t n = get_count(4);
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = get_u32();
  return v;
}

}  // namespace doseopt::serde
