// Shared content-addressed store of memoized job-result documents.
//
// One file per result, named by the job's 64-bit FNV-1a content hash, so
// every process in a serving fleet -- N workers plus their respawned
// replacements -- reads and writes the same store: a 0.1 ms memoized hit
// survives the death of the worker that computed it.  The format reuses the
// snapshot layer's conventions:
//
//   [ 8 bytes magic "DOSERES1" ][ u32 version ][ u64 payload size ]
//   [ u64 FNV-1a checksum of payload ][ payload bytes (result JSON) ]
//
// Writes are crash-safe (unique temp file, fsync, rename over the final
// name, directory fsync) and therefore also race-safe: two workers solving
// the same job concurrently publish bit-identical bytes and the second
// rename is a no-op overwrite.  Reads validate magic, version, size, and
// checksum before returning a byte of payload; corruption throws
// doseopt::Error so the caller can quarantine the file and fall back to a
// recompute (deterministic, hence bit-identical).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace doseopt::serde {

/// Current result-record format version.
inline constexpr std::uint32_t kResultStoreVersion = 1;

/// Path of the record for `key` inside `dir` ("<dir>/<key-hex>.res").
std::string result_path(const std::string& dir, std::uint64_t key);

/// Publish `payload` as the record for `key` (atomic tmp+rename, fsynced).
/// Creates `dir` if missing.  Throws doseopt::Error on I/O failure.
void write_result(const std::string& dir, std::uint64_t key,
                  std::string_view payload);

/// Fetch the record for `key`.  Returns nullopt when no record exists;
/// throws doseopt::Error on a corrupt record (bad magic/version/size/
/// checksum/trailing bytes) or an injected fleet.cache_corrupt fault --
/// callers quarantine and treat the key as a miss.
std::optional<std::string> read_result(const std::string& dir,
                                       std::uint64_t key);

/// Move a (corrupt) record aside to "<file>.corrupt" for post-mortem;
/// falls back to deletion when the rename fails.  Never throws.
void quarantine_result(const std::string& dir, std::uint64_t key);

/// Delete orphaned "<name>.tmp.<pid>[.<seq>]" files left in `dir` by a
/// process that crashed between write and rename.  Only files whose
/// embedded pid is provably dead (and not our own) are removed -- a live
/// writer's in-flight temp file is never touched.  Returns the number of
/// files reclaimed; never throws, no-op on a missing directory.
int reclaim_stale_tmp_files(const std::string& dir);

}  // namespace doseopt::serde
