// Durable wafer-scale optimization campaigns.
//
// A campaign is the paper's flow run at production scale: dose-map jobs
// for every exposure-field dose class of a wafer under across-wafer
// systematic variation (src/wafer), swept across the 65/90 nm nodes
// (src/tech designs), iterated DMopt <-> dosePl over fixed-point rounds.
// The spec expands deterministically into content-keyed serve::JobSpecs,
// and the driver executes them *durably*:
//
//   * every orchestration step is recorded in a checksummed write-ahead
//     journal (serde/journal.h) -- Begin (spec hash + job count), Intent
//     ("about to run job i"), Commit ("job i finished; its normalized
//     result hashes to H"), End (artifact hash);
//   * job result documents live in the shared content-addressed result
//     store, published by the worker (served mode) or by the driver
//     (local mode) -- the journal holds hashes, never documents;
//   * a driver SIGKILLed at ANY instant resumes exactly-once: replaying
//     the journal recovers which jobs committed (skipped through the
//     store, hash-verified), which were in flight (re-intent + re-run;
//     deterministic, so bit-identical), and whether the final artifact
//     was already sealed.  The final campaign artifact is bit-identical
//     to an uninterrupted run.
//
// Execution is either in-process (kLocal: a serve::SessionCache and the
// flow run on the driver's threads) or through a serving fleet (kServed:
// framed protocol to a router/worker socket), with identical results --
// both paths produce the same deterministic documents.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serde/journal.h"
#include "serve/job.h"
#include "wafer/wafer.h"

namespace doseopt::campaign {

/// What to optimize, over which wafer, at which nodes.
struct CampaignSpec {
  std::string name = "wafer";
  /// Designs to sweep (gen::design_spec_by_name names); the node sweep of
  /// the paper is aes65 + aes90.
  std::vector<std::string> designs = {"aes65", "aes90"};
  double scale = 0.05;     ///< design size scale (Table I fraction)
  std::uint64_t seed = 0;  ///< 0 = per-design default seed
  wafer::WaferModel wafer; ///< exposure-field layout + AWLV model
  /// DMopt<->dosePl fixed-point rounds per (design, dose class): round 0
  /// is the pure DMopt solve; each later round re-runs with dosePl on.
  int rounds = 2;
  double grid_um = 10.0;
  double smoothness_delta = 2.0;
  /// Intra-field dose swing budget before the per-field AWLV correction
  /// eats into it (the correction and the design map share the dose knob).
  double dose_range_pct = 5.0;
  /// Cap on distinct dose classes; wafers quantize to more classes than a
  /// campaign needs, so low-population classes merge into neighbors.
  int max_classes = 4;
  double deadline_ms = 0.0;  ///< per-job deadline in served mode; 0 = none

  /// Content hash of every field above EXCEPT deadline_ms (a deadline does
  /// not change any result document).  Stored in the journal's Begin
  /// record so a resume against a different spec fails loudly.
  std::uint64_t spec_hash() const;
};

/// One dose class: wafer fields whose post-correction dose budget
/// quantizes to the same effective range.
struct DoseClass {
  double range_pct = 0.0;  ///< effective intra-field dose range
  int fields = 0;          ///< wafer fields in this class (artifact weight)
};

/// One expanded job.
struct CampaignJob {
  std::string id;        ///< "<name>-<design>-r<round>-c<class>"
  serve::JobSpec spec;
  int round = 0;
  int dose_class = 0;
  int fields = 0;        ///< weight of this class in the artifact aggregate
};

/// The wafer's dose classes after AWLV correction: per-field effective
/// range = max(1, dose_range_pct - |field dose correction|), quantized to
/// 0.25 % steps, merged down to at most max_classes (lowest-population
/// class folds into its nearest-range neighbor).  Deterministic.
std::vector<DoseClass> dose_classes(const CampaignSpec& spec);

/// Deterministic expansion: designs x rounds x dose classes, in that
/// nesting order.  Job index in this vector IS the index recorded in the
/// journal.
std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec);

/// Journal record types of a campaign journal.
enum class Rec : std::uint32_t {
  kBegin = 1,   ///< u64 spec_hash, u32 total jobs, string name
  kIntent = 2,  ///< u32 index, u64 job_key
  kCommit = 3,  ///< u32 index, u64 job_key, u64 fnv of normalized result
  kEnd = 4,     ///< u64 fnv of the final artifact bytes
};

// Payload codecs (exposed so tests and the chaos harness can craft and
// inspect journals without a driver).
std::string encode_begin(std::uint64_t spec_hash, std::uint32_t total,
                         const std::string& name);
std::string encode_intent(std::uint32_t index, std::uint64_t job_key);
std::string encode_commit(std::uint32_t index, std::uint64_t job_key,
                          std::uint64_t norm_fnv);
std::string encode_end(std::uint64_t artifact_fnv);

struct BeginRec {
  std::uint64_t spec_hash = 0;
  std::uint32_t total = 0;
  std::string name;
};
struct CommitRec {
  std::uint32_t index = 0;
  std::uint64_t job_key = 0;
  std::uint64_t norm_fnv = 0;
};
BeginRec decode_begin(const std::string& payload);
std::pair<std::uint32_t, std::uint64_t> decode_intent(
    const std::string& payload);
CommitRec decode_commit(const std::string& payload);
std::uint64_t decode_end(const std::string& payload);

/// Campaign-level digest of a replayed journal.
struct JournalState {
  bool has_begin = false;
  BeginRec begin;
  std::map<std::uint32_t, CommitRec> committed;  ///< index -> commit
  std::set<std::uint32_t> intents;               ///< every intent seen
  bool ended = false;
  std::uint64_t artifact_fnv = 0;
  /// Intents with no matching commit: jobs in flight at the crash.
  int in_flight() const;
};
JournalState scan_journal(const serde::JournalReplay& replay);

enum class ExecMode {
  kLocal,   ///< solve in-process via a serve::SessionCache
  kServed,  ///< submit to a router/worker socket (framed protocol)
};

struct CampaignOptions {
  std::string journal_dir;       ///< required
  std::string artifact_path;     ///< final artifact JSON ("" = don't write)
  std::string result_store_dir;  ///< required (shared with workers if served)
  std::string snapshot_dir;      ///< local mode session snapshots ("" = off)
  ExecMode exec = ExecMode::kLocal;
  std::string socket;  ///< served mode: UDS path of the router
  int tcp_port = -1;   ///< served mode: TCP port (used when socket empty)
  int clients = 2;     ///< served mode: concurrent submitter threads
  /// Required when the journal already holds records; refusing to
  /// silently continue an interrupted campaign keeps accidental spec
  /// drift from corrupting it.
  bool resume = false;
  /// Crash drill: SIGKILL our own process right after the Nth Intent
  /// append of THIS run is durably on disk (0 = off).
  int kill_after_intents = 0;
  /// Stop (completed=false, no artifact) after N commits in this run;
  /// tests use it to produce a partial journal without killing anything.
  int stop_after_commits = 0;
  bool verbose = false;
};

struct CampaignReport {
  int jobs_total = 0;
  int committed_prior = 0;       ///< commits found in the journal on entry
  int executed = 0;              ///< jobs actually run this run
  int store_hits = 0;            ///< committed jobs answered by the store
  int store_misses = 0;          ///< committed jobs that had to re-run
  int resubmitted_inflight = 0;  ///< crash-interrupted jobs re-run
  int journal_recoveries = 0;    ///< torn-append writer reconstructions
  bool completed = false;
  std::uint64_t artifact_fnv = 0;
  double wall_s = 0.0;
  double resume_replay_ms = 0.0;  ///< journal replay + scan time

  serve::Json to_json() const;
};

/// Expand and execute `spec` durably.  Throws doseopt::Error on a spec
/// mismatch against an existing journal, a non-empty journal without
/// opts.resume, a failed job, or a determinism violation (a committed
/// hash that no longer matches its recomputed document).
CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& opts);

}  // namespace doseopt::campaign
