#include "campaign/campaign.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "flow/optimize.h"
#include "flow/ssta_yield.h"
#include "serde/result_store.h"
#include "serde/stream.h"
#include "serve/cache.h"
#include "serve/client.h"

namespace doseopt::campaign {

using serve::Json;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string hex64(std::uint64_t v) {
  return str_format("%016llx", static_cast<unsigned long long>(v));
}

}  // namespace

std::uint64_t CampaignSpec::spec_hash() const {
  serde::ByteWriter w;
  w.put_string(name);
  w.put_u32(static_cast<std::uint32_t>(designs.size()));
  for (const std::string& d : designs) w.put_string(d);
  w.put_f64(scale);
  w.put_u64(seed);
  w.put_f64(wafer.wafer_radius_mm);
  w.put_f64(wafer.field_size_mm);
  w.put_f64(wafer.edge_exclusion_mm);
  w.put_f64(wafer.bowl2_nm);
  w.put_f64(wafer.bowl4_nm);
  w.put_f64(wafer.field_random_sigma_nm);
  w.put_f64(wafer.max_field_dose_pct);
  w.put_u64(wafer.seed);
  w.put_i32(rounds);
  w.put_f64(grid_um);
  w.put_f64(smoothness_delta);
  w.put_f64(dose_range_pct);
  w.put_i32(max_classes);
  return serde::fnv1a64(w.bytes().data(), w.bytes().size());
}

std::vector<DoseClass> dose_classes(const CampaignSpec& spec) {
  wafer::Wafer w(spec.wafer);
  // Manufacturing applies its per-field AWLV correction first; whatever
  // dose swing the correction consumed is no longer available to the
  // intra-field design map of that field.
  w.apply_awlv_correction();
  std::map<long, int> counts;  // quantized range (0.25 % steps) -> fields
  for (const wafer::Field& f : w.fields()) {
    const double effective =
        std::max(1.0, spec.dose_range_pct - std::fabs(f.dose_corr_pct));
    counts[std::lround(effective / 0.25)]++;
  }
  std::vector<DoseClass> classes;
  classes.reserve(counts.size());
  for (const auto& [q, fields] : counts)
    classes.push_back({static_cast<double>(q) * 0.25, fields});
  // Merge down to max_classes: fold the least-populated class into the
  // range-nearest neighbor (ties: lowest index, left neighbor).  Purely a
  // function of the spec, so expansion stays deterministic.
  const std::size_t cap =
      static_cast<std::size_t>(std::max(1, spec.max_classes));
  while (classes.size() > cap) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < classes.size(); ++i)
      if (classes[i].fields < classes[victim].fields) victim = i;
    std::size_t heir;
    if (victim == 0) {
      heir = 1;
    } else if (victim + 1 == classes.size()) {
      heir = victim - 1;
    } else {
      const double left = classes[victim].range_pct -
                          classes[victim - 1].range_pct;
      const double right = classes[victim + 1].range_pct -
                           classes[victim].range_pct;
      heir = left <= right ? victim - 1 : victim + 1;
    }
    classes[heir].fields += classes[victim].fields;
    classes.erase(classes.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return classes;
}

std::vector<CampaignJob> expand_campaign(const CampaignSpec& spec) {
  DOSEOPT_CHECK(spec.rounds >= 1, "campaign: need at least one round");
  DOSEOPT_CHECK(!spec.designs.empty(), "campaign: need at least one design");
  const std::vector<DoseClass> classes = dose_classes(spec);
  std::vector<CampaignJob> jobs;
  jobs.reserve(spec.designs.size() * static_cast<std::size_t>(spec.rounds) *
               classes.size());
  for (const std::string& design : spec.designs) {
    for (int r = 0; r < spec.rounds; ++r) {
      for (std::size_t c = 0; c < classes.size(); ++c) {
        CampaignJob job;
        job.round = r;
        job.dose_class = static_cast<int>(c);
        job.fields = classes[c].fields;
        job.id = spec.name + "-" + design + "-r" + std::to_string(r) + "-c" +
                 std::to_string(c);
        serve::JobSpec& js = job.spec;
        js.id = job.id;
        js.design = design;
        js.scale = spec.scale;
        js.seed = spec.seed;  // same seed per design -> rounds share sessions
        js.mode = "timing";
        js.smoothness_delta = spec.smoothness_delta;
        js.dose_range_pct = classes[c].range_pct;
        // Round 0 is the pure DMopt solve at the campaign grid; later
        // rounds turn dosePl on and coarsen the grid one step per round,
        // walking the DMopt<->dosePl fixed point.
        js.run_dosepl = r >= 1;
        js.grid_um = r == 0 ? spec.grid_um
                            : spec.grid_um + 2.0 * static_cast<double>(r - 1);
        js.deadline_ms = spec.deadline_ms;
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

std::string encode_begin(std::uint64_t spec_hash, std::uint32_t total,
                         const std::string& name) {
  serde::ByteWriter w;
  w.put_u64(spec_hash);
  w.put_u32(total);
  w.put_string(name);
  return w.take();
}

std::string encode_intent(std::uint32_t index, std::uint64_t job_key) {
  serde::ByteWriter w;
  w.put_u32(index);
  w.put_u64(job_key);
  return w.take();
}

std::string encode_commit(std::uint32_t index, std::uint64_t job_key,
                          std::uint64_t norm_fnv) {
  serde::ByteWriter w;
  w.put_u32(index);
  w.put_u64(job_key);
  w.put_u64(norm_fnv);
  return w.take();
}

std::string encode_end(std::uint64_t artifact_fnv) {
  serde::ByteWriter w;
  w.put_u64(artifact_fnv);
  return w.take();
}

BeginRec decode_begin(const std::string& payload) {
  serde::ByteReader r(payload);
  BeginRec rec;
  rec.spec_hash = r.get_u64();
  rec.total = r.get_u32();
  rec.name = r.get_string();
  return rec;
}

std::pair<std::uint32_t, std::uint64_t> decode_intent(
    const std::string& payload) {
  serde::ByteReader r(payload);
  const std::uint32_t index = r.get_u32();
  const std::uint64_t key = r.get_u64();
  return {index, key};
}

CommitRec decode_commit(const std::string& payload) {
  serde::ByteReader r(payload);
  CommitRec rec;
  rec.index = r.get_u32();
  rec.job_key = r.get_u64();
  rec.norm_fnv = r.get_u64();
  return rec;
}

std::uint64_t decode_end(const std::string& payload) {
  serde::ByteReader r(payload);
  return r.get_u64();
}

int JournalState::in_flight() const {
  int n = 0;
  for (const std::uint32_t i : intents)
    if (committed.find(i) == committed.end()) ++n;
  return n;
}

JournalState scan_journal(const serde::JournalReplay& replay) {
  JournalState state;
  for (const serde::JournalRecord& rec : replay.records) {
    switch (static_cast<Rec>(rec.type)) {
      case Rec::kBegin: {
        const BeginRec begin = decode_begin(rec.payload);
        if (state.has_begin &&
            (begin.spec_hash != state.begin.spec_hash ||
             begin.total != state.begin.total))
          throw Error("campaign: journal holds two different Begin records");
        state.begin = begin;
        state.has_begin = true;
        break;
      }
      case Rec::kIntent:
        state.intents.insert(decode_intent(rec.payload).first);
        break;
      case Rec::kCommit: {
        const CommitRec commit = decode_commit(rec.payload);
        const auto it = state.committed.find(commit.index);
        if (it != state.committed.end() &&
            it->second.norm_fnv != commit.norm_fnv)
          throw Error("campaign: conflicting Commit records for job " +
                      std::to_string(commit.index));
        state.committed[commit.index] = commit;
        break;
      }
      case Rec::kEnd:
        state.ended = true;
        state.artifact_fnv = decode_end(rec.payload);
        break;
      default:
        throw Error("campaign: unknown journal record type " +
                    std::to_string(rec.type));
    }
  }
  return state;
}

Json CampaignReport::to_json() const {
  Json j = Json::object();
  j.set("jobs_total", Json::number(jobs_total));
  j.set("committed_prior", Json::number(committed_prior));
  j.set("executed", Json::number(executed));
  j.set("store_hits", Json::number(store_hits));
  j.set("store_misses", Json::number(store_misses));
  j.set("resubmitted_inflight", Json::number(resubmitted_inflight));
  j.set("journal_recoveries", Json::number(journal_recoveries));
  j.set("completed", Json::boolean(completed));
  j.set("artifact_fnv", Json::string(hex64(artifact_fnv)));
  j.set("wall_s", Json::number(wall_s));
  j.set("resume_replay_ms", Json::number(resume_replay_ms));
  return j;
}

namespace {

/// In-process executor: a private SessionCache plus the shared result
/// store.  Mirrors the worker's job loop, including the dosePl
/// save/restore that keeps a session pristine across rounds.
class LocalExecutor {
 public:
  LocalExecutor(std::string snapshot_dir, std::string result_store_dir)
      : cache_(std::move(snapshot_dir), std::move(result_store_dir)) {}

  std::string run(const serve::JobSpec& spec) {
    const std::uint64_t key = spec.job_key();
    if (auto cached = cache_.lookup_result(key)) return *cached;
    auto session = cache_.acquire(spec);
    std::lock_guard<std::mutex> lock(session->mu);
    cache_.populate(*session, spec, nullptr);
    flow::DesignContext& ctx = *session->ctx;
    ctx.coefficients(spec.modulate_width);
    Json result_json;
    if (spec.mode == "ssta_yield") {
      result_json = serve::ssta_yield_result_to_json(
          flow::run_ssta_yield(ctx, spec.ssta_options()));
    } else {
      // dosePl mutates placement + parasitics in place; save/restore so
      // the cached session answers later rounds from a pristine state.
      std::optional<place::Placement> saved_placement;
      std::optional<extract::Parasitics> saved_parasitics;
      if (spec.run_dosepl) {
        saved_placement = ctx.placement();
        saved_parasitics = ctx.parasitics();
      }
      flow::FlowResult result;
      try {
        result = flow::run_flow(ctx, spec.flow_options());
      } catch (...) {
        if (saved_placement.has_value()) {
          ctx.placement() = std::move(*saved_placement);
          ctx.parasitics() = std::move(*saved_parasitics);
        }
        throw;
      }
      if (saved_placement.has_value()) {
        ctx.placement() = std::move(*saved_placement);
        ctx.parasitics() = std::move(*saved_parasitics);
      }
      result_json = serve::flow_result_to_json(result);
    }
    std::string doc = result_json.dump();
    // Publish the full raw document under the job key -- exactly the bytes
    // a fleet worker would publish, so local and served campaigns share
    // one store without violating its identical-bytes rule.
    cache_.store_result(key, doc);
    return doc;
  }

 private:
  serve::SessionCache cache_;
};

/// Fleet executor: one serve::Client per submitter thread.
class ServedExecutor {
 public:
  ServedExecutor(std::string socket, int tcp_port)
      : socket_(std::move(socket)), tcp_port_(tcp_port) {}

  std::string run(const serve::JobSpec& spec) {
    serve::ClientOptions copts;
    copts.connect_timeout_ms = 2000;
    serve::Client client =
        socket_.empty() ? serve::Client::connect_tcp_port(tcp_port_, copts)
                        : serve::Client::connect_unix_path(socket_, copts);
    serve::RetryPolicy policy;
    policy.max_attempts = 200;  // rides out respawns and backpressure
    const serve::Client::Reply reply = client.submit_with_retry(spec, policy);
    if (reply.type != serve::MsgType::kJobResult)
      throw Error("campaign: job '" + spec.id + "' failed: " +
                  reply.payload.get_string("error", "rejected"));
    return reply.payload.get("result").dump();
  }

 private:
  std::string socket_;
  int tcp_port_;
};

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& opts) {
  DOSEOPT_CHECK(!opts.journal_dir.empty(), "campaign: need a journal_dir");
  DOSEOPT_CHECK(!opts.result_store_dir.empty(),
                "campaign: need a result_store_dir");
  const auto t_start = std::chrono::steady_clock::now();
  CampaignReport report;

  const std::vector<CampaignJob> jobs = expand_campaign(spec);
  const auto total = static_cast<std::uint32_t>(jobs.size());
  report.jobs_total = static_cast<int>(total);
  const std::uint64_t spec_hash = spec.spec_hash();

  // ---- Recover: replay the journal and distill the campaign state.
  const auto t_replay = std::chrono::steady_clock::now();
  const serde::JournalReplay replay = serde::replay_journal(opts.journal_dir);
  const JournalState state = scan_journal(replay);
  report.resume_replay_ms = ms_since(t_replay);
  if (!replay.records.empty() && !opts.resume)
    throw Error("campaign: journal " + opts.journal_dir +
                " already holds records; pass resume to continue it");
  if (state.has_begin &&
      (state.begin.spec_hash != spec_hash || state.begin.total != total))
    throw Error("campaign: journal " + opts.journal_dir +
                " was written by a different campaign spec (hash " +
                hex64(state.begin.spec_hash) + " != " + hex64(spec_hash) +
                " or total " + std::to_string(state.begin.total) +
                " != " + std::to_string(total) + ")");
  report.committed_prior = static_cast<int>(state.committed.size());
  report.resubmitted_inflight = state.in_flight();
  if (opts.verbose && !replay.records.empty())
    std::fprintf(stderr,
                 "[campaign] resume: %zu records, %d committed, %d in "
                 "flight%s\n",
                 replay.records.size(), report.committed_prior,
                 report.resubmitted_inflight,
                 replay.torn_tail ? " (torn tail truncated)" : "");

  // ---- Journal writer with a torn-append recovery ladder: an injected
  // campaign.journal_torn poisons the writer; reconstructing it truncates
  // the garbage tail, after which the append is retried.  Bounded so a
  // persistent I/O failure still surfaces.
  auto writer = std::make_unique<serde::JournalWriter>(opts.journal_dir);
  std::mutex journal_mu;
  std::atomic<int> recoveries{0};
  const auto append = [&](Rec type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(journal_mu);
    for (int attempt = 0;; ++attempt) {
      try {
        writer->append(static_cast<std::uint32_t>(type), payload);
        return;
      } catch (const std::exception& e) {
        if (attempt >= 3) throw;
        recoveries.fetch_add(1, std::memory_order_relaxed);
        if (opts.verbose)
          std::fprintf(stderr, "[campaign] journal append recovered: %s\n",
                       e.what());
        writer = std::make_unique<serde::JournalWriter>(opts.journal_dir);
      }
    }
  };
  if (!state.has_begin)
    append(Rec::kBegin, encode_begin(spec_hash, total, spec.name));

  // ---- Executors.
  std::unique_ptr<LocalExecutor> local;
  std::unique_ptr<ServedExecutor> served;
  if (opts.exec == ExecMode::kLocal)
    local = std::make_unique<LocalExecutor>(opts.snapshot_dir,
                                            opts.result_store_dir);
  else
    served = std::make_unique<ServedExecutor>(opts.socket, opts.tcp_port);
  const auto execute = [&](const serve::JobSpec& js) {
    return local != nullptr ? local->run(js) : served->run(js);
  };

  // ---- Process every job.  Committed jobs answer from the store
  // (hash-verified); the rest run under Intent/Commit bracketing.
  std::vector<std::string> norm_docs(jobs.size());
  std::atomic<int> executed{0}, store_hits{0}, store_misses{0};
  std::atomic<int> intents_appended{0}, commits_appended{0};
  std::atomic<bool> stop{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto process = [&](std::size_t i) {
    const CampaignJob& job = jobs[i];
    const std::uint64_t key = job.spec.job_key();
    const auto committed = state.committed.find(static_cast<std::uint32_t>(i));
    if (committed != state.committed.end()) {
      if (committed->second.job_key != key)
        throw Error("campaign: job " + std::to_string(i) +
                    " key mismatch against the journal (expansion drift?)");
      // Fast path: the store still holds the document this commit sealed.
      std::optional<std::string> doc;
      try {
        doc = serde::read_result(opts.result_store_dir, key);
      } catch (const std::exception&) {
        serde::quarantine_result(opts.result_store_dir, key);
      }
      if (doc.has_value()) {
        const std::string norm =
            serve::normalized_result(Json::parse(*doc)).dump();
        if (serde::fnv1a64(norm.data(), norm.size()) ==
            committed->second.norm_fnv) {
          norm_docs[i] = norm;
          store_hits.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      // Store lost or corrupted the document: the deterministic re-solve
      // must reproduce the committed hash exactly.
      store_misses.fetch_add(1, std::memory_order_relaxed);
      const std::string norm =
          serve::normalized_result(Json::parse(execute(job.spec))).dump();
      if (serde::fnv1a64(norm.data(), norm.size()) !=
          committed->second.norm_fnv)
        throw Error("campaign: re-solved job '" + job.id +
                    "' does not reproduce its committed hash");
      norm_docs[i] = norm;
      executed.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // Uncommitted (fresh or in-flight at a crash): Intent, run, Commit.
    // Re-intents are idempotent on replay -- scan_journal keeps a set.
    append(Rec::kIntent, encode_intent(static_cast<std::uint32_t>(i), key));
    const int nth_intent =
        intents_appended.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (opts.kill_after_intents > 0 &&
        nth_intent == opts.kill_after_intents) {
      // Crash drill: the Intent is fsync'd; die with it as the last
      // journal record so resume sees this job as in flight.
      std::fprintf(stderr, "[campaign] kill_after_intents=%d reached: "
                   "SIGKILL self (pid %d)\n",
                   opts.kill_after_intents, static_cast<int>(::getpid()));
      ::kill(::getpid(), SIGKILL);
    }
    const std::string norm =
        serve::normalized_result(Json::parse(execute(job.spec))).dump();
    append(Rec::kCommit,
           encode_commit(static_cast<std::uint32_t>(i), key,
                         serde::fnv1a64(norm.data(), norm.size())));
    norm_docs[i] = norm;
    executed.fetch_add(1, std::memory_order_relaxed);
    const int commits =
        commits_appended.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (opts.stop_after_commits > 0 && commits >= opts.stop_after_commits)
      stop.store(true, std::memory_order_release);
    if (opts.verbose)
      std::fprintf(stderr, "[campaign] committed '%s' (%d/%u)\n",
                   job.id.c_str(),
                   static_cast<int>(state.committed.size()) + commits, total);
  };

  if (opts.exec == ExecMode::kLocal || opts.clients <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (stop.load(std::memory_order_acquire)) break;
      process(i);
    }
  } else {
    // Served: a shared cursor, N submitter threads.  The journal writer
    // serializes appends; everything else is per-index.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    const int n = std::min<int>(opts.clients, static_cast<int>(jobs.size()));
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const std::size_t i = next.fetch_add(1, std::memory_order_acq_rel);
          if (i >= jobs.size()) return;
          try {
            process(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error == nullptr)
              first_error = std::current_exception();
            stop.store(true, std::memory_order_release);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }

  report.executed = executed.load();
  report.store_hits = store_hits.load();
  report.store_misses = store_misses.load();
  report.journal_recoveries = recoveries.load();
  report.wall_s = ms_since(t_start) / 1000.0;
  if (stop.load(std::memory_order_acquire)) return report;  // partial run

  // ---- Seal: build the artifact in index order from the normalized
  // documents, weight per-design aggregates by class field counts, and
  // record its hash in the End record.  Every path to this point produced
  // the same norm_docs, so the artifact bytes are bit-identical across
  // uninterrupted, killed-and-resumed, local, and served runs.
  Json artifact = Json::object();
  artifact.set("campaign", Json::string(spec.name));
  artifact.set("spec_hash", Json::string(hex64(spec_hash)));
  artifact.set("jobs", Json::number(static_cast<double>(total)));
  Json designs = Json::object();
  for (const std::string& design : spec.designs) {
    double fields = 0.0, mct = 0.0, leak = 0.0, nom_mct = 0.0, nom_leak = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // The final round is the fixed point; earlier rounds are trajectory.
      if (jobs[i].spec.design != design || jobs[i].round != spec.rounds - 1)
        continue;
      const Json doc = Json::parse(norm_docs[i]);
      const double w = jobs[i].fields;
      fields += w;
      mct += w * doc.get_number("final_mct_ns", 0.0);
      leak += w * doc.get_number("final_leakage_uw", 0.0);
      nom_mct += w * doc.get_number("nominal_mct_ns", 0.0);
      nom_leak += w * doc.get_number("nominal_leakage_uw", 0.0);
    }
    Json d = Json::object();
    d.set("fields", Json::number(fields));
    if (fields > 0.0) {
      d.set("wafer_mean_final_mct_ns", Json::number(mct / fields));
      d.set("wafer_mean_final_leakage_uw", Json::number(leak / fields));
      d.set("wafer_mean_nominal_mct_ns", Json::number(nom_mct / fields));
      d.set("wafer_mean_nominal_leakage_uw", Json::number(nom_leak / fields));
    }
    designs.set(design, std::move(d));
  }
  artifact.set("designs", std::move(designs));
  Json results = Json::array();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Json entry = Json::object();
    entry.set("id", Json::string(jobs[i].id));
    entry.set("job_key", Json::string(hex64(jobs[i].spec.job_key())));
    entry.set("round", Json::number(jobs[i].round));
    entry.set("dose_class", Json::number(jobs[i].dose_class));
    entry.set("fields", Json::number(jobs[i].fields));
    entry.set("result", Json::parse(norm_docs[i]));
    results.push_back(std::move(entry));
  }
  artifact.set("results", std::move(results));

  const std::string bytes = artifact.dump();
  report.artifact_fnv = serde::fnv1a64(bytes.data(), bytes.size());
  if (state.ended) {
    // A crash after End but before (or during) the artifact write lands
    // here: the journal already sealed the hash, so just verify and
    // rewrite the file.
    if (state.artifact_fnv != report.artifact_fnv)
      throw Error("campaign: rebuilt artifact hash " +
                  hex64(report.artifact_fnv) +
                  " does not match the journaled End record " +
                  hex64(state.artifact_fnv));
  } else {
    append(Rec::kEnd, encode_end(report.artifact_fnv));
  }
  if (!opts.artifact_path.empty()) {
    const std::string tmp = opts.artifact_path + ".tmp." +
                            std::to_string(static_cast<long>(::getpid()));
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        throw Error("campaign: cannot open " + tmp + " for writing");
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      os << "\n";
      if (!os) {
        os.close();
        ::unlink(tmp.c_str());
        throw Error("campaign: write to " + tmp + " failed");
      }
    }
    if (std::rename(tmp.c_str(), opts.artifact_path.c_str()) != 0) {
      ::unlink(tmp.c_str());
      throw Error("campaign: rename to " + opts.artifact_path + " failed");
    }
  }

  report.journal_recoveries = recoveries.load();
  report.completed = true;
  report.wall_s = ms_since(t_start) / 1000.0;
  return report;
}

}  // namespace doseopt::campaign
