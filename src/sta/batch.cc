// Batched structure-of-arrays STA: one levelized traversal, kBatchLanes
// variant assignments (Monte-Carlo dies / corners) timed simultaneously.
//
// Layout.  Every per-net and per-cell scalar of the Timer's kernels widens
// into a *lane panel* of kBatchLanes contiguous doubles; panel p of row r
// lives at [r * kBatchLanes + lane].  The traversal order, reduction
// operand order, and every arithmetic expression mirror the scalar kernels
// in timer.cc exactly, so each lane is bitwise-identical to an independent
// Timer::analyze() of that lane's assignment.  The lane loops carry no
// cross-iteration dependence and vectorize under -march=native (the build
// then also sets -ffp-contract=off so FMA contraction cannot break the
// scalar/batched equality).
//
// Arc evaluation.  The characterizer builds every TimingArc's four NLDM
// tables (delay/slew x rise/fall) over the same axes, so the hot kernel
// performs ONE (slew, load) segment search per lane and reuses it for all
// four bilinear interpolations -- the scalar path pays eight binary
// searches plus bound-checked at() calls per cell.  Arcs that do not share
// axes (never produced by our characterizer, but allowed by the API) fall
// back to the scalar evaluators per lane.
//
// Lane health.  The `sta.batch_nan` fault point poisons one lane's initial
// arrival/slew panels with NaN.  Because max/min reductions drop NaN
// operands, detection cannot rely on the final MCT; instead a post-pass
// checksum (lane_accumulate) sums every panel per lane -- primary-input
// rows keep their poisoned values, so any NaN anywhere in a lane surfaces
// as a non-finite checksum and the lane reports lane_ok = false.  Callers
// (YieldAnalyzer) then re-time that lane on the scalar path.
#include "sta/timer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"
#include "faultinject/fault.h"
#include "la/dense.h"

namespace doseopt::sta {

using netlist::CellId;
using netlist::kNoCell;
using netlist::NetId;

namespace {

constexpr int K = kBatchLanes;

faultinject::FaultPoint g_fault_batch_nan("sta.batch_nan");

/// Flattened view of one characterized cell: raw table pointers so the hot
/// loop never touches std::vector or bound-checked accessors.
struct CellRef {
  const liberty::CharacterizedCell* cell = nullptr;
  const double* slew_axis = nullptr;  ///< shared axes (fused == true)
  const double* load_axis = nullptr;
  const double* dr = nullptr;  ///< delay_rise values, row-major slew-major
  const double* df = nullptr;
  const double* sr = nullptr;
  const double* sf = nullptr;
  std::int32_t n_slew = 0;
  std::int32_t n_load = 0;
  double input_cap_ff = 0.0;
  bool fused = false;  ///< all four tables share axes -> one search serves 4
};

CellRef make_ref(const liberty::CharacterizedCell& cc) {
  CellRef r;
  r.cell = &cc;
  r.input_cap_ff = cc.input_cap_ff;
  r.fused = cc.arc.shared_axes();
  if (r.fused) {
    const liberty::NldmTable& t = cc.arc.delay_rise;
    r.slew_axis = t.slew_axis().data();
    r.load_axis = t.load_axis().data();
    r.n_slew = static_cast<std::int32_t>(t.slew_points());
    r.n_load = static_cast<std::int32_t>(t.load_points());
    r.dr = cc.arc.delay_rise.values_data();
    r.df = cc.arc.delay_fall.values_data();
    r.sr = cc.arc.slew_rise.values_data();
    r.sf = cc.arc.slew_fall.values_data();
  }
  return r;
}

/// One bilinear interpolation off a precomputed segment -- the exact
/// expression of NldmTable::evaluate().
inline double bilerp(const double* v, std::size_t i, std::size_t j,
                     std::size_t nl, double ts, double tl) {
  const double v00 = v[i * nl + j], v01 = v[i * nl + j + 1];
  const double v10 = v[(i + 1) * nl + j], v11 = v[(i + 1) * nl + j + 1];
  const double lo = v00 + (v01 - v00) * tl;
  const double hi = v10 + (v11 - v10) * tl;
  return lo + (hi - lo) * ts;
}

/// Evaluate one cell's timing arc for K lanes: gate delay (max of rise/fall
/// delay) and output slew (max of rise/fall slew), each lane against its own
/// library variant.  refs/slew/load/gd/os are K-panels.
inline void eval_arc_lanes(const CellRef* const* refs, const double* slew,
                           const double* load, double* gd, double* os) {
  for (int l = 0; l < K; ++l) {
    const CellRef& r = *refs[l];
    const double s = slew[l];
    const double ld = load[l];
    if (r.fused) {
      // Same edge-clamped segment walk as NldmTable::evaluate_batch --
      // identical segment choice to the scalar binary search.
      std::size_t i = 0;
      while (i + 2 < static_cast<std::size_t>(r.n_slew) &&
             s >= r.slew_axis[i + 1])
        ++i;
      std::size_t j = 0;
      while (j + 2 < static_cast<std::size_t>(r.n_load) &&
             ld >= r.load_axis[j + 1])
        ++j;
      const double s0 = r.slew_axis[i], s1 = r.slew_axis[i + 1];
      const double l0 = r.load_axis[j], l1 = r.load_axis[j + 1];
      const double ts = (s - s0) / (s1 - s0);
      const double tl = (ld - l0) / (l1 - l0);
      const std::size_t nl = static_cast<std::size_t>(r.n_load);
      gd[l] = std::max(bilerp(r.dr, i, j, nl, ts, tl),
                       bilerp(r.df, i, j, nl, ts, tl));
      os[l] = std::max(bilerp(r.sr, i, j, nl, ts, tl),
                       bilerp(r.sf, i, j, nl, ts, tl));
    } else {
      gd[l] = r.cell->arc.delay_ns(s, ld);
      os[l] = r.cell->arc.out_slew_ns(s, ld);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Workspace.
// ---------------------------------------------------------------------------

struct BatchWorkspace::Impl {
  const Timer* owner = nullptr;

  // Per-(poly, active) variant key: resolved library, flattened cell refs
  // and input caps, built lazily on first use of a key and kept for the
  // workspace's lifetime.  Both tables are single flat allocations indexed
  // [key * masters + master] so the per-(cell, lane) resolve loop is two
  // indexed loads off cached base pointers.
  std::vector<const liberty::Library*> lib_by_key;
  std::vector<std::uint8_t> key_built;
  std::vector<CellRef> refs_flat;   ///< keys x masters
  std::vector<double> caps_flat;    ///< keys x masters
  std::size_t masters = 0;

  // Lane-major poly-index panel (cells x K) -- the assignment under test.
  std::vector<std::uint8_t> poly_idx;

  // Resolved per-cell per-lane state.
  std::vector<const CellRef*> lane_ref;  ///< cells x K
  std::vector<double> cap;               ///< cells x K, input pin cap

  // Structure-of-arrays lane panels (see file comment).  Wire delay/slew
  // panels are deliberately absent: the Elmore expressions are three flops
  // off the cap panel, so every consumer recomputes them in place instead
  // of streaming megabytes of per-edge panels through memory.
  std::vector<double> net_arrival;      ///< nets x K
  std::vector<double> net_min_arrival;  ///< nets x K (want_slacks only)
  std::vector<double> net_slew;         ///< nets x K
  std::vector<double> net_load;         ///< nets x K
  std::vector<double> net_req_rel;      ///< nets x K (want_slacks only)
  std::vector<double> gate_delay;       ///< cells x K (want_slacks/cells)
  std::vector<double> in_slew;          ///< cells x K (want_cells only)
  std::vector<double> po_wd;            ///< nets (lane-invariant)
};

BatchWorkspace::BatchWorkspace() : impl_(std::make_unique<Impl>()) {}
BatchWorkspace::~BatchWorkspace() = default;
BatchWorkspace::BatchWorkspace(BatchWorkspace&&) noexcept = default;
BatchWorkspace& BatchWorkspace::operator=(BatchWorkspace&&) noexcept = default;

// ---------------------------------------------------------------------------
// BatchTimingResult.
// ---------------------------------------------------------------------------

TimingResult BatchTimingResult::lane_result(int lane) const {
  DOSEOPT_CHECK(lane >= 0 && lane < lanes,
                "BatchTimingResult::lane_result: bad lane");
  DOSEOPT_CHECK(cells.size() == static_cast<std::size_t>(lanes) * cell_count,
                "BatchTimingResult::lane_result requires want_cells");
  TimingResult r;
  r.mct_ns = mct_ns[lane];
  r.clock_ns = clock_ns[lane];
  r.worst_slack_ns = worst_slack_ns[lane];
  r.worst_hold_slack_ns = worst_hold_slack_ns[lane];
  const auto base = static_cast<std::size_t>(lane) * cell_count;
  r.cells.assign(cells.begin() + base, cells.begin() + base + cell_count);
  return r;
}

// ---------------------------------------------------------------------------
// BatchedTimer.
// ---------------------------------------------------------------------------

BatchedTimer::BatchedTimer(const Timer* timer) : timer_(timer) {
  DOSEOPT_CHECK(timer != nullptr, "BatchedTimer: null timer");
}

BatchTimingResult BatchedTimer::analyze_batch(
    const VariantAssignment& base, const std::vector<const double*>& delta_l_nm,
    BatchWorkspace& ws, bool want_cells) const {
  const int lanes = static_cast<int>(delta_l_nm.size());
  DOSEOPT_CHECK(lanes >= 1 && lanes <= K,
                "analyze_batch: need 1..kBatchLanes lanes");
  const std::size_t cell_count = timer_->netlist_->cell_count();
  DOSEOPT_CHECK(base.size() == cell_count, "analyze_batch: assignment size");

  std::vector<std::uint8_t>& idx = ws.impl_->poly_idx;
  idx.resize(cell_count * K);
  for (std::size_t c = 0; c < cell_count; ++c) {
    const int base_il = base.get(static_cast<CellId>(c)).first;
    for (int l = 0; l < lanes; ++l) {
      const double* d = delta_l_nm[l];
      idx[c * K + l] = static_cast<std::uint8_t>(
          d != nullptr ? liberty::shifted_poly_index(base_il, d[c]) : base_il);
    }
  }
  return analyze_batch_indices(base, idx.data(), lanes, ws, want_cells);
}

BatchTimingResult BatchedTimer::analyze_batch_indices(
    const VariantAssignment& base, const std::uint8_t* poly_index, int lanes,
    BatchWorkspace& ws, bool want_cells, bool want_slacks) const {
  want_slacks = want_slacks || want_cells;
  DOSEOPT_CHECK(lanes >= 1 && lanes <= K,
                "analyze_batch_indices: need 1..kBatchLanes lanes");
  DOSEOPT_CHECK(poly_index != nullptr, "analyze_batch_indices: null indices");
  const Timer& t = *timer_;
  const netlist::Netlist& nl = *t.netlist_;
  const extract::Parasitics& par = *t.parasitics_;
  const std::size_t cell_count = nl.cell_count();
  const std::size_t net_count = nl.net_count();
  DOSEOPT_CHECK(base.size() == cell_count,
                "analyze_batch_indices: assignment size");

  BatchWorkspace::Impl& w = *ws.impl_;
  if (w.owner != &t) {
    // Rebind: drop library-derived caches; panel vectors resize below.
    w.owner = &t;
    constexpr std::size_t kKeys =
        static_cast<std::size_t>(liberty::kVariantsPerLayer) *
        liberty::kVariantsPerLayer;
    w.lib_by_key.assign(kKeys, nullptr);
    w.key_built.assign(kKeys, 0);
    w.refs_flat.clear();
    w.caps_flat.clear();
    w.masters = 0;
  }

  // --- resolve each (cell, lane) to its flattened library cell ---
  // Ragged batches replicate the last real lane into the padding lanes so
  // every panel loop runs full width over defined values.
  w.lane_ref.resize(cell_count * K);
  w.cap.resize(cell_count * K);
  for (std::size_t c = 0; c < cell_count; ++c) {
    const int iw = base.get(static_cast<CellId>(c)).second;
    const std::size_t master = nl.cell(static_cast<CellId>(c)).master_index;
    const std::uint8_t* ip = &poly_index[c * K];
    const CellRef** lr = &w.lane_ref[c * K];
    double* cp = &w.cap[c * K];
    for (int l = 0; l < K; ++l) {
      const int il = ip[l < lanes ? l : lanes - 1];
      const std::size_t key =
          static_cast<std::size_t>(il) * liberty::kVariantsPerLayer +
          static_cast<std::size_t>(iw);
      if (!w.key_built[key]) {
        const liberty::Library*& lib = w.lib_by_key[key];
        if (lib == nullptr) lib = &t.repo_->variant(il, iw);
        if (w.masters == 0) {
          w.masters = lib->cell_count();
          constexpr std::size_t kKeys =
              static_cast<std::size_t>(liberty::kVariantsPerLayer) *
              liberty::kVariantsPerLayer;
          w.refs_flat.assign(kKeys * w.masters, CellRef{});
          w.caps_flat.assign(kKeys * w.masters, 0.0);
        }
        for (std::size_t m = 0; m < w.masters; ++m) {
          w.refs_flat[key * w.masters + m] = make_ref(lib->cell(m));
          w.caps_flat[key * w.masters + m] =
              w.refs_flat[key * w.masters + m].input_cap_ff;
        }
        w.key_built[key] = 1;
      }
      const std::size_t off = key * w.masters + master;
      lr[l] = &w.refs_flat[off];
      cp[l] = w.caps_flat[off];
    }
  }

  // --- lane-invariant PO wire delays ---
  w.po_wd.assign(net_count, 0.0);
  for (NetId n : nl.primary_outputs())
    w.po_wd[n] = par.wire_delay_ns(n, t.options_.output_load_ff);

  // --- per-net load panels (wire cap + sink pin caps + PO load), summed in
  // the scalar kernel's sink order ---
  w.net_load.resize(net_count * K);
  for (std::size_t ni = 0; ni < net_count; ++ni) {
    const netlist::Net& net = nl.net(static_cast<NetId>(ni));
    double* lp = &w.net_load[ni * K];
    la::lane_fill(K, par.net(static_cast<NetId>(ni)).wire_cap_ff, lp);
    for (const netlist::SinkPin& s : net.sinks)
      la::lane_add(K, lp, &w.cap[static_cast<std::size_t>(s.cell) * K], lp);
    if (net.is_primary_output)
      for (int l = 0; l < K; ++l) lp[l] += t.options_.output_load_ff;
  }

  // --- initial net panels: PIs launch at 0 with the boundary slew; the
  // min-arrival panel exists only on the slack path (it feeds hold) ---
  w.net_arrival.assign(net_count * K, 0.0);
  if (want_slacks) w.net_min_arrival.assign(net_count * K, 0.0);
  w.net_slew.resize(net_count * K);
  for (std::size_t ni = 0; ni < net_count; ++ni)
    la::lane_fill(K, t.options_.input_slew_ns, &w.net_slew[ni * K]);

  // Fault injection: poison one lane's initial panels with NaN.  The
  // checksum validation below must catch it (max/min reductions silently
  // drop NaN, so the design-level numbers alone would not).
  if (g_fault_batch_nan.should_fire()) {
    const int lane = static_cast<int>(g_fault_batch_nan.hits() %
                                      static_cast<std::uint64_t>(lanes));
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t ni = 0; ni < net_count; ++ni) {
      w.net_arrival[ni * K + lane] = nan;
      if (want_slacks) w.net_min_arrival[ni * K + lane] = nan;
      w.net_slew[ni * K + lane] = nan;
    }
  }

  // --- forward pass: arrivals / slews in topological order.  Wire delay
  // and slew are recomputed per (edge, lane) from the cap panel -- the
  // exact elmore_wire_delay_ns / 2.2x expressions of the scalar kernel --
  // and min-arrival (feeding only hold slack) is tracked on the slack path
  // alone. ---
  if (want_slacks) w.gate_delay.resize(cell_count * K);
  if (want_cells) w.in_slew.resize(cell_count * K);
  for (CellId c : t.topo_order_) {
    const netlist::Cell& cell = nl.cell(c);
    const std::size_t cK = static_cast<std::size_t>(c) * K;
    const NetId out = cell.output_net;
    const double* lp = &w.net_load[static_cast<std::size_t>(out) * K];
    double gd_buf[K], isl_buf[K];
    double* gd = want_slacks ? &w.gate_delay[cK] : gd_buf;
    double* isl = want_cells ? &w.in_slew[cK] : isl_buf;
    double os[K];

    if (cell.sequential) {
      la::lane_fill(K, t.options_.clock_slew_ns, isl);
      eval_arc_lanes(&w.lane_ref[cK], isl, lp, gd, os);
      std::memcpy(&w.net_arrival[static_cast<std::size_t>(out) * K], gd,
                  sizeof(double) * K);
      if (want_slacks)
        std::memcpy(&w.net_min_arrival[static_cast<std::size_t>(out) * K], gd,
                    sizeof(double) * K);
      std::memcpy(&w.net_slew[static_cast<std::size_t>(out) * K], os,
                  sizeof(double) * K);
      continue;
    }

    const double* capp = &w.cap[cK];
    double wa[K], ba[K];
    la::lane_fill(K, 0.0, wa);
    la::lane_fill(K, 1e30, ba);
    la::lane_fill(K, t.options_.input_slew_ns, isl);
    for (std::size_t e = t.fanin_ptr_[c]; e < t.fanin_ptr_[c + 1]; ++e) {
      const std::size_t nK = static_cast<std::size_t>(t.fanin_net_[e]) * K;
      const extract::NetParasitics& p = par.net(t.fanin_net_[e]);
      const double* na = &w.net_arrival[nK];
      const double* ns = &w.net_slew[nK];
      if (want_slacks) {
        const double* nm = &w.net_min_arrival[nK];
        for (int l = 0; l < K; ++l) {
          const double wd = extract::elmore_wire_delay_ns(p, capp[l]);
          wa[l] = std::max(wa[l], na[l] + wd);
          ba[l] = std::min(ba[l], nm[l] + wd);
          isl[l] = std::max(isl[l], ns[l] + 2.2 * wd);
        }
      } else {
        for (int l = 0; l < K; ++l) {
          const double wd = extract::elmore_wire_delay_ns(p, capp[l]);
          wa[l] = std::max(wa[l], na[l] + wd);
          isl[l] = std::max(isl[l], ns[l] + 2.2 * wd);
        }
      }
    }
    if (t.fanin_ptr_[c] == t.fanin_ptr_[c + 1]) la::lane_fill(K, 0.0, ba);
    eval_arc_lanes(&w.lane_ref[cK], isl, lp, gd, os);
    la::lane_add(K, wa, gd, &w.net_arrival[static_cast<std::size_t>(out) * K]);
    if (want_slacks)
      la::lane_add(K, ba, gd,
                   &w.net_min_arrival[static_cast<std::size_t>(out) * K]);
    std::memcpy(&w.net_slew[static_cast<std::size_t>(out) * K], os,
                sizeof(double) * K);
  }

  // --- backward pass: clock-independent req_rel panels (slack only) ---
  if (want_slacks) {
  w.net_req_rel.resize(net_count * K);
  for (std::size_t ni = 0; ni < net_count; ++ni)
    la::lane_fill(K, detail::kNoReqRel, &w.net_req_rel[ni * K]);
  for (auto it = t.topo_order_.rbegin(); it != t.topo_order_.rend(); ++it) {
    const NetId out = nl.cell(*it).output_net;
    double rr[K];
    la::lane_fill(K, detail::kNoReqRel, rr);
    if (nl.net(out).is_primary_output) {
      const double po = w.po_wd[out];
      for (int l = 0; l < K; ++l) rr[l] = std::max(rr[l], po);
    }
    const extract::NetParasitics& pn = par.net(out);
    for (std::size_t k = t.net_cons_ptr_[out]; k < t.net_cons_ptr_[out + 1];
         ++k) {
      const CellId c2 = t.net_cons_cell_[k];
      const double* c2cap = &w.cap[static_cast<std::size_t>(c2) * K];
      if (nl.cell(c2).sequential) {
        const double setup = t.setup_ns_[c2];
        for (int l = 0; l < K; ++l)
          rr[l] = std::max(
              rr[l], setup + extract::elmore_wire_delay_ns(pn, c2cap[l]));
      } else {
        const double* rr2 =
            &w.net_req_rel[static_cast<std::size_t>(nl.cell(c2).output_net) *
                           K];
        const double* gd2 = &w.gate_delay[static_cast<std::size_t>(c2) * K];
        for (int l = 0; l < K; ++l)
          rr[l] = std::max(rr[l], rr2[l] + gd2[l] +
                                      extract::elmore_wire_delay_ns(
                                          pn, c2cap[l]));
      }
    }
    std::memcpy(&w.net_req_rel[static_cast<std::size_t>(out) * K], rr,
                sizeof(double) * K);
  }
  }

  // --- finish: MCT / clock / worst slack / hold, per lane ---
  BatchTimingResult result;
  result.lanes = lanes;
  result.cell_count = cell_count;

  double mct[K];
  la::lane_fill(K, 0.0, mct);
  for (CellId ci : t.seq_cells_) {
    const double setup = t.setup_ns_[ci];
    const double* cicap = &w.cap[static_cast<std::size_t>(ci) * K];
    for (std::size_t e = t.fanin_ptr_[ci]; e < t.fanin_ptr_[ci + 1]; ++e) {
      const std::size_t nK = static_cast<std::size_t>(t.fanin_net_[e]) * K;
      const extract::NetParasitics& p = par.net(t.fanin_net_[e]);
      for (int l = 0; l < K; ++l) {
        const double arr =
            w.net_arrival[nK + l] + extract::elmore_wire_delay_ns(p, cicap[l]);
        mct[l] = std::max(mct[l], arr + setup);
      }
    }
  }
  for (NetId n : nl.primary_outputs()) {
    const std::size_t nK = static_cast<std::size_t>(n) * K;
    const double po = w.po_wd[n];
    for (int l = 0; l < K; ++l)
      mct[l] = std::max(mct[l], w.net_arrival[nK + l] + po);
  }
  double t_clk[K];
  for (int l = 0; l < K; ++l)
    t_clk[l] = t.options_.clock_ns > 0.0 ? t.options_.clock_ns : mct[l];

  double worst[K], worst_hold[K];
  la::lane_fill(K, 1e30, worst);
  la::lane_fill(K, 1e30, worst_hold);
  if (want_slacks) {
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const std::size_t oK =
        static_cast<std::size_t>(nl.cell(static_cast<CellId>(ci)).output_net) *
        K;
    for (int l = 0; l < K; ++l) {
      const double rr = w.net_req_rel[oK + l];
      const double required =
          rr > detail::kNoReqRel ? t_clk[l] - rr : detail::kUnboundRequired;
      worst[l] = std::min(worst[l], required - w.net_arrival[oK + l]);
    }
  }
  for (CellId ci : t.seq_cells_) {
    const double hold = t.hold_ns_[ci];
    const double* cicap = &w.cap[static_cast<std::size_t>(ci) * K];
    for (std::size_t e = t.fanin_ptr_[ci]; e < t.fanin_ptr_[ci + 1]; ++e) {
      const NetId n = t.fanin_net_[e];
      if (nl.net(n).driver == kNoCell) continue;
      const std::size_t nK = static_cast<std::size_t>(n) * K;
      const extract::NetParasitics& p = par.net(n);
      for (int l = 0; l < K; ++l) {
        const double min_arr = w.net_min_arrival[nK + l] +
                               extract::elmore_wire_delay_ns(p, cicap[l]);
        worst_hold[l] = std::min(worst_hold[l], min_arr - hold);
      }
    }
  }
  }

  for (int l = 0; l < lanes; ++l) {
    result.mct_ns[l] = mct[l];
    result.clock_ns[l] = t_clk[l];
    result.worst_slack_ns[l] =
        want_slacks && cell_count > 0 ? worst[l] : 0.0;
    result.worst_hold_slack_ns[l] =
        want_slacks && worst_hold[l] < 1e30 ? worst_hold[l] : 0.0;
  }

  // --- lane-health validation: sum-reduce every panel per lane.  A NaN
  // anywhere (including never-overwritten primary-input rows) poisons the
  // lane's checksum; max/min-based results alone cannot be trusted to
  // surface it. ---
  double chk[K];
  la::lane_fill(K, 0.0, chk);
  for (std::size_t ni = 0; ni < net_count; ++ni) {
    la::lane_accumulate(K, &w.net_arrival[ni * K], chk);
    la::lane_accumulate(K, &w.net_slew[ni * K], chk);
  }
  if (want_slacks)
    for (std::size_t ni = 0; ni < net_count; ++ni)
      la::lane_accumulate(K, &w.net_min_arrival[ni * K], chk);
  for (int l = 0; l < lanes; ++l) {
    result.lane_ok[l] =
        std::isfinite(chk[l]) && std::isfinite(result.mct_ns[l]) &&
        std::isfinite(result.worst_slack_ns[l]) &&
        std::isfinite(result.worst_hold_slack_ns[l]);
  }

  if (want_cells) {
    result.cells.assign(static_cast<std::size_t>(lanes) * cell_count,
                        CellTiming{});
    for (int l = 0; l < lanes; ++l) {
      CellTiming* out = &result.cells[static_cast<std::size_t>(l) * cell_count];
      for (std::size_t ci = 0; ci < cell_count; ++ci) {
        const std::size_t cK = ci * K;
        const std::size_t oK =
            static_cast<std::size_t>(
                nl.cell(static_cast<CellId>(ci)).output_net) *
            K;
        CellTiming& ct = out[ci];
        ct.arrival_ns = w.net_arrival[oK + l];
        ct.min_arrival_ns = w.net_min_arrival[oK + l];
        ct.output_slew_ns = w.net_slew[oK + l];
        ct.load_ff = w.net_load[oK + l];
        ct.gate_delay_ns = w.gate_delay[cK + l];
        ct.input_slew_ns = w.in_slew[cK + l];
        const double rr = w.net_req_rel[oK + l];
        ct.required_ns =
            rr > detail::kNoReqRel ? t_clk[l] - rr : detail::kUnboundRequired;
        ct.slack_ns = ct.required_ns - ct.arrival_ns;
      }
    }
  }
  return result;
}

}  // namespace doseopt::sta
