#include "sta/timer.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace doseopt::sta {

using netlist::CellId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

void VariantAssignment::set(CellId c, int poly_index, int active_index) {
  DOSEOPT_CHECK(c < variants_.size(), "VariantAssignment::set: bad cell");
  DOSEOPT_CHECK(poly_index >= 0 && poly_index < liberty::kVariantsPerLayer &&
                    active_index >= 0 &&
                    active_index < liberty::kVariantsPerLayer,
                "VariantAssignment::set: variant out of range");
  variants_[c] = {poly_index, active_index};
}

Timer::Timer(const netlist::Netlist* nl, const extract::Parasitics* parasitics,
             liberty::LibraryRepository* repo, TimingOptions options)
    : netlist_(nl), parasitics_(parasitics), repo_(repo), options_(options) {
  DOSEOPT_CHECK(nl != nullptr && parasitics != nullptr && repo != nullptr,
                "Timer: null dependency");
  topo_order_ = nl->topological_order();
}

namespace {

/// Resolve the characterized cell for an instance under `variants`.
const liberty::CharacterizedCell& variant_cell(
    liberty::LibraryRepository& repo, const netlist::Netlist& nl,
    const VariantAssignment& variants, CellId c) {
  const auto [il, iw] = variants.get(c);
  return repo.variant(il, iw).cell(nl.cell(c).master_index);
}

}  // namespace

TimingResult Timer::analyze(const VariantAssignment& variants) const {
  const netlist::Netlist& nl = *netlist_;
  DOSEOPT_CHECK(variants.size() == nl.cell_count(),
                "Timer::analyze: variant assignment size mismatch");

  TimingResult result;
  result.cells.assign(nl.cell_count(), CellTiming{});

  // --- net loads: wire cap + variant sink pin caps (+ PO load) ---
  std::vector<double> net_load_ff(nl.net_count(), 0.0);
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::Net& net = nl.net(static_cast<NetId>(ni));
    double load = parasitics_->net(static_cast<NetId>(ni)).wire_cap_ff;
    for (const netlist::SinkPin& s : net.sinks)
      load += variant_cell(*repo_, nl, variants, s.cell).input_cap_ff;
    if (net.is_primary_output) load += options_.output_load_ff;
    net_load_ff[ni] = load;
  }

  // --- arrival/slew at net sources (PIs start at 0 / input slew) ---
  std::vector<double> net_arrival(nl.net_count(), 0.0);
  std::vector<double> net_min_arrival(nl.net_count(), 0.0);
  std::vector<double> net_slew(nl.net_count(), options_.input_slew_ns);

  auto sink_pin_cap = [&](const netlist::SinkPin& s) {
    return variant_cell(*repo_, nl, variants, s.cell).input_cap_ff;
  };

  for (CellId c : topo_order_) {
    const netlist::Cell& cell = nl.cell(c);
    const liberty::CharacterizedCell& lib_cell =
        variant_cell(*repo_, nl, variants, c);
    CellTiming& ct = result.cells[c];
    ct.load_ff = net_load_ff[cell.output_net];

    if (cell.sequential) {
      // Launch point: clk->Q delay from the clock edge.
      ct.input_slew_ns = options_.clock_slew_ns;
      ct.gate_delay_ns =
          lib_cell.arc.delay_ns(options_.clock_slew_ns, ct.load_ff);
      ct.arrival_ns = ct.gate_delay_ns;
      ct.min_arrival_ns = ct.gate_delay_ns;
      ct.output_slew_ns =
          lib_cell.arc.out_slew_ns(options_.clock_slew_ns, ct.load_ff);
    } else {
      double worst_arrival = 0.0;
      double best_arrival = 1e30;
      double worst_slew = options_.input_slew_ns;
      for (std::size_t pi = 0; pi < cell.input_nets.size(); ++pi) {
        const NetId n = cell.input_nets[pi];
        const double cap = lib_cell.input_cap_ff;
        const double wire = parasitics_->wire_delay_ns(n, cap);
        const double arr = net_arrival[n] + wire;
        const double min_arr = net_min_arrival[n] + wire;
        const double slew =
            net_slew[n] + parasitics_->wire_slew_ns(n, cap);
        worst_arrival = std::max(worst_arrival, arr);
        best_arrival = std::min(best_arrival, min_arr);
        worst_slew = std::max(worst_slew, slew);
      }
      if (cell.input_nets.empty()) best_arrival = 0.0;
      ct.input_slew_ns = worst_slew;
      ct.gate_delay_ns = lib_cell.arc.delay_ns(worst_slew, ct.load_ff);
      ct.arrival_ns = worst_arrival + ct.gate_delay_ns;
      ct.min_arrival_ns = best_arrival + ct.gate_delay_ns;
      ct.output_slew_ns = lib_cell.arc.out_slew_ns(worst_slew, ct.load_ff);
    }
    net_arrival[cell.output_net] = ct.arrival_ns;
    net_min_arrival[cell.output_net] = ct.min_arrival_ns;
    net_slew[cell.output_net] = ct.output_slew_ns;
  }

  // --- MCT over capture points ---
  double mct = 0.0;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    if (!cell.sequential) continue;
    const double setup = nl.master_of(static_cast<CellId>(ci)).setup_ns;
    const liberty::CharacterizedCell& lib_cell =
        variant_cell(*repo_, nl, variants, static_cast<CellId>(ci));
    for (NetId n : cell.input_nets) {
      const double arr = net_arrival[n] +
                         parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff);
      mct = std::max(mct, arr + setup);
    }
  }
  for (NetId n : nl.primary_outputs())
    mct = std::max(mct,
                   net_arrival[n] +
                       parasitics_->wire_delay_ns(n, options_.output_load_ff));
  result.mct_ns = mct;
  result.clock_ns = options_.clock_ns > 0.0 ? options_.clock_ns : mct;

  // --- required times (backward) ---
  const double t_clk = result.clock_ns;
  std::vector<double> net_required(nl.net_count(), 1e30);
  // Capture endpoints impose requirements on their driving nets.
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    if (!cell.sequential) continue;
    const double setup = nl.master_of(static_cast<CellId>(ci)).setup_ns;
    const liberty::CharacterizedCell& lib_cell =
        variant_cell(*repo_, nl, variants, static_cast<CellId>(ci));
    for (NetId n : cell.input_nets) {
      const double req = t_clk - setup -
                         parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff);
      net_required[n] = std::min(net_required[n], req);
    }
  }
  for (NetId n : nl.primary_outputs()) {
    const double req =
        t_clk - parasitics_->wire_delay_ns(n, options_.output_load_ff);
    net_required[n] = std::min(net_required[n], req);
  }
  // Backward over combinational cells in reverse topological order.
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const CellId c = *it;
    const netlist::Cell& cell = nl.cell(c);
    CellTiming& ct = result.cells[c];
    ct.required_ns = net_required[cell.output_net];
    ct.slack_ns = ct.required_ns - ct.arrival_ns;
    if (cell.sequential) continue;  // stops propagation at launch points
    const liberty::CharacterizedCell& lib_cell =
        variant_cell(*repo_, nl, variants, c);
    for (NetId n : cell.input_nets) {
      const double req = ct.required_ns - ct.gate_delay_ns -
                         parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff);
      net_required[n] = std::min(net_required[n], req);
    }
  }

  double worst = 1e30;
  for (const CellTiming& ct : result.cells)
    worst = std::min(worst, ct.slack_ns);
  result.worst_slack_ns = nl.cell_count() > 0 ? worst : 0.0;

  // --- hold analysis: shortest launch-to-capture path vs hold time ---
  // (Same-edge capture model: data must not race through before the hold
  // window closes.  PIs are externally timed and excluded.)
  double worst_hold = 1e30;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    if (!cell.sequential) continue;
    const double hold = nl.master_of(static_cast<CellId>(ci)).hold_ns;
    const liberty::CharacterizedCell& lib_cell =
        variant_cell(*repo_, nl, variants, static_cast<CellId>(ci));
    for (NetId n : cell.input_nets) {
      if (nl.net(n).driver == kNoCell) continue;
      const double min_arr =
          net_min_arrival[n] +
          parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff);
      worst_hold = std::min(worst_hold, min_arr - hold);
    }
  }
  result.worst_hold_slack_ns = worst_hold >= 1e30 ? 0.0 : worst_hold;
  return result;
}

std::vector<TimingPath> Timer::top_paths(const VariantAssignment& variants,
                                         std::size_t k) const {
  return top_paths(variants, analyze(variants), k);
}

std::vector<TimingPath> Timer::top_paths(const VariantAssignment& variants,
                                         const TimingResult& timing,
                                         std::size_t k) const {
  const netlist::Netlist& nl = *netlist_;
  DOSEOPT_CHECK(timing.cells.size() == nl.cell_count(),
                "top_paths: timing result mismatch");

  // Best-first backward enumeration of K longest paths.  A partial path is
  // anchored at some cell; its bound = arrival(cell) + suffix delay (cell
  // output -> endpoint).  Since arrival is the exact longest prefix, bounds
  // are admissible and paths complete in exact non-increasing delay order.
  struct Partial {
    double bound;
    CellId cell;
    std::int32_t parent;  ///< index into the arena, -1 at an endpoint
    bool complete;        ///< true once the launch point has been reached
  };
  struct Cmp {
    bool operator()(const std::pair<double, std::size_t>& a,
                    const std::pair<double, std::size_t>& b) const {
      return a.first < b.first;
    }
  };
  std::vector<Partial> arena;
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, Cmp>
      queue;

  auto push = [&](double bound, CellId cell, std::int32_t parent,
                  bool complete) {
    arena.push_back(Partial{bound, cell, parent, complete});
    queue.emplace(bound, arena.size() - 1);
  };

  // Seed with endpoints: flop D pins and primary outputs.
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    if (!cell.sequential) continue;
    const double setup = nl.master_of(static_cast<CellId>(ci)).setup_ns;
    const liberty::CharacterizedCell& lib_cell =
        repo_->variant(variants.get(static_cast<CellId>(ci)).first,
                       variants.get(static_cast<CellId>(ci)).second)
            .cell(cell.master_index);
    for (NetId n : cell.input_nets) {
      const CellId drv = nl.net(n).driver;
      if (drv == kNoCell) continue;
      const double bound =
          timing.cells[drv].arrival_ns +
          parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff) + setup;
      push(bound, drv, -1, false);
    }
  }
  for (NetId n : nl.primary_outputs()) {
    const CellId drv = nl.net(n).driver;
    if (drv == kNoCell) continue;
    const double bound =
        timing.cells[drv].arrival_ns +
        parasitics_->wire_delay_ns(n, options_.output_load_ff);
    push(bound, drv, -1, false);
  }

  std::vector<TimingPath> paths;
  while (paths.size() < k && !queue.empty()) {
    const auto [bound, idx] = queue.top();
    queue.pop();
    const Partial part = arena[idx];
    const netlist::Cell& cell = nl.cell(part.cell);

    if (part.complete || cell.sequential) {
      // Launch point reached: unwind the chain (launch -> capture order).
      TimingPath p;
      p.delay_ns = bound;
      p.slack_ns = timing.clock_ns - bound;
      for (std::int32_t i = static_cast<std::int32_t>(idx); i >= 0;
           i = arena[static_cast<std::size_t>(i)].parent)
        p.cells.push_back(arena[static_cast<std::size_t>(i)].cell);
      paths.push_back(std::move(p));
      continue;
    }

    const liberty::CharacterizedCell& lib_cell =
        repo_->variant(variants.get(part.cell).first,
                       variants.get(part.cell).second)
            .cell(cell.master_index);
    const double suffix = bound - timing.cells[part.cell].arrival_ns;
    double best_pi_bound = -1e30;
    // Distinct input nets only: a net wired to several pins of the same cell
    // is one timing edge, not several parallel paths.
    std::vector<NetId> seen_nets;
    for (NetId n : cell.input_nets) {
      if (std::find(seen_nets.begin(), seen_nets.end(), n) != seen_nets.end())
        continue;
      seen_nets.push_back(n);
      const CellId drv = nl.net(n).driver;
      const double stage =
          parasitics_->wire_delay_ns(n, lib_cell.input_cap_ff) +
          timing.cells[part.cell].gate_delay_ns + suffix;
      if (drv == kNoCell) {
        // Primary-input launch (arrival 0): path completes here.
        best_pi_bound = std::max(best_pi_bound, stage);
      } else {
        push(timing.cells[drv].arrival_ns + stage, drv,
             static_cast<std::int32_t>(idx), false);
      }
    }
    if (best_pi_bound > -1e30)
      push(best_pi_bound, part.cell, part.parent, true);
  }
  return paths;
}

double critical_path_percentage(const std::vector<TimingPath>& paths,
                                double mct_ns, double lo_frac) {
  if (paths.empty() || mct_ns <= 0.0) return 0.0;
  std::size_t count = 0;
  for (const TimingPath& p : paths)
    if (p.delay_ns >= lo_frac * mct_ns) ++count;
  return 100.0 * static_cast<double>(count) /
         static_cast<double>(paths.size());
}

}  // namespace doseopt::sta
