#include "sta/timer.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace doseopt::sta {

using netlist::CellId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

using detail::kNoReqRel;
using detail::kUnboundRequired;

namespace {

/// Heap entry packing: (topological position, id).  Position in the high
/// bits so the packed integers order by position first.
inline std::uint64_t pack(std::uint32_t pos, std::uint32_t id) {
  return (static_cast<std::uint64_t>(pos) << 32) | id;
}
inline std::uint32_t unpack_id(std::uint64_t e) {
  return static_cast<std::uint32_t>(e);
}

}  // namespace

void VariantAssignment::set(CellId c, int poly_index, int active_index) {
  DOSEOPT_CHECK(c < variants_.size(), "VariantAssignment::set: bad cell");
  DOSEOPT_CHECK(poly_index >= 0 && poly_index < liberty::kVariantsPerLayer &&
                    active_index >= 0 &&
                    active_index < liberty::kVariantsPerLayer,
                "VariantAssignment::set: variant out of range");
  variants_[c] = {poly_index, active_index};
}

Timer::Timer(const netlist::Netlist* nl, const extract::Parasitics* parasitics,
             liberty::LibraryRepository* repo, TimingOptions options)
    : netlist_(nl), parasitics_(parasitics), repo_(repo), options_(options) {
  DOSEOPT_CHECK(nl != nullptr && parasitics != nullptr && repo != nullptr,
                "Timer: null dependency");
  topo_order_ = nl->topological_order();

  const std::size_t cell_count = nl->cell_count();
  const std::size_t net_count = nl->net_count();

  topo_pos_.assign(cell_count, 0);
  for (std::size_t i = 0; i < topo_order_.size(); ++i)
    topo_pos_[topo_order_[i]] = static_cast<std::uint32_t>(i);

  // Deduped fanin edges: a net wired to several pins of the same cell is
  // one timing edge (max/min over duplicates is idempotent, so the forward
  // and backward kernels are unchanged by the dedup).
  fanin_ptr_.assign(cell_count + 1, 0);
  fanin_net_.clear();
  std::vector<NetId> seen;
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const netlist::Cell& cell = nl->cell(static_cast<CellId>(ci));
    seen.clear();
    for (NetId n : cell.input_nets) {
      if (std::find(seen.begin(), seen.end(), n) == seen.end()) seen.push_back(n);
    }
    fanin_net_.insert(fanin_net_.end(), seen.begin(), seen.end());
    fanin_ptr_[ci + 1] = fanin_net_.size();
  }

  // Net -> consumer edges (CSR), in ascending consumer cell order.
  net_cons_ptr_.assign(net_count + 1, 0);
  for (NetId n : fanin_net_) net_cons_ptr_[n + 1]++;
  for (std::size_t ni = 0; ni < net_count; ++ni)
    net_cons_ptr_[ni + 1] += net_cons_ptr_[ni];
  net_cons_cell_.assign(fanin_net_.size(), kNoCell);
  net_cons_edge_.assign(fanin_net_.size(), 0);
  {
    std::vector<std::size_t> next(net_cons_ptr_.begin(),
                                  net_cons_ptr_.end() - 1);
    for (std::size_t ci = 0; ci < cell_count; ++ci) {
      for (std::size_t e = fanin_ptr_[ci]; e < fanin_ptr_[ci + 1]; ++e) {
        const std::size_t pos = next[fanin_net_[e]]++;
        net_cons_cell_[pos] = static_cast<CellId>(ci);
        net_cons_edge_[pos] = e;
      }
    }
  }

  setup_ns_.assign(cell_count, 0.0);
  hold_ns_.assign(cell_count, 0.0);
  for (std::size_t ci = 0; ci < cell_count; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!nl->cell(id).sequential) continue;
    seq_cells_.push_back(id);
    setup_ns_[ci] = nl->master_of(id).setup_ns;
    hold_ns_[ci] = nl->master_of(id).hold_ns;
  }
}

// ---------------------------------------------------------------------------
// Shared kernels.
// ---------------------------------------------------------------------------

const liberty::CharacterizedCell* Timer::resolve_cell(TimingState& state,
                                                      CellId c) const {
  const auto [il, iw] = state.variants_[c];
  const liberty::Library*& lib =
      state.lib_cache_[static_cast<std::size_t>(il) *
                           liberty::kVariantsPerLayer +
                       static_cast<std::size_t>(iw)];
  if (lib == nullptr) lib = &repo_->variant(il, iw);
  return &lib->cell(netlist_->cell(c).master_index);
}

double Timer::compute_net_load(const TimingState& state, NetId n) const {
  const netlist::Net& net = netlist_->net(n);
  double load = parasitics_->net(n).wire_cap_ff;
  for (const netlist::SinkPin& s : net.sinks)
    load += state.lib_cell_[s.cell]->input_cap_ff;
  if (net.is_primary_output) load += options_.output_load_ff;
  return load;
}

bool Timer::refresh_fanin_edges(TimingState& state, CellId c) const {
  const double cap = state.lib_cell_[c]->input_cap_ff;
  bool changed = false;
  for (std::size_t e = fanin_ptr_[c]; e < fanin_ptr_[c + 1]; ++e) {
    const NetId n = fanin_net_[e];
    const double wd = parasitics_->wire_delay_ns(n, cap);
    const double ws = parasitics_->wire_slew_ns(n, cap);
    if (wd != state.edge_wire_delay_[e] || ws != state.edge_wire_slew_[e]) {
      state.edge_wire_delay_[e] = wd;
      state.edge_wire_slew_[e] = ws;
      changed = true;
    }
  }
  return changed;
}

void Timer::compute_cell(TimingState& state, CellId c, CellTiming& ct) const {
  const netlist::Cell& cell = netlist_->cell(c);
  const liberty::CharacterizedCell& lib_cell = *state.lib_cell_[c];
  ct.load_ff = state.net_load_[cell.output_net];

  if (cell.sequential) {
    // Launch point: clk->Q delay from the clock edge.
    ct.input_slew_ns = options_.clock_slew_ns;
    ct.gate_delay_ns =
        lib_cell.arc.delay_ns(options_.clock_slew_ns, ct.load_ff);
    ct.arrival_ns = ct.gate_delay_ns;
    ct.min_arrival_ns = ct.gate_delay_ns;
    ct.output_slew_ns =
        lib_cell.arc.out_slew_ns(options_.clock_slew_ns, ct.load_ff);
    return;
  }

  double worst_arrival = 0.0;
  double best_arrival = 1e30;
  double worst_slew = options_.input_slew_ns;
  for (std::size_t e = fanin_ptr_[c]; e < fanin_ptr_[c + 1]; ++e) {
    const NetId n = fanin_net_[e];
    const double wire = state.edge_wire_delay_[e];
    const double arr = state.net_arrival_[n] + wire;
    const double min_arr = state.net_min_arrival_[n] + wire;
    const double slew = state.net_slew_[n] + state.edge_wire_slew_[e];
    worst_arrival = std::max(worst_arrival, arr);
    best_arrival = std::min(best_arrival, min_arr);
    worst_slew = std::max(worst_slew, slew);
  }
  if (fanin_ptr_[c] == fanin_ptr_[c + 1]) best_arrival = 0.0;
  ct.input_slew_ns = worst_slew;
  ct.gate_delay_ns = lib_cell.arc.delay_ns(worst_slew, ct.load_ff);
  ct.arrival_ns = worst_arrival + ct.gate_delay_ns;
  ct.min_arrival_ns = best_arrival + ct.gate_delay_ns;
  ct.output_slew_ns = lib_cell.arc.out_slew_ns(worst_slew, ct.load_ff);
}

double Timer::compute_req_rel(const TimingState& state, NetId n) const {
  // req_rel[n] = t_clk - required[n], which is clock-independent: the
  // largest downstream "cost" of this net over its consumers --
  //   seq capture:  setup + wire delay to the D pin,
  //   primary out:  wire delay to the load,
  //   comb consumer c:  req_rel[out(c)] + gate_delay(c) + wire delay.
  // An unconstrained (dangling) cone stays at kNoReqRel: adding O(1) delay
  // terms to -1e30 is exact, so "no constraint" propagates losslessly.
  double rr = kNoReqRel;
  if (netlist_->net(n).is_primary_output)
    rr = std::max(rr, state.po_wire_delay_[n]);
  for (std::size_t k = net_cons_ptr_[n]; k < net_cons_ptr_[n + 1]; ++k) {
    const CellId c = net_cons_cell_[k];
    const double wire = state.edge_wire_delay_[net_cons_edge_[k]];
    if (netlist_->cell(c).sequential) {
      rr = std::max(rr, setup_ns_[c] + wire);
    } else {
      rr = std::max(rr, state.net_req_rel_[netlist_->cell(c).output_net] +
                            state.result_.cells[c].gate_delay_ns + wire);
    }
  }
  return rr;
}

void Timer::finish(TimingState& state) const {
  const netlist::Netlist& nl = *netlist_;
  TimingResult& result = state.result_;

  // --- MCT over capture points ---
  double mct = 0.0;
  for (CellId ci : seq_cells_) {
    const double setup = setup_ns_[ci];
    for (std::size_t e = fanin_ptr_[ci]; e < fanin_ptr_[ci + 1]; ++e) {
      const NetId n = fanin_net_[e];
      const double arr = state.net_arrival_[n] + state.edge_wire_delay_[e];
      mct = std::max(mct, arr + setup);
    }
  }
  for (NetId n : nl.primary_outputs())
    mct = std::max(mct, state.net_arrival_[n] + state.po_wire_delay_[n]);
  result.mct_ns = mct;
  result.clock_ns = options_.clock_ns > 0.0 ? options_.clock_ns : mct;

  // --- required/slack from the clock-independent req_rel ---
  const double t_clk = result.clock_ns;
  double worst = 1e30;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    CellTiming& ct = result.cells[ci];
    const double rr = state.net_req_rel_[nl.cell(static_cast<CellId>(ci))
                                             .output_net];
    ct.required_ns = rr > kNoReqRel ? t_clk - rr : kUnboundRequired;
    ct.slack_ns = ct.required_ns - ct.arrival_ns;
    worst = std::min(worst, ct.slack_ns);
  }
  result.worst_slack_ns = nl.cell_count() > 0 ? worst : 0.0;

  // --- hold analysis: shortest launch-to-capture path vs hold time ---
  // (Same-edge capture model: data must not race through before the hold
  // window closes.  PIs are externally timed and excluded.)
  double worst_hold = 1e30;
  for (CellId ci : seq_cells_) {
    const double hold = hold_ns_[ci];
    for (std::size_t e = fanin_ptr_[ci]; e < fanin_ptr_[ci + 1]; ++e) {
      const NetId n = fanin_net_[e];
      if (nl.net(n).driver == kNoCell) continue;
      const double min_arr =
          state.net_min_arrival_[n] + state.edge_wire_delay_[e];
      worst_hold = std::min(worst_hold, min_arr - hold);
    }
  }
  result.worst_hold_slack_ns = worst_hold >= 1e30 ? 0.0 : worst_hold;
}

// ---------------------------------------------------------------------------
// Full initialization.
// ---------------------------------------------------------------------------

void Timer::init_state(TimingState& state,
                       const VariantAssignment& variants) const {
  const netlist::Netlist& nl = *netlist_;
  const std::size_t cell_count = nl.cell_count();
  const std::size_t net_count = nl.net_count();

  state.owner_ = this;
  state.variants_.resize(cell_count);
  for (std::size_t ci = 0; ci < cell_count; ++ci)
    state.variants_[ci] = variants.get(static_cast<CellId>(ci));

  state.lib_cache_.assign(static_cast<std::size_t>(liberty::kVariantsPerLayer) *
                              liberty::kVariantsPerLayer,
                          nullptr);
  state.lib_cell_.resize(cell_count);
  for (std::size_t ci = 0; ci < cell_count; ++ci)
    state.lib_cell_[ci] = resolve_cell(state, static_cast<CellId>(ci));

  state.po_wire_delay_.assign(net_count, 0.0);
  for (NetId n : nl.primary_outputs())
    state.po_wire_delay_[n] =
        parasitics_->wire_delay_ns(n, options_.output_load_ff);

  state.edge_wire_delay_.assign(fanin_net_.size(), 0.0);
  state.edge_wire_slew_.assign(fanin_net_.size(), 0.0);
  for (std::size_t ci = 0; ci < cell_count; ++ci)
    refresh_fanin_edges(state, static_cast<CellId>(ci));

  state.net_load_.resize(net_count);
  for (std::size_t ni = 0; ni < net_count; ++ni)
    state.net_load_[ni] = compute_net_load(state, static_cast<NetId>(ni));

  // PI nets launch at time 0 with the boundary input slew.
  state.net_arrival_.assign(net_count, 0.0);
  state.net_min_arrival_.assign(net_count, 0.0);
  state.net_slew_.assign(net_count, options_.input_slew_ns);

  state.result_.cells.assign(cell_count, CellTiming{});
  for (CellId c : topo_order_) {
    CellTiming& ct = state.result_.cells[c];
    compute_cell(state, c, ct);
    const NetId out = nl.cell(c).output_net;
    state.net_arrival_[out] = ct.arrival_ns;
    state.net_min_arrival_[out] = ct.min_arrival_ns;
    state.net_slew_[out] = ct.output_slew_ns;
  }

  state.net_req_rel_.assign(net_count, kNoReqRel);
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const NetId out = nl.cell(*it).output_net;
    state.net_req_rel_[out] = compute_req_rel(state, out);
  }

  finish(state);

  state.epoch_ = 0;
  state.cell_queued_.assign(cell_count, 0);
  state.net_req_queued_.assign(net_count, 0);
  state.net_load_queued_.assign(net_count, 0);
  state.net_par_queued_.assign(net_count, 0);
  state.fwd_heap_.clear();
  state.bwd_heap_.clear();
  state.load_dirty_.clear();
  state.valid_ = true;
}

// ---------------------------------------------------------------------------
// Incremental update.
// ---------------------------------------------------------------------------

const TimingResult& Timer::incremental_update(
    TimingState& state, const VariantAssignment& variants,
    const std::vector<NetId>& changed_nets) const {
  const netlist::Netlist& nl = *netlist_;
  const std::uint32_t epoch = ++state.epoch_;
  state.fwd_heap_.clear();
  state.bwd_heap_.clear();
  state.load_dirty_.clear();

  auto mark_cell_fwd = [&](CellId c) {
    if (state.cell_queued_[c] == epoch) return;
    state.cell_queued_[c] = epoch;
    state.fwd_heap_.push_back(pack(topo_pos_[c], c));
    std::push_heap(state.fwd_heap_.begin(), state.fwd_heap_.end(),
                   std::greater<>());
  };
  auto mark_net_req = [&](NetId n) {
    const CellId drv = nl.net(n).driver;
    if (drv == kNoCell) return;  // PI nets carry no reported requirement
    if (state.net_req_queued_[n] == epoch) return;
    state.net_req_queued_[n] = epoch;
    state.bwd_heap_.push_back(pack(topo_pos_[drv], n));
    std::push_heap(state.bwd_heap_.begin(), state.bwd_heap_.end());
  };
  auto mark_net_load = [&](NetId n) {
    if (state.net_load_queued_[n] == epoch) return;
    state.net_load_queued_[n] = epoch;
    state.load_dirty_.push_back(n);
  };

  // --- 1. diff the variant assignment against the snapshot ---
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    const std::pair<int, int> v = variants.get(id);
    if (v == state.variants_[ci]) continue;
    state.variants_[ci] = v;
    const liberty::CharacterizedCell* lc = resolve_cell(state, id);
    const bool cap_changed =
        lc->input_cap_ff != state.lib_cell_[ci]->input_cap_ff;
    state.lib_cell_[ci] = lc;
    mark_cell_fwd(id);  // NLDM tables changed -> gate delay/slew may move
    if (cap_changed) {
      // This cell's pin cap feeds its input nets' loads and its own
      // fanin-edge wire delays (and, through those, upstream req_rel).
      if (refresh_fanin_edges(state, id)) {
        for (std::size_t e = fanin_ptr_[ci]; e < fanin_ptr_[ci + 1]; ++e)
          mark_net_req(fanin_net_[e]);
      }
      for (const NetId n : nl.cell(id).input_nets) mark_net_load(n);
    }
  }

  // --- 2. nets with re-extracted parasitics ---
  for (const NetId n : changed_nets) {
    DOSEOPT_CHECK(n < nl.net_count(), "Timer::update: bad changed net");
    if (state.net_par_queued_[n] == epoch) continue;  // duplicate entry
    state.net_par_queued_[n] = epoch;
    mark_net_load(n);  // wire cap contributes to the net load
    if (nl.net(n).is_primary_output)
      state.po_wire_delay_[n] =
          parasitics_->wire_delay_ns(n, options_.output_load_ff);
    // Every consumer edge's wire delay/slew is stale.
    for (std::size_t k = net_cons_ptr_[n]; k < net_cons_ptr_[n + 1]; ++k) {
      const CellId c = net_cons_cell_[k];
      const std::size_t e = net_cons_edge_[k];
      const double cap = state.lib_cell_[c]->input_cap_ff;
      const double wd = parasitics_->wire_delay_ns(n, cap);
      const double ws = parasitics_->wire_slew_ns(n, cap);
      if (wd != state.edge_wire_delay_[e] || ws != state.edge_wire_slew_[e]) {
        state.edge_wire_delay_[e] = wd;
        state.edge_wire_slew_[e] = ws;
        mark_cell_fwd(c);
      }
    }
    mark_net_req(n);  // wire-delay terms in req_rel[n] may have moved
  }

  // --- 3. re-sum dirty net loads (same order as a full pass) ---
  for (const NetId n : state.load_dirty_) {
    const double load = compute_net_load(state, n);
    if (load == state.net_load_[n]) continue;
    state.net_load_[n] = load;
    const CellId drv = nl.net(n).driver;
    if (drv != kNoCell) mark_cell_fwd(drv);  // gate delay sees the new load
  }

  // --- 4. forward cone: levelized worklist with early termination ---
  while (!state.fwd_heap_.empty()) {
    std::pop_heap(state.fwd_heap_.begin(), state.fwd_heap_.end(),
                  std::greater<>());
    const CellId c = unpack_id(state.fwd_heap_.back());
    state.fwd_heap_.pop_back();

    CellTiming& ct = state.result_.cells[c];
    const double old_gate = ct.gate_delay_ns;
    compute_cell(state, c, ct);

    if (ct.gate_delay_ns != old_gate && !nl.cell(c).sequential) {
      // req_rel of this cell's input nets embeds its gate delay.
      for (std::size_t e = fanin_ptr_[c]; e < fanin_ptr_[c + 1]; ++e)
        mark_net_req(fanin_net_[e]);
    }

    const NetId out = nl.cell(c).output_net;
    if (ct.arrival_ns == state.net_arrival_[out] &&
        ct.min_arrival_ns == state.net_min_arrival_[out] &&
        ct.output_slew_ns == state.net_slew_[out])
      continue;  // converged: downstream values cannot change
    state.net_arrival_[out] = ct.arrival_ns;
    state.net_min_arrival_[out] = ct.min_arrival_ns;
    state.net_slew_[out] = ct.output_slew_ns;
    for (std::size_t k = net_cons_ptr_[out]; k < net_cons_ptr_[out + 1]; ++k)
      mark_cell_fwd(net_cons_cell_[k]);
  }

  // --- 5. backward cone: req_rel repair, deepest driver first ---
  while (!state.bwd_heap_.empty()) {
    std::pop_heap(state.bwd_heap_.begin(), state.bwd_heap_.end());
    const NetId n = unpack_id(state.bwd_heap_.back());
    state.bwd_heap_.pop_back();

    const double rr = compute_req_rel(state, n);
    if (rr == state.net_req_rel_[n]) continue;
    state.net_req_rel_[n] = rr;
    const CellId drv = nl.net(n).driver;
    if (drv == kNoCell || nl.cell(drv).sequential) continue;
    for (std::size_t e = fanin_ptr_[drv]; e < fanin_ptr_[drv + 1]; ++e)
      mark_net_req(fanin_net_[e]);
  }

  // --- 6. finalize: MCT / clock / required / slack / hold (O(cells), no
  // NLDM evaluations -- every term reads cached values) ---
  finish(state);
  return state.result_;
}

const TimingResult& Timer::update(
    TimingState& state, const VariantAssignment& variants,
    const std::vector<NetId>& changed_nets) const {
  DOSEOPT_CHECK(variants.size() == netlist_->cell_count(),
                "Timer::update: variant assignment size mismatch");
  if (!state.valid_ || state.owner_ != this) {
    init_state(state, variants);
    return state.result_;
  }
  return incremental_update(state, variants, changed_nets);
}

TimingResult Timer::analyze(const VariantAssignment& variants) const {
  DOSEOPT_CHECK(variants.size() == netlist_->cell_count(),
                "Timer::analyze: variant assignment size mismatch");
  TimingState state;
  init_state(state, variants);
  return std::move(state.result_);
}

std::vector<TimingPath> Timer::top_paths(const VariantAssignment& variants,
                                         std::size_t k) const {
  return top_paths(variants, analyze(variants), k);
}

std::vector<TimingPath> Timer::top_paths(const VariantAssignment& variants,
                                         const TimingResult& timing,
                                         std::size_t k) const {
  const netlist::Netlist& nl = *netlist_;
  DOSEOPT_CHECK(timing.cells.size() == nl.cell_count(),
                "top_paths: timing result mismatch");

  // Per-cell resolved characterized cells (one variant-map lookup per
  // library, not one per expansion).
  std::vector<const liberty::Library*> lib_cache(
      static_cast<std::size_t>(liberty::kVariantsPerLayer) *
          liberty::kVariantsPerLayer,
      nullptr);
  auto lib_cell = [&](CellId c) -> const liberty::CharacterizedCell& {
    const auto [il, iw] = variants.get(c);
    const liberty::Library*& lib =
        lib_cache[static_cast<std::size_t>(il) * liberty::kVariantsPerLayer +
                  static_cast<std::size_t>(iw)];
    if (lib == nullptr) lib = &repo_->variant(il, iw);
    return lib->cell(nl.cell(c).master_index);
  };

  // Best-first backward enumeration of K longest paths.  A partial path is
  // anchored at some cell; its bound = arrival(cell) + suffix delay (cell
  // output -> endpoint).  Since arrival is the exact longest prefix, bounds
  // are admissible and paths complete in exact non-increasing delay order.
  struct Partial {
    double bound;
    CellId cell;
    std::int32_t parent;  ///< index into the arena, -1 at an endpoint
    bool complete;        ///< true once the launch point has been reached
  };
  struct Cmp {
    bool operator()(const std::pair<double, std::size_t>& a,
                    const std::pair<double, std::size_t>& b) const {
      return a.first < b.first;
    }
  };
  std::vector<Partial> arena;
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, Cmp>
      queue;

  auto push = [&](double bound, CellId cell, std::int32_t parent,
                  bool complete) {
    arena.push_back(Partial{bound, cell, parent, complete});
    queue.emplace(bound, arena.size() - 1);
  };

  // Seed with endpoints: flop D pins and primary outputs.
  for (CellId ci : seq_cells_) {
    const double setup = setup_ns_[ci];
    const double cap = lib_cell(ci).input_cap_ff;
    for (std::size_t e = fanin_ptr_[ci]; e < fanin_ptr_[ci + 1]; ++e) {
      const NetId n = fanin_net_[e];
      const CellId drv = nl.net(n).driver;
      if (drv == kNoCell) continue;
      const double bound = timing.cells[drv].arrival_ns +
                           parasitics_->wire_delay_ns(n, cap) + setup;
      push(bound, drv, -1, false);
    }
  }
  for (NetId n : nl.primary_outputs()) {
    const CellId drv = nl.net(n).driver;
    if (drv == kNoCell) continue;
    const double bound =
        timing.cells[drv].arrival_ns +
        parasitics_->wire_delay_ns(n, options_.output_load_ff);
    push(bound, drv, -1, false);
  }

  std::vector<TimingPath> paths;
  while (paths.size() < k && !queue.empty()) {
    const auto [bound, idx] = queue.top();
    queue.pop();
    const Partial part = arena[idx];
    const netlist::Cell& cell = nl.cell(part.cell);

    if (part.complete || cell.sequential) {
      // Launch point reached: unwind the chain (launch -> capture order).
      TimingPath p;
      p.delay_ns = bound;
      p.slack_ns = timing.clock_ns - bound;
      for (std::int32_t i = static_cast<std::int32_t>(idx); i >= 0;
           i = arena[static_cast<std::size_t>(i)].parent)
        p.cells.push_back(arena[static_cast<std::size_t>(i)].cell);
      paths.push_back(std::move(p));
      continue;
    }

    const double cap = lib_cell(part.cell).input_cap_ff;
    const double suffix = bound - timing.cells[part.cell].arrival_ns;
    double best_pi_bound = -1e30;
    // Expand over the precomputed deduped fanin edges: a net wired to
    // several pins of the same cell is one timing edge, not several
    // parallel paths.
    for (std::size_t e = fanin_ptr_[part.cell]; e < fanin_ptr_[part.cell + 1];
         ++e) {
      const NetId n = fanin_net_[e];
      const CellId drv = nl.net(n).driver;
      const double stage = parasitics_->wire_delay_ns(n, cap) +
                           timing.cells[part.cell].gate_delay_ns + suffix;
      if (drv == kNoCell) {
        // Primary-input launch (arrival 0): path completes here.
        best_pi_bound = std::max(best_pi_bound, stage);
      } else {
        push(timing.cells[drv].arrival_ns + stage, drv,
             static_cast<std::int32_t>(idx), false);
      }
    }
    if (best_pi_bound > -1e30)
      push(best_pi_bound, part.cell, part.parent, true);
  }
  return paths;
}

double critical_path_percentage(const std::vector<TimingPath>& paths,
                                double mct_ns, double lo_frac) {
  if (paths.empty() || mct_ns <= 0.0) return 0.0;
  std::size_t count = 0;
  for (const TimingPath& p : paths)
    if (p.delay_ns >= lo_frac * mct_ns) ++count;
  return 100.0 * static_cast<double>(count) /
         static_cast<double>(paths.size());
}

}  // namespace doseopt::sta
