// Static timing analysis (the golden-signoff substitute).
//
// Block-based STA over the unrolled combinational view of the design:
// primary inputs and flop outputs launch, primary outputs and flop D inputs
// capture.  Gate delays and output slews come from the NLDM tables of each
// instance's assigned library variant (its dose-map grid decides the
// variant), wire delays from Elmore on the extracted parasitics, loads from
// wire capacitance plus variant-dependent sink pin capacitances.
//
// Produces per-cell arrival/required/slack, the design MCT (minimum cycle
// time), and the slack data for Table VII and Fig. 10.
#pragma once

#include <utility>
#include <vector>

#include "extract/extract.h"
#include "liberty/repository.h"
#include "netlist/netlist.h"

namespace doseopt::sta {

/// Per-cell library-variant assignment (poly index, active index);
/// default-initialized to the nominal variant for every cell.
class VariantAssignment {
 public:
  explicit VariantAssignment(std::size_t cell_count)
      : variants_(cell_count,
                  {liberty::kVariantsPerLayer / 2,
                   liberty::kVariantsPerLayer / 2}) {}

  void set(netlist::CellId c, int poly_index, int active_index);
  std::pair<int, int> get(netlist::CellId c) const { return variants_[c]; }
  std::size_t size() const { return variants_.size(); }

 private:
  std::vector<std::pair<int, int>> variants_;
};

/// Analysis conditions.
struct TimingOptions {
  double clock_ns = 0.0;      ///< 0 => use the computed MCT as the clock
  double input_slew_ns = 0.05;
  double clock_slew_ns = 0.04;
  double output_load_ff = 4.0;
};

/// Per-cell timing quantities (all at the cell *output* unless noted).
struct CellTiming {
  double arrival_ns = 0.0;      ///< latest (max) arrival -- setup analysis
  double min_arrival_ns = 0.0;  ///< earliest (min) arrival -- hold analysis
  double required_ns = 0.0;
  double slack_ns = 0.0;
  double gate_delay_ns = 0.0;
  double input_slew_ns = 0.0;  ///< worst slew over input pins
  double output_slew_ns = 0.0;
  double load_ff = 0.0;        ///< capacitive load on the output net
};

/// A timing path: launch-to-capture cell chain with its total delay.
struct TimingPath {
  std::vector<netlist::CellId> cells;  ///< launch side first
  double delay_ns = 0.0;               ///< includes capture setup
  double slack_ns = 0.0;               ///< vs. the analysis clock
};

/// Full analysis result.
struct TimingResult {
  std::vector<CellTiming> cells;
  double mct_ns = 0.0;    ///< worst path delay incl. setup = minimum cycle time
  double clock_ns = 0.0;  ///< the clock slacks were computed against
  double worst_slack_ns = 0.0;       ///< worst setup slack
  double worst_hold_slack_ns = 0.0;  ///< worst hold slack (min path - hold)
};

/// The timer: bound to a netlist + parasitics + variant library repository.
class Timer {
 public:
  Timer(const netlist::Netlist* nl, const extract::Parasitics* parasitics,
        liberty::LibraryRepository* repo, TimingOptions options = {});

  /// Full timing analysis under a variant assignment.
  TimingResult analyze(const VariantAssignment& variants) const;

  /// Enumerate the K worst (largest-delay) launch-to-capture paths, in
  /// non-increasing delay order.  Exact K-longest-paths over the timing DAG.
  std::vector<TimingPath> top_paths(const VariantAssignment& variants,
                                    std::size_t k) const;
  std::vector<TimingPath> top_paths(const VariantAssignment& variants,
                                    const TimingResult& timing,
                                    std::size_t k) const;

  const TimingOptions& options() const { return options_; }
  const netlist::Netlist& netlist() const { return *netlist_; }

 private:
  const netlist::Netlist* netlist_;
  const extract::Parasitics* parasitics_;
  liberty::LibraryRepository* repo_;
  TimingOptions options_;
  std::vector<netlist::CellId> topo_order_;
};

/// Fraction (percent) of `paths` whose delay is within [lo_frac, 1.0] of the
/// MCT -- the statistic of Table VII.
double critical_path_percentage(const std::vector<TimingPath>& paths,
                                double mct_ns, double lo_frac);

}  // namespace doseopt::sta
