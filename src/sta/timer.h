// Static timing analysis (the golden-signoff substitute).
//
// Block-based STA over the unrolled combinational view of the design:
// primary inputs and flop outputs launch, primary outputs and flop D inputs
// capture.  Gate delays and output slews come from the NLDM tables of each
// instance's assigned library variant (its dose-map grid decides the
// variant), wire delays from Elmore on the extracted parasitics, loads from
// wire capacitance plus variant-dependent sink pin capacitances.
//
// Two entry points share one compute path:
//
//   * analyze(variants)          -- full pass, stateless.
//   * update(state, variants, changed_nets)
//                                -- incremental pass against a persistent
//                                   TimingState: re-propagates arrival/slew
//                                   only through the forward cone of the
//                                   cells whose variant changed (and the
//                                   nets whose parasitics changed), with
//                                   early termination where values
//                                   converge, then patches the backward
//                                   required-time cone.  Bit-identical to
//                                   a fresh analyze() because both paths
//                                   run the same per-cell/per-net kernels.
//
// The backward pass stores the clock-independent quantity
//   req_rel[n] = t_clk - required[n]
// (endpoint setup + downstream gate/wire delay), so a change in MCT -- and
// with it every required time -- costs only the O(cells) finalize scan, not
// a full backward re-propagation.
//
// Produces per-cell arrival/required/slack, the design MCT (minimum cycle
// time), and the slack data for Table VII and Fig. 10.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "extract/extract.h"
#include "liberty/repository.h"
#include "netlist/netlist.h"

namespace doseopt::ssta {
class SstaTimer;  // statistical engine; shares the Timer's CSR structure
}

namespace doseopt::sta {

class Timer;
class BatchedTimer;

namespace detail {
/// Sentinels shared by the scalar and batched engines (identical values are
/// part of their bitwise-equivalence contract).
inline constexpr double kUnboundRequired = 1e30;
inline constexpr double kNoReqRel = -1e30;  ///< t_clk - required; "unbound"
}  // namespace detail

/// Lane count of the batched timing engine: one structure-of-arrays panel
/// holds kBatchLanes doubles (contiguous, one cache line), so one levelized
/// traversal times kBatchLanes variant assignments -- Monte-Carlo dies or
/// process corners -- simultaneously.
inline constexpr int kBatchLanes = 8;

/// Per-cell library-variant assignment (poly index, active index);
/// default-initialized to the nominal variant for every cell.
class VariantAssignment {
 public:
  explicit VariantAssignment(std::size_t cell_count)
      : variants_(cell_count,
                  {liberty::kVariantsPerLayer / 2,
                   liberty::kVariantsPerLayer / 2}) {}

  void set(netlist::CellId c, int poly_index, int active_index);
  std::pair<int, int> get(netlist::CellId c) const { return variants_[c]; }
  std::size_t size() const { return variants_.size(); }

 private:
  std::vector<std::pair<int, int>> variants_;
};

/// Analysis conditions.
struct TimingOptions {
  double clock_ns = 0.0;      ///< 0 => use the computed MCT as the clock
  double input_slew_ns = 0.05;
  double clock_slew_ns = 0.04;
  double output_load_ff = 4.0;
};

/// Per-cell timing quantities (all at the cell *output* unless noted).
struct CellTiming {
  double arrival_ns = 0.0;      ///< latest (max) arrival -- setup analysis
  double min_arrival_ns = 0.0;  ///< earliest (min) arrival -- hold analysis
  double required_ns = 0.0;
  double slack_ns = 0.0;
  double gate_delay_ns = 0.0;
  double input_slew_ns = 0.0;  ///< worst slew over input pins
  double output_slew_ns = 0.0;
  double load_ff = 0.0;        ///< capacitive load on the output net
};

/// A timing path: launch-to-capture cell chain with its total delay.
struct TimingPath {
  std::vector<netlist::CellId> cells;  ///< launch side first
  double delay_ns = 0.0;               ///< includes capture setup
  double slack_ns = 0.0;               ///< vs. the analysis clock
};

/// Full analysis result.
struct TimingResult {
  std::vector<CellTiming> cells;
  double mct_ns = 0.0;    ///< worst path delay incl. setup = minimum cycle time
  double clock_ns = 0.0;  ///< the clock slacks were computed against
  double worst_slack_ns = 0.0;       ///< worst setup slack
  double worst_hold_slack_ns = 0.0;  ///< worst hold slack (min path - hold)
};

/// Persistent analysis state for incremental timing.  A default-constructed
/// state is empty; the first update() through it runs a full pass and later
/// updates re-time only what changed.  One state belongs to one Timer (it
/// re-initializes itself if handed to another) and is not thread-safe --
/// parallel consumers keep one TimingState per worker lane.
class TimingState {
 public:
  TimingState() = default;

  /// Drop all cached analysis; the next update() re-times from scratch.
  void invalidate() { valid_ = false; }
  bool valid() const { return valid_; }

  /// The most recent analysis result (valid() must hold).
  const TimingResult& result() const { return result_; }

 private:
  friend class Timer;
  friend class doseopt::ssta::SstaTimer;  ///< reads the propagated panels

  bool valid_ = false;
  const Timer* owner_ = nullptr;

  // Assignment snapshot and resolved per-cell characterized cells (kills
  // the per-pin repo.variant(il,iw).cell(...) lookup in the inner loop).
  std::vector<std::pair<int, int>> variants_;
  std::vector<const liberty::CharacterizedCell*> lib_cell_;
  std::vector<const liberty::Library*> lib_cache_;  ///< 21x21 variant grid

  // Per-net propagated quantities.
  std::vector<double> net_load_;
  std::vector<double> net_arrival_;
  std::vector<double> net_min_arrival_;
  std::vector<double> net_slew_;
  std::vector<double> net_req_rel_;  ///< t_clk - required; -1e30 = unbound

  // Cached Elmore delays, indexed by the Timer's deduped fanin-edge list
  // (they change only with parasitics or a consumer's input cap).
  std::vector<double> edge_wire_delay_;
  std::vector<double> edge_wire_slew_;
  std::vector<double> po_wire_delay_;  ///< per net; PO entries only

  TimingResult result_;

  // Worklist scratch, persisted across updates to avoid reallocation.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> cell_queued_;
  std::vector<std::uint32_t> net_req_queued_;
  std::vector<std::uint32_t> net_load_queued_;
  std::vector<std::uint32_t> net_par_queued_;
  std::vector<std::uint64_t> fwd_heap_;
  std::vector<std::uint64_t> bwd_heap_;
  std::vector<netlist::NetId> load_dirty_;
};

/// The timer: bound to a netlist + parasitics + variant library repository.
class Timer {
 public:
  Timer(const netlist::Netlist* nl, const extract::Parasitics* parasitics,
        liberty::LibraryRepository* repo, TimingOptions options = {});

  /// Full timing analysis under a variant assignment.
  TimingResult analyze(const VariantAssignment& variants) const;

  /// Incremental timing analysis.  On an empty/foreign `state` this is a
  /// full pass; otherwise only cells whose variant differs from the
  /// state's snapshot -- plus `changed_nets`, the nets whose *parasitics*
  /// were re-extracted since the last update -- are re-timed, with the
  /// change cone propagated forward and backward.  Returns the state-owned
  /// result; bit-identical to analyze(variants).
  const TimingResult& update(
      TimingState& state, const VariantAssignment& variants,
      const std::vector<netlist::NetId>& changed_nets = {}) const;

  /// Enumerate the K worst (largest-delay) launch-to-capture paths, in
  /// non-increasing delay order.  Exact K-longest-paths over the timing DAG.
  std::vector<TimingPath> top_paths(const VariantAssignment& variants,
                                    std::size_t k) const;
  std::vector<TimingPath> top_paths(const VariantAssignment& variants,
                                    const TimingResult& timing,
                                    std::size_t k) const;

  const TimingOptions& options() const { return options_; }
  const netlist::Netlist& netlist() const { return *netlist_; }

 private:
  // --- shared kernels (identical for full and incremental passes) ---
  const liberty::CharacterizedCell* resolve_cell(TimingState& state,
                                                 netlist::CellId c) const;
  double compute_net_load(const TimingState& state, netlist::NetId n) const;
  /// Recompute the cached wire delay/slew of every fanin edge of `c`;
  /// returns true when any cached value changed.
  bool refresh_fanin_edges(TimingState& state, netlist::CellId c) const;
  /// Forward-timing kernel: load/slew/gate delay/arrivals of one cell.
  void compute_cell(TimingState& state, netlist::CellId c,
                    CellTiming& ct) const;
  /// Backward kernel: req_rel of a driven net from its consumers.
  double compute_req_rel(const TimingState& state, netlist::NetId n) const;
  /// MCT scan, required/slack finalize, worst-slack and hold scans.
  void finish(TimingState& state) const;

  void init_state(TimingState& state, const VariantAssignment& variants) const;
  const TimingResult& incremental_update(
      TimingState& state, const VariantAssignment& variants,
      const std::vector<netlist::NetId>& changed_nets) const;

  friend class BatchedTimer;  ///< shares the static CSR structure below
  friend class doseopt::ssta::SstaTimer;  ///< same CSR + cached base state

  const netlist::Netlist* netlist_;
  const extract::Parasitics* parasitics_;
  liberty::LibraryRepository* repo_;
  TimingOptions options_;
  std::vector<netlist::CellId> topo_order_;

  // --- static structure, precomputed once (netlist topology never changes
  // under dose/placement moves; only parasitics and variants do) ---
  std::vector<std::uint32_t> topo_pos_;  ///< cell -> index in topo_order_
  /// Deduped fanin edges (distinct input nets per cell, first-occurrence
  /// pin order), CSR over cells.  One edge = one (net -> cell) timing arc.
  std::vector<std::size_t> fanin_ptr_;
  std::vector<netlist::NetId> fanin_net_;
  /// Consumers of each net: (cell, fanin-edge index) pairs, CSR over nets.
  std::vector<std::size_t> net_cons_ptr_;
  std::vector<netlist::CellId> net_cons_cell_;
  std::vector<std::size_t> net_cons_edge_;
  std::vector<netlist::CellId> seq_cells_;  ///< ascending cell id
  std::vector<double> setup_ns_;            ///< per cell (seq only)
  std::vector<double> hold_ns_;             ///< per cell (seq only)
};

/// Result of one batched pass: per-lane design-level numbers plus (on
/// request) the per-cell timing of every lane, stored lane-major
/// (`cells[lane * cell_count + c]`).  Only the first `lanes` entries of the
/// per-lane arrays are meaningful.
struct BatchTimingResult {
  int lanes = 0;
  std::size_t cell_count = 0;
  std::array<double, kBatchLanes> mct_ns{};
  std::array<double, kBatchLanes> clock_ns{};
  std::array<double, kBatchLanes> worst_slack_ns{};
  std::array<double, kBatchLanes> worst_hold_slack_ns{};
  /// Lane-health verdict from the post-traversal checksum validation: a lane
  /// whose panels picked up a NaN/Inf anywhere (fault injection, corrupt
  /// tables) reports false and its numbers must not be trusted -- callers
  /// degrade that lane to the scalar path.
  std::array<bool, kBatchLanes> lane_ok{};
  std::vector<CellTiming> cells;  ///< lane-major; empty unless want_cells

  bool all_ok() const {
    for (int l = 0; l < lanes; ++l)
      if (!lane_ok[l]) return false;
    return true;
  }

  /// Repackage one lane as a scalar TimingResult (requires want_cells).
  TimingResult lane_result(int lane) const;
};

/// Reusable scratch of the batched engine: the structure-of-arrays lane
/// panels plus resolved per-library cell tables.  One workspace belongs to
/// one worker lane (not thread-safe); it rebinds itself if handed to a
/// different BatchedTimer.  Allocation happens once, the first analyze_batch
/// reuses it thereafter.
class BatchWorkspace {
 public:
  BatchWorkspace();
  ~BatchWorkspace();
  BatchWorkspace(BatchWorkspace&&) noexcept;
  BatchWorkspace& operator=(BatchWorkspace&&) noexcept;
  BatchWorkspace(const BatchWorkspace&) = delete;
  BatchWorkspace& operator=(const BatchWorkspace&) = delete;

 private:
  friend class BatchedTimer;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The batched timing engine: times up to kBatchLanes variant assignments in
/// ONE levelized traversal by widening every per-net/per-cell scalar of the
/// Timer's kernels into a lane panel (see kBatchLanes).  Lane arithmetic
/// reproduces the scalar kernels' expression and operand order exactly, so
/// every lane is bitwise-identical to an independent Timer::analyze() of the
/// same assignment -- lane 0 with no delta is bit-identical to
/// analyze(base).  Views the bound Timer's static CSR structure; the Timer
/// must outlive it.
class BatchedTimer {
 public:
  explicit BatchedTimer(const Timer* timer);

  /// Time `delta_l_nm.size()` lanes (1..kBatchLanes) in one traversal.
  /// Lane L's assignment is `base` with every cell's poly index shifted by
  /// liberty::shifted_poly_index(base_poly, delta_l_nm[L][cell]); a nullptr
  /// entry means "unshifted base".  Each non-null pointer must reference
  /// cell_count doubles.  Ragged batches (fewer than kBatchLanes lanes) pad
  /// internally by replicating the last real lane; padding never leaks into
  /// the result.
  BatchTimingResult analyze_batch(
      const VariantAssignment& base,
      const std::vector<const double*>& delta_l_nm, BatchWorkspace& ws,
      bool want_cells = false) const;

  /// Same traversal, but lane assignments are given directly as a lane-major
  /// poly-index panel (`poly_index[c * kBatchLanes + lane]`, values in
  /// [0, kVariantsPerLayer)); active indices come from `base`.  This is the
  /// entry the Monte-Carlo driver uses so the identical indices feed both
  /// timing and the leakage table gather.  `want_slacks = false` skips the
  /// backward required-time pass and the slack/hold reductions (the yield
  /// loop only consumes MCT); the skipped result fields read 0.0.
  /// `want_cells` implies slacks.
  BatchTimingResult analyze_batch_indices(const VariantAssignment& base,
                                          const std::uint8_t* poly_index,
                                          int lanes, BatchWorkspace& ws,
                                          bool want_cells = false,
                                          bool want_slacks = true) const;

  const Timer& timer() const { return *timer_; }

 private:
  const Timer* timer_;
};

/// Fraction (percent) of `paths` whose delay is within [lo_frac, 1.0] of the
/// MCT -- the statistic of Table VII.
double critical_path_percentage(const std::vector<TimingPath>& paths,
                                double mct_ns, double lo_frac);

}  // namespace doseopt::sta
