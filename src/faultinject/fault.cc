#include "faultinject/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace doseopt::faultinject {

namespace {

/// Global registry state behind a Meyers singleton so fault points
/// constructed during static initialization of *other* translation units
/// always find it alive.
struct Registry {
  std::mutex mu;
  std::vector<FaultPoint*> points;
  /// Specs configured before their point registered (static-init order,
  /// or env specs naming points of libraries not linked into this binary).
  std::map<std::string, FaultSpec> pending;
};

Registry& registry_state() {
  static Registry r;
  return r;
}

/// should_fire() fast-path gate: number of armed points (plus pending env
/// specs).  Zero means every should_fire() returns false after one relaxed
/// load.
std::atomic<int> g_armed_count{0};
std::atomic<int> g_suspend_depth{0};

/// Applies $DOSEOPT_FAULTS during static init of this library.  Points in
/// other translation units may register before or after this runs; both
/// orders work because unmatched specs are held pending.
struct EnvInit {
  EnvInit() { configure_from_env(); }
};
EnvInit g_env_init;

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  const std::string_view t = trim(text);
  FaultSpec spec;
  auto param = [&](std::string_view body) -> std::string {
    return std::string(body);
  };
  if (t == "always") {
    spec.mode = Mode::kAlways;
  } else if (t == "once") {
    spec.mode = Mode::kOnce;
  } else if (starts_with(t, "nth=") || starts_with(t, "first=") ||
             starts_with(t, "every=")) {
    const auto eq = t.find('=');
    long k = 0;
    if (!try_parse_int(param(t.substr(eq + 1)), &k) || k < 1)
      throw Error("faultinject: bad count in spec '" + std::string(t) + "'");
    spec.k = static_cast<std::uint64_t>(k);
    spec.mode = starts_with(t, "nth=")     ? Mode::kNth
                : starts_with(t, "first=") ? Mode::kFirst
                                           : Mode::kEvery;
  } else if (starts_with(t, "prob=")) {
    std::string_view body = t.substr(5);
    const auto at = body.find('@');
    // The seed is mandatory: a defaulted seed silently couples independent
    // sweep legs to the same firing pattern, which reads as determinism but
    // is really an unconfigured experiment.
    if (at == std::string_view::npos)
      throw Error("faultinject: prob spec '" + std::string(t) +
                  "' is missing its @SEED (want prob=P@SEED)");
    long seed = 0;
    if (!try_parse_int(param(body.substr(at + 1)), &seed) || seed < 0)
      throw Error("faultinject: bad seed in spec '" + std::string(t) + "'");
    spec.seed = static_cast<std::uint64_t>(seed);
    body = body.substr(0, at);
    double p = 0.0;
    if (!try_parse_double(param(body), &p) || p < 0.0 || p > 1.0)
      throw Error("faultinject: bad probability in spec '" + std::string(t) +
                  "'");
    spec.probability = p;
    spec.mode = Mode::kProb;
  } else {
    throw Error("faultinject: unknown spec '" + std::string(t) +
                "' (want always|once|nth=K|first=K|every=K|prob=P@SEED)");
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kAlways:
      return "always";
    case Mode::kOnce:
      return "once";
    case Mode::kNth:
      return "nth=" + std::to_string(k);
    case Mode::kFirst:
      return "first=" + std::to_string(k);
    case Mode::kEvery:
      return "every=" + std::to_string(k);
    case Mode::kProb:
      return str_format("prob=%g@%llu", probability,
                        static_cast<unsigned long long>(seed));
  }
  return "off";
}

FaultPoint::FaultPoint(const char* name) : name_(name) {
  Registry& r = registry_state();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const FaultPoint* p : r.points)
    if (std::string_view(p->name_) == name_)
      throw Error(std::string("faultinject: duplicate fault point '") +
                  name_ + "'");
  r.points.push_back(this);
  const auto it = r.pending.find(name_);
  if (it != r.pending.end()) {
    // Arm directly: arm() would double-count against g_armed_count, which
    // already counts this pending spec.
    k_.store(it->second.k, std::memory_order_relaxed);
    probability_.store(it->second.probability, std::memory_order_relaxed);
    seed_.store(it->second.seed, std::memory_order_relaxed);
    mode_.store(static_cast<std::uint8_t>(it->second.mode),
                std::memory_order_release);
    r.pending.erase(it);
  }
}

bool FaultPoint::armed() const {
  return mode_.load(std::memory_order_acquire) !=
         static_cast<std::uint8_t>(FaultSpec::Mode::kOff);
}

void FaultPoint::arm(const FaultSpec& spec) {
  const bool was_armed = armed();
  k_.store(spec.k, std::memory_order_relaxed);
  probability_.store(spec.probability, std::memory_order_relaxed);
  seed_.store(spec.seed, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  mode_.store(static_cast<std::uint8_t>(spec.mode),
              std::memory_order_release);
  const bool now_armed = spec.mode != FaultSpec::Mode::kOff;
  if (now_armed && !was_armed)
    g_armed_count.fetch_add(1, std::memory_order_release);
  else if (!now_armed && was_armed)
    g_armed_count.fetch_sub(1, std::memory_order_release);
}

bool FaultPoint::should_fire() {
  // Fast path: nothing armed anywhere, or injection suspended.
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;
  if (g_suspend_depth.load(std::memory_order_acquire) > 0) return false;
  const auto mode =
      static_cast<FaultSpec::Mode>(mode_.load(std::memory_order_acquire));
  if (mode == FaultSpec::Mode::kOff) return false;

  const std::uint64_t n = hits_.fetch_add(1, std::memory_order_acq_rel) + 1;
  bool fire = false;
  switch (mode) {
    case FaultSpec::Mode::kOff:
      break;
    case FaultSpec::Mode::kAlways:
      fire = true;
      break;
    case FaultSpec::Mode::kOnce:
      fire = n == 1;
      break;
    case FaultSpec::Mode::kNth:
      fire = n == k_.load(std::memory_order_relaxed);
      break;
    case FaultSpec::Mode::kFirst:
      fire = n <= k_.load(std::memory_order_relaxed);
      break;
    case FaultSpec::Mode::kEvery: {
      const std::uint64_t k = k_.load(std::memory_order_relaxed);
      fire = k > 0 && n % k == 0;
      break;
    }
    case FaultSpec::Mode::kProb: {
      // Stateless per-hit decision: a fresh generator seeded from
      // (seed, hit index) makes the outcome independent of thread
      // interleaving -- hit N fires or not regardless of who observes it.
      Rng rng(seed_.load(std::memory_order_relaxed) ^ (n * 0x9E3779B97F4A7C15ULL));
      fire = rng.uniform() < probability_.load(std::memory_order_relaxed);
      break;
    }
  }
  if (fire) fires_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

void configure(const std::string& config) {
  for (const std::string& entry : split(config, ",")) {
    const std::string_view e = trim(entry);
    if (e.empty()) continue;
    const auto colon = e.find(':');
    if (colon == std::string_view::npos)
      throw Error("faultinject: entry '" + std::string(e) +
                  "' is not name:spec");
    const std::string name(trim(e.substr(0, colon)));
    const FaultSpec spec = FaultSpec::parse(std::string(e.substr(colon + 1)));
    FaultPoint* point = find(name);
    if (point != nullptr) {
      point->arm(spec);
    } else {
      Registry& r = registry_state();
      std::lock_guard<std::mutex> lock(r.mu);
      const auto [it, inserted] = r.pending.insert_or_assign(name, spec);
      (void)it;
      if (inserted) g_armed_count.fetch_add(1, std::memory_order_release);
    }
  }
}

void configure_from_env() {
  const char* env = std::getenv("DOSEOPT_FAULTS");
  if (env == nullptr || *env == '\0') return;
  configure(env);
}

void reset() {
  Registry& r = registry_state();
  std::vector<FaultPoint*> points;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    points = r.points;
    if (!r.pending.empty()) {
      g_armed_count.fetch_sub(static_cast<int>(r.pending.size()),
                              std::memory_order_release);
      r.pending.clear();
    }
  }
  for (FaultPoint* p : points) p->disarm();
}

std::vector<FaultPoint*> registry() {
  Registry& r = registry_state();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.points;
}

FaultPoint* find(const std::string& name) {
  Registry& r = registry_state();
  std::lock_guard<std::mutex> lock(r.mu);
  for (FaultPoint* p : r.points)
    if (name == p->name()) return p;
  return nullptr;
}

std::vector<std::string> unresolved() {
  Registry& r = registry_state();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.pending.size());
  for (const auto& [name, spec] : r.pending) {
    (void)spec;
    names.push_back(name);
  }
  return names;
}

void require_resolved() {
  const std::vector<std::string> names = unresolved();
  if (names.empty()) return;
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  throw Error("faultinject: configured fault points never registered in "
              "this binary (misspelled name or missing library?): " + joined);
}

bool active() {
  return g_armed_count.load(std::memory_order_relaxed) > 0 &&
         g_suspend_depth.load(std::memory_order_acquire) == 0;
}

void suspend() { g_suspend_depth.fetch_add(1, std::memory_order_acq_rel); }

void resume() { g_suspend_depth.fetch_sub(1, std::memory_order_acq_rel); }

ArmScope::ArmScope(const std::string& name, const std::string& spec)
    : point_(find(name)) {
  if (point_ == nullptr)
    throw Error("faultinject: no registered fault point '" + name + "'");
  point_->arm(FaultSpec::parse(spec));
}

ArmScope::~ArmScope() { point_->disarm(); }

void maybe_throw(FaultPoint& point, const std::string& what) {
  if (point.should_fire())
    throw Error(std::string("[fault:") + point.name() + "] " + what);
}

}  // namespace doseopt::faultinject
