// Deterministic, seedable fault injection.
//
// A FaultPoint is a named hook compiled into library code at the exact
// place a real failure could occur (a socket read, a snapshot checksum
// validation, an ADMM iterate).  Points register themselves in a global
// registry during static initialization; nothing fires unless a point is
// *armed* with a FaultSpec, either programmatically (tests) or through the
// DOSEOPT_FAULTS environment variable:
//
//   DOSEOPT_FAULTS="serve.read:once,qp.admm_diverge:nth=3"
//
// Spec grammar (all activations are deterministic functions of the
// per-point hit counter, so a faulted run is exactly reproducible):
//
//   always         fire on every hit
//   once           fire on the first hit only
//   nth=K          fire on hit K exactly
//   first=K        fire on hits 1..K
//   every=K        fire on every K-th hit
//   prob=P@SEED    fire with probability P per hit; the decision for hit N
//                  is a pure function of (SEED, N), so concurrent hit
//                  interleavings do not change which hits fire.  The seed
//                  is mandatory -- a silently defaulted seed masks an
//                  unconfigured experiment.
//
// Disabled cost: when no point is armed, should_fire() is one relaxed
// atomic load of a process-global flag -- no counter update, no lock.  The
// hot numeric loops only consult points at per-solve (not per-iteration)
// granularity, so an unset DOSEOPT_FAULTS adds no measurable overhead.
//
// Environment configuration is applied during static initialization of
// this library; points registered later (static-init order is arbitrary
// across translation units) pick up their pending spec when they register.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace doseopt::faultinject {

/// Activation rule for one fault point.
struct FaultSpec {
  enum class Mode : std::uint8_t { kOff, kAlways, kOnce, kNth, kFirst,
                                   kEvery, kProb };
  Mode mode = Mode::kOff;
  std::uint64_t k = 0;       ///< parameter of kNth/kFirst/kEvery
  double probability = 0.0;  ///< parameter of kProb
  std::uint64_t seed = 0;    ///< kProb decision seed

  /// Parse the spec grammar above; throws doseopt::Error on bad input.
  static FaultSpec parse(const std::string& text);
  /// Canonical text form (parse round-trips).
  std::string to_string() const;
};

/// One named injection site.  Construct at namespace scope in the library
/// translation unit that hosts the fault (registration is automatic and
/// permanent; points are never unregistered).
class FaultPoint {
 public:
  explicit FaultPoint(const char* name);
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const char* name() const { return name_; }

  /// True when this hit of the site should fail.  Counts the hit iff the
  /// point is armed and injection is not suspended.
  bool should_fire();

  /// Arm/disarm (also resets the hit counter, so specs are relative to the
  /// arming instant).
  void arm(const FaultSpec& spec);
  void disarm() { arm(FaultSpec{}); }
  bool armed() const;

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }

 private:
  const char* name_;
  // Spec fields are stored decomposed in atomics so should_fire() never
  // takes a lock; arm() publishes mode last (release) after the parameters.
  std::atomic<std::uint8_t> mode_{0};
  std::atomic<std::uint64_t> k_{0};
  std::atomic<double> probability_{0.0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
};

/// Arm points from a "name:spec[,name:spec...]" config string.  Unknown
/// names are held pending and applied when the point registers (static-init
/// order independence); bad specs throw doseopt::Error.
void configure(const std::string& config);

/// configure() from $DOSEOPT_FAULTS; no-op when unset/empty.  Runs once
/// automatically during static init of the faultinject library, and may be
/// called again manually (idempotent re-application).
void configure_from_env();

/// Disarm every point, drop pending specs, and zero all counters.
void reset();

/// All registered points, in registration order.
std::vector<FaultPoint*> registry();

/// Look up a registered point by name (nullptr when absent).
FaultPoint* find(const std::string& name);

/// True when any point is armed (or a pending env spec exists) and
/// injection is not suspended -- the should_fire() fast-path gate.
bool active();

/// Names configured (via configure()/$DOSEOPT_FAULTS) whose fault point
/// never registered in this binary, sorted.  Pending specs are a feature
/// for multi-binary sweeps -- a router-only point stays pending inside a
/// worker -- but in a single-binary tool an unresolved name is a typo.
std::vector<std::string> unresolved();

/// Throw doseopt::Error listing unresolved() names, if any.  Tools that
/// link every subsystem call this after startup so a misspelled
/// DOSEOPT_FAULTS entry fails loudly instead of silently never firing.
void require_resolved();

/// Suspend/resume injection process-wide without touching hit counters.
/// Used to compute fault-free reference results inside a faulted process
/// (the sweep harness arms points through the environment; references must
/// not consume the armed firing).
void suspend();
void resume();

/// RAII: suspend injection for a scope.
class SuspendScope {
 public:
  SuspendScope() { suspend(); }
  ~SuspendScope() { resume(); }
  SuspendScope(const SuspendScope&) = delete;
  SuspendScope& operator=(const SuspendScope&) = delete;
};

/// RAII: arm `name` with `spec` (parsed) for a scope, disarm on exit.
/// Throws if the point is not registered.
class ArmScope {
 public:
  ArmScope(const std::string& name, const std::string& spec);
  ~ArmScope();
  ArmScope(const ArmScope&) = delete;
  ArmScope& operator=(const ArmScope&) = delete;

  FaultPoint& point() { return *point_; }

 private:
  FaultPoint* point_;
};

/// Throw doseopt::Error("[fault:<name>] <what>") when `point` fires.
void maybe_throw(FaultPoint& point, const std::string& what);

}  // namespace doseopt::faultinject
