// Structural Verilog subset writer and reader.
//
// Serializes a netlist as a flat gate-level Verilog module (one instance per
// cell, named port connections) and parses the same subset back.  Pin names
// follow the simple convention A, B, C, D for inputs and Y for the output
// (D/CK-style names are not needed because the clock network is implicit in
// this timing model).  Round-tripping is covered by tests; the writer also
// lets generated designs be inspected with standard netlist tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace doseopt::netlist {

/// Write `nl` as a structural Verilog module named after the design.
void write_verilog(const Netlist& nl, std::ostream& os);

/// Verilog text as a string.
std::string to_verilog_string(const Netlist& nl);

/// Parse a module produced by write_verilog.  `masters` supplies the cell
/// library (instances reference masters by name).  Throws doseopt::Error on
/// malformed input or unknown masters.
Netlist parse_verilog(const std::vector<liberty::CellMaster>* masters,
                      const std::string& tech_name, std::istream& is);

/// Parse from a string.
Netlist parse_verilog_string(const std::vector<liberty::CellMaster>* masters,
                             const std::string& tech_name,
                             const std::string& text);

}  // namespace doseopt::netlist
