#include "netlist/netlist.h"

#include <algorithm>

#include "common/error.h"

namespace doseopt::netlist {

NetId Netlist::add_net(std::string name) {
  nets_.push_back(Net{std::move(name), kNoCell, {}, false, false});
  return static_cast<NetId>(nets_.size() - 1);
}

CellId Netlist::add_cell(std::string name, std::size_t master_index,
                         NetId out) {
  DOSEOPT_CHECK(master_index < masters_->size(),
                "add_cell: master index out of range");
  DOSEOPT_CHECK(out < nets_.size(), "add_cell: bad output net");
  DOSEOPT_CHECK(nets_[out].driver == kNoCell && !nets_[out].is_primary_input,
                "add_cell: output net already driven");
  const CellId id = static_cast<CellId>(cells_.size());
  const liberty::CellMaster& m = (*masters_)[master_index];
  Cell c;
  c.name = std::move(name);
  c.master_index = master_index;
  c.output_net = out;
  c.input_nets.assign(static_cast<std::size_t>(m.num_inputs), kNoNet);
  c.sequential = m.sequential;
  if (c.sequential) ++sequential_count_;
  cells_.push_back(std::move(c));
  nets_[out].driver = id;
  return id;
}

void Netlist::connect_input(CellId c, int pin, NetId n) {
  DOSEOPT_CHECK(c < cells_.size(), "connect_input: bad cell");
  DOSEOPT_CHECK(n < nets_.size(), "connect_input: bad net");
  Cell& cell = cells_[c];
  DOSEOPT_CHECK(pin >= 0 &&
                    static_cast<std::size_t>(pin) < cell.input_nets.size(),
                "connect_input: bad pin index");
  DOSEOPT_CHECK(cell.input_nets[static_cast<std::size_t>(pin)] == kNoNet,
                "connect_input: pin already connected");
  cell.input_nets[static_cast<std::size_t>(pin)] = n;
  nets_[n].sinks.push_back(SinkPin{c, pin});
}

void Netlist::mark_primary_input(NetId n) {
  DOSEOPT_CHECK(n < nets_.size(), "mark_primary_input: bad net");
  DOSEOPT_CHECK(nets_[n].driver == kNoCell,
                "mark_primary_input: net already has a driver");
  if (!nets_[n].is_primary_input) {
    nets_[n].is_primary_input = true;
    primary_inputs_.push_back(n);
  }
}

void Netlist::mark_primary_output(NetId n) {
  DOSEOPT_CHECK(n < nets_.size(), "mark_primary_output: bad net");
  if (!nets_[n].is_primary_output) {
    nets_[n].is_primary_output = true;
    primary_outputs_.push_back(n);
  }
}

void Netlist::set_master(CellId c, std::size_t master_index) {
  DOSEOPT_CHECK(c < cells_.size(), "set_master: bad cell");
  DOSEOPT_CHECK(master_index < masters_->size(),
                "set_master: master index out of range");
  const liberty::CellMaster& old_m = (*masters_)[cells_[c].master_index];
  const liberty::CellMaster& new_m = (*masters_)[master_index];
  DOSEOPT_CHECK(old_m.num_inputs == new_m.num_inputs &&
                    old_m.sequential == new_m.sequential,
                "set_master: incompatible master swap");
  cells_[c].master_index = master_index;
}

std::vector<CellId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational timing edges: an edge exists from
  // the driver of net n to sink cell s unless s is sequential (its D input
  // is a capture point, not a propagation point).
  std::vector<std::uint32_t> indegree(cells_.size(), 0);
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    if (c.sequential) continue;  // launch point: indegree 0 by construction
    for (NetId n : c.input_nets) {
      if (n != kNoNet && nets_[n].driver != kNoCell) ++indegree[ci];
    }
  }

  std::vector<CellId> order;
  order.reserve(cells_.size());
  std::vector<CellId> queue;
  for (std::size_t ci = 0; ci < cells_.size(); ++ci)
    if (indegree[ci] == 0) queue.push_back(static_cast<CellId>(ci));

  std::size_t head = 0;
  while (head < queue.size()) {
    const CellId c = queue[head++];
    order.push_back(c);
    const Net& out = nets_[cells_[c].output_net];
    for (const SinkPin& s : out.sinks) {
      if (cells_[s.cell].sequential) continue;
      if (--indegree[s.cell] == 0) queue.push_back(s.cell);
    }
  }
  DOSEOPT_CHECK(order.size() == cells_.size(),
                "topological_order: combinational cycle detected");
  return order;
}

void Netlist::validate() const {
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    const liberty::CellMaster& m = (*masters_)[c.master_index];
    DOSEOPT_CHECK(c.input_nets.size() ==
                      static_cast<std::size_t>(m.num_inputs),
                  "validate: pin count mismatch on " + c.name);
    DOSEOPT_CHECK(c.output_net != kNoNet, "validate: floating output on " +
                                              c.name);
    for (NetId n : c.input_nets)
      DOSEOPT_CHECK(n != kNoNet, "validate: unconnected input on " + c.name);
  }
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& n = nets_[ni];
    DOSEOPT_CHECK(n.driver != kNoCell || n.is_primary_input,
                  "validate: undriven net " + n.name);
    for (const SinkPin& s : n.sinks)
      DOSEOPT_CHECK(s.cell < cells_.size(), "validate: bad sink on " + n.name);
  }
}

}  // namespace doseopt::netlist
