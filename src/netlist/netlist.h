// Gate-level netlist.
//
// Cells reference masters by index into the library's master list; nets
// connect one driver (a cell output or a primary input) to a set of sink
// pins (cell inputs and/or primary outputs).  Sequential cells partition the
// design into combinational stages: for timing, flop outputs behave as
// launch points and flop D-inputs as capture points ("unrolling" of
// Section II-C).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "liberty/cell_master.h"

namespace doseopt::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr CellId kNoCell = std::numeric_limits<CellId>::max();
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// A sink pin: input pin `pin` of cell `cell`.
struct SinkPin {
  CellId cell = kNoCell;
  int pin = 0;
  bool operator==(const SinkPin&) const = default;
};

/// One cell instance.
struct Cell {
  std::string name;
  std::size_t master_index = 0;  ///< into the masters vector
  NetId output_net = kNoNet;
  std::vector<NetId> input_nets;  ///< data inputs, in pin order
  bool sequential = false;
};

/// One net.
struct Net {
  std::string name;
  CellId driver = kNoCell;  ///< kNoCell => driven by a primary input
  std::vector<SinkPin> sinks;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// A complete design netlist.
class Netlist {
 public:
  Netlist(std::string design_name, std::string tech_name,
          const std::vector<liberty::CellMaster>* masters)
      : design_name_(std::move(design_name)), tech_name_(std::move(tech_name)),
        masters_(masters) {}

  const std::string& design_name() const { return design_name_; }
  const std::string& tech_name() const { return tech_name_; }
  const std::vector<liberty::CellMaster>& masters() const { return *masters_; }
  const liberty::CellMaster& master_of(CellId c) const {
    return (*masters_)[cell(c).master_index];
  }

  // --- construction ---
  NetId add_net(std::string name);
  /// Create a cell driving `out`; inputs are connected afterwards.
  CellId add_cell(std::string name, std::size_t master_index, NetId out);
  /// Connect net `n` to input pin `pin` of cell `c`.
  void connect_input(CellId c, int pin, NetId n);
  void mark_primary_input(NetId n);
  void mark_primary_output(NetId n);
  /// Change the master of a cell (used by dose-map application / swapping).
  void set_master(CellId c, std::size_t master_index);

  // --- access ---
  std::size_t cell_count() const { return cells_.size(); }
  std::size_t net_count() const { return nets_.size(); }
  const Cell& cell(CellId c) const { return cells_[c]; }
  const Net& net(NetId n) const { return nets_[n]; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const {
    return primary_outputs_;
  }
  std::size_t sequential_count() const { return sequential_count_; }

  /// Combinational topological order of all cells.  Sequential cells appear
  /// in the order (they launch at their position) but no edge is followed
  /// *into* a sequential cell's D pin, so the result exists iff the
  /// combinational logic is acyclic; throws on a combinational cycle.
  std::vector<CellId> topological_order() const;

  /// Structural checks: every net has a driver or is a PI, every cell input
  /// is connected, pin counts match masters.  Throws on violations.
  void validate() const;

 private:
  std::string design_name_;
  std::string tech_name_;
  const std::vector<liberty::CellMaster>* masters_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::size_t sequential_count_ = 0;
};

}  // namespace doseopt::netlist
