#!/bin/bash
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt

# ThreadSanitizer smoke run of the thread-pool / determinism tests: builds
# only test_parallel in a separate build tree with -DDOSEOPT_SANITIZE=thread
# and fails loudly on any reported race.
{
  echo ""
  echo "################ tsan: test_parallel ################"
  cmake -B build-tsan -S . -DDOSEOPT_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan --target test_parallel -j "$(nproc)" >/dev/null \
    && timeout 1200 ./build-tsan/tests/test_parallel
  echo "(tsan exit: $?)"
} 2>&1 | tee -a /root/repo/test_output.txt

BENCHES="bench_fig3_fig4 bench_fig5_fig6 bench_table1_table7 bench_table2_table3 bench_fit_residuals bench_wafer bench_yield bench_table4 bench_table8_fig10 bench_table6 bench_table5 bench_ablation bench_micro"
{
  for name in $BENCHES; do
    b=build/bench/$name
    echo ""
    echo "################ $b ################"
    timeout 1200 stdbuf -oL "$b" 2>&1
    echo "(exit: $?)"
  done
} 2>&1 | tee /root/repo/bench_output.txt
echo ALL_DONE
