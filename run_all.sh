#!/bin/bash
cd /root/repo
FAILED=""

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
[ "${PIPESTATUS[0]}" -eq 0 ] || FAILED="$FAILED ctest"

# ThreadSanitizer smoke run of the thread-pool / determinism tests: builds
# only test_parallel in a separate build tree with -DDOSEOPT_SANITIZE=thread
# and fails loudly on any reported race.
{
  echo ""
  echo "################ tsan: test_parallel ################"
  cmake -B build-tsan -S . -DDOSEOPT_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan --target test_parallel -j "$(nproc)" >/dev/null \
    && timeout 1200 ./build-tsan/tests/test_parallel
  rc=$?
  echo "(tsan exit: $rc)"
  echo "$rc" > /tmp/doseopt_tsan_rc
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_tsan_rc)" -eq 0 ] || FAILED="$FAILED tsan:test_parallel"

# Fault sweep: re-run the fault/recovery suite once per registered fault
# point, each armed to fire once through $DOSEOPT_FAULTS.  Every run must
# recover to bit-identical results (the suite asserts it); the point list
# is kept honest by FaultRegistry.RegisteredPointsMatchTheSweepManifest.
FAULT_POINTS="serve.accept serve.read serve.write serve.frame serve.job serde.snapshot_write serde.snapshot_read qp.admm_diverge qp.kkt_reject qp.mg_diverge qp.mixed_precision_stall dmopt.qcp_infeasible ssta.nan sta.batch_nan fleet.cache_corrupt"
: > /tmp/doseopt_fault_failures
{
  for p in $FAULT_POINTS; do
    echo ""
    echo "################ fault sweep: $p:once ################"
    DOSEOPT_FAULTS="$p:once" timeout 1200 ./build/tests/test_faults 2>&1 | tail -3
    rc=${PIPESTATUS[0]}
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "fault:$p" >> /tmp/doseopt_fault_failures
  done
  # The multi-process fleet points need real router + worker processes:
  # route_drop fires in the router's forward path, worker_crash inside a
  # worker armed via --worker-faults, worker_stall in the router's forward
  # leg (rescued by a hedge).  test_fleet recovers all three to
  # bit-identical results.
  for p in fleet.route_drop fleet.worker_crash fleet.worker_stall; do
    echo ""
    echo "################ fault sweep: $p:once (test_fleet) ################"
    DOSEOPT_FAULTS="$p:once" timeout 1200 ./build/tests/test_fleet 2>&1 | tail -3
    rc=${PIPESTATUS[0]}
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "fault:$p" >> /tmp/doseopt_fault_failures
  done
  # The campaign journal point fires inside the write-ahead journal's
  # append path; test_campaign's sweep consumer recovers it to a
  # bit-identical campaign artifact.
  for p in campaign.journal_torn; do
    echo ""
    echo "################ fault sweep: $p:once (test_campaign) ################"
    DOSEOPT_FAULTS="$p:once" timeout 1200 ./build/tests/test_campaign 2>&1 | tail -3
    rc=${PIPESTATUS[0]}
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "fault:$p" >> /tmp/doseopt_fault_failures
  done
} 2>&1 | tee -a /root/repo/test_output.txt
while read -r name; do FAILED="$FAILED $name"; done < /tmp/doseopt_fault_failures

# Fleet stage: replay a mixed cold/warm/memoized trace against sharded
# fleets (1/2/4 workers), SIGKILL a worker mid-run, and require every
# routed reply to be bit-identical to direct flow:: references.  Emits
# BENCH_fleet.json (latency percentiles, QPS, shed rate, respawns, cache
# hit rate per worker count).
{
  echo ""
  echo "################ fleet: doseopt_loadgen ################"
  timeout 2400 stdbuf -oL ./build/tools/doseopt_loadgen \
    --out /root/repo/BENCH_fleet.json
  rc=$?
  echo "(fleet exit: $rc)"
  echo "$rc" > /tmp/doseopt_fleet_rc
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_fleet_rc)" -eq 0 ] || FAILED="$FAILED fleet:loadgen"

# Campaign smoke: run a small durable campaign, SIGKILL the driver right
# after an Intent hits the journal (exit 137), resume it, and require the
# final artifact to be bit-identical to an uninterrupted run.
{
  echo ""
  echo "################ campaign: crash + resume smoke ################"
  rm -rf /tmp/doseopt_ci_campaign
  DOSEOPT_FAST=1 timeout 1200 ./build/tools/doseopt_campaign \
    --runtime-dir /tmp/doseopt_ci_campaign/full
  full_rc=$?
  DOSEOPT_FAST=1 timeout 1200 ./build/tools/doseopt_campaign \
    --runtime-dir /tmp/doseopt_ci_campaign/killed --kill-after-intent 2
  kill_rc=$?
  DOSEOPT_FAST=1 timeout 1200 ./build/tools/doseopt_campaign \
    --runtime-dir /tmp/doseopt_ci_campaign/killed --resume \
    --report /tmp/doseopt_ci_campaign/resume_report.json
  resume_rc=$?
  cmp /tmp/doseopt_ci_campaign/full/artifact.json \
      /tmp/doseopt_ci_campaign/killed/artifact.json
  cmp_rc=$?
  echo "(full: $full_rc, kill: $kill_rc, resume: $resume_rc, cmp: $cmp_rc)"
  if [ "$full_rc" -eq 0 ] && [ "$kill_rc" -eq 137 ] \
      && [ "$resume_rc" -eq 0 ] && [ "$cmp_rc" -eq 0 ]; then
    echo 0 > /tmp/doseopt_campaign_rc
  else
    echo 1 > /tmp/doseopt_campaign_rc
  fi
  rm -rf /tmp/doseopt_ci_campaign
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_campaign_rc)" -eq 0 ] || FAILED="$FAILED campaign:smoke"

# Chaos soak: seeded fault schedule (torn journal appends, route drops,
# worker stalls + kills, driver stop/resume) over repeated campaigns for a
# bounded wall-clock, asserting exactly-once journals and bit-identical
# artifacts throughout.  Emits BENCH_campaign.json (epoch counts, resume
# latency, hedged-vs-plain p99 under injected stalls).
{
  echo ""
  echo "################ campaign: chaos soak ################"
  DOSEOPT_FAST=1 timeout 1200 stdbuf -oL ./build/tools/doseopt_chaos \
    --seconds 60 --out /root/repo/BENCH_campaign.json
  rc=$?
  echo "(chaos exit: $rc)"
  echo "$rc" > /tmp/doseopt_chaos_rc
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_chaos_rc)" -eq 0 ] || FAILED="$FAILED campaign:chaos"

BENCHES="bench_fig3_fig4 bench_fig5_fig6 bench_table1_table7 bench_table2_table3 bench_fit_residuals bench_wafer bench_yield bench_ssta bench_table4 bench_table8_fig10 bench_table6 bench_table5 bench_ablation bench_qp bench_serve bench_micro"
: > /tmp/doseopt_bench_failures
{
  for name in $BENCHES; do
    b=build/bench/$name
    echo ""
    echo "################ $b ################"
    timeout 1200 stdbuf -oL "$b" 2>&1
    rc=$?
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "$name" >> /tmp/doseopt_bench_failures
  done
} 2>&1 | tee /root/repo/bench_output.txt
while read -r name; do FAILED="$FAILED $name"; done < /tmp/doseopt_bench_failures

if [ -n "$FAILED" ]; then
  echo "ALL_DONE (FAILURES:$FAILED)"
  exit 1
fi
echo "ALL_DONE (all stages passed)"
