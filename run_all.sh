#!/bin/bash
cd /root/repo
FAILED=""

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
[ "${PIPESTATUS[0]}" -eq 0 ] || FAILED="$FAILED ctest"

# ThreadSanitizer smoke run of the thread-pool / determinism tests: builds
# only test_parallel in a separate build tree with -DDOSEOPT_SANITIZE=thread
# and fails loudly on any reported race.
{
  echo ""
  echo "################ tsan: test_parallel ################"
  cmake -B build-tsan -S . -DDOSEOPT_SANITIZE=thread >/dev/null \
    && cmake --build build-tsan --target test_parallel -j "$(nproc)" >/dev/null \
    && timeout 1200 ./build-tsan/tests/test_parallel
  rc=$?
  echo "(tsan exit: $rc)"
  echo "$rc" > /tmp/doseopt_tsan_rc
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_tsan_rc)" -eq 0 ] || FAILED="$FAILED tsan:test_parallel"

# Fault sweep: re-run the fault/recovery suite once per registered fault
# point, each armed to fire once through $DOSEOPT_FAULTS.  Every run must
# recover to bit-identical results (the suite asserts it); the point list
# is kept honest by FaultRegistry.RegisteredPointsMatchTheSweepManifest.
FAULT_POINTS="serve.accept serve.read serve.write serve.frame serve.job serde.snapshot_write serde.snapshot_read qp.admm_diverge qp.kkt_reject qp.mg_diverge qp.mixed_precision_stall dmopt.qcp_infeasible ssta.nan sta.batch_nan fleet.cache_corrupt"
: > /tmp/doseopt_fault_failures
{
  for p in $FAULT_POINTS; do
    echo ""
    echo "################ fault sweep: $p:once ################"
    DOSEOPT_FAULTS="$p:once" timeout 1200 ./build/tests/test_faults 2>&1 | tail -3
    rc=${PIPESTATUS[0]}
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "fault:$p" >> /tmp/doseopt_fault_failures
  done
  # The multi-process fleet points need real router + worker processes:
  # route_drop fires in the router's forward path, worker_crash inside a
  # worker armed via --worker-faults.  test_fleet recovers both to
  # bit-identical results.
  for p in fleet.route_drop fleet.worker_crash; do
    echo ""
    echo "################ fault sweep: $p:once (test_fleet) ################"
    DOSEOPT_FAULTS="$p:once" timeout 1200 ./build/tests/test_fleet 2>&1 | tail -3
    rc=${PIPESTATUS[0]}
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "fault:$p" >> /tmp/doseopt_fault_failures
  done
} 2>&1 | tee -a /root/repo/test_output.txt
while read -r name; do FAILED="$FAILED $name"; done < /tmp/doseopt_fault_failures

# Fleet stage: replay a mixed cold/warm/memoized trace against sharded
# fleets (1/2/4 workers), SIGKILL a worker mid-run, and require every
# routed reply to be bit-identical to direct flow:: references.  Emits
# BENCH_fleet.json (latency percentiles, QPS, shed rate, respawns, cache
# hit rate per worker count).
{
  echo ""
  echo "################ fleet: doseopt_loadgen ################"
  timeout 2400 stdbuf -oL ./build/tools/doseopt_loadgen \
    --out /root/repo/BENCH_fleet.json
  rc=$?
  echo "(fleet exit: $rc)"
  echo "$rc" > /tmp/doseopt_fleet_rc
} 2>&1 | tee -a /root/repo/test_output.txt
[ "$(cat /tmp/doseopt_fleet_rc)" -eq 0 ] || FAILED="$FAILED fleet:loadgen"

BENCHES="bench_fig3_fig4 bench_fig5_fig6 bench_table1_table7 bench_table2_table3 bench_fit_residuals bench_wafer bench_yield bench_ssta bench_table4 bench_table8_fig10 bench_table6 bench_table5 bench_ablation bench_qp bench_serve bench_micro"
: > /tmp/doseopt_bench_failures
{
  for name in $BENCHES; do
    b=build/bench/$name
    echo ""
    echo "################ $b ################"
    timeout 1200 stdbuf -oL "$b" 2>&1
    rc=$?
    echo "(exit: $rc)"
    [ "$rc" -eq 0 ] || echo "$name" >> /tmp/doseopt_bench_failures
  done
} 2>&1 | tee /root/repo/bench_output.txt
while read -r name; do FAILED="$FAILED $name"; done < /tmp/doseopt_bench_failures

if [ -n "$FAILED" ]; then
  echo "ALL_DONE (FAILURES:$FAILED)"
  exit 1
fi
echo "ALL_DONE (all stages passed)"
