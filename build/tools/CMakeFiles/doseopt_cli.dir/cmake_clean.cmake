file(REMOVE_RECURSE
  "CMakeFiles/doseopt_cli.dir/doseopt_cli.cc.o"
  "CMakeFiles/doseopt_cli.dir/doseopt_cli.cc.o.d"
  "doseopt_cli"
  "doseopt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
