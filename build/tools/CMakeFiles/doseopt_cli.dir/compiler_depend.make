# Empty compiler generated dependencies file for doseopt_cli.
# This may be replaced when dependencies are built.
