file(REMOVE_RECURSE
  "CMakeFiles/test_liberty.dir/test_liberty.cc.o"
  "CMakeFiles/test_liberty.dir/test_liberty.cc.o.d"
  "test_liberty"
  "test_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
