file(REMOVE_RECURSE
  "CMakeFiles/test_sta.dir/test_sta.cc.o"
  "CMakeFiles/test_sta.dir/test_sta.cc.o.d"
  "test_sta"
  "test_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
