
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dose.cc" "tests/CMakeFiles/test_dose.dir/test_dose.cc.o" "gcc" "tests/CMakeFiles/test_dose.dir/test_dose.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/doseopt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dmopt/CMakeFiles/doseopt_dmopt.dir/DependInfo.cmake"
  "/root/repo/build/src/doseplace/CMakeFiles/doseopt_doseplace.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/doseopt_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/wafer/CMakeFiles/doseopt_wafer.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/doseopt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/doseopt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/doseopt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dose/CMakeFiles/doseopt_dose.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/doseopt_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/doseopt_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/doseopt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/doseopt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/doseopt_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/doseopt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/doseopt_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/doseopt_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doseopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
