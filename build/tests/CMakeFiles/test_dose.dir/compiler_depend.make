# Empty compiler generated dependencies file for test_dose.
# This may be replaced when dependencies are built.
