file(REMOVE_RECURSE
  "CMakeFiles/test_dose.dir/test_dose.cc.o"
  "CMakeFiles/test_dose.dir/test_dose.cc.o.d"
  "test_dose"
  "test_dose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
