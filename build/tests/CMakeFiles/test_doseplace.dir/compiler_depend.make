# Empty compiler generated dependencies file for test_doseplace.
# This may be replaced when dependencies are built.
