file(REMOVE_RECURSE
  "CMakeFiles/test_doseplace.dir/test_doseplace.cc.o"
  "CMakeFiles/test_doseplace.dir/test_doseplace.cc.o.d"
  "test_doseplace"
  "test_doseplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doseplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
