file(REMOVE_RECURSE
  "CMakeFiles/test_wafer.dir/test_wafer.cc.o"
  "CMakeFiles/test_wafer.dir/test_wafer.cc.o.d"
  "test_wafer"
  "test_wafer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wafer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
