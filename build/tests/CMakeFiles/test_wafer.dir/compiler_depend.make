# Empty compiler generated dependencies file for test_wafer.
# This may be replaced when dependencies are built.
