# Empty compiler generated dependencies file for test_dmopt.
# This may be replaced when dependencies are built.
