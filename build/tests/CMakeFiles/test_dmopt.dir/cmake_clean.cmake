file(REMOVE_RECURSE
  "CMakeFiles/test_dmopt.dir/test_dmopt.cc.o"
  "CMakeFiles/test_dmopt.dir/test_dmopt.cc.o.d"
  "test_dmopt"
  "test_dmopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
