file(REMOVE_RECURSE
  "CMakeFiles/test_place.dir/test_place.cc.o"
  "CMakeFiles/test_place.dir/test_place.cc.o.d"
  "test_place"
  "test_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
