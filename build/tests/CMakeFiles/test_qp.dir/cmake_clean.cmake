file(REMOVE_RECURSE
  "CMakeFiles/test_qp.dir/test_qp.cc.o"
  "CMakeFiles/test_qp.dir/test_qp.cc.o.d"
  "test_qp"
  "test_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
