file(REMOVE_RECURSE
  "CMakeFiles/bench_yield.dir/bench_yield.cc.o"
  "CMakeFiles/bench_yield.dir/bench_yield.cc.o.d"
  "bench_yield"
  "bench_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
