file(REMOVE_RECURSE
  "CMakeFiles/bench_wafer.dir/bench_wafer.cc.o"
  "CMakeFiles/bench_wafer.dir/bench_wafer.cc.o.d"
  "bench_wafer"
  "bench_wafer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wafer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
