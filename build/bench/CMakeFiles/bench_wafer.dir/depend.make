# Empty dependencies file for bench_wafer.
# This may be replaced when dependencies are built.
