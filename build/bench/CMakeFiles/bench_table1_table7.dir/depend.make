# Empty dependencies file for bench_table1_table7.
# This may be replaced when dependencies are built.
