file(REMOVE_RECURSE
  "CMakeFiles/bench_fit_residuals.dir/bench_fit_residuals.cc.o"
  "CMakeFiles/bench_fit_residuals.dir/bench_fit_residuals.cc.o.d"
  "bench_fit_residuals"
  "bench_fit_residuals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fit_residuals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
