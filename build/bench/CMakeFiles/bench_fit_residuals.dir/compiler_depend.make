# Empty compiler generated dependencies file for bench_fit_residuals.
# This may be replaced when dependencies are built.
