# Empty compiler generated dependencies file for timing_rescue.
# This may be replaced when dependencies are built.
