file(REMOVE_RECURSE
  "CMakeFiles/timing_rescue.dir/timing_rescue.cpp.o"
  "CMakeFiles/timing_rescue.dir/timing_rescue.cpp.o.d"
  "timing_rescue"
  "timing_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
