file(REMOVE_RECURSE
  "CMakeFiles/scanner_recipe.dir/scanner_recipe.cpp.o"
  "CMakeFiles/scanner_recipe.dir/scanner_recipe.cpp.o.d"
  "scanner_recipe"
  "scanner_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanner_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
