# Empty compiler generated dependencies file for scanner_recipe.
# This may be replaced when dependencies are built.
