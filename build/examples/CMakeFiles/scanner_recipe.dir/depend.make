# Empty dependencies file for scanner_recipe.
# This may be replaced when dependencies are built.
