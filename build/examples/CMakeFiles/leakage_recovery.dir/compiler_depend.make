# Empty compiler generated dependencies file for leakage_recovery.
# This may be replaced when dependencies are built.
