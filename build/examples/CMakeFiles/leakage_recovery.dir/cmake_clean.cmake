file(REMOVE_RECURSE
  "CMakeFiles/leakage_recovery.dir/leakage_recovery.cpp.o"
  "CMakeFiles/leakage_recovery.dir/leakage_recovery.cpp.o.d"
  "leakage_recovery"
  "leakage_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
