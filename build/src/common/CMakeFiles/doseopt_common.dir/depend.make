# Empty dependencies file for doseopt_common.
# This may be replaced when dependencies are built.
