file(REMOVE_RECURSE
  "CMakeFiles/doseopt_common.dir/error.cc.o"
  "CMakeFiles/doseopt_common.dir/error.cc.o.d"
  "CMakeFiles/doseopt_common.dir/rng.cc.o"
  "CMakeFiles/doseopt_common.dir/rng.cc.o.d"
  "CMakeFiles/doseopt_common.dir/strings.cc.o"
  "CMakeFiles/doseopt_common.dir/strings.cc.o.d"
  "CMakeFiles/doseopt_common.dir/table.cc.o"
  "CMakeFiles/doseopt_common.dir/table.cc.o.d"
  "libdoseopt_common.a"
  "libdoseopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
