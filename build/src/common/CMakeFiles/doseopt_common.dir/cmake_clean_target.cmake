file(REMOVE_RECURSE
  "libdoseopt_common.a"
)
