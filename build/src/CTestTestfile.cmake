# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("la")
subdirs("fit")
subdirs("tech")
subdirs("qp")
subdirs("liberty")
subdirs("netlist")
subdirs("gen")
subdirs("place")
subdirs("extract")
subdirs("sta")
subdirs("power")
subdirs("dose")
subdirs("variation")
subdirs("wafer")
subdirs("dmopt")
subdirs("doseplace")
subdirs("flow")
