# CMake generated Testfile for 
# Source directory: /root/repo/src/dmopt
# Build directory: /root/repo/build/src/dmopt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
