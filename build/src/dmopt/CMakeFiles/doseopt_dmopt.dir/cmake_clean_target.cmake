file(REMOVE_RECURSE
  "libdoseopt_dmopt.a"
)
