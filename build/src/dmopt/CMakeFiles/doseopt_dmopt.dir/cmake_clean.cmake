file(REMOVE_RECURSE
  "CMakeFiles/doseopt_dmopt.dir/dmopt.cc.o"
  "CMakeFiles/doseopt_dmopt.dir/dmopt.cc.o.d"
  "libdoseopt_dmopt.a"
  "libdoseopt_dmopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_dmopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
