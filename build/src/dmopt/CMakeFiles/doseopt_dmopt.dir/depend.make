# Empty dependencies file for doseopt_dmopt.
# This may be replaced when dependencies are built.
