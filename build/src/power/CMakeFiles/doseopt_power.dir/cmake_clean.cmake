file(REMOVE_RECURSE
  "CMakeFiles/doseopt_power.dir/leakage.cc.o"
  "CMakeFiles/doseopt_power.dir/leakage.cc.o.d"
  "libdoseopt_power.a"
  "libdoseopt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
