# Empty dependencies file for doseopt_power.
# This may be replaced when dependencies are built.
