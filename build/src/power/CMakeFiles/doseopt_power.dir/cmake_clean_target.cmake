file(REMOVE_RECURSE
  "libdoseopt_power.a"
)
