file(REMOVE_RECURSE
  "CMakeFiles/doseopt_wafer.dir/wafer.cc.o"
  "CMakeFiles/doseopt_wafer.dir/wafer.cc.o.d"
  "libdoseopt_wafer.a"
  "libdoseopt_wafer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_wafer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
