file(REMOVE_RECURSE
  "libdoseopt_wafer.a"
)
