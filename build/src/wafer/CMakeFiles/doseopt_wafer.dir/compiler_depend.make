# Empty compiler generated dependencies file for doseopt_wafer.
# This may be replaced when dependencies are built.
