# CMake generated Testfile for 
# Source directory: /root/repo/src/dose
# Build directory: /root/repo/build/src/dose
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
