file(REMOVE_RECURSE
  "CMakeFiles/doseopt_dose.dir/actuator.cc.o"
  "CMakeFiles/doseopt_dose.dir/actuator.cc.o.d"
  "CMakeFiles/doseopt_dose.dir/dose_map.cc.o"
  "CMakeFiles/doseopt_dose.dir/dose_map.cc.o.d"
  "libdoseopt_dose.a"
  "libdoseopt_dose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_dose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
