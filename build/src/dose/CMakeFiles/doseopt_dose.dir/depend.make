# Empty dependencies file for doseopt_dose.
# This may be replaced when dependencies are built.
