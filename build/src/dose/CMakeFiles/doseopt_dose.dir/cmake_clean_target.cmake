file(REMOVE_RECURSE
  "libdoseopt_dose.a"
)
