file(REMOVE_RECURSE
  "libdoseopt_netlist.a"
)
