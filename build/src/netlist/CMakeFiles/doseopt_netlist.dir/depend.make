# Empty dependencies file for doseopt_netlist.
# This may be replaced when dependencies are built.
