file(REMOVE_RECURSE
  "CMakeFiles/doseopt_netlist.dir/netlist.cc.o"
  "CMakeFiles/doseopt_netlist.dir/netlist.cc.o.d"
  "CMakeFiles/doseopt_netlist.dir/verilog_io.cc.o"
  "CMakeFiles/doseopt_netlist.dir/verilog_io.cc.o.d"
  "libdoseopt_netlist.a"
  "libdoseopt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
