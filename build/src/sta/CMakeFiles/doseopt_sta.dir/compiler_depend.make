# Empty compiler generated dependencies file for doseopt_sta.
# This may be replaced when dependencies are built.
