file(REMOVE_RECURSE
  "libdoseopt_sta.a"
)
