file(REMOVE_RECURSE
  "CMakeFiles/doseopt_sta.dir/timer.cc.o"
  "CMakeFiles/doseopt_sta.dir/timer.cc.o.d"
  "libdoseopt_sta.a"
  "libdoseopt_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
