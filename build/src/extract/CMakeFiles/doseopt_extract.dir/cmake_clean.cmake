file(REMOVE_RECURSE
  "CMakeFiles/doseopt_extract.dir/extract.cc.o"
  "CMakeFiles/doseopt_extract.dir/extract.cc.o.d"
  "libdoseopt_extract.a"
  "libdoseopt_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
