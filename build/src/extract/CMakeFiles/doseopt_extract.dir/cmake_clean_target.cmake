file(REMOVE_RECURSE
  "libdoseopt_extract.a"
)
