# Empty dependencies file for doseopt_extract.
# This may be replaced when dependencies are built.
