# Empty dependencies file for doseopt_tech.
# This may be replaced when dependencies are built.
