file(REMOVE_RECURSE
  "CMakeFiles/doseopt_tech.dir/device.cc.o"
  "CMakeFiles/doseopt_tech.dir/device.cc.o.d"
  "CMakeFiles/doseopt_tech.dir/tech_node.cc.o"
  "CMakeFiles/doseopt_tech.dir/tech_node.cc.o.d"
  "libdoseopt_tech.a"
  "libdoseopt_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
