file(REMOVE_RECURSE
  "libdoseopt_tech.a"
)
