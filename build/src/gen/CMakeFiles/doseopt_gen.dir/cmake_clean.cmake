file(REMOVE_RECURSE
  "CMakeFiles/doseopt_gen.dir/design_gen.cc.o"
  "CMakeFiles/doseopt_gen.dir/design_gen.cc.o.d"
  "libdoseopt_gen.a"
  "libdoseopt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
