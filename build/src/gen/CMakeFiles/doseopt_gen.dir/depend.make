# Empty dependencies file for doseopt_gen.
# This may be replaced when dependencies are built.
