file(REMOVE_RECURSE
  "libdoseopt_gen.a"
)
