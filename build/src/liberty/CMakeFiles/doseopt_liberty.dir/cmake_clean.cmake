file(REMOVE_RECURSE
  "CMakeFiles/doseopt_liberty.dir/cell_master.cc.o"
  "CMakeFiles/doseopt_liberty.dir/cell_master.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/characterizer.cc.o"
  "CMakeFiles/doseopt_liberty.dir/characterizer.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/coeff_fit.cc.o"
  "CMakeFiles/doseopt_liberty.dir/coeff_fit.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/liberty_io.cc.o"
  "CMakeFiles/doseopt_liberty.dir/liberty_io.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/library.cc.o"
  "CMakeFiles/doseopt_liberty.dir/library.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/nldm.cc.o"
  "CMakeFiles/doseopt_liberty.dir/nldm.cc.o.d"
  "CMakeFiles/doseopt_liberty.dir/repository.cc.o"
  "CMakeFiles/doseopt_liberty.dir/repository.cc.o.d"
  "libdoseopt_liberty.a"
  "libdoseopt_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
