file(REMOVE_RECURSE
  "libdoseopt_liberty.a"
)
