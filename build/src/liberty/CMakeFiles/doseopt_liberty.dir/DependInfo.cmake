
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/cell_master.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/cell_master.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/cell_master.cc.o.d"
  "/root/repo/src/liberty/characterizer.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/characterizer.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/characterizer.cc.o.d"
  "/root/repo/src/liberty/coeff_fit.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/coeff_fit.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/coeff_fit.cc.o.d"
  "/root/repo/src/liberty/liberty_io.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/liberty_io.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/liberty_io.cc.o.d"
  "/root/repo/src/liberty/library.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/library.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/library.cc.o.d"
  "/root/repo/src/liberty/nldm.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/nldm.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/nldm.cc.o.d"
  "/root/repo/src/liberty/repository.cc" "src/liberty/CMakeFiles/doseopt_liberty.dir/repository.cc.o" "gcc" "src/liberty/CMakeFiles/doseopt_liberty.dir/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/doseopt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/doseopt_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/doseopt_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doseopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
