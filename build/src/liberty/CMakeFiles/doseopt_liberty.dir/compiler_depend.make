# Empty compiler generated dependencies file for doseopt_liberty.
# This may be replaced when dependencies are built.
