file(REMOVE_RECURSE
  "CMakeFiles/doseopt_qp.dir/kkt_check.cc.o"
  "CMakeFiles/doseopt_qp.dir/kkt_check.cc.o.d"
  "CMakeFiles/doseopt_qp.dir/qp_solver.cc.o"
  "CMakeFiles/doseopt_qp.dir/qp_solver.cc.o.d"
  "libdoseopt_qp.a"
  "libdoseopt_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
