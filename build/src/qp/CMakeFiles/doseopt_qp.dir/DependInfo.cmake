
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/kkt_check.cc" "src/qp/CMakeFiles/doseopt_qp.dir/kkt_check.cc.o" "gcc" "src/qp/CMakeFiles/doseopt_qp.dir/kkt_check.cc.o.d"
  "/root/repo/src/qp/qp_solver.cc" "src/qp/CMakeFiles/doseopt_qp.dir/qp_solver.cc.o" "gcc" "src/qp/CMakeFiles/doseopt_qp.dir/qp_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/doseopt_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doseopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
