# Empty dependencies file for doseopt_qp.
# This may be replaced when dependencies are built.
