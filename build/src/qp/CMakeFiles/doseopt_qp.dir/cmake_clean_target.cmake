file(REMOVE_RECURSE
  "libdoseopt_qp.a"
)
