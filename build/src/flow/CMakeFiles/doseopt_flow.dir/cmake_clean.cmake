file(REMOVE_RECURSE
  "CMakeFiles/doseopt_flow.dir/context.cc.o"
  "CMakeFiles/doseopt_flow.dir/context.cc.o.d"
  "CMakeFiles/doseopt_flow.dir/optimize.cc.o"
  "CMakeFiles/doseopt_flow.dir/optimize.cc.o.d"
  "libdoseopt_flow.a"
  "libdoseopt_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
