file(REMOVE_RECURSE
  "libdoseopt_flow.a"
)
