# Empty dependencies file for doseopt_flow.
# This may be replaced when dependencies are built.
