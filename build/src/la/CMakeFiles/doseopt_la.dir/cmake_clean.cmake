file(REMOVE_RECURSE
  "CMakeFiles/doseopt_la.dir/cg.cc.o"
  "CMakeFiles/doseopt_la.dir/cg.cc.o.d"
  "CMakeFiles/doseopt_la.dir/cholesky.cc.o"
  "CMakeFiles/doseopt_la.dir/cholesky.cc.o.d"
  "CMakeFiles/doseopt_la.dir/dense.cc.o"
  "CMakeFiles/doseopt_la.dir/dense.cc.o.d"
  "CMakeFiles/doseopt_la.dir/sparse.cc.o"
  "CMakeFiles/doseopt_la.dir/sparse.cc.o.d"
  "libdoseopt_la.a"
  "libdoseopt_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
