# Empty dependencies file for doseopt_la.
# This may be replaced when dependencies are built.
