file(REMOVE_RECURSE
  "libdoseopt_la.a"
)
