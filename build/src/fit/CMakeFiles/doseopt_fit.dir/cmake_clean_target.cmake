file(REMOVE_RECURSE
  "libdoseopt_fit.a"
)
