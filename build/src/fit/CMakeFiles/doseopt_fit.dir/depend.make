# Empty dependencies file for doseopt_fit.
# This may be replaced when dependencies are built.
