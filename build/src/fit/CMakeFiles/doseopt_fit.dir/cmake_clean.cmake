file(REMOVE_RECURSE
  "CMakeFiles/doseopt_fit.dir/leastsq.cc.o"
  "CMakeFiles/doseopt_fit.dir/leastsq.cc.o.d"
  "libdoseopt_fit.a"
  "libdoseopt_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
