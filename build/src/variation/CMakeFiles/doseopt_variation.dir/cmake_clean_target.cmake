file(REMOVE_RECURSE
  "libdoseopt_variation.a"
)
