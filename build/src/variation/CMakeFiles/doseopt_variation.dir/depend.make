# Empty dependencies file for doseopt_variation.
# This may be replaced when dependencies are built.
