file(REMOVE_RECURSE
  "CMakeFiles/doseopt_variation.dir/yield.cc.o"
  "CMakeFiles/doseopt_variation.dir/yield.cc.o.d"
  "libdoseopt_variation.a"
  "libdoseopt_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
