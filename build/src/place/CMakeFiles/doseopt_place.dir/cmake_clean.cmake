file(REMOVE_RECURSE
  "CMakeFiles/doseopt_place.dir/bbox.cc.o"
  "CMakeFiles/doseopt_place.dir/bbox.cc.o.d"
  "CMakeFiles/doseopt_place.dir/placement.cc.o"
  "CMakeFiles/doseopt_place.dir/placement.cc.o.d"
  "CMakeFiles/doseopt_place.dir/placer.cc.o"
  "CMakeFiles/doseopt_place.dir/placer.cc.o.d"
  "libdoseopt_place.a"
  "libdoseopt_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
