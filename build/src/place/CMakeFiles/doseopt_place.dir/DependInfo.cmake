
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/place/bbox.cc" "src/place/CMakeFiles/doseopt_place.dir/bbox.cc.o" "gcc" "src/place/CMakeFiles/doseopt_place.dir/bbox.cc.o.d"
  "/root/repo/src/place/placement.cc" "src/place/CMakeFiles/doseopt_place.dir/placement.cc.o" "gcc" "src/place/CMakeFiles/doseopt_place.dir/placement.cc.o.d"
  "/root/repo/src/place/placer.cc" "src/place/CMakeFiles/doseopt_place.dir/placer.cc.o" "gcc" "src/place/CMakeFiles/doseopt_place.dir/placer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/doseopt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/doseopt_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/doseopt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/doseopt_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/doseopt_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doseopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
