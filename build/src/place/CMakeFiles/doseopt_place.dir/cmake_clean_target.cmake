file(REMOVE_RECURSE
  "libdoseopt_place.a"
)
