# Empty dependencies file for doseopt_place.
# This may be replaced when dependencies are built.
