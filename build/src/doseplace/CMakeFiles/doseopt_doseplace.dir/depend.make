# Empty dependencies file for doseopt_doseplace.
# This may be replaced when dependencies are built.
