file(REMOVE_RECURSE
  "libdoseopt_doseplace.a"
)
