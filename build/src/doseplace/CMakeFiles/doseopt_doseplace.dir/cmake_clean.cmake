file(REMOVE_RECURSE
  "CMakeFiles/doseopt_doseplace.dir/doseplace.cc.o"
  "CMakeFiles/doseopt_doseplace.dir/doseplace.cc.o.d"
  "libdoseopt_doseplace.a"
  "libdoseopt_doseplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doseopt_doseplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
