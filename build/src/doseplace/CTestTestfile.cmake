# CMake generated Testfile for 
# Source directory: /root/repo/src/doseplace
# Build directory: /root/repo/build/src/doseplace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
