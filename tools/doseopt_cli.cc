// doseopt command-line driver.
//
// Runs the full optimization flow (Fig. 7 of the paper) on one of the
// built-in testcases and prints a signoff summary.  Useful for trying
// parameter combinations without writing code.
//
// Usage:
//   doseopt_cli [--design aes65|jpeg65|aes90|jpeg90] [--scale F]
//               [--mode timing|leakage] [--grid UM] [--delta PCT]
//               [--range PCT] [--width] [--dosepl] [--threads N]
//               [--yield-target P] [--verilog FILE]
//
// --yield-target P (0 < P < 1) switches DMopt to the yield-percentile
// constraint mode: minimize leakage subject to SSTA P(MCT <= nominal) >= P,
// verified by golden Monte-Carlo re-timing (implies --mode leakage).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "flow/optimize.h"
#include "netlist/verilog_io.h"

using namespace doseopt;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s [--design aes65|jpeg65|aes90|jpeg90] [--scale F]\n"
               "          [--mode timing|leakage] [--grid UM] [--delta PCT]\n"
               "          [--range PCT] [--width] [--dosepl] [--threads N]\n"
               "          [--yield-target P] [--verilog FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string design = "aes65";
  double scale = 1.0;
  std::string verilog_out;
  flow::FlowOptions options;
  options.mode = flow::DmoptMode::kMinimizeCycleTime;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto number = [&]() -> double {
      const std::string text = value();
      double v = 0.0;
      if (!try_parse_double(text, &v))
        usage(argv[0], arg + ": '" + text + "' is not a number");
      return v;
    };
    if (arg == "--design") design = value();
    else if (arg == "--scale") scale = number();
    else if (arg == "--mode") {
      const std::string m = value();
      if (m == "timing") options.mode = flow::DmoptMode::kMinimizeCycleTime;
      else if (m == "leakage") options.mode = flow::DmoptMode::kMinimizeLeakage;
      else usage(argv[0], "--mode must be 'timing' or 'leakage'");
    } else if (arg == "--grid") {
      options.dmopt.grid_um = number();
    } else if (arg == "--delta") {
      options.dmopt.smoothness_delta = number();
    } else if (arg == "--range") {
      const double r = number();
      options.dmopt.dose_lower_pct = -r;
      options.dmopt.dose_upper_pct = r;
    } else if (arg == "--width") {
      options.dmopt.modulate_width = true;
    } else if (arg == "--dosepl") {
      options.run_dose_placement = true;
    } else if (arg == "--yield-target") {
      options.dmopt.yield_target = number();
    } else if (arg == "--threads") {
      const std::string text = value();
      long n = 0;
      if (!try_parse_int(text, &n) || n < 1)
        usage(argv[0], "--threads: '" + text + "' is not a positive integer");
      // ThreadPool::global() reads this once at first use, which is after
      // argument parsing -- so the flag wins over the inherited env.
      setenv("DOSEOPT_THREADS", std::to_string(n).c_str(), /*overwrite=*/1);
    } else if (arg == "--verilog") {
      verilog_out = value();
    } else {
      usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (scale <= 0.0 || scale > 1.0) usage(argv[0], "--scale must be in (0, 1]");
  if (options.dmopt.grid_um <= 0.0) usage(argv[0], "--grid must be positive");
  if (options.dmopt.dose_upper_pct <= 0.0)
    usage(argv[0], "--range must be positive");
  if (options.dmopt.yield_target < 0.0 || options.dmopt.yield_target >= 1.0)
    usage(argv[0], "--yield-target must be in (0, 1)");
  if (options.dmopt.yield_target > 0.0 &&
      options.mode != flow::DmoptMode::kMinimizeLeakage) {
    std::printf("note: --yield-target implies --mode leakage\n");
    options.mode = flow::DmoptMode::kMinimizeLeakage;
  }

  try {
    gen::DesignSpec spec = gen::spec_by_name(design);
    if (scale < 1.0) spec = spec.scaled(scale);
    std::printf("doseopt: %s (%zu cells target), mode=%s, grid=%.1f um, "
                "delta=%.1f%%, range +/-%.1f%%, width=%s, dosepl=%s\n",
                spec.name.c_str(), spec.target_cells,
                options.mode == flow::DmoptMode::kMinimizeCycleTime
                    ? "timing"
                    : "leakage",
                options.dmopt.grid_um, options.dmopt.smoothness_delta,
                options.dmopt.dose_upper_pct,
                options.dmopt.modulate_width ? "yes" : "no",
                options.run_dose_placement ? "yes" : "no");

    flow::DesignContext ctx(spec);
    if (!verilog_out.empty()) {
      std::ofstream os(verilog_out);
      netlist::write_verilog(ctx.netlist(), os);
      std::printf("wrote netlist to %s\n", verilog_out.c_str());
    }

    const flow::FlowResult r = run_flow(ctx, options);
    std::printf("\n%-10s %12s %14s\n", "stage", "MCT (ns)", "leakage (uW)");
    std::printf("%-10s %12.4f %14.1f\n", "nominal", r.nominal_mct_ns,
                r.nominal_leakage_uw);
    std::printf("%-10s %12.4f %14.1f   (%.1f s, %s)\n", "dmopt",
                r.dmopt.golden_mct_ns, r.dmopt.golden_leakage_uw,
                r.dmopt.runtime_s, qp::to_string(r.dmopt.solver_status));
    if (r.dmopt.yield_target > 0.0)
      std::printf("yield @ tau=%.4f ns: ssta %.4f, monte-carlo %.4f "
                  "(target %.3f, %d rollbacks%s)\n",
                  r.dmopt.yield_tau_ns, r.dmopt.ssta_yield, r.dmopt.mc_yield,
                  r.dmopt.yield_target, r.dmopt.yield_rollbacks,
                  r.dmopt.degraded ? "; target missed" : "");
    if (r.dosepl_run)
      std::printf("%-10s %12.4f %14.1f   (%d swaps, %.1f s)\n", "dosepl",
                  r.dosepl.final_mct_ns, r.dosepl.final_leakage_uw,
                  r.dosepl.swaps_accepted, r.dosepl.runtime_s);
    std::printf("\nMCT improvement: %.2f%%   leakage change: %+.2f%%\n",
                100.0 * (r.nominal_mct_ns - r.final_mct_ns) /
                    r.nominal_mct_ns,
                100.0 * (r.final_leakage_uw - r.nominal_leakage_uw) /
                    r.nominal_leakage_uw);
  } catch (const doseopt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
