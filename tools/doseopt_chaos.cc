// Chaos-soak harness for durable campaign execution.
//
// Runs a time-boxed sequence of seeded chaos epochs against the campaign
// driver and asserts, after every epoch, the invariants that make the
// journal + result-store design trustworthy:
//
//   * no lost or duplicated jobs: the replayed journal commits every job
//     index exactly once and carries an End record;
//   * the journal is always replayable (checksummed frames, torn tails
//     confined to the final segment);
//   * the final artifact is BIT-IDENTICAL to a fault-free reference run,
//     no matter which faults fired (torn journal appends, dropped router
//     legs, stalled or SIGKILLed workers, driver stop + --resume).
//
// Epoch kinds rotate under a seeded RNG:
//   0: local run with a torn journal append injected mid-campaign
//      (campaign.journal_torn) -- the writer recovery ladder must absorb it;
//   1: local partial run (stop after N commits) followed by a resume --
//      measures resume latency, proves exactly-once handoff;
//   2: served run through a hedged router with route drops + worker stalls
//      armed, sometimes SIGKILLing a worker mid-campaign.
//
// Also benchmarks hedging: the same memoized job is replayed through a
// plain and a hedged router while fleet.worker_stall injects 150 ms
// stalls; the report compares p99 latency and counts hedge wins.  Every
// hedge loser is bit-compared against the winner (hedge_mismatches must
// stay zero).
//
// Emits BENCH_campaign.json and exits non-zero on any violation.
//
// Usage:
//   doseopt_chaos [--seconds N] [--seed N] [--out FILE]
//                 [--runtime-dir DIR] [--verbose]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "faultinject/fault.h"
#include "fleet/router.h"
#include "fleet/supervisor.h"
#include "serde/journal.h"
#include "serve/client.h"
#include "serve/json.h"

using namespace doseopt;
using serve::Json;
namespace fi = faultinject;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s [--seconds N] [--seed N] [--out FILE]\n"
               "          [--runtime-dir DIR] [--verbose]\n",
               argv0);
  std::exit(2);
}

bool fast_mode() {
  const char* fast = std::getenv("DOSEOPT_FAST");
  return fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("chaos: cannot read " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (rank - static_cast<double>(lo)) * (v[hi] - v[lo]);
}

struct Violations {
  int count = 0;
  void check(bool ok, const std::string& what) {
    if (ok) return;
    ++count;
    std::fprintf(stderr, "chaos: VIOLATION: %s\n", what.c_str());
  }
};

/// Journal-level exactly-once audit: replayable, every index committed
/// exactly once, sealed with End.
void audit_journal(const std::string& journal_dir, int expect_total,
                   Violations& v, const std::string& tag) {
  try {
    const serde::JournalReplay replay = serde::replay_journal(journal_dir);
    const campaign::JournalState state = campaign::scan_journal(replay);
    v.check(state.has_begin, tag + ": journal has no Begin");
    v.check(static_cast<int>(state.begin.total) == expect_total,
            tag + ": Begin total != expanded job count");
    v.check(static_cast<int>(state.committed.size()) == expect_total,
            tag + ": committed " + std::to_string(state.committed.size()) +
                "/" + std::to_string(expect_total) + " jobs");
    v.check(state.in_flight() == 0, tag + ": dangling in-flight intents");
    v.check(state.ended, tag + ": journal not sealed with End");
  } catch (const std::exception& e) {
    v.check(false, tag + ": journal replay failed: " + e.what());
  }
}

struct Config {
  double seconds = 60.0;
  std::uint64_t seed = 1;
  std::string out = "BENCH_campaign.json";
  std::string runtime_dir;
  bool verbose = false;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    if (arg == "--seconds") {
      double v = 0.0;
      if (!try_parse_double(value(), &v) || v <= 0.0)
        usage(argv[0], "--seconds needs a positive number");
      cfg.seconds = v;
    } else if (arg == "--seed") {
      long v = 0;
      if (!try_parse_int(value(), &v) || v < 0)
        usage(argv[0], "--seed needs a non-negative integer");
      cfg.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--out") {
      cfg.out = value();
    } else if (arg == "--runtime-dir") {
      cfg.runtime_dir = value();
    } else if (arg == "--verbose") {
      cfg.verbose = true;
    } else {
      usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (cfg.runtime_dir.empty())
    cfg.runtime_dir = "/tmp/doseopt_chaos_" + std::to_string(::getpid());

  try {
    fi::require_resolved();
    const auto t_start = std::chrono::steady_clock::now();
    const auto t_end =
        t_start + std::chrono::duration<double>(cfg.seconds);
    auto now_s = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t_start)
          .count();
    };

    campaign::CampaignSpec spec;
    spec.name = "chaos";
    spec.designs = fast_mode() ? std::vector<std::string>{"aes65"}
                               : std::vector<std::string>{"aes65", "aes90"};
    spec.scale = 0.02;
    spec.rounds = 2;
    spec.max_classes = 2;
    const int jobs_total =
        static_cast<int>(campaign::expand_campaign(spec).size());
    const std::string store_dir = cfg.runtime_dir + "/results";

    // ---- Fault-free reference: artifact bytes every epoch must hit.
    campaign::CampaignOptions ref;
    ref.journal_dir = cfg.runtime_dir + "/reference/journal";
    ref.artifact_path = cfg.runtime_dir + "/reference/artifact.json";
    ref.result_store_dir = store_dir;
    ref.verbose = cfg.verbose;
    std::printf("chaos: reference run (%d jobs)...\n", jobs_total);
    std::fflush(stdout);
    const campaign::CampaignReport ref_report =
        campaign::run_campaign(spec, ref);
    const std::string ref_artifact = read_file(ref.artifact_path);
    std::printf("chaos: reference in %.1fs (artifact fnv %016llx)\n",
                ref_report.wall_s,
                static_cast<unsigned long long>(ref_report.artifact_fnv));
    std::fflush(stdout);

    Violations violations;

    // ---- Persistent chaos fleet: 2 workers behind a hedged router.  The
    // shared result store makes epoch replays memo-fast; hedging is armed
    // so injected stalls get rescued (and every rescue bit-compared).
    fleet::SupervisorOptions sup;
    sup.runtime_dir = cfg.runtime_dir + "/fleet";
    sup.snapshot_dir = sup.runtime_dir + "/snapshots";
    sup.result_store_dir = store_dir;
    sup.workers = 2;
    sup.verbose = cfg.verbose;
    fleet::Supervisor supervisor(sup);
    supervisor.start();

    // ---- Hedging A/B on a memoized job under injected stalls.
    const serve::JobSpec memo_job = campaign::expand_campaign(spec)[0].spec;
    const int ab_requests = 60;
    const std::string stall_spec =
        "prob=0.15@" + std::to_string(cfg.seed + 7);
    std::vector<double> lat_plain, lat_hedged;
    std::uint64_t hedges_launched = 0, hedges_won = 0, hedge_mismatches = 0,
                  stalls_injected = 0;
    for (const bool hedged : {false, true}) {
      fleet::RouterOptions route;
      route.uds_path = sup.runtime_dir +
                       (hedged ? "/ab_hedged.sock" : "/ab_plain.sock");
      route.hedge_enabled = hedged;
      route.hedge_min_samples = 8;
      route.stall_inject_ms = 150.0;
      route.verbose = cfg.verbose;
      fleet::Router router(route, supervisor);
      router.start();
      serve::ClientOptions copts;
      copts.connect_timeout_ms = 2000;
      serve::Client client =
          serve::Client::connect_unix_path(route.uds_path, copts);
      // Warm both workers' histograms and the store before arming faults.
      for (int r = 0; r < 8; ++r) (void)client.submit_with_retry(memo_job);
      {
        fi::ArmScope stall("fleet.worker_stall", stall_spec);
        for (int r = 0; r < ab_requests; ++r) {
          const auto t0 = std::chrono::steady_clock::now();
          const serve::Client::Reply reply =
              client.submit_with_retry(memo_job);
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          if (reply.type != serve::MsgType::kJobResult)
            violations.check(false, "hedge A/B job failed");
          (hedged ? lat_hedged : lat_plain).push_back(ms);
        }
      }
      const Json m = router.metrics().get("router");
      if (hedged) {
        hedges_launched = static_cast<std::uint64_t>(
            m.get_number("hedges_launched", 0.0));
        hedges_won =
            static_cast<std::uint64_t>(m.get_number("hedges_won", 0.0));
        hedge_mismatches = static_cast<std::uint64_t>(
            m.get_number("hedge_mismatches", 0.0));
      }
      stalls_injected += static_cast<std::uint64_t>(
          m.get_number("stalls_injected", 0.0));
      router.stop();
    }
    violations.check(hedge_mismatches == 0,
                     "hedge losers disagreed with winners");
    violations.check(stalls_injected > 0, "stall fault never fired in A/B");
    std::printf("chaos: A/B p99 plain=%.1fms hedged=%.1fms "
                "(hedges %llu launched, %llu won)\n",
                percentile(lat_plain, 0.99), percentile(lat_hedged, 0.99),
                static_cast<unsigned long long>(hedges_launched),
                static_cast<unsigned long long>(hedges_won));
    std::fflush(stdout);

    // ---- Chaos epochs: run until the time box closes (always >= 3, one
    // of each kind).
    fleet::RouterOptions chaos_route;
    chaos_route.uds_path = sup.runtime_dir + "/chaos.sock";
    chaos_route.hedge_enabled = true;
    chaos_route.hedge_min_samples = 8;
    chaos_route.stall_inject_ms = 150.0;
    chaos_route.verbose = cfg.verbose;
    fleet::Router chaos_router(chaos_route, supervisor);
    chaos_router.start();

    Rng rng(cfg.seed);
    int epochs = 0, resume_runs = 0;
    std::vector<double> resume_ms;
    while (epochs < 3 || std::chrono::steady_clock::now() < t_end) {
      if (epochs >= 3 && std::chrono::steady_clock::now() >= t_end) break;
      const int kind = epochs < 3 ? epochs : static_cast<int>(
                                                 rng.uniform_index(3));
      const std::string tag = "epoch " + std::to_string(epochs) + " kind " +
                              std::to_string(kind);
      const std::string dir =
          cfg.runtime_dir + "/epoch" + std::to_string(epochs);
      campaign::CampaignOptions opts;
      opts.journal_dir = dir + "/journal";
      opts.artifact_path = dir + "/artifact.json";
      opts.result_store_dir = store_dir;
      opts.verbose = cfg.verbose;
      try {
        if (kind == 0) {
          // Torn journal append mid-campaign; the writer recovery ladder
          // must absorb it without losing a record.
          const std::uint64_t nth = 1 + rng.uniform_index(8);
          fi::ArmScope torn("campaign.journal_torn",
                            "nth=" + std::to_string(nth));
          const campaign::CampaignReport r = campaign::run_campaign(spec, opts);
          violations.check(r.completed, tag + ": did not complete");
        } else if (kind == 1) {
          // Partial run + resume: exactly-once across a driver restart.
          campaign::CampaignOptions partial = opts;
          partial.stop_after_commits =
              1 + static_cast<int>(rng.uniform_index(
                      static_cast<std::uint64_t>(jobs_total - 1)));
          const campaign::CampaignReport p =
              campaign::run_campaign(spec, partial);
          violations.check(!p.completed, tag + ": partial run completed?");
          campaign::CampaignOptions res = opts;
          res.resume = true;
          const campaign::CampaignReport r = campaign::run_campaign(spec, res);
          ++resume_runs;
          resume_ms.push_back(r.resume_replay_ms);
          violations.check(r.completed, tag + ": resume did not complete");
          violations.check(r.committed_prior >= partial.stop_after_commits,
                           tag + ": resume lost prior commits");
        } else {
          // Served through the hedged router with drops + stalls armed,
          // sometimes SIGKILLing a worker mid-campaign.
          const std::string s = std::to_string(cfg.seed + 100 +
                                               static_cast<unsigned>(epochs));
          fi::ArmScope drop("fleet.route_drop", "prob=0.10@" + s);
          fi::ArmScope stall("fleet.worker_stall", "prob=0.05@" + s);
          campaign::CampaignOptions served = opts;
          served.exec = campaign::ExecMode::kServed;
          served.socket = chaos_route.uds_path;
          std::atomic<bool> done{false};
          std::thread killer;
          if (rng.uniform_index(2) == 0) {
            killer = std::thread([&] {
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
              if (!done.load(std::memory_order_acquire))
                supervisor.kill_worker(
                    static_cast<int>(epochs) % sup.workers);
            });
          }
          const campaign::CampaignReport r =
              campaign::run_campaign(spec, served);
          done.store(true, std::memory_order_release);
          if (killer.joinable()) killer.join();
          violations.check(r.completed, tag + ": did not complete");
        }
      } catch (const std::exception& e) {
        violations.check(false, tag + ": threw: " + e.what());
      }
      // Invariants: bit-identical artifact, exactly-once journal.
      try {
        violations.check(read_file(opts.artifact_path) == ref_artifact,
                         tag + ": artifact differs from reference");
      } catch (const std::exception& e) {
        violations.check(false, tag + ": " + e.what());
      }
      audit_journal(opts.journal_dir, jobs_total, violations, tag);
      if (cfg.verbose || violations.count > 0)
        std::printf("chaos: %s done (%.1fs elapsed, %d violations)\n",
                    tag.c_str(), now_s(), violations.count);
      std::fflush(stdout);
      ++epochs;
    }

    const Json chaos_metrics = chaos_router.metrics().get("router");
    violations.check(
        chaos_metrics.get_number("hedge_mismatches", 0.0) == 0.0,
        "chaos router hedge losers disagreed with winners");
    chaos_router.stop();
    supervisor.stop();

    Json bench = Json::object();
    bench.set("bench", Json::string("campaign"));
    bench.set("fast_mode", Json::boolean(fast_mode()));
    bench.set("seed", Json::number(static_cast<double>(cfg.seed)));
    Json camp = Json::object();
    camp.set("jobs", Json::number(jobs_total));
    camp.set("epochs", Json::number(epochs));
    camp.set("resume_runs", Json::number(resume_runs));
    camp.set("violations", Json::number(violations.count));
    camp.set("reference_wall_s", Json::number(ref_report.wall_s));
    camp.set("throughput_jobs_per_s",
             Json::number(ref_report.wall_s > 0.0
                              ? jobs_total / ref_report.wall_s
                              : 0.0));
    camp.set("resume_latency_ms_mean",
             Json::number(resume_ms.empty()
                              ? 0.0
                              : std::accumulate(resume_ms.begin(),
                                                resume_ms.end(), 0.0) /
                                    static_cast<double>(resume_ms.size())));
    bench.set("campaign", std::move(camp));
    Json hedging = Json::object();
    hedging.set("stall_prob", Json::number(0.15));
    hedging.set("stall_ms", Json::number(150.0));
    hedging.set("requests", Json::number(ab_requests));
    hedging.set("p50_plain_ms", Json::number(percentile(lat_plain, 0.50)));
    hedging.set("p99_plain_ms", Json::number(percentile(lat_plain, 0.99)));
    hedging.set("p50_hedged_ms", Json::number(percentile(lat_hedged, 0.50)));
    hedging.set("p99_hedged_ms", Json::number(percentile(lat_hedged, 0.99)));
    hedging.set("hedges_launched",
                Json::number(static_cast<double>(hedges_launched)));
    hedging.set("hedges_won", Json::number(static_cast<double>(hedges_won)));
    hedging.set("hedge_mismatches",
                Json::number(static_cast<double>(hedge_mismatches)));
    hedging.set("stalls_injected",
                Json::number(static_cast<double>(stalls_injected)));
    bench.set("hedging", std::move(hedging));
    bench.set("wall_s", Json::number(now_s()));

    std::ofstream os(cfg.out);
    os << bench.dump() << "\n";
    std::printf("chaos: %d epochs (%d resumes), %d violations, wrote %s\n",
                epochs, resume_runs, violations.count, cfg.out.c_str());

    if (violations.count != 0) {
      std::fprintf(stderr, "chaos: FAILED (%d violations); runtime kept at "
                           "%s\n",
                   violations.count, cfg.runtime_dir.c_str());
      return 1;
    }
    std::filesystem::remove_all(cfg.runtime_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
