// Fleet entry point: supervisor + router in one process.
//
// Spawns N doseopt_server worker processes on private Unix sockets under
// --runtime-dir, keeps them alive (respawning crashed workers from shared
// snapshots), and serves the standard framed protocol on --socket/--tcp,
// routing each job to its session's worker over a consistent hash ring.
// Clients talk to the fleet exactly as they would to a single server.
//
// Usage:
//   doseopt_fleet --socket PATH [--tcp PORT] --runtime-dir DIR
//                 [--workers N] [--lanes N] [--queue N] [--links N]
//                 [--snapshot-dir DIR] [--result-cache DIR]
//                 [--crash-faults] [--worker-faults SPEC]
//                 [--metrics FILE] [--verbose]
//
// --snapshot-dir / --result-cache default to subdirectories of
// --runtime-dir, so a bare invocation gets shared persistence for free.
// SIGTERM/SIGINT (or a client kShutdown frame) drains: the router stops,
// then workers are SIGTERMed and snapshot their sessions on the way out.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "fleet/router.h"
#include "fleet/supervisor.h"

using namespace doseopt;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s --socket PATH [--tcp PORT] --runtime-dir DIR\n"
               "          [--workers N] [--lanes N] [--queue N] [--links N]\n"
               "          [--snapshot-dir DIR] [--result-cache DIR]\n"
               "          [--crash-faults] [--worker-faults SPEC]\n"
               "          [--metrics FILE] [--verbose]\n",
               argv0);
  std::exit(2);
}

fleet::Router* g_router = nullptr;

void on_signal(int) {
  if (g_router != nullptr) g_router->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  fleet::SupervisorOptions sup;
  fleet::RouterOptions route;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto integer = [&](long min) -> long {
      const std::string text = value();
      long v = 0;
      if (!try_parse_int(text, &v) || v < min)
        usage(argv[0], arg + ": '" + text + "' is not a valid integer");
      return v;
    };
    if (arg == "--socket") route.uds_path = value();
    else if (arg == "--tcp") route.tcp_port = static_cast<int>(integer(0));
    else if (arg == "--runtime-dir") sup.runtime_dir = value();
    else if (arg == "--workers") sup.workers = static_cast<int>(integer(1));
    else if (arg == "--lanes") sup.lanes = static_cast<int>(integer(1));
    else if (arg == "--queue")
      sup.queue_capacity = static_cast<std::size_t>(integer(1));
    else if (arg == "--links")
      route.links_per_worker = static_cast<int>(integer(1));
    else if (arg == "--snapshot-dir") sup.snapshot_dir = value();
    else if (arg == "--result-cache") sup.result_store_dir = value();
    else if (arg == "--crash-faults") sup.crash_faults = true;
    else if (arg == "--worker-faults") sup.worker_faults = value();
    else if (arg == "--metrics") metrics_path = value();
    else if (arg == "--verbose") {
      sup.verbose = true;
      route.verbose = true;
    } else {
      usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (route.uds_path.empty() && route.tcp_port < 0)
    usage(argv[0], "need --socket PATH and/or --tcp PORT");
  if (sup.runtime_dir.empty()) usage(argv[0], "need --runtime-dir DIR");
  if (sup.snapshot_dir.empty())
    sup.snapshot_dir = sup.runtime_dir + "/snapshots";
  if (sup.result_store_dir.empty())
    sup.result_store_dir = sup.runtime_dir + "/results";

  try {
    fleet::Supervisor supervisor(sup);
    supervisor.start();
    fleet::Router router(route, supervisor);
    g_router = &router;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    router.start();

    if (!route.uds_path.empty())
      std::printf("doseopt_fleet: unix %s\n", route.uds_path.c_str());
    if (route.tcp_port >= 0)
      std::printf("doseopt_fleet: tcp 127.0.0.1:%d\n", router.tcp_port());
    std::printf("doseopt_fleet: %d workers x %d lanes (shared %s)\n",
                sup.workers, sup.lanes, sup.result_store_dir.c_str());
    std::fflush(stdout);

    router.wait_for_shutdown();
    std::printf("doseopt_fleet: draining...\n");
    std::fflush(stdout);
    const serve::Json final_metrics = router.metrics();
    router.stop();
    g_router = nullptr;
    supervisor.stop();

    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      os << final_metrics.dump() << "\n";
      std::printf("doseopt_fleet: metrics written to %s\n",
                  metrics_path.c_str());
    }
    std::printf("doseopt_fleet: bye\n");
  } catch (const doseopt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
