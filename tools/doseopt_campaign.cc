// Durable campaign driver: expand a wafer campaign spec into dose-map
// jobs and execute them exactly-once through the write-ahead journal
// (src/campaign).  A driver SIGKILLed at any instant is resumed with
// --resume: committed jobs are answered from the shared result store
// (hash-verified against the journal), in-flight jobs re-run, and the
// final artifact comes out bit-identical to an uninterrupted run.
//
// Execution is local (in-process flow runs; default) or against a
// serving fleet: --fleet N spawns an in-process supervisor + router,
// --socket/--tcp connects to an external one.
//
// Usage:
//   doseopt_campaign --runtime-dir DIR [--journal DIR] [--out FILE]
//                    [--result-cache DIR] [--report FILE] [--resume]
//                    [--fleet N | --socket PATH | --tcp PORT]
//                    [--clients N] [--hedge]
//                    [--designs aes65,aes90] [--scale F] [--seed N]
//                    [--rounds N] [--grid UM] [--range PCT] [--classes N]
//                    [--field-size MM] [--wafer-radius MM] [--deadline MS]
//                    [--kill-after-intent N] [--stop-after-commits N]
//                    [--kill-worker-at SEC] [--verbose]
//
// Crash drills: --kill-after-intent N SIGKILLs the driver itself right
// after the Nth Intent record of this run is durable (the process dies
// with exit code 137; rerun with --resume).  --kill-worker-at SEC
// SIGKILLs a fleet worker mid-campaign to exercise respawn + replay.
//
// DOSEOPT_FAST=1 shrinks the default spec for CI.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.h"
#include "common/error.h"
#include "common/strings.h"
#include "faultinject/fault.h"
#include "fleet/router.h"
#include "fleet/supervisor.h"
#include "serve/json.h"

using namespace doseopt;
using serve::Json;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(
      stderr,
      "usage: %s --runtime-dir DIR [--journal DIR] [--out FILE]\n"
      "          [--result-cache DIR] [--report FILE] [--resume]\n"
      "          [--fleet N | --socket PATH | --tcp PORT]\n"
      "          [--clients N] [--hedge]\n"
      "          [--designs aes65,aes90] [--scale F] [--seed N]\n"
      "          [--rounds N] [--grid UM] [--range PCT] [--classes N]\n"
      "          [--field-size MM] [--wafer-radius MM] [--deadline MS]\n"
      "          [--kill-after-intent N] [--stop-after-commits N]\n"
      "          [--kill-worker-at SEC] [--verbose]\n",
      argv0);
  std::exit(2);
}

bool fast_mode() {
  const char* fast = std::getenv("DOSEOPT_FAST");
  return fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  campaign::CampaignOptions opts;
  std::string runtime_dir;
  std::string report_path;
  int fleet_workers = 0;
  bool hedge = false;
  double kill_worker_at_s = 0.0;

  if (fast_mode()) {
    spec.designs = {"aes65"};
    spec.scale = 0.02;
    spec.rounds = 2;
    spec.max_classes = 2;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto integer = [&](long min) -> long {
      const std::string text = value();
      long v = 0;
      if (!try_parse_int(text, &v) || v < min)
        usage(argv[0], arg + ": '" + text + "' is not a valid integer");
      return v;
    };
    auto real = [&](double min) -> double {
      const std::string text = value();
      double v = 0.0;
      if (!try_parse_double(text, &v) || v < min)
        usage(argv[0], arg + ": '" + text + "' is not a valid number");
      return v;
    };
    if (arg == "--runtime-dir") runtime_dir = value();
    else if (arg == "--journal") opts.journal_dir = value();
    else if (arg == "--out") opts.artifact_path = value();
    else if (arg == "--result-cache") opts.result_store_dir = value();
    else if (arg == "--report") report_path = value();
    else if (arg == "--resume") opts.resume = true;
    else if (arg == "--fleet") fleet_workers = static_cast<int>(integer(1));
    else if (arg == "--socket") opts.socket = value();
    else if (arg == "--tcp") opts.tcp_port = static_cast<int>(integer(0));
    else if (arg == "--clients") opts.clients = static_cast<int>(integer(1));
    else if (arg == "--hedge") hedge = true;
    else if (arg == "--designs") {
      spec.designs = split(value(), ",");
      if (spec.designs.empty()) usage(argv[0], "--designs needs a list");
    }
    else if (arg == "--scale") spec.scale = real(0.001);
    else if (arg == "--seed")
      spec.seed = static_cast<std::uint64_t>(integer(0));
    else if (arg == "--rounds") spec.rounds = static_cast<int>(integer(1));
    else if (arg == "--grid") spec.grid_um = real(1.0);
    else if (arg == "--range") spec.dose_range_pct = real(0.5);
    else if (arg == "--classes")
      spec.max_classes = static_cast<int>(integer(1));
    else if (arg == "--field-size") spec.wafer.field_size_mm = real(5.0);
    else if (arg == "--wafer-radius")
      spec.wafer.wafer_radius_mm = real(20.0);
    else if (arg == "--deadline") spec.deadline_ms = real(0.0);
    else if (arg == "--kill-after-intent")
      opts.kill_after_intents = static_cast<int>(integer(1));
    else if (arg == "--stop-after-commits")
      opts.stop_after_commits = static_cast<int>(integer(1));
    else if (arg == "--kill-worker-at") kill_worker_at_s = real(0.0);
    else if (arg == "--verbose") opts.verbose = true;
    else usage(argv[0], "unknown argument: " + arg);
  }

  const bool external = !opts.socket.empty() || opts.tcp_port >= 0;
  if (runtime_dir.empty() && (opts.journal_dir.empty() ||
                              opts.result_store_dir.empty()))
    usage(argv[0], "need --runtime-dir DIR (or explicit --journal and "
                   "--result-cache)");
  if (fleet_workers > 0 && external)
    usage(argv[0], "--fleet is exclusive with --socket/--tcp");
  if (kill_worker_at_s > 0.0 && fleet_workers == 0)
    usage(argv[0], "--kill-worker-at needs --fleet N");
  if (!runtime_dir.empty()) {
    if (opts.journal_dir.empty()) opts.journal_dir = runtime_dir + "/journal";
    if (opts.result_store_dir.empty())
      opts.result_store_dir = runtime_dir + "/results";
    if (opts.artifact_path.empty())
      opts.artifact_path = runtime_dir + "/artifact.json";
    if (opts.snapshot_dir.empty() && fleet_workers == 0 && !external)
      opts.snapshot_dir = runtime_dir + "/snapshots";
  }

  try {
    // Every subsystem is linked into this binary, so a configured fault
    // name that never registered is a typo -- fail loudly up front.
    faultinject::require_resolved();

    std::unique_ptr<fleet::Supervisor> supervisor;
    std::unique_ptr<fleet::Router> router;
    std::atomic<bool> done{false};
    std::thread killer;
    if (fleet_workers > 0) {
      fleet::SupervisorOptions sup;
      sup.runtime_dir =
          runtime_dir.empty() ? opts.journal_dir + "/../fleet" : runtime_dir;
      sup.snapshot_dir = sup.runtime_dir + "/snapshots";
      sup.result_store_dir = opts.result_store_dir;
      sup.workers = fleet_workers;
      sup.verbose = opts.verbose;
      supervisor = std::make_unique<fleet::Supervisor>(sup);
      supervisor->start();
      fleet::RouterOptions route;
      route.uds_path = sup.runtime_dir + "/router.sock";
      route.hedge_enabled = hedge;
      route.verbose = opts.verbose;
      router = std::make_unique<fleet::Router>(route, *supervisor);
      router->start();
      opts.exec = campaign::ExecMode::kServed;
      opts.socket = route.uds_path;
      if (kill_worker_at_s > 0.0) {
        killer = std::thread([&] {
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration<double>(kill_worker_at_s);
          while (!done.load(std::memory_order_acquire) &&
                 std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          if (!done.load(std::memory_order_acquire)) {
            std::fprintf(stderr,
                         "doseopt_campaign: killing worker 0 (drill)\n");
            supervisor->kill_worker(0);
          }
        });
      }
    } else if (external) {
      opts.exec = campaign::ExecMode::kServed;
    }

    const campaign::CampaignReport report = campaign::run_campaign(spec, opts);

    done.store(true, std::memory_order_release);
    if (killer.joinable()) killer.join();
    if (router) router->stop();
    if (supervisor) supervisor->stop();

    const Json doc = report.to_json();
    std::printf("%s\n", doc.dump().c_str());
    if (!report_path.empty()) {
      std::ofstream os(report_path);
      os << doc.dump() << "\n";
    }
    if (!report.completed) {
      std::fprintf(stderr, "doseopt_campaign: stopped early (partial run); "
                           "rerun with --resume\n");
      return 3;
    }
  } catch (const doseopt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
