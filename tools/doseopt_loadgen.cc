// Replay load generator and correctness harness for the doseopt fleet.
//
// Builds a deterministic trace of mixed jobs -- per session one COLD job
// (full characterize + solve), several WARM variants (same session,
// different solver knobs), and MEMOIZED exact repeats -- computes the
// direct flow:: reference result for every unique job, then replays the
// shuffled trace against an in-process fleet (supervisor + router) at each
// requested worker count with many concurrent client connections.
//
// Every reply is compared bit-exact (wall-clock fields zeroed) against the
// direct reference, so one run proves the whole chain: router hashing,
// proxying, worker processes, shared snapshot/result stores, and -- when a
// worker is SIGKILLed mid-run (default at >= 2 workers) -- supervisor
// respawn plus job replay.  Any mismatch or failed job makes the exit
// status non-zero, which is what CI asserts.
//
// Emits BENCH_fleet.json: per worker count p50/p90/p99/max latency, QPS,
// shed rate, client replay count, respawn count, and cache hit rate.
//
// Usage:
//   doseopt_loadgen [--out FILE] [--workers 1,2,4] [--clients N]
//                   [--sessions N] [--warm N] [--memo N] [--links N]
//                   [--lanes N] [--queue N] [--runtime-dir DIR]
//                   [--no-kill] [--verbose]
//
// DOSEOPT_FAST=1 shrinks the defaults for CI.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "fleet/router.h"
#include "fleet/supervisor.h"
#include "flow/context.h"
#include "flow/optimize.h"
#include "serve/client.h"
#include "serve/job.h"
#include "serve/json.h"

using namespace doseopt;
using serve::JobSpec;
using serve::Json;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s [--out FILE] [--workers 1,2,4] [--clients N]\n"
               "          [--sessions N] [--warm N] [--memo N] [--links N]\n"
               "          [--lanes N] [--queue N] [--runtime-dir DIR]\n"
               "          [--no-kill] [--verbose]\n",
               argv0);
  std::exit(2);
}

bool fast_mode() {
  const char* fast = std::getenv("DOSEOPT_FAST");
  return fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

/// Zero wall-clock fields; everything else compares bit-exact.
Json normalized(const Json& result) { return serve::normalized_result(result); }

struct TraceEntry {
  JobSpec spec;
  const char* kind;  ///< "cold" | "warm" | "memo"
};

/// sessions x (1 cold + `warm` variants + `memo` repeats), shuffled
/// deterministically so cold/warm/memo interleave across sessions the same
/// way every run.
std::vector<TraceEntry> build_trace(int sessions, int warm, int memo) {
  std::vector<TraceEntry> trace;
  for (int s = 0; s < sessions; ++s) {
    JobSpec cold;
    cold.design = (s % 2 == 0) ? "aes65" : "jpeg65";
    cold.scale = (s % 2 == 0) ? 0.025 : 0.02;
    cold.seed = 1000 + static_cast<std::uint64_t>(s);  // distinct sessions
    cold.grid_um = 10.0;
    cold.id = "s" + std::to_string(s) + "-cold";
    trace.push_back({cold, "cold"});
    for (int w = 0; w < warm; ++w) {
      JobSpec variant = cold;
      variant.id = "s" + std::to_string(s) + "-warm" + std::to_string(w);
      variant.grid_um = 12.0 + 2.0 * w;
      if (w % 2 == 1) variant.mode = "leakage";
      trace.push_back({variant, "warm"});
    }
    for (int m = 0; m < memo; ++m) {
      JobSpec repeat = cold;  // same job_key as the cold job
      trace.push_back({repeat, "memo"});
    }
  }
  Rng rng(0xF1EE7);
  for (std::size_t i = trace.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform() *
                                            static_cast<double>(i));
    std::swap(trace[i - 1], trace[std::min(j, i - 1)]);
  }
  return trace;
}

/// Direct flow:: references for every unique job key in the trace.
std::map<std::uint64_t, std::string> build_references(
    const std::vector<TraceEntry>& trace) {
  std::map<std::uint64_t, std::string> refs;
  std::map<std::uint64_t, std::unique_ptr<flow::DesignContext>> contexts;
  for (const TraceEntry& entry : trace) {
    const std::uint64_t key = entry.spec.job_key();
    if (refs.count(key) != 0) continue;
    auto& ctx = contexts[entry.spec.session_key()];
    if (!ctx)
      ctx = std::make_unique<flow::DesignContext>(entry.spec.design_spec());
    const flow::FlowResult r = flow::run_flow(*ctx, entry.spec.flow_options());
    refs[key] = normalized(serve::flow_result_to_json(r)).dump();
  }
  return refs;
}

struct RunStats {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t failures = 0;
  std::uint64_t sheds_observed = 0;      ///< kJobRejected replies seen
  std::uint64_t client_reconnects = 0;   ///< transport errors ridden out
  std::mutex mu;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// One client thread: replay its slice of the trace, counting rejections
/// and riding out transport errors (router restart windows) by
/// reconnecting -- the memoized stores make every retry bit-identical.
void client_thread(const std::string& socket,
                   const std::vector<TraceEntry>& trace, std::size_t begin,
                   std::size_t step,
                   const std::map<std::uint64_t, std::string>& refs,
                   std::atomic<std::uint64_t>& completed, RunStats& stats) {
  std::vector<double> latencies;
  std::uint64_t ok = 0, mismatches = 0, failures = 0, sheds = 0,
                reconnects = 0;
  serve::ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  std::unique_ptr<serve::Client> client;
  for (std::size_t i = begin; i < trace.size(); i += step) {
    const TraceEntry& entry = trace[i];
    const auto t0 = std::chrono::steady_clock::now();
    bool done = false;
    for (int attempt = 0; attempt < 200 && !done; ++attempt) {
      try {
        if (!client)
          client = std::make_unique<serve::Client>(
              serve::Client::connect_unix_path(socket, copts));
        const serve::Client::Reply r = client->submit(entry.spec);
        if (r.type == serve::MsgType::kJobRejected) {
          ++sheds;
          const double wait =
              r.payload.get_number("retry_after_ms", 100.0);
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<long>(std::min(wait, 500.0) * 1000.0)));
          continue;
        }
        if (!r.ok()) {
          ++failures;
          std::fprintf(stderr, "loadgen: job '%s' failed: %s\n",
                       entry.spec.id.c_str(),
                       r.payload.get_string("error", "?").c_str());
          done = true;
          break;
        }
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        latencies.push_back(ms);
        const std::string got =
            normalized(r.payload.get("result")).dump();
        if (got != refs.at(entry.spec.job_key())) {
          ++mismatches;
          std::fprintf(stderr, "loadgen: MISMATCH on job '%s' (%s)\n",
                       entry.spec.id.c_str(), entry.kind);
        } else {
          ++ok;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        done = true;
      } catch (const std::exception&) {
        ++reconnects;
        client.reset();  // torn link: reconnect on the next attempt
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (!done) ++failures;
  }
  std::lock_guard<std::mutex> lock(stats.mu);
  stats.latencies_ms.insert(stats.latencies_ms.end(), latencies.begin(),
                            latencies.end());
  stats.ok += ok;
  stats.mismatches += mismatches;
  stats.failures += failures;
  stats.sheds_observed += sheds;
  stats.client_reconnects += reconnects;
}

struct Config {
  std::string out = "BENCH_fleet.json";
  std::string runtime_dir;
  std::vector<int> worker_counts = {1, 2, 4};
  int clients = 32;
  int sessions = 3;
  int warm = 3;
  int memo = 3;
  int links = 6;
  int lanes = 2;
  std::size_t queue = 16;
  bool kill_mid_run = true;
  bool verbose = false;
};

/// One fleet run at `workers` workers.  Returns the per-run JSON document;
/// bumps `total_bad` on mismatches/failures.
Json run_fleet(const Config& cfg, int workers,
               const std::vector<TraceEntry>& trace,
               const std::map<std::uint64_t, std::string>& refs,
               std::uint64_t& total_bad) {
  const std::string dir =
      cfg.runtime_dir + "/w" + std::to_string(workers);
  std::filesystem::remove_all(dir);

  fleet::SupervisorOptions sup;
  sup.runtime_dir = dir;
  sup.snapshot_dir = dir + "/snapshots";
  sup.result_store_dir = dir + "/results";
  sup.workers = workers;
  sup.lanes = cfg.lanes;
  sup.queue_capacity = cfg.queue;
  sup.verbose = cfg.verbose;
  fleet::Supervisor supervisor(sup);
  supervisor.start();

  fleet::RouterOptions route;
  route.uds_path = dir + "/router.sock";
  route.links_per_worker = cfg.links;
  route.verbose = cfg.verbose;
  fleet::Router router(route, supervisor);
  router.start();

  const bool kill = cfg.kill_mid_run && workers >= 2;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> replay_done{false};
  std::thread killer;
  if (kill) {
    // SIGKILL worker 0 once roughly half the trace has completed: genuinely
    // mid-run, with jobs in flight on the dying worker.
    killer = std::thread([&] {
      const std::uint64_t half = trace.size() / 2;
      while (!replay_done.load(std::memory_order_acquire) &&
             completed.load(std::memory_order_relaxed) < half)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      supervisor.kill_worker(0);
    });
  }

  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    const auto step = static_cast<std::size_t>(cfg.clients);
    for (std::size_t c = 0; c < step; ++c)
      clients.emplace_back(client_thread, route.uds_path, std::cref(trace),
                           c, step, std::cref(refs), std::ref(completed),
                           std::ref(stats));
    for (auto& t : clients) t.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  replay_done.store(true, std::memory_order_release);
  if (killer.joinable()) killer.join();

  // Aggregate cache counters across workers before tearing the fleet down.
  std::uint64_t cache_hits = 0, cache_misses = 0, disk_hits = 0;
  const Json fleet_metrics = router.metrics();
  for (const Json& w : fleet_metrics.get("workers").items()) {
    if (!w.has("metrics")) continue;
    const Json& cache = w.get("metrics").get("cache");
    cache_hits += static_cast<std::uint64_t>(
        cache.get_number("result_hits", 0.0));
    cache_misses += static_cast<std::uint64_t>(
        cache.get_number("result_misses", 0.0));
    disk_hits += static_cast<std::uint64_t>(
        cache.get_number("result_disk_hits", 0.0));
  }
  const std::uint64_t respawns = supervisor.total_respawns();
  router.stop();
  supervisor.stop();

  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  total_bad += stats.mismatches + stats.failures;

  Json run = Json::object();
  run.set("workers", Json::number(workers));
  run.set("jobs", Json::number(static_cast<double>(trace.size())));
  run.set("ok", Json::number(static_cast<double>(stats.ok)));
  run.set("mismatches",
          Json::number(static_cast<double>(stats.mismatches)));
  run.set("failures", Json::number(static_cast<double>(stats.failures)));
  run.set("wall_s", Json::number(wall_s));
  run.set("qps", Json::number(
                     wall_s > 0.0
                         ? static_cast<double>(stats.ok) / wall_s
                         : 0.0));
  run.set("p50_ms", Json::number(percentile(stats.latencies_ms, 0.50)));
  run.set("p90_ms", Json::number(percentile(stats.latencies_ms, 0.90)));
  run.set("p99_ms", Json::number(percentile(stats.latencies_ms, 0.99)));
  run.set("max_ms", Json::number(stats.latencies_ms.empty()
                                     ? 0.0
                                     : stats.latencies_ms.back()));
  run.set("sheds", Json::number(static_cast<double>(stats.sheds_observed)));
  run.set("shed_rate",
          Json::number(static_cast<double>(stats.sheds_observed) /
                       static_cast<double>(stats.sheds_observed + stats.ok +
                                           1)));
  run.set("client_reconnects",
          Json::number(static_cast<double>(stats.client_reconnects)));
  run.set("worker_killed_mid_run", Json::boolean(kill));
  run.set("respawns", Json::number(static_cast<double>(respawns)));
  Json cache = Json::object();
  cache.set("result_hits", Json::number(static_cast<double>(cache_hits)));
  cache.set("result_misses",
            Json::number(static_cast<double>(cache_misses)));
  cache.set("result_disk_hits",
            Json::number(static_cast<double>(disk_hits)));
  cache.set("hit_rate",
            Json::number(cache_hits + cache_misses > 0
                             ? static_cast<double>(cache_hits) /
                                   static_cast<double>(cache_hits +
                                                       cache_misses)
                             : 0.0));
  run.set("cache", std::move(cache));

  std::printf(
      "loadgen: workers=%d ok=%llu mism=%llu fail=%llu p50=%.2fms "
      "p99=%.2fms qps=%.1f sheds=%llu respawns=%llu hit_rate=%.2f\n",
      workers, static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.mismatches),
      static_cast<unsigned long long>(stats.failures),
      percentile(stats.latencies_ms, 0.50),
      percentile(stats.latencies_ms, 0.99),
      wall_s > 0.0 ? static_cast<double>(stats.ok) / wall_s : 0.0,
      static_cast<unsigned long long>(stats.sheds_observed),
      static_cast<unsigned long long>(respawns),
      cache_hits + cache_misses > 0
          ? static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses)
          : 0.0);
  std::fflush(stdout);
  return run;
}

std::vector<int> parse_worker_list(const std::string& text) {
  std::vector<int> out;
  std::string token;
  for (const char ch : text + ",") {
    if (ch == ',') {
      if (!token.empty()) {
        long v = 0;
        if (!try_parse_int(token, &v) || v < 1) return {};
        out.push_back(static_cast<int>(v));
        token.clear();
      }
    } else {
      token.push_back(ch);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (fast_mode()) {
    cfg.worker_counts = {1, 2};
    cfg.clients = 8;
    cfg.sessions = 2;
    cfg.warm = 2;
    cfg.memo = 2;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto integer = [&](long min) -> long {
      const std::string text = value();
      long v = 0;
      if (!try_parse_int(text, &v) || v < min)
        usage(argv[0], arg + ": '" + text + "' is not a valid integer");
      return v;
    };
    if (arg == "--out") cfg.out = value();
    else if (arg == "--runtime-dir") cfg.runtime_dir = value();
    else if (arg == "--workers") {
      cfg.worker_counts = parse_worker_list(value());
      if (cfg.worker_counts.empty())
        usage(argv[0], "--workers needs a comma list of positive integers");
    }
    else if (arg == "--clients") cfg.clients = static_cast<int>(integer(1));
    else if (arg == "--sessions") cfg.sessions = static_cast<int>(integer(1));
    else if (arg == "--warm") cfg.warm = static_cast<int>(integer(0));
    else if (arg == "--memo") cfg.memo = static_cast<int>(integer(0));
    else if (arg == "--links") cfg.links = static_cast<int>(integer(1));
    else if (arg == "--lanes") cfg.lanes = static_cast<int>(integer(1));
    else if (arg == "--queue")
      cfg.queue = static_cast<std::size_t>(integer(1));
    else if (arg == "--no-kill") cfg.kill_mid_run = false;
    else if (arg == "--verbose") cfg.verbose = true;
    else usage(argv[0], "unknown argument: " + arg);
  }
  if (cfg.runtime_dir.empty())
    cfg.runtime_dir =
        "/tmp/doseopt_loadgen_" + std::to_string(::getpid());

  try {
    const std::vector<TraceEntry> trace =
        build_trace(cfg.sessions, cfg.warm, cfg.memo);
    std::printf("loadgen: trace of %zu jobs (%d sessions), %d clients\n",
                trace.size(), cfg.sessions, cfg.clients);
    std::fflush(stdout);

    const auto ref_t0 = std::chrono::steady_clock::now();
    const std::map<std::uint64_t, std::string> refs =
        build_references(trace);
    const double ref_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - ref_t0)
                             .count();
    std::printf("loadgen: %zu direct references in %.1fs\n", refs.size(),
                ref_s);
    std::fflush(stdout);

    std::uint64_t total_bad = 0;
    Json runs = Json::array();
    for (const int workers : cfg.worker_counts)
      runs.push_back(run_fleet(cfg, workers, trace, refs, total_bad));

    Json bench = Json::object();
    bench.set("bench", Json::string("fleet"));
    bench.set("fast_mode", Json::boolean(fast_mode()));
    Json tr = Json::object();
    tr.set("jobs", Json::number(static_cast<double>(trace.size())));
    tr.set("sessions", Json::number(cfg.sessions));
    tr.set("warm_per_session", Json::number(cfg.warm));
    tr.set("memo_per_session", Json::number(cfg.memo));
    tr.set("clients", Json::number(cfg.clients));
    tr.set("unique_jobs", Json::number(static_cast<double>(refs.size())));
    tr.set("reference_s", Json::number(ref_s));
    bench.set("trace", std::move(tr));
    bench.set("runs", std::move(runs));
    bench.set("total_bad", Json::number(static_cast<double>(total_bad)));

    std::ofstream os(cfg.out);
    os << bench.dump() << "\n";
    std::printf("loadgen: wrote %s\n", cfg.out.c_str());

    std::filesystem::remove_all(cfg.runtime_dir);
    if (total_bad != 0) {
      std::fprintf(stderr, "loadgen: FAILED (%llu bad jobs)\n",
                   static_cast<unsigned long long>(total_bad));
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
