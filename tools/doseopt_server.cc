// Persistent doseopt job server.
//
// Listens on a Unix-domain socket (and/or loopback TCP), runs framed JSON
// job requests on worker lanes, and caches analyzed designs across
// requests.  SIGTERM/SIGINT (or a client kShutdown frame) triggers a
// graceful drain: queued jobs finish, sessions are snapshotted, then the
// process exits.
//
// Usage:
//   doseopt_server --socket PATH [--tcp PORT] [--lanes N] [--queue N]
//                  [--snapshot-dir DIR] [--result-cache DIR]
//                  [--eager-snapshots] [--crash-faults]
//                  [--metrics FILE] [--threads N]
//                  [--job-attempts N] [--breaker-threshold N]
//                  [--breaker-cooldown MS] [--list-fault-points]
//                  [--verbose]
//
// Self-healing knobs: each failing job is retried in place up to
// --job-attempts times; --breaker-threshold consecutive exhausted jobs
// open the circuit breaker, which sheds new requests for
// --breaker-cooldown ms.  --list-fault-points prints the registered
// deterministic fault-injection points (armable via $DOSEOPT_FAULTS,
// see src/faultinject/fault.h) and exits.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "faultinject/fault.h"
#include "serve/server.h"

using namespace doseopt;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s --socket PATH [--tcp PORT] [--lanes N] [--queue N]\n"
               "          [--snapshot-dir DIR] [--result-cache DIR]\n"
               "          [--eager-snapshots] [--crash-faults]\n"
               "          [--metrics FILE] [--threads N]\n"
               "          [--job-attempts N] [--breaker-threshold N]\n"
               "          [--breaker-cooldown MS] [--list-fault-points]\n"
               "          [--verbose]\n",
               argv0);
  std::exit(2);
}

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto integer = [&](long min) -> long {
      const std::string text = value();
      long v = 0;
      if (!try_parse_int(text, &v) || v < min)
        usage(argv[0], arg + ": '" + text + "' is not a valid integer");
      return v;
    };
    if (arg == "--socket") options.uds_path = value();
    else if (arg == "--tcp") options.tcp_port = static_cast<int>(integer(0));
    else if (arg == "--lanes") options.lanes = static_cast<int>(integer(1));
    else if (arg == "--queue")
      options.queue_capacity = static_cast<std::size_t>(integer(1));
    else if (arg == "--snapshot-dir") options.snapshot_dir = value();
    else if (arg == "--result-cache") options.result_store_dir = value();
    else if (arg == "--eager-snapshots") options.eager_snapshots = true;
    else if (arg == "--crash-faults") options.allow_crash_faults = true;
    else if (arg == "--metrics") metrics_path = value();
    else if (arg == "--job-attempts")
      options.job_max_attempts = static_cast<int>(integer(1));
    else if (arg == "--breaker-threshold")
      options.breaker_threshold = static_cast<int>(integer(0));
    else if (arg == "--breaker-cooldown")
      options.breaker_cooldown_ms = static_cast<double>(integer(0));
    else if (arg == "--list-fault-points") {
      for (const faultinject::FaultPoint* p : faultinject::registry())
        std::printf("%s\n", p->name());
      return 0;
    }
    else if (arg == "--threads") {
      const long n = integer(1);
      setenv("DOSEOPT_THREADS", std::to_string(n).c_str(), /*overwrite=*/1);
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      usage(argv[0], "unknown argument: " + arg);
    }
  }
  if (options.uds_path.empty() && options.tcp_port < 0)
    usage(argv[0], "need --socket PATH and/or --tcp PORT");

  // Warn (don't fail) on DOSEOPT_FAULTS names with no point in this binary:
  // fleet workers legitimately inherit router-only specs (fleet.route_drop)
  // from the supervisor's environment during env-driven sweeps.
  for (const std::string& name : faultinject::unresolved())
    std::fprintf(stderr,
                 "doseopt_server: warning: fault point '%s' is configured "
                 "but not registered in this binary\n", name.c_str());

  try {
    serve::Server server(options);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    server.start();
    if (!options.uds_path.empty())
      std::printf("doseopt_server: unix %s\n", options.uds_path.c_str());
    if (options.tcp_port >= 0)
      std::printf("doseopt_server: tcp 127.0.0.1:%d\n", server.tcp_port());
    std::printf("doseopt_server: lanes=%d queue=%zu%s\n", options.lanes,
                options.queue_capacity,
                options.snapshot_dir.empty() ? "" : " (snapshots on)");
    std::fflush(stdout);

    server.wait_for_shutdown();
    std::printf("doseopt_server: draining...\n");
    std::fflush(stdout);
    server.stop();  // drain: queued jobs finish before counters are read
    const serve::Json final_metrics = server.metrics();
    g_server = nullptr;

    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      os << final_metrics.dump() << "\n";
      std::printf("doseopt_server: metrics written to %s\n",
                  metrics_path.c_str());
    }
    std::printf("doseopt_server: bye\n");
  } catch (const doseopt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
