// Client for the doseopt job server.
//
// Submits one job (same knobs as doseopt_cli) and prints the JSON reply,
// or fetches telemetry / requests a graceful shutdown.
//
// Usage:
//   doseopt_client (--socket PATH | --tcp PORT)
//                  [--design NAME] [--scale F] [--seed N]
//                  [--mode timing|leakage] [--grid UM] [--delta PCT]
//                  [--range PCT] [--width] [--dosepl] [--deadline MS]
//                  [--id NAME] [--timeout MS] [--retries N]
//                  [--metrics] [--shutdown] [--ping]
//
// --timeout bounds every connect and socket read/write (0 = block forever);
// --retries caps submit_with_retry's attempts (transport errors reconnect,
// rejections honor the server's retry_after_ms).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "common/strings.h"
#include "serve/client.h"

using namespace doseopt;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) std::fprintf(stderr, "error: %s\n", reason.c_str());
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp PORT)\n"
               "          [--design NAME] [--scale F] [--seed N]\n"
               "          [--mode timing|leakage] [--grid UM] [--delta PCT]\n"
               "          [--range PCT] [--width] [--dosepl] [--deadline MS]\n"
               "          [--id NAME] [--timeout MS] [--retries N]\n"
               "          [--metrics] [--shutdown] [--ping]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string uds_path;
  int tcp_port = -1;
  bool want_metrics = false;
  bool want_shutdown = false;
  bool want_ping = false;
  serve::JobSpec spec;
  serve::ClientOptions copts;
  serve::RetryPolicy policy;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " requires a value");
      return argv[++i];
    };
    auto number = [&]() -> double {
      const std::string text = value();
      double v = 0.0;
      if (!try_parse_double(text, &v))
        usage(argv[0], arg + ": '" + text + "' is not a number");
      return v;
    };
    if (arg == "--socket") uds_path = value();
    else if (arg == "--tcp") {
      long p = 0;
      const std::string text = value();
      if (!try_parse_int(text, &p) || p < 1 || p > 65535)
        usage(argv[0], "--tcp: '" + text + "' is not a valid port");
      tcp_port = static_cast<int>(p);
    } else if (arg == "--design") spec.design = value();
    else if (arg == "--scale") spec.scale = number();
    else if (arg == "--seed") spec.seed = static_cast<std::uint64_t>(number());
    else if (arg == "--mode") spec.mode = value();
    else if (arg == "--grid") spec.grid_um = number();
    else if (arg == "--delta") spec.smoothness_delta = number();
    else if (arg == "--range") spec.dose_range_pct = number();
    else if (arg == "--width") spec.modulate_width = true;
    else if (arg == "--dosepl") spec.run_dosepl = true;
    else if (arg == "--deadline") spec.deadline_ms = number();
    else if (arg == "--id") spec.id = value();
    else if (arg == "--timeout") {
      const double ms = number();
      if (ms < 0) usage(argv[0], "--timeout must be >= 0");
      copts.connect_timeout_ms = static_cast<int>(ms);
      copts.io_timeout_ms = static_cast<int>(ms);
    } else if (arg == "--retries") {
      const double n = number();
      if (n < 1) usage(argv[0], "--retries must be >= 1");
      policy.max_attempts = static_cast<int>(n);
    }
    else if (arg == "--metrics") want_metrics = true;
    else if (arg == "--shutdown") want_shutdown = true;
    else if (arg == "--ping") want_ping = true;
    else usage(argv[0], "unknown argument: " + arg);
  }
  if (uds_path.empty() == (tcp_port < 0))
    usage(argv[0], "need exactly one of --socket / --tcp");

  try {
    serve::Client client =
        uds_path.empty() ? serve::Client::connect_tcp_port(tcp_port, copts)
                         : serve::Client::connect_unix_path(uds_path, copts);
    if (want_ping) {
      client.ping();
      std::printf("pong\n");
      return 0;
    }
    if (want_metrics) {
      std::printf("%s\n", client.metrics().dump().c_str());
      return 0;
    }
    if (want_shutdown) {
      client.request_shutdown();
      std::printf("shutdown requested\n");
      return 0;
    }
    const serve::Client::Reply reply = client.submit_with_retry(spec, policy);
    std::printf("%s\n", reply.payload.dump().c_str());
    if (!reply.ok()) return 1;
  } catch (const doseopt::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
