// Incremental cutting-plane solve path: cold vs warm A/B on the AES-65 QCP
// flow (minimize_cycle_time, the richest trajectory: a bisection probe
// sequence on top of the cutting-plane rounds), plus a warm+speculative run
// (2-lane pool, depth-2 probe tree) reported alongside.
//
// Cold and warm must walk the same trajectory -- identical cuts, rounds, and
// probes, with golden results the same doubles -- so the comparison is pure
// solver work: per-round constraint assembly (full rebuild vs append-only)
// and ADMM iterations (zero dual vs carried dual + cached scaling +
// multigrid seed + float32 inner CG).  The warm total charges the coarse
// multigrid solves too: the seed is only a win if coarse+fine beats
// fine-alone, and hiding the coarse cost would fake the ratio.
//
// Every heap allocation in the process is counted (operator new override
// below), so the table doubles as the scratch-reuse audit: the warm path
// must not allocate per iteration, only per fresh cut block.
//
// Writes BENCH_qp.json and fails (exit 1) when the warm path is less than
// 3x faster on total cutting-plane solve time, when it allocates more than
// half of what the cold rebuild path does, or when golden results diverge.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "dmopt/dmopt.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// Count every operator new in the process (the array and sized forms
// forward here).  Pool threads allocate through the same override, so the
// speculative run's clones are charged too.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (::posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) ==
      0)
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace doseopt;

namespace {

struct ModeStats {
  dmopt::DmoptResult result;
  double assembly_ms = 0.0;
  double admm_ms = 0.0;
  double extract_ms = 0.0;
  double mg_ms = 0.0;              ///< coarse multigrid solve time
  double total_ms = 0.0;           ///< assembly + ADMM + coarse (the cost)
  double assembly_ns_per_round = 0.0;
  int rounds = 0;
  int admm_iterations = 0;
  std::size_t cuts = 0;
  std::uint64_t allocations = 0;   ///< operator new calls during the run
};

ModeStats run_mode(flow::DesignContext& ctx,
                   const liberty::CoefficientSet& coeffs, bool incremental,
                   ThreadPool* pool = nullptr) {
  dmopt::DmoptOptions opt;
  opt.grid_um = 10.0;
  opt.incremental = incremental;
  // All three warm-path levers: multigrid seeding (on by default), the
  // float32 mixed-precision inner CG, and (with a pool) speculative
  // bisection.  The cold reference strips every one of them by
  // construction -- mixed precision and multigrid are warm-path-only -- so
  // it stays the historical rebuild+cold-solve baseline.
  opt.qp_settings.mixed_precision = true;
  if (std::getenv("DOSEOPT_BENCH_NO_MG") != nullptr) opt.multigrid = false;
  if (std::getenv("DOSEOPT_BENCH_NO_MIXED") != nullptr)
    opt.qp_settings.mixed_precision = false;
  if (pool != nullptr) {
    opt.pool = pool;
    opt.speculation_depth = 2;
  }
  dmopt::DoseMapOptimizer optimizer(
      &ctx.netlist(), &ctx.placement(), &ctx.parasitics(), &ctx.repo(),
      &coeffs, &ctx.timer(), &ctx.nominal_timing(), opt);
  ModeStats s;
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  s.result = optimizer.minimize_cycle_time();
  s.allocations =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  const dmopt::CutTelemetry& t = s.result.telemetry;
  if (std::getenv("DOSEOPT_BENCH_ROUNDS") != nullptr) {
    std::fprintf(stderr,
                 "mode=%s mg_seeds=%d mg_rejects=%d mg_iters=%d mg_ms=%.2f "
                 "mixed_solves=%d mixed_fallbacks=%d mixed_cg_iters=%d "
                 "spec_launched=%d spec_consumed=%d spec_wasted=%d\n",
                 incremental ? (pool != nullptr ? "spec" : "warm") : "cold",
                 t.mg_seeds, t.mg_rejects, t.mg_admm_iterations,
                 t.mg_solve_ns / 1e6, t.qp_mixed_solves, t.qp_mixed_fallbacks,
                 t.mixed_cg_iterations, t.speculative_launched,
                 t.speculative_consumed, t.speculative_wasted);
    for (const dmopt::CutRound& r : t.rounds)
      std::fprintf(stderr,
                   "round tau=%.6f r=%d ws=%zu fresh=%zu iters=%d "
                   "asm=%.2fms solve=%.2fms extract=%.2fms\n",
                   r.tau_ns, r.round, r.working_set, r.fresh_cuts,
                   r.admm_iterations, r.assembly_ns / 1e6, r.solve_ns / 1e6,
                   r.extract_ns / 1e6);
  }
  s.assembly_ms = static_cast<double>(t.assembly_ns) / 1e6;
  s.admm_ms = static_cast<double>(t.solve_ns) / 1e6;
  s.extract_ms = static_cast<double>(t.extract_ns) / 1e6;
  s.mg_ms = static_cast<double>(t.mg_solve_ns) / 1e6;
  s.total_ms = s.assembly_ms + s.admm_ms + s.mg_ms;
  s.rounds = t.total_rounds;
  s.admm_iterations = t.total_admm_iterations;
  s.cuts = t.total_cuts;
  s.assembly_ns_per_round =
      t.total_rounds > 0
          ? static_cast<double>(t.assembly_ns) / t.total_rounds
          : 0.0;
  return s;
}

}  // namespace

int main() {
  bench::banner(
      "Incremental cutting-plane solve path -- cold vs warm-started QP "
      "(AES-65, QCP bisection)");

  const gen::DesignSpec spec = flow::scaled_spec(gen::aes65_spec());
  flow::DesignContext ctx(spec);
  const liberty::CoefficientSet& coeffs = ctx.coefficients(false);
  std::printf("nominal: MCT %.4f ns, leakage %.1f uW, %zu cells\n\n",
              ctx.nominal_mct_ns(), ctx.nominal_leakage_uw(),
              ctx.netlist().cell_count());

  const ModeStats cold = run_mode(ctx, coeffs, /*incremental=*/false);
  const ModeStats warm = run_mode(ctx, coeffs, /*incremental=*/true);
  // The speculative run overlaps child tau probes on pool lanes.  On a
  // single hardware core the lanes serialize, so its wall clock here is
  // warm plus the wasted-probe work; the frontier (probes, cuts, goldens)
  // is bit-identical to the sequential loop by construction.
  ThreadPool spec_pool(2);
  const ModeStats spec_run =
      run_mode(ctx, coeffs, /*incremental=*/true, &spec_pool);

  TextTable t;
  t.set_header({"Mode", "Rounds", "Cuts", "ADMM iters", "Assembly (ms)",
                "ADMM (ms)", "MG (ms)", "Solve total (ms)", "Allocs",
                "DMopt (s)"});
  for (const auto* m : {&cold, &warm, &spec_run}) {
    t.add_row({m == &cold   ? "cold (rebuild)"
               : m == &warm ? "warm (incremental)"
                            : "warm+speculative (2 lanes)",
               fmt_f(m->rounds, 0), fmt_f(static_cast<double>(m->cuts), 0),
               fmt_f(m->admm_iterations, 0), fmt_f(m->assembly_ms, 2),
               fmt_f(m->admm_ms, 2), fmt_f(m->mg_ms, 2),
               fmt_f(m->total_ms, 2),
               fmt_f(static_cast<double>(m->allocations), 0),
               fmt_f(m->result.runtime_s, 2)});
  }
  t.print(std::cout);

  // Trajectory lock: the incremental path is a pure perf change.
  int variant_diffs = 0;
  for (std::size_t c = 0; c < ctx.netlist().cell_count(); ++c)
    if (cold.result.variants.get(static_cast<netlist::CellId>(c)) !=
        warm.result.variants.get(static_cast<netlist::CellId>(c)))
      ++variant_diffs;
  const bool bit_identical =
      cold.result.golden_mct_ns == warm.result.golden_mct_ns &&
      cold.result.golden_leakage_uw == warm.result.golden_leakage_uw &&
      cold.rounds == warm.rounds && cold.cuts == warm.cuts &&
      cold.result.bisection_probes == warm.result.bisection_probes &&
      variant_diffs == 0;
  // The speculative run must land on the same feasibility frontier and
  // golden signoff as the sequential warm loop (consumed children may
  // differ from the sequential iterates at solver tolerance, but never in
  // what was probed or what signoff measured).
  const dmopt::CutTelemetry& st = spec_run.result.telemetry;
  const bool spec_identical =
      spec_run.result.golden_mct_ns == warm.result.golden_mct_ns &&
      spec_run.result.golden_leakage_uw == warm.result.golden_leakage_uw &&
      spec_run.result.bisection_probes == warm.result.bisection_probes &&
      spec_run.cuts == warm.cuts;

  const double speedup =
      warm.total_ms > 0.0 ? cold.total_ms / warm.total_ms : 0.0;
  const double assembly_speedup =
      warm.assembly_ms > 0.0 ? cold.assembly_ms / warm.assembly_ms : 0.0;
  // Scratch-reuse audit: the warm path re-solves every probe in place, so
  // it must allocate well under half of what the per-round rebuild does.
  const bool alloc_ok = warm.allocations * 2 < cold.allocations;
  std::printf(
      "\ngolden: cold MCT %.6f ns / %.1f uW, warm MCT %.6f ns / %.1f uW "
      "(%s, %d variant diffs; speculative %s)\n",
      cold.result.golden_mct_ns, cold.result.golden_leakage_uw,
      warm.result.golden_mct_ns, warm.result.golden_leakage_uw,
      bit_identical ? "bit-identical" : "DIVERGED", variant_diffs,
      spec_identical ? "same frontier" : "DIVERGED");
  std::printf("assembly speedup: %.1fx, ADMM iterations %d -> %d, "
              "allocations %llu -> %llu (%s)\n",
              assembly_speedup, cold.admm_iterations, warm.admm_iterations,
              static_cast<unsigned long long>(cold.allocations),
              static_cast<unsigned long long>(warm.allocations),
              alloc_ok ? "reused" : "NOT REUSED");
  std::printf("cutting-plane solve speedup: %.1fx %s\n", speedup,
              speedup >= 3.0 ? "(>= 3x: OK)" : "(below 3x target!)");

  std::FILE* f = std::fopen("BENCH_qp.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_qp: cannot write BENCH_qp.json\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"design\": \"aes65\",\n"
      "  \"scale\": %g,\n"
      "  \"grid_um\": 10.0,\n"
      "  \"cells\": %zu,\n"
      "  \"rounds\": %d,\n"
      "  \"cuts\": %zu,\n"
      "  \"bisection_probes\": %d,\n"
      "  \"cold\": {\"assembly_ms\": %.3f, \"assembly_ns_per_round\": %.0f,"
      " \"admm_iterations\": %d, \"admm_ms\": %.3f, \"solve_total_ms\":"
      " %.3f, \"allocations\": %llu, \"dmopt_s\": %.3f},\n"
      "  \"warm\": {\"assembly_ms\": %.3f, \"assembly_ns_per_round\": %.0f,"
      " \"admm_iterations\": %d, \"admm_ms\": %.3f, \"solve_total_ms\":"
      " %.3f, \"allocations\": %llu, \"dmopt_s\": %.3f,\n"
      "    \"multigrid\": {\"seeds\": %d, \"rejects\": %d,"
      " \"coarse_admm_iterations\": %d, \"coarse_solve_ms\": %.3f},\n"
      "    \"mixed_precision\": {\"solves\": %d, \"fallbacks\": %d,"
      " \"float_cg_iterations\": %d}},\n"
      "  \"speculative\": {\"lanes\": 2, \"depth\": 2, \"solve_total_ms\":"
      " %.3f, \"launched\": %d, \"consumed\": %d, \"wasted\": %d,"
      " \"wasted_ms\": %.3f, \"same_frontier\": %s},\n"
      "  \"assembly_speedup\": %.2f,\n"
      "  \"solve_speedup\": %.2f,\n"
      "  \"scratch_reused\": %s,\n"
      "  \"golden_bit_identical\": %s\n"
      "}\n",
      flow::design_scale(), ctx.netlist().cell_count(), cold.rounds,
      cold.cuts, cold.result.bisection_probes, cold.assembly_ms,
      cold.assembly_ns_per_round, cold.admm_iterations, cold.admm_ms,
      cold.total_ms, static_cast<unsigned long long>(cold.allocations),
      cold.result.runtime_s, warm.assembly_ms, warm.assembly_ns_per_round,
      warm.admm_iterations, warm.admm_ms, warm.total_ms,
      static_cast<unsigned long long>(warm.allocations),
      warm.result.runtime_s, warm.result.telemetry.mg_seeds,
      warm.result.telemetry.mg_rejects,
      warm.result.telemetry.mg_admm_iterations, warm.mg_ms,
      warm.result.telemetry.qp_mixed_solves,
      warm.result.telemetry.qp_mixed_fallbacks,
      warm.result.telemetry.mixed_cg_iterations, spec_run.total_ms,
      st.speculative_launched, st.speculative_consumed, st.speculative_wasted,
      static_cast<double>(st.speculative_wasted_ns) / 1e6,
      spec_identical ? "true" : "false", assembly_speedup, speedup,
      alloc_ok ? "true" : "false", bit_identical ? "true" : "false");
  std::fclose(f);
  std::printf("BENCH_qp.json written\n");
  return (speedup >= 3.0 && bit_identical && spec_identical && alloc_ok) ? 0
                                                                         : 1;
}
